//! `hopper` — command-line experiment runner.
//!
//! ```text
//! hopper central   [--policy srpt|fifo|fair|budgeted|hopper] [--jobs N]
//!                  [--machines N] [--slots N] [--util F] [--seed N]
//!                  [--workload facebook|bing] [--interactive] [--eps F]
//! hopper decentral [--policy sparrow|sparrow-srpt|hopper] [--jobs N]
//!                  [--workers N] [--slots N] [--util F] [--seed N]
//!                  [--probe-ratio F] [--refusals N] [--workload facebook|bing]
//! hopper example   # the §3 motivating example (Table 1 / Figures 1-2)
//! ```
//!
//! Prints a one-line summary plus a per-size-bin table; exit code 0 on
//! success. Flags may appear in any order; unknown flags abort with usage.

use hopper::central;
use hopper::cluster::ClusterConfig;
use hopper::decentral;
use hopper::metrics::{mean_duration_in_bin, JobResult, SizeBin, Table};
use hopper::workload::{Trace, TraceGenerator, WorkloadProfile};
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(mode) = args.first() else {
        usage();
        exit(2);
    };
    let flags = Flags::parse(&args[1..]);
    match mode.as_str() {
        "central" => run_central(&flags),
        "decentral" => run_decentral(&flags),
        "example" => run_example(),
        "--help" | "-h" | "help" => usage(),
        other => {
            eprintln!("unknown mode: {other}");
            usage();
            exit(2);
        }
    }
}

struct Flags {
    policy: String,
    jobs: usize,
    machines: usize,
    slots: usize,
    util: f64,
    seed: u64,
    workload: String,
    interactive: bool,
    eps: f64,
    probe_ratio: f64,
    refusals: usize,
}

impl Flags {
    fn parse(rest: &[String]) -> Flags {
        let mut f = Flags {
            policy: "hopper".into(),
            jobs: 100,
            machines: 50,
            slots: 4,
            util: 0.7,
            seed: 1,
            workload: "facebook".into(),
            interactive: false,
            eps: 0.1,
            probe_ratio: 4.0,
            refusals: 2,
        };
        let mut it = rest.iter();
        while let Some(flag) = it.next() {
            let mut next = |name: &str| {
                it.next().cloned().unwrap_or_else(|| {
                    eprintln!("flag {name} needs a value");
                    exit(2);
                })
            };
            match flag.as_str() {
                "--policy" => f.policy = next("--policy"),
                "--jobs" => f.jobs = parse(&next("--jobs")),
                "--machines" | "--workers" => f.machines = parse(&next("--machines")),
                "--slots" => f.slots = parse(&next("--slots")),
                "--util" => f.util = parse(&next("--util")),
                "--seed" => f.seed = parse(&next("--seed")),
                "--workload" => f.workload = next("--workload"),
                "--interactive" => f.interactive = true,
                "--eps" => f.eps = parse(&next("--eps")),
                "--probe-ratio" => f.probe_ratio = parse(&next("--probe-ratio")),
                "--refusals" => f.refusals = parse(&next("--refusals")),
                other => {
                    eprintln!("unknown flag: {other}");
                    usage();
                    exit(2);
                }
            }
        }
        f
    }

    fn trace(&self, total_slots: usize) -> Trace {
        let mut profile = match self.workload.as_str() {
            "facebook" => WorkloadProfile::facebook(),
            "bing" => WorkloadProfile::bing(),
            other => {
                eprintln!("unknown workload: {other}");
                exit(2);
            }
        };
        if self.interactive {
            profile = profile.interactive();
        }
        TraceGenerator::new(profile, self.jobs, self.seed)
            .generate_with_utilization(total_slots, self.util)
    }
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("could not parse value: {s}");
        exit(2);
    })
}

fn run_central(f: &Flags) {
    let policy = match f.policy.as_str() {
        "fifo" => central::Policy::Fifo,
        "fair" => central::Policy::Fair,
        "srpt" => central::Policy::Srpt,
        "budgeted" => central::Policy::BudgetedSrpt {
            budget_fraction: 0.2,
        },
        "hopper" => central::Policy::Hopper(central::HopperConfig {
            alloc: hopper::core::AllocConfig {
                fairness_eps: f.eps,
                ..Default::default()
            },
            ..Default::default()
        }),
        other => {
            eprintln!("unknown central policy: {other}");
            exit(2);
        }
    };
    let cfg = central::SimConfig {
        cluster: ClusterConfig {
            machines: f.machines,
            slots_per_machine: f.slots,
            ..Default::default()
        },
        seed: f.seed,
        ..Default::default()
    };
    let trace = f.trace(cfg.cluster.total_slots());
    let out = central::run(&trace, &policy, &cfg);
    println!(
        "{} on {} jobs ({} workload, util {:.0}%): mean JCT {:.0} ms, makespan {:.1} s, spec {}/{} won, events {}",
        policy.name(),
        trace.len(),
        f.workload,
        f.util * 100.0,
        out.mean_duration_ms(),
        out.stats.makespan.as_secs_f64(),
        out.stats.spec_won,
        out.stats.spec_launched,
        out.stats.events,
    );
    print_bins(&out.jobs);
}

fn run_decentral(f: &Flags) {
    let policy = match f.policy.as_str() {
        "sparrow" => decentral::DecPolicy::Sparrow,
        "sparrow-srpt" => decentral::DecPolicy::SparrowSrpt,
        "hopper" => decentral::DecPolicy::Hopper,
        other => {
            eprintln!("unknown decentral policy: {other}");
            exit(2);
        }
    };
    let cfg = decentral::DecConfig {
        cluster: ClusterConfig {
            machines: f.machines.max(10),
            slots_per_machine: f.slots.min(4),
            handoff_ms: 0,
            ..Default::default()
        },
        probe_ratio: f.probe_ratio,
        refusal_threshold: f.refusals,
        fairness_eps: Some(f.eps),
        seed: f.seed,
        ..Default::default()
    };
    let trace = f.trace(cfg.cluster.total_slots());
    let out = decentral::run(&trace, policy, &cfg);
    println!(
        "{} on {} jobs ({} workload, util {:.0}%): mean JCT {:.0} ms, spec {}/{} won, msgs {} res / {} resp / {} refusals",
        policy.name(),
        trace.len(),
        f.workload,
        f.util * 100.0,
        out.mean_duration_ms(),
        out.stats.spec_won,
        out.stats.spec_launched,
        out.stats.reservations,
        out.stats.responses,
        out.stats.refusals,
    );
    print_bins(&out.jobs);
}

fn print_bins(jobs: &[JobResult]) {
    let mut t = Table::new("mean JCT by job size", &["bin", "jobs", "mean JCT (ms)"]);
    for bin in SizeBin::all() {
        let n = jobs
            .iter()
            .filter(|r| SizeBin::of(r.size_tasks) == bin)
            .count();
        let cell = mean_duration_in_bin(jobs, bin).map_or("n/a".to_string(), |m| format!("{m:.0}"));
        t.row(&[bin.label().into(), n.to_string(), cell]);
    }
    t.print();
}

fn run_example() {
    use hopper::central::scenario::{motivating_sim_config, motivating_trace};
    let (trace, _) = motivating_trace();
    let cfg = motivating_sim_config();
    let mut t = Table::new(
        "§3 motivating example (paper: 20/30, 12/32, 12/22 s)",
        &["strategy", "A (s)", "B (s)"],
    );
    let cases: Vec<(&str, central::Policy)> = vec![
        ("best-effort", central::Policy::Srpt),
        (
            "budgeted",
            central::Policy::BudgetedSrpt {
                budget_fraction: 3.0 / 7.0,
            },
        ),
        (
            "hopper",
            central::Policy::Hopper(central::HopperConfig::pure()),
        ),
    ];
    for (name, policy) in cases {
        let out = central::run(&trace, &policy, &cfg);
        let a = out.jobs.iter().find(|r| r.job == 0).unwrap().duration_ms() / 1000;
        let b = out.jobs.iter().find(|r| r.job == 1).unwrap().duration_ms() / 1000;
        t.row(&[name.into(), a.to_string(), b.to_string()]);
    }
    t.print();
}

fn usage() {
    eprintln!(
        "usage:\n  hopper central   [--policy srpt|fifo|fair|budgeted|hopper] [--jobs N] \\\n                   [--machines N] [--slots N] [--util F] [--seed N] \\\n                   [--workload facebook|bing] [--interactive] [--eps F]\n  hopper decentral [--policy sparrow|sparrow-srpt|hopper] [--workers N] \\\n                   [--slots N] [--jobs N] [--util F] [--seed N] \\\n                   [--probe-ratio F] [--refusals N]\n  hopper example"
    );
}
