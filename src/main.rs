//! `hopper` — command-line experiment runner over the experiment layer.
//!
//! ```text
//! hopper central   [--policy srpt|fifo|fair|budgeted|hopper] [--jobs N]
//!                  [--machines N] [--slots N] [--util F] [--seed N]
//!                  [--workload facebook|bing] [--interactive] [--eps F]
//! hopper decentral [--policy sparrow|sparrow-srpt|hopper] [--jobs N]
//!                  [--workers N] [--slots N] [--util F] [--seed N]
//!                  [--probe-ratio F] [--refusals N] [--workload facebook|bing]
//!                  [--msg-loss F] [--msg-jitter-ms N] [--msg-dup F]
//!                  [--sched-fail-rate F] [--sched-mttr-ms N]
//!                  [--rpc-timeout-ms N] [--rpc-retries N]
//! hopper sweep     [--spec FILE] [key=value ...] --axis KEY=V1,V2[,...]
//!                  [--threads N] [--csv] [--series-dir DIR]
//! hopper stability [--spec FILE] [key=value ...] [--policies P1,P2,...]
//!                  [--profiles constant,diurnal] [--lo F] [--hi F]
//!                  [--iters N] [--threads N] [--csv]
//! hopper report    [--out FILE] [--svg-out FILE] A.jsonl [B.jsonl]
//! hopper example   # the §3 motivating example (Table 1 / Figures 1-2)
//! ```
//!
//! `central` and `decentral` are thin builders over
//! [`hopper::experiment::ExperimentSpec`]: each flag sets the spec field
//! of the same name and the single trial runs through the same path a
//! sweep cell does. Defaults are the spec defaults — central 50×4 slots,
//! decentral the paper's deployment shape (300 workers × 2 slots, 10
//! schedulers; the pre-experiment-layer CLI defaulted decentral to a
//! clamped 50×4) — and flag values are taken as given, unclamped. `sweep` expands one spec along one axis (any spec
//! key) × its seed list and fans the grid out over worker threads;
//! results are bit-identical to a serial run regardless of `--threads`.
//! Exit code 0 on success; unknown flags or keys abort with usage.

use hopper::experiment::{
    frontier_csv, frontier_grid, sweep_with_threads, EngineKind, ExperimentSpec, FrontierConfig,
    SpecError, SweepAxis, SweepTable,
};
use hopper::metrics::{mean_duration_in_bin, JobResult, SizeBin, Table};
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(mode) = args.first() else {
        usage();
        exit(2);
    };
    match mode.as_str() {
        "central" => run_single(EngineKind::Central, &args[1..]),
        "decentral" => run_single(EngineKind::Decentral, &args[1..]),
        "sweep" => run_sweep(&args[1..]),
        "stability" => run_stability(&args[1..]),
        "report" => run_report(&args[1..]),
        "example" => run_example(),
        "--help" | "-h" | "help" => usage(),
        other => {
            eprintln!("unknown mode: {other}");
            usage();
            exit(2);
        }
    }
}

fn bail(e: SpecError) -> ! {
    eprintln!("{e}");
    exit(2);
}

/// Map the classic per-driver flags onto spec keys. Every flag is a
/// 1:1 rename (`--probe-ratio` → `probe_ratio`); `--workers` is an
/// alias for `--machines` and `--seed` sets a one-entry seed list.
fn apply_flags(spec: &mut ExperimentSpec, rest: &[String]) {
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut next = |name: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("flag {name} needs a value");
                exit(2);
            })
        };
        let r = match flag.as_str() {
            "--policy" => spec.set("policy", &next("--policy")),
            "--jobs" => spec.set("jobs", &next("--jobs")),
            "--machines" | "--workers" => spec.set("machines", &next("--machines")),
            "--slots" => spec.set("slots", &next("--slots")),
            "--util" => spec.set("util", &next("--util")),
            "--seed" => {
                // Single-run mode takes exactly one seed; a comma list
                // would silently run only its head. Seed *lists* belong
                // to `hopper sweep` (the `seeds=` key).
                let v = next("--seed");
                if v.parse::<u64>().is_err() {
                    eprintln!(
                        "--seed takes one seed (use `hopper sweep` with seeds=... for lists)"
                    );
                    exit(2);
                }
                spec.set("seeds", &v)
            }
            "--workload" => spec.set("workload", &next("--workload")),
            "--interactive" => spec.set("interactive", "true"),
            "--stream" => spec.set("stream", "on"),
            "--max-jobs" => spec.set("max_jobs", &next("--max-jobs")),
            "--rate-profile" => spec.set("rate_profile", &next("--rate-profile")),
            "--rate-period-ms" => spec.set("rate_period_ms", &next("--rate-period-ms")),
            "--burst-rate" => spec.set("burst_rate", &next("--burst-rate")),
            "--burst-mult" => spec.set("burst_mult", &next("--burst-mult")),
            "--burst-len-ms" => spec.set("burst_len_ms", &next("--burst-len-ms")),
            "--replay" => spec.set("replay", &next("--replay")),
            "--eps" => spec.set("eps", &next("--eps")),
            "--realloc-drift" => spec.set("realloc_drift", &next("--realloc-drift")),
            "--probe-ratio" => spec.set("probe_ratio", &next("--probe-ratio")),
            "--refusals" => spec.set("refusals", &next("--refusals")),
            "--hetero" => spec.set("hetero", &next("--hetero")),
            "--slow-frac" => spec.set("slow_frac", &next("--slow-frac")),
            "--slow-factor" => spec.set("slow_factor", &next("--slow-factor")),
            "--hetero-sigma" => spec.set("hetero_sigma", &next("--hetero-sigma")),
            "--slowdown-rate" => spec.set("slowdown_rate", &next("--slowdown-rate")),
            "--fail-rate" => spec.set("fail_rate", &next("--fail-rate")),
            "--mttr-ms" => spec.set("mttr_ms", &next("--mttr-ms")),
            "--msg-loss" => spec.set("msg_loss", &next("--msg-loss")),
            "--msg-jitter-ms" => spec.set("msg_jitter_ms", &next("--msg-jitter-ms")),
            "--msg-dup" => spec.set("msg_dup", &next("--msg-dup")),
            "--sched-fail-rate" => spec.set("sched_fail_rate", &next("--sched-fail-rate")),
            "--sched-mttr-ms" => spec.set("sched_mttr_ms", &next("--sched-mttr-ms")),
            "--rpc-timeout-ms" => spec.set("rpc_timeout_ms", &next("--rpc-timeout-ms")),
            "--rpc-retries" => spec.set("rpc_retries", &next("--rpc-retries")),
            "--shards" => spec.set("shards", &next("--shards")),
            "--telemetry-window-ms" => {
                spec.set("telemetry_window_ms", &next("--telemetry-window-ms"))
            }
            other => {
                eprintln!("unknown flag: {other}");
                usage();
                exit(2);
            }
        };
        if let Err(e) = r {
            bail(e);
        }
    }
}

fn run_single(kind: EngineKind, rest: &[String]) {
    let mut spec = match kind {
        EngineKind::Central => ExperimentSpec::central(),
        EngineKind::Decentral => ExperimentSpec::decentral(),
    };
    // `--series-out` is an output sink, not a spec key: peel it off
    // before the flag→key mapping sees the argument list.
    let mut series_out: Option<String> = None;
    let mut flags: Vec<String> = Vec::with_capacity(rest.len());
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        if arg == "--series-out" {
            let Some(path) = it.next() else {
                eprintln!("flag --series-out needs a value");
                exit(2);
            };
            series_out = Some(path.clone());
        } else {
            flags.push(arg.clone());
        }
    }
    apply_flags(&mut spec, &flags);
    if let Err(e) = spec.validate() {
        bail(e);
    }
    if series_out.is_some() && spec.telemetry_window_ms == 0 {
        eprintln!("--series-out needs --telemetry-window-ms N (N > 0) to collect a series");
        exit(2);
    }
    let seed = spec.seeds[0];
    let out = spec.run_one(seed).unwrap_or_else(|e| bail(e));
    let report = out.report();
    let core = &report.core;
    println!(
        "{}/{} on {} jobs ({} workload, util {:.0}%, seed {}): mean JCT {:.0} ms, p90 {:.0} ms, \
         makespan {:.1} s, spec {}/{} won, events {}, msgs {}",
        spec.engine.as_str(),
        spec.policy,
        report.digest.count(),
        spec.workload,
        spec.util * 100.0,
        seed,
        out.mean_duration_ms(),
        out.percentile_duration_ms(0.9),
        core.makespan.as_secs_f64(),
        core.spec_won,
        core.spec_launched,
        core.events,
        core.messages,
    );
    if spec.stream {
        // Streaming runs retire per-job results; report the memory
        // yardstick instead of the per-bin table.
        println!(
            "streaming: live-job high-water {} of {} total ({:.2}%), p50 ~{:.0} ms (sketch ε={})",
            report.live_high_water,
            report.digest.count(),
            100.0 * report.live_high_water as f64 / report.digest.count().max(1) as f64,
            out.percentile_duration_ms(0.5),
            report.digest.eps(),
        );
    } else {
        print_bins(out.jobs());
    }
    if let Some(path) = series_out {
        let series = report
            .telemetry
            .as_ref()
            .expect("telemetry_window_ms > 0 was checked before the run");
        let label = format!("{}/{}", spec.engine.as_str(), spec.policy);
        if let Err(e) = std::fs::write(&path, series.to_jsonl(&label, seed)) {
            eprintln!("could not write series to {path}: {e}");
            exit(2);
        }
        println!(
            "telemetry: {} windows of {} ms written to {path}",
            series.windows.len(),
            series.window_ms,
        );
    }
}

fn run_sweep(rest: &[String]) {
    // File pairs and command-line pairs are collected separately and
    // applied file-first, so explicit `key=value` arguments override
    // the `--spec` file regardless of where `--spec` sits on the line
    // (the parser takes the last occurrence of a key).
    let mut file_text = String::new();
    let mut arg_text = String::new();
    let mut axis: Option<SweepAxis> = None;
    let mut threads: Option<usize> = None;
    let mut csv = false;
    let mut series_dir: Option<String> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let mut next = |name: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("flag {name} needs a value");
                exit(2);
            })
        };
        match arg.as_str() {
            "--spec" => {
                let path = next("--spec");
                match std::fs::read_to_string(&path) {
                    Ok(text) => {
                        file_text.push_str(&text);
                        // Keep a file whose last line lacks '\n' from
                        // merging with the next spec line.
                        if !file_text.ends_with('\n') {
                            file_text.push('\n');
                        }
                    }
                    Err(e) => {
                        eprintln!("could not read spec file {path}: {e}");
                        exit(2);
                    }
                }
            }
            "--axis" => axis = Some(SweepAxis::parse(&next("--axis")).unwrap_or_else(|e| bail(e))),
            "--threads" => {
                threads = Some(next("--threads").parse().unwrap_or_else(|_| {
                    eprintln!("--threads needs a number");
                    exit(2);
                }))
            }
            "--csv" => csv = true,
            "--series-dir" => series_dir = Some(next("--series-dir")),
            kv if kv.contains('=') && !kv.starts_with("--") => {
                arg_text.push_str(kv);
                arg_text.push('\n');
            }
            other => {
                eprintln!("unknown sweep argument: {other} (expected key=value or a --flag)");
                usage();
                exit(2);
            }
        }
    }
    let Some(axis) = axis else {
        eprintln!("sweep needs --axis KEY=V1,V2[,...]");
        exit(2);
    };
    let spec = ExperimentSpec::parse(&format!("{file_text}{arg_text}")).unwrap_or_else(|e| bail(e));
    if series_dir.is_some() && spec.telemetry_window_ms == 0 {
        eprintln!("--series-dir needs telemetry_window_ms=N (N > 0) on the spec to collect series");
        exit(2);
    }
    let threads = threads.unwrap_or_else(hopper::experiment::default_threads);
    let table = sweep_with_threads(&spec, &axis, threads).unwrap_or_else(|e| bail(e));
    if let Some(dir) = series_dir {
        write_series_dir(&dir, &axis.key, &spec, &table);
    }
    if csv {
        print!("{}", table.to_csv());
    } else {
        let title = format!(
            "{}/{} sweep over {} ({} trials, {} threads)",
            spec.engine.as_str(),
            spec.policy,
            axis.key,
            table.trials.len(),
            threads,
        );
        table.to_table(&title).print();
    }
}

/// `hopper stability`: bisect each policy's maximum sustainable
/// utilization (its stability frontier) under each rate profile.
///
/// Policies pick their natural engine — `fifo|fair|srpt|budgeted` run
/// centralized, `sparrow|sparrow-srpt` decentralized, and `hopper` the
/// paper's decentralized deployment — so the comparison is frontier vs
/// frontier, each scheduler in its own home configuration refined by
/// the shared `key=value` overrides.
fn run_stability(rest: &[String]) {
    let mut file_text = String::new();
    let mut arg_text = String::new();
    let mut policies = "hopper,sparrow,srpt".to_string();
    let mut profiles = "constant".to_string();
    let mut cfg = FrontierConfig::default();
    let mut threads: Option<usize> = None;
    let mut csv = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let mut next = |name: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("flag {name} needs a value");
                exit(2);
            })
        };
        let parse_f64 = |name: &str, v: String| -> f64 {
            v.parse().unwrap_or_else(|_| {
                eprintln!("{name} needs a number, got `{v}`");
                exit(2);
            })
        };
        match arg.as_str() {
            "--spec" => {
                let path = next("--spec");
                match std::fs::read_to_string(&path) {
                    Ok(text) => {
                        file_text.push_str(&text);
                        if !file_text.ends_with('\n') {
                            file_text.push('\n');
                        }
                    }
                    Err(e) => {
                        eprintln!("could not read spec file {path}: {e}");
                        exit(2);
                    }
                }
            }
            "--policies" => policies = next("--policies"),
            "--profiles" => profiles = next("--profiles"),
            "--lo" => cfg.lo = parse_f64("--lo", next("--lo")),
            "--hi" => cfg.hi = parse_f64("--hi", next("--hi")),
            "--iters" => {
                cfg.iters = next("--iters").parse().unwrap_or_else(|_| {
                    eprintln!("--iters needs a number");
                    exit(2);
                })
            }
            "--threads" => {
                threads = Some(next("--threads").parse().unwrap_or_else(|_| {
                    eprintln!("--threads needs a number");
                    exit(2);
                }))
            }
            "--csv" => csv = true,
            kv if kv.contains('=') && !kv.starts_with("--") => {
                arg_text.push_str(kv);
                arg_text.push('\n');
            }
            other => {
                eprintln!("unknown stability argument: {other} (expected key=value or a --flag)");
                usage();
                exit(2);
            }
        }
    }
    let mut cells = Vec::new();
    for profile in profiles.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        for policy in policies.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let engine = match policy {
                "fifo" | "fair" | "srpt" | "budgeted" => "central",
                _ => "decentral",
            };
            let text = format!(
                "engine={engine}\n{file_text}{arg_text}policy={policy}\nrate_profile={profile}\n"
            );
            cells.push(ExperimentSpec::parse(&text).unwrap_or_else(|e| bail(e)));
        }
    }
    if cells.is_empty() {
        eprintln!("stability needs at least one policy and one profile");
        exit(2);
    }
    let threads = threads.unwrap_or_else(hopper::experiment::default_threads);
    let results = frontier_grid(&cells, &cfg, threads).unwrap_or_else(|e| bail(e));
    if csv {
        print!("{}", frontier_csv(&results));
    } else {
        let mut t = Table::new(
            "stability frontier (max sustainable utilization)",
            &["policy", "rate profile", "frontier", "probes"],
        );
        for r in &results {
            let frontier = if r.lo == r.hi {
                format!("at/beyond {:.2}", r.lo)
            } else {
                format!("[{:.3}, {:.3}]", r.lo, r.hi)
            };
            t.row(&[
                r.policy.clone(),
                r.rate_profile.clone(),
                frontier,
                r.probes.len().to_string(),
            ]);
        }
        t.print();
    }
}

/// Deterministic per-trial series file name: `{axis_key}-{value}-seed{N}.jsonl`
/// with every character outside `[A-Za-z0-9._-]` of the value mapped to `-`.
/// The contract lets the nightly diff (and any external tooling) address a
/// trial's series from the grid cell alone, with no directory listing.
fn series_file_name(axis_key: &str, axis_value: &str, seed: u64) -> String {
    let sanitize = |s: &str| -> String {
        s.chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                    c
                } else {
                    '-'
                }
            })
            .collect()
    };
    format!(
        "{}-{}-seed{}.jsonl",
        sanitize(axis_key),
        sanitize(axis_value),
        seed
    )
}

/// Write one JSON-lines telemetry file per trial into `dir` (created if
/// missing), named by [`series_file_name`].
fn write_series_dir(dir: &str, axis_key: &str, spec: &ExperimentSpec, table: &SweepTable) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("could not create series dir {dir}: {e}");
        exit(2);
    }
    let mut written = 0usize;
    for trial in &table.trials {
        let Some(series) = &trial.report.telemetry else {
            continue;
        };
        let name = series_file_name(axis_key, &trial.axis_value, trial.seed);
        let path = format!("{dir}/{name}");
        let label = format!(
            "{}/{} {}={}",
            spec.engine.as_str(),
            spec.policy,
            axis_key,
            trial.axis_value
        );
        if let Err(e) = std::fs::write(&path, series.to_jsonl(&label, trial.seed)) {
            eprintln!("could not write series to {path}: {e}");
            exit(2);
        }
        written += 1;
    }
    eprintln!("telemetry: wrote {written} series files to {dir}/");
}

/// `hopper report`: render one or two JSON-lines telemetry series into a
/// self-contained HTML page (and optionally a standalone SVG).
fn run_report(rest: &[String]) {
    let mut out_path = "report.html".to_string();
    let mut svg_path: Option<String> = None;
    let mut inputs: Vec<String> = Vec::new();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let mut next = |name: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("flag {name} needs a value");
                exit(2);
            })
        };
        match arg.as_str() {
            "--out" => out_path = next("--out"),
            "--svg-out" => svg_path = Some(next("--svg-out")),
            flag if flag.starts_with("--") => {
                eprintln!("unknown report flag: {flag}");
                usage();
                exit(2);
            }
            path => inputs.push(path.to_string()),
        }
    }
    if inputs.is_empty() || inputs.len() > 2 {
        eprintln!(
            "report takes one series file (single run) or two (A/B), got {}",
            inputs.len()
        );
        exit(2);
    }
    let mut runs = Vec::with_capacity(inputs.len());
    for path in &inputs {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("could not read series file {path}: {e}");
            exit(2);
        });
        match hopper::metrics::parse_jsonl(&text) {
            Ok(data) => runs.push(data),
            Err(e) => {
                eprintln!("{path}: {e}");
                exit(2);
            }
        }
    }
    if let Err(e) = std::fs::write(&out_path, hopper::metrics::render_html(&runs)) {
        eprintln!("could not write report to {out_path}: {e}");
        exit(2);
    }
    println!(
        "report: {} run{} -> {out_path}",
        runs.len(),
        if runs.len() == 1 { "" } else { "s (A/B)" },
    );
    if let Some(path) = svg_path {
        if let Err(e) = std::fs::write(&path, hopper::metrics::render_svg(&runs)) {
            eprintln!("could not write SVG to {path}: {e}");
            exit(2);
        }
        println!("report: SVG panel -> {path}");
    }
}

fn print_bins(jobs: &[JobResult]) {
    let mut t = Table::new("mean JCT by job size", &["bin", "jobs", "mean JCT (ms)"]);
    for bin in SizeBin::all() {
        let n = jobs
            .iter()
            .filter(|r| SizeBin::of(r.size_tasks) == bin)
            .count();
        let cell = mean_duration_in_bin(jobs, bin).map_or("n/a".to_string(), |m| format!("{m:.0}"));
        t.row(&[bin.label().into(), n.to_string(), cell]);
    }
    t.print();
}

fn run_example() {
    use hopper::central::{self, scenario::motivating_sim_config, scenario::motivating_trace};
    let (trace, _) = motivating_trace();
    let cfg = motivating_sim_config();
    let mut t = Table::new(
        "§3 motivating example (paper: 20/30, 12/32, 12/22 s)",
        &["strategy", "A (s)", "B (s)"],
    );
    let cases: Vec<(&str, central::Policy)> = vec![
        ("best-effort", central::Policy::Srpt),
        (
            "budgeted",
            central::Policy::BudgetedSrpt {
                budget_fraction: 3.0 / 7.0,
            },
        ),
        (
            "hopper",
            central::Policy::Hopper(central::HopperConfig::pure()),
        ),
    ];
    for (name, policy) in cases {
        let out = central::run(&trace, &policy, &cfg);
        let a = out.jobs.iter().find(|r| r.job == 0).unwrap().duration_ms() / 1000;
        let b = out.jobs.iter().find(|r| r.job == 1).unwrap().duration_ms() / 1000;
        t.row(&[name.into(), a.to_string(), b.to_string()]);
    }
    t.print();
}

fn usage() {
    eprintln!(
        "usage:\n  hopper central   [--policy srpt|fifo|fair|budgeted|hopper] [--jobs N] \\\n                   [--machines N] [--slots N] [--util F] [--seed N] \\\n                   [--workload facebook|bing] [--interactive] [--eps F] \\\n                   [--realloc-drift F]  (0 = exact eager reallocation;\n                    F > 0 keeps the last Hopper allocation while total\n                    virtual size drifts < F, relative; sweep key realloc_drift=)\n  hopper decentral [--policy sparrow|sparrow-srpt|hopper] [--workers N] \\\n                   [--slots N] [--jobs N] [--util F] [--seed N] \\\n                   [--probe-ratio F] [--refusals N]\n  hopper sweep     [--spec FILE] [key=value ...] --axis KEY=V1,V2[,...] \\\n                   [--threads N] [--csv] [--series-dir DIR]\n  hopper stability [--spec FILE] [key=value ...] [--policies P1,P2,...] \\\n                   [--profiles constant,diurnal] [--lo F] [--hi F] [--iters N] \\\n                   [--threads N] [--csv]\n  hopper report    [--out FILE] [--svg-out FILE] A.jsonl [B.jsonl]\n  hopper example\n\nstreaming flags (central and decentral; also sweep keys stream=, max_jobs=):\n  --stream          lazy arrivals + job retirement: O(active jobs) job state,\n                    identical results (percentiles via an ε=1% sketch)\n  --max-jobs N      stop consuming the arrival stream after N jobs\n\nnon-stationary arrivals (both engines; sweep keys rate_profile=, burst_rate=, ...):\n  --rate-profile constant|diurnal   arrival-rate shape; diurnal follows a\n                    day/night curve whose time-average stays at --util\n  --rate-period-ms N   diurnal period (0 = derive from the arrival window)\n  --burst-rate F    seeded burst windows per hour layered on the base profile\n  --burst-mult F    rate multiplier inside bursts (off-burst normalized down)\n  --burst-len-ms N  burst window length\n  --replay FILE     replay jobs from CSV (arrival_ms,tasks,work_ms[,dag_len[,beta]])\n                    instead of synthesizing; requires a constant profile\n\nstability frontier (hopper stability; probes run streaming with telemetry):\n  --policies P,...  policies to bisect; fifo|fair|srpt|budgeted run centralized,\n                    sparrow|sparrow-srpt|hopper decentralized (default\n                    hopper,sparrow,srpt)\n  --profiles ...    rate profiles per policy (default constant)\n  --lo F / --hi F   utilization bracket (default 0.5 / 1.4)\n  --iters N         bisection steps after the endpoint probes (default 7)\n\ncluster-dynamics flags (central and decentral; all default off):\n  --hetero off|uniform|bimodal|lognormal   machine speed heterogeneity\n  --slow-frac F     bimodal slow-node fraction        --slow-factor F  slow speed\n  --hetero-sigma F  lognormal sigma                   --slowdown-rate F  per machine-hour\n  --fail-rate F     machine failures per machine-hour --mttr-ms N      mean recovery\n  (the same knobs are sweep keys: hetero=, slow_frac=, fail_rate=, ...)\n\nmessage-fault flags (decentral only; all default off):\n  --msg-loss F      per-RPC loss probability [0,1]   --msg-jitter-ms N  max extra delay\n  --msg-dup F       per-RPC duplication prob [0,1]   --sched-fail-rate F  crashes/sched-hour\n  --sched-mttr-ms N mean scheduler recovery\n  hardening (neutral unless a fault source is on):\n  --rpc-timeout-ms N  watchdog/lease horizon         --rpc-retries N  before fresh round\n  (the same knobs are sweep keys: msg_loss=, msg_dup=, rpc_timeout_ms=, ...)\n\nsharded execution (decentral only; sweep key shards=):\n  --shards N        run the conservative-PDES engine on N threads; results are\n                    bit-identical for every N >= 1 (0 = the serial driver);\n                    sweep worker counts clamp so workers x shards fits the host\n\ntelemetry (both engines; spec key telemetry_window_ms=; default 0 = off):\n  --telemetry-window-ms N  collect a windowed time-series (utilization, queue,\n                    live jobs, speculation, kills, messages, per-window JCT);\n                    never changes simulation results (observer invariant)\n  --series-out FILE single runs: write the series as JSON lines\n  --series-dir DIR  sweeps: one AXIS-VALUE-seedN.jsonl per trial (the\n                    value is sanitized to [A-Za-z0-9._-]; deterministic names)\n  hopper report     render series files into a self-contained HTML page\n                    (one file = single run, two = A/B overlay)"
    );
}
