//! # hopper — speculation-aware cluster scheduling
//!
//! A from-scratch Rust reproduction of **"Hopper: Decentralized
//! Speculation-aware Cluster Scheduling at Scale"** (Ren, Ananthanarayanan,
//! Wierman, Yu — ACM SIGCOMM 2015).
//!
//! Hopper is a job scheduler that coordinates *speculative execution*
//! (racing extra copies of straggling tasks) with *job-level resource
//! allocation*: every job's desired allocation is its **virtual size**
//! `max(2/β, 1) · T_remaining · √α`, and slots are divided by an
//! SRPT-style rule when the cluster is capacity constrained or
//! proportionally to virtual sizes when it is not.
//!
//! This facade crate re-exports the whole workspace under one roof:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sim`] | `hopper-sim` | deterministic discrete-event engine |
//! | [`workload`] | `hopper-workload` | heavy-tailed distributions, synthetic Facebook/Bing traces |
//! | [`core`] | `hopper-core` | the paper's algorithms, sans I/O (Pseudocode 1–3, estimators) |
//! | [`cluster`] | `hopper-cluster` | machines, jobs, racing task copies, locality, shuffles |
//! | [`spec`] | `hopper-spec` | LATE / Mantri / GRASS speculation policies |
//! | [`central`] | `hopper-central` | centralized simulator: FIFO/Fair/SRPT/Budgeted/Hopper |
//! | [`decentral`] | `hopper-decentral` | Sparrow-style decentralized simulator |
//! | [`metrics`] | `hopper-metrics` | completion-time statistics, paper-style tables |
//! | [`experiment`] | `hopper-experiment` | engine-agnostic experiment specs + deterministic parallel sweeps |
//!
//! ## Quickstart
//!
//! ```
//! use hopper::central::{run, HopperConfig, Policy, SimConfig};
//! use hopper::workload::{TraceGenerator, WorkloadProfile};
//!
//! // Synthesize a small Facebook-like trace at 70% cluster utilization.
//! let profile = WorkloadProfile::facebook().interactive();
//! let trace = TraceGenerator::new(profile, 50, 42).generate_with_utilization(100, 0.7);
//!
//! let mut cfg = SimConfig::default();
//! cfg.cluster.machines = 25;
//! cfg.cluster.slots_per_machine = 4;
//!
//! let srpt = run(&trace, &Policy::Srpt, &cfg);
//! let hopper = run(&trace, &Policy::Hopper(HopperConfig::default()), &cfg);
//! println!(
//!     "SRPT {:.0} ms vs Hopper {:.0} ms",
//!     srpt.mean_duration_ms(),
//!     hopper.mean_duration_ms()
//! );
//! ```

pub use hopper_central as central;
pub use hopper_cluster as cluster;
pub use hopper_core as core;
pub use hopper_decentral as decentral;
pub use hopper_experiment as experiment;
pub use hopper_metrics as metrics;
pub use hopper_sim as sim;
pub use hopper_spec as spec;
pub use hopper_workload as workload;
