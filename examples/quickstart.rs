//! Quickstart: synthesize a workload, run two schedulers, compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hopper::central::{run, HopperConfig, Policy, SimConfig};
use hopper::metrics::{reduction_pct, Table};
use hopper::workload::{TraceGenerator, WorkloadProfile};

fn main() {
    // A Facebook-like interactive workload: 100 jobs, heavy-tailed sizes,
    // Pareto task durations, arrivals calibrated to 70% of a 100-slot
    // cluster.
    let profile = WorkloadProfile::facebook().interactive();
    let trace = TraceGenerator::new(profile, 100, 42).generate_with_utilization(100, 0.7);
    println!(
        "trace: {} jobs, {} tasks total, offered utilization {:.2}",
        trace.len(),
        trace.jobs.iter().map(|j| j.num_tasks()).sum::<usize>(),
        trace.offered_utilization(100),
    );

    let mut cfg = SimConfig::default();
    cfg.cluster.machines = 25;
    cfg.cluster.slots_per_machine = 4;

    let mut table = Table::new(
        "centralized schedulers on the same trace",
        &[
            "policy",
            "mean JCT (ms)",
            "spec copies",
            "spec wins",
            "vs SRPT",
        ],
    );
    let srpt = run(&trace, &Policy::Srpt, &cfg);
    let base = srpt.mean_duration_ms();
    for policy in [
        Policy::Fifo,
        Policy::Fair,
        Policy::Srpt,
        Policy::Hopper(HopperConfig::default()),
    ] {
        let out = run(&trace, &policy, &cfg);
        table.row(&[
            policy.name().to_string(),
            format!("{:.0}", out.mean_duration_ms()),
            out.stats.spec_launched.to_string(),
            out.stats.spec_won.to_string(),
            format!("{:+.1}%", reduction_pct(base, out.mean_duration_ms())),
        ]);
    }
    table.print();
    println!("\nPositive \"vs SRPT\" = faster than the SRPT baseline.");
}
