//! Decentralized scheduling for interactive analytics — the paper's
//! headline setting (§5, §7.2).
//!
//! Spark-like sub-second-to-seconds tasks are scheduled by ten autonomous
//! schedulers over probe-based late binding. Compare stock Sparrow,
//! Sparrow-SRPT (the paper's aggressive baseline), and decentralized
//! Hopper.
//!
//! ```text
//! cargo run --release --example interactive_analytics
//! ```

use hopper::decentral::{run, DecConfig, DecPolicy};
use hopper::metrics::{reduction_pct, Table};
use hopper::workload::{TraceGenerator, WorkloadProfile};

fn main() {
    let cfg = DecConfig {
        seed: 7,
        ..Default::default()
    };
    let slots = cfg.cluster.total_slots();
    let profile = WorkloadProfile::facebook().interactive();
    let trace = TraceGenerator::new(profile, 150, 7).generate_with_utilization(slots, 0.8);
    println!(
        "cluster: {} workers × {} slots, {} schedulers, probe ratio {}, 80% utilization",
        cfg.cluster.machines, cfg.cluster.slots_per_machine, cfg.num_schedulers, cfg.probe_ratio,
    );

    let mut table = Table::new(
        "decentralized schedulers (mean JCT, messaging)",
        &[
            "policy",
            "mean JCT (ms)",
            "p90 JCT (ms)",
            "reservations",
            "responses",
            "refusals",
            "vs Sparrow-SRPT",
        ],
    );
    let baseline = run(&trace, DecPolicy::SparrowSrpt, &cfg).mean_duration_ms();
    for policy in [
        DecPolicy::Sparrow,
        DecPolicy::SparrowSrpt,
        DecPolicy::Hopper,
    ] {
        let out = run(&trace, policy, &cfg);
        let durs: Vec<f64> = out.jobs.iter().map(|j| j.duration_ms() as f64).collect();
        table.row(&[
            policy.name().to_string(),
            format!("{:.0}", out.mean_duration_ms()),
            format!("{:.0}", hopper::metrics::percentile(&durs, 0.9)),
            out.stats.reservations.to_string(),
            out.stats.responses.to_string(),
            out.stats.refusals.to_string(),
            format!("{:+.1}%", reduction_pct(baseline, out.mean_duration_ms())),
        ]);
    }
    table.print();
    println!("\nHopper's refusal protocol spends a few extra messages to place");
    println!("speculative copies where the virtual-size allocation wants them.");
}
