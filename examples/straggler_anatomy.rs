//! Anatomy of a straggler: watch one job's tasks race their speculative
//! copies under the Pareto duration model (§2.2, §4.1).
//!
//! ```text
//! cargo run --release --example straggler_anatomy
//! ```

use hopper::central::{run, HopperConfig, Policy, SimConfig};
use hopper::cluster::ClusterConfig;
use hopper::sim::SimTime;
use hopper::spec::{SpecConfig, Speculator};
use hopper::workload::{single_phase_job, Trace};

fn main() {
    // One job, 50 identical 10-second tasks, heavy-tailed β = 1.3 — some
    // copies will straggle badly.
    let beta = 1.3;
    let trace = Trace::new(vec![single_phase_job(
        0,
        SimTime::ZERO,
        vec![SimTime::from_millis(10_000); 50],
        beta,
    )]);
    let cfg = SimConfig {
        cluster: ClusterConfig {
            machines: 75, // 1.5× the task count: room for prompt speculation
            slots_per_machine: 1,
            dfs_replicas: 0,
            handoff_ms: 0,
            ..Default::default()
        },
        speculator: Speculator::Late(SpecConfig {
            min_elapsed: SimTime::from_millis(1_000),
            ..Default::default()
        }),
        scan_interval: SimTime::from_millis(500),
        seed: 99,
        ..Default::default()
    };

    println!(
        "β = {beta}: P(task runs >2× nominal) = {:.1}%",
        tail_prob(beta, 2.0) * 100.0
    );
    println!(
        "          P(task runs >8× nominal) = {:.2}%\n",
        tail_prob(beta, 8.0) * 100.0
    );

    for (name, policy) in [
        ("no speculation", Policy::Srpt),
        ("SRPT + LATE", Policy::Srpt),
        ("Hopper + LATE", Policy::Hopper(HopperConfig::pure())),
    ] {
        let mut c = cfg.clone();
        if name == "no speculation" {
            c.speculator = Speculator::None;
        }
        let out = run(&trace, &policy, &c);
        println!(
            "{name:>16}: completion {:>6.1}s  (spec launched {}, won {}, killed {})",
            out.mean_duration_ms() / 1000.0,
            out.stats.spec_launched,
            out.stats.spec_won,
            out.stats.killed,
        );
    }
    println!("\nWithout speculation the job waits for the slowest Pareto draw;");
    println!("with it, stragglers race fresh copies and the winner's time counts.");
}

/// P(X > m) for the unit-mean Pareto(β) duration multiplier.
fn tail_prob(beta: f64, m: f64) -> f64 {
    let x_min = (beta - 1.0) / beta;
    if m <= x_min {
        1.0
    } else {
        (x_min / m).powf(beta)
    }
}
