//! Batch DAG pipelines: multi-phase jobs with shuffles, α weighting, and
//! online intermediate-data estimation (§4.2, §6.3).
//!
//! ```text
//! cargo run --release --example batch_dag_pipeline
//! ```

use hopper::central::{run, HopperConfig, Policy, SimConfig};
use hopper::cluster::{ClusterConfig, JobRun};
use hopper::metrics::Table;
use hopper::sim::rng_from_seed;
use hopper::workload::{TraceGenerator, WorkloadProfile};

fn main() {
    // A Hadoop-style batch workload where every job is a 3-phase chain
    // (map → shuffle/reduce → aggregate).
    let profile = WorkloadProfile::facebook().fixed_dag_len(3);
    let trace = TraceGenerator::new(profile.clone(), 60, 11).generate_with_utilization(200, 0.7);

    // Peek at one job's phase structure and its DAG weight α.
    let cluster = ClusterConfig {
        machines: 50,
        slots_per_machine: 4,
        ..Default::default()
    };
    let sample = JobRun::new(trace.jobs[0].clone(), &cluster, &mut rng_from_seed(1));
    println!("sample job {}:", sample.id);
    for (i, p) in sample.phases().iter().enumerate() {
        println!(
            "  phase {i}: {} tasks, {:.1} MB out/task, shuffle-in {:.0} ms/task",
            p.num_tasks(),
            p.spec.output_mb_per_task,
            p.transfer_ms_per_task,
        );
    }
    println!(
        "  α (remaining transfer / remaining compute) = {:.2}\n",
        sample.alpha()
    );

    let cfg = SimConfig {
        cluster,
        ..Default::default()
    };
    let mut table = Table::new(
        "3-phase DAG pipelines, centralized scheduling",
        &["policy", "mean JCT (s)", "spec wins", "α accuracy"],
    );
    for policy in [Policy::Srpt, Policy::Hopper(HopperConfig::default())] {
        let out = run(&trace, &policy, &cfg);
        table.row(&[
            policy.name().to_string(),
            format!("{:.1}", out.mean_duration_ms() / 1000.0),
            out.stats.spec_won.to_string(),
            out.stats
                .alpha_accuracy
                .map_or("n/a".into(), |a| format!("{:.0}%", a * 100.0)),
        ]);
    }
    table.print();
    println!("\nHopper predicts intermediate-data volumes from recurring job");
    println!("templates (paper §6.3 reports ~92% accuracy; see the α column).");
}
