//! The ε-fairness knob (§4.3): trading a bounded amount of unfairness for
//! performance — the paper's Figure 10 in miniature.
//!
//! Doc-example for the experiment layer: the whole figure is one
//! [`ExperimentSpec`] swept along the `eps` axis. The sweep fans the
//! ε × seed grid out over worker threads and (by the layer's
//! determinism invariant) returns exactly what the serial loop this
//! example used to hand-wire returned. Each ε cell shares its trace
//! with the ε = 0 baseline by sharing a seed, so the per-job gain CDF
//! is well-formed.
//!
//! ```text
//! cargo run --release --example fairness_tradeoff
//! ```

use hopper::experiment::{sweep, ExperimentSpec, SweepAxis};
use hopper::metrics::{reduction_pct, GainCdf, Table};

fn main() {
    let mut spec = ExperimentSpec::central();
    spec.policy = "hopper".to_string();
    spec.interactive = true;
    spec.jobs = 120;
    spec.machines = 25;
    spec.slots = 4;
    spec.util = 0.7;
    spec.seeds = vec![3];

    let epsilons = [0.0, 0.05, 0.10, 0.15, 0.20, 0.30];
    let results = sweep(&spec, &SweepAxis::new("eps", &epsilons)).expect("eps sweep");

    // ε = 0 is perfectly fair Hopper: every job always gets its fair share.
    let fair = &results.trials_for("0")[0].jobs;
    let fair_mean = results.mean_for("0");

    let mut table = Table::new(
        "ε-fairness sensitivity (baseline: ε = 0, perfectly fair)",
        &[
            "ε",
            "mean JCT (ms)",
            "gain vs ε=0",
            "jobs slowed",
            "avg slowdown",
            "worst slowdown",
        ],
    );
    for eps in epsilons {
        let v = eps.to_string();
        let trial = &results.trials_for(&v)[0];
        let cdf = GainCdf::between(fair, &trial.jobs);
        let (avg, worst) = cdf.slowdown_magnitude();
        table.row(&[
            format!("{:.0}%", eps * 100.0),
            format!("{:.0}", trial.mean_duration_ms()),
            format!(
                "{:+.1}%",
                reduction_pct(fair_mean, trial.mean_duration_ms())
            ),
            format!("{:.1}%", cdf.fraction_slowed() * 100.0),
            format!("{avg:.1}%"),
            format!("{worst:.1}%"),
        ]);
    }
    table.print();
    println!("\nThe paper (Fig. 10) finds gains flatten past ε ≈ 15% while fewer");
    println!("than ~4% of jobs slow down at ε = 10% — the default used throughout.");
}
