//! The ε-fairness knob (§4.3): trading a bounded amount of unfairness for
//! performance — the paper's Figure 10 in miniature.
//!
//! ```text
//! cargo run --release --example fairness_tradeoff
//! ```

use hopper::central::{run, HopperConfig, Policy, SimConfig};
use hopper::core::AllocConfig;
use hopper::metrics::{reduction_pct, GainCdf, Table};
use hopper::workload::{TraceGenerator, WorkloadProfile};

fn main() {
    let profile = WorkloadProfile::facebook().interactive();
    let trace = TraceGenerator::new(profile, 120, 3).generate_with_utilization(100, 0.7);
    let mut cfg = SimConfig::default();
    cfg.cluster.machines = 25;
    cfg.cluster.slots_per_machine = 4;

    let hopper_with_eps = |eps: f64| {
        Policy::Hopper(HopperConfig {
            alloc: AllocConfig {
                fairness_eps: eps,
                ..Default::default()
            },
            ..Default::default()
        })
    };

    // ε = 0 is perfectly fair Hopper: every job always gets its fair share.
    let fair = run(&trace, &hopper_with_eps(0.0), &cfg);
    let fair_mean = fair.mean_duration_ms();

    let mut table = Table::new(
        "ε-fairness sensitivity (baseline: ε = 0, perfectly fair)",
        &[
            "ε",
            "mean JCT (ms)",
            "gain vs ε=0",
            "jobs slowed",
            "avg slowdown",
            "worst slowdown",
        ],
    );
    for eps in [0.0, 0.05, 0.10, 0.15, 0.20, 0.30] {
        let out = run(&trace, &hopper_with_eps(eps), &cfg);
        let cdf = GainCdf::between(&fair.jobs, &out.jobs);
        let (avg, worst) = cdf.slowdown_magnitude();
        table.row(&[
            format!("{:.0}%", eps * 100.0),
            format!("{:.0}", out.mean_duration_ms()),
            format!("{:+.1}%", reduction_pct(fair_mean, out.mean_duration_ms())),
            format!("{:.1}%", cdf.fraction_slowed() * 100.0),
            format!("{avg:.1}%"),
            format!("{worst:.1}%"),
        ]);
    }
    table.print();
    println!("\nThe paper (Fig. 10) finds gains flatten past ε ≈ 15% while fewer");
    println!("than ~4% of jobs slow down at ε = 10% — the default used throughout.");
}
