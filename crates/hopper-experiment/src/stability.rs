//! Stability-frontier experiment: the maximum sustainable utilization
//! per policy, found by bisection.
//!
//! A scheduler's *stability frontier* is the largest target utilization
//! at which its queue still drains — offered load above it accumulates
//! an unbounded backlog (in a finite run: a backlog that grows for as
//! long as arrivals keep coming). [`find_frontier`] brackets that point
//! by probing a spec at candidate `util` values and bisecting on the
//! verdict of a [`saturated`] detector.
//!
//! **Detector invariants** (pinned by `tests/stability.rs`):
//!
//! - A run that drains — live jobs stay bounded well below the job
//!   count — is never flagged, at any utilization that actually drains.
//! - A run that ends its arrival phase with a many-job task backlog the
//!   cluster never caught up on is flagged.
//! - The verdict reads only the run's [`RunReport`] (live-jobs
//!   high-water mark and the windowed telemetry series), so it works on
//!   streaming runs with retired job state, which is how probes run.
//!
//! **Determinism.** A probe is `run_one` on a derived spec — a pure
//! function of `(spec, util, seed)` — and bisection visits a fixed
//! probe sequence, so the frontier is deterministic; [`frontier_grid`]
//! fans whole cells (never probes) out over worker threads and writes
//! results by index, so the output is identical at every thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use hopper_metrics::RunReport;

use crate::spec::{ExperimentSpec, SpecError};
use crate::sweep::{clamp_threads, default_threads};

/// Live high-water fraction of delivered jobs that flags saturation on
/// its own: a draining run keeps live jobs near the steady-state level,
/// an overloaded one accumulates a constant fraction of everything that
/// arrives.
const LIVE_FRAC: f64 = 0.2;

/// Telemetry path: task backlog still queued *when the last job
/// arrives*, as a multiple of the cluster's slot capacity. A draining
/// run is at its steady-state queue level at that instant (a few slot-
/// waves at most); past the frontier the backlog there is the whole
/// accumulated arrival excess, Θ((1 − 1/u) · total work). Measured at
/// the end of the arrival phase — not as a climb over the run — so
/// periodic dips under a diurnal profile and idle windows trailing the
/// last completion cannot mask or dilute it.
const BACKLOG_SLOTS: f64 = 2.0;

/// Telemetry path: fraction of delivered jobs that must still be live
/// when the last job arrives, alongside the backlog test. One elephant
/// can queue thousands of tasks at that instant in a perfectly stable
/// heavy-tailed run; a backlog that outlives the arrival phase because
/// the cluster *cannot keep up* spans many jobs.
const LIVE_AT_END_FRAC: f64 = 0.05;

/// Absolute live-jobs floor for both signals — tiny runs never flag,
/// whatever the fractions say.
const MIN_LIVE: f64 = 10.0;

/// Windows averaged (ending at the last-arrival window) for the
/// backlog gauge, so a single-window spike or dip is not decisive.
const BACKLOG_SMOOTH: usize = 3;

/// Telemetry window width (ms) forced onto probe runs that did not set
/// one — the queue-climb test needs a time-series to read.
const PROBE_WINDOW_MS: u64 = 2_000;

/// Saturation verdict for one finished run.
///
/// `delivered_jobs` is the number of jobs the run actually delivered
/// (`max_jobs` if set, else `jobs`); the thresholds scale with it.
/// Flags when either:
///
/// - the live-jobs high-water mark reached `LIVE_FRAC` of the
///   delivered jobs (a large constant fraction of the workload was in
///   flight at once), or
/// - at the *end of the arrival phase* — the first telemetry window
///   where live + cumulatively-completed jobs account for every
///   delivered job — the queued-task backlog (smoothed over
///   `BACKLOG_SMOOTH` windows) is at least `BACKLOG_SLOTS` times
///   the cluster's slot capacity *and* at least `LIVE_AT_END_FRAC` of
///   the delivered jobs are still live. A draining run sits at its
///   steady-state queue there; past the frontier the whole accumulated
///   arrival excess — spanning many jobs — is still waiting. Requiring
///   both keeps one late elephant (huge queue, few live jobs) from
///   flagging a stable heavy-tailed run, and measuring at a fixed
///   instant keeps diurnal troughs and post-completion idle windows
///   from masking real saturation.
///
/// Without a telemetry series only the first signal is available.
pub fn saturated(report: &RunReport, delivered_jobs: usize) -> bool {
    let n = delivered_jobs.max(1) as f64;
    if report.live_high_water as f64 >= (LIVE_FRAC * n).max(MIN_LIVE) {
        return true;
    }
    let Some(series) = &report.telemetry else {
        return false;
    };
    // End of the arrival phase: every delivered job is accounted for
    // (still live or already completed). Synthetic series that never
    // account for all jobs yield no arrival end and cannot flag.
    let mut cum_completed = 0u64;
    let mut arrival_end = None;
    for (i, w) in series.windows.iter().enumerate() {
        cum_completed += w.completed;
        if w.live_jobs as f64 + cum_completed as f64 >= n {
            arrival_end = Some(i);
            break;
        }
    }
    let Some(a_end) = arrival_end else {
        return false;
    };
    let live_at_end = series.windows[a_end].live_jobs as f64;
    if live_at_end < (LIVE_AT_END_FRAC * n).max(MIN_LIVE) {
        return false;
    }
    let from = (a_end + 1).saturating_sub(BACKLOG_SMOOTH);
    let window = &series.windows[from..=a_end];
    let backlog = window.iter().map(|w| w.queue_depth as f64).sum::<f64>() / window.len() as f64;
    backlog >= BACKLOG_SLOTS * series.total_slots as f64
}

/// Bisection bounds for [`find_frontier`].
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierConfig {
    /// Lower utilization bound (assumed — and verified — to drain).
    pub lo: f64,
    /// Upper utilization bound (assumed — and verified — to saturate).
    pub hi: f64,
    /// Bisection iterations after the two endpoint probes. 7 narrows
    /// `[0.5, 1.4]` to ≈ 0.007 — well inside detector accuracy.
    pub iters: usize,
}

impl Default for FrontierConfig {
    fn default() -> Self {
        FrontierConfig {
            lo: 0.5,
            hi: 1.4,
            iters: 7,
        }
    }
}

/// One policy's detected stability frontier.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierResult {
    /// The probed spec's policy name.
    pub policy: String,
    /// The probed spec's `rate_profile` key.
    pub rate_profile: String,
    /// Highest utilization observed to drain.
    pub lo: f64,
    /// Lowest utilization observed to saturate. The frontier lies in
    /// `[lo, hi]`; `lo == hi` at a config bound means the frontier sits
    /// at or beyond that bound.
    pub hi: f64,
    /// Every probe in order: `(util, saturated)`.
    pub probes: Vec<(f64, bool)>,
}

/// Probe one utilization: run the spec's first seed at `util` through
/// the streaming pipeline (with telemetry forced on so the queue-climb test
/// has a series) and report the [`saturated`] verdict.
pub fn probe(spec: &ExperimentSpec, util: f64) -> Result<bool, SpecError> {
    let mut s = spec.clone();
    s.util = util;
    s.stream = true;
    s.replay = None;
    if s.telemetry_window_ms == 0 {
        s.telemetry_window_ms = PROBE_WINDOW_MS;
    }
    let seed = *s
        .seeds
        .first()
        .ok_or_else(|| SpecError("stability probe needs at least one seed".into()))?;
    let out = s.run_one(seed)?;
    let delivered = s.max_jobs.unwrap_or(s.jobs);
    Ok(saturated(out.report(), delivered))
}

/// Bisect the stability frontier of one spec.
///
/// Probes both endpoints first: if `cfg.hi` already drains the frontier
/// is at or above the cap (`lo == hi == cfg.hi`); if `cfg.lo` already
/// saturates it is at or below the floor (`lo == hi == cfg.lo`).
/// Otherwise `cfg.iters` bisection steps maintain the invariant
/// *drains at `lo`, saturates at `hi`* and shrink the bracket by half
/// each step.
pub fn find_frontier(
    spec: &ExperimentSpec,
    cfg: &FrontierConfig,
) -> Result<FrontierResult, SpecError> {
    if !(cfg.lo > 0.0 && cfg.hi > cfg.lo && cfg.hi <= 1.5) {
        return Err(SpecError(format!(
            "frontier bounds must satisfy 0 < lo < hi <= 1.5, got [{}, {}]",
            cfg.lo, cfg.hi
        )));
    }
    let mut probes = Vec::new();
    let run = |util: f64, probes: &mut Vec<(f64, bool)>| -> Result<bool, SpecError> {
        let sat = probe(spec, util)?;
        probes.push((util, sat));
        Ok(sat)
    };
    let result = |lo: f64, hi: f64, probes: Vec<(f64, bool)>| FrontierResult {
        policy: spec.policy.clone(),
        rate_profile: spec.rate_profile.clone(),
        lo,
        hi,
        probes,
    };
    if !run(cfg.hi, &mut probes)? {
        return Ok(result(cfg.hi, cfg.hi, probes));
    }
    if run(cfg.lo, &mut probes)? {
        return Ok(result(cfg.lo, cfg.lo, probes));
    }
    let (mut lo, mut hi) = (cfg.lo, cfg.hi);
    for _ in 0..cfg.iters {
        let mid = 0.5 * (lo + hi);
        if run(mid, &mut probes)? {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(result(lo, hi, probes))
}

/// Bisect every cell's frontier over `threads` scoped workers.
///
/// Each cell is one sequential [`find_frontier`] (bisection cannot be
/// parallelized — each probe depends on the last verdict), so the fan-
/// out is across cells; results land in input order and are identical
/// at every thread count.
pub fn frontier_grid(
    cells: &[ExperimentSpec],
    cfg: &FrontierConfig,
    threads: usize,
) -> Result<Vec<FrontierResult>, SpecError> {
    for c in cells {
        c.validate()?;
    }
    let max_shards = cells.iter().map(|c| c.shards).max().unwrap_or(0);
    let threads = clamp_threads(threads, max_shards, default_threads()).min(cells.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<FrontierResult, SpecError>>>> =
        cells.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(cell) = cells.get(i) else {
                    break;
                };
                *slots[i].lock().unwrap() = Some(find_frontier(cell, cfg));
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap()
                .expect("every cell index was claimed by a worker")
        })
        .collect()
}

/// CSV rendering of frontier results: one row per cell,
/// `policy,rate_profile,frontier_lo,frontier_hi,probes`.
pub fn frontier_csv(results: &[FrontierResult]) -> String {
    let mut out = String::from("policy,rate_profile,frontier_lo,frontier_hi,probes\n");
    for r in results {
        out.push_str(&format!(
            "{},{},{:.4},{:.4},{}\n",
            r.policy,
            r.rate_profile,
            r.lo,
            r.hi,
            r.probes.len()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopper_metrics::{TelemetrySeries, TelemetryWindow};

    /// Series on a 100-slot cluster from `(queue, live, completed)`
    /// window triples.
    fn report_with_series(high_water: usize, windows: &[(u64, u64, u64)]) -> RunReport {
        RunReport {
            live_high_water: high_water,
            telemetry: Some(TelemetrySeries {
                window_ms: 1_000,
                total_slots: 100,
                windows: windows
                    .iter()
                    .enumerate()
                    .map(|(i, &(q, live, done))| TelemetryWindow {
                        index: i as u64,
                        queue_depth: q,
                        live_jobs: live,
                        completed: done,
                        ..TelemetryWindow::default()
                    })
                    .collect(),
            }),
            ..RunReport::default()
        }
    }

    #[test]
    fn high_water_fraction_flags() {
        let r = report_with_series(90, &[]);
        assert!(saturated(&r, 400));
        assert!(!saturated(&r, 10_000), "same high-water, much bigger run");
    }

    #[test]
    fn arrival_end_backlog_flags_but_late_elephant_does_not() {
        // 400 jobs arriving 40 per window, 10 completing per window:
        // by the last-arrival window (9), 300 jobs are live and the
        // task backlog has climbed to 18× slot capacity — the cluster
        // never caught up on the arrival phase.
        let overloaded: Vec<(u64, u64, u64)> =
            (0..10).map(|i| (200 * (i + 1), 30 * (i + 1), 10)).collect();
        let r = report_with_series(60, &overloaded);
        assert!(saturated(&r, 400));
        // Same queue trajectory, but almost every job already finished:
        // the backlog is one late elephant's task pile, not saturation.
        let elephant: Vec<(u64, u64, u64)> = (0..10).map(|i| (200 * (i + 1), 15, 38)).collect();
        let r = report_with_series(60, &elephant);
        assert!(!saturated(&r, 400));
    }

    #[test]
    fn draining_run_never_flags() {
        // Arrival phase ends with plenty of live jobs but only a
        // steady-state queue (1.5× slots, under the 2× threshold).
        let steady: Vec<(u64, u64, u64)> = (0..10).map(|i| (150, 30 * (i + 1), 10)).collect();
        let r = report_with_series(60, &steady);
        assert!(!saturated(&r, 400));
    }

    #[test]
    fn tiny_runs_never_flag() {
        // Live jobs below the absolute floor: any backlog shape stays
        // unflagged, as does an empty report.
        let tiny: Vec<(u64, u64, u64)> = vec![(900, 5, 1); 10];
        let r = report_with_series(8, &tiny);
        assert!(!saturated(&r, 15), "live jobs below the absolute floor");
        assert!(!saturated(&RunReport::default(), 0));
    }

    #[test]
    fn frontier_config_bounds_are_validated() {
        let spec = ExperimentSpec::central();
        let bad = FrontierConfig {
            lo: 0.9,
            hi: 0.6,
            iters: 3,
        };
        assert!(find_frontier(&spec, &bad).is_err());
    }
}
