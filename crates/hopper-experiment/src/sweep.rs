//! Deterministic parallel sweep runner.
//!
//! [`sweep`] expands an [`ExperimentSpec`] along one axis (any spec key)
//! into a seed × axis-value grid and runs every trial, fanning out over
//! `std::thread::scope` worker threads — the first use of more than one
//! core in this repository.
//!
//! **Parallel-determinism invariant.** Every trial is a pure function of
//! `(spec variant, seed)`: the trace generator and both drivers derive
//! all of their RNG streams from the trial's own seed, and no state is
//! shared between trials. Workers claim grid indices from an atomic
//! counter and write results into the trial's own slot, so the collected
//! [`SweepTable`] is in grid order (axis-major, seeds inner) regardless
//! of thread count or completion interleaving — bit-identical to the
//! serial fold [`sweep_serial`] runs. A test in `tests/experiment.rs`
//! pins this for both engines.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use hopper_metrics::{percentile, JobResult, RunReport, Table};

use crate::spec::{ExperimentSpec, SpecError};

/// One sweep dimension: a spec key and the values it takes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepAxis {
    /// Spec key to vary (`util`, `probe_ratio`, `policy`, …).
    pub key: String,
    /// Values, in grid order, in their `key=value` spelling.
    pub values: Vec<String>,
}

impl SweepAxis {
    /// Axis from any displayable values (`SweepAxis::new("util", &[0.6, 0.8])`).
    pub fn new<T: ToString>(key: &str, values: &[T]) -> Self {
        SweepAxis {
            key: key.to_string(),
            values: values.iter().map(|v| v.to_string()).collect(),
        }
    }

    /// Parse the CLI spelling `key=v1,v2,...`.
    pub fn parse(s: &str) -> Result<Self, SpecError> {
        let Some((key, values)) = s.split_once('=') else {
            return Err(SpecError(format!("axis must be key=v1,v2,..., got `{s}`")));
        };
        let values: Vec<String> = values
            .split(',')
            .map(|v| v.trim().to_string())
            .filter(|v| !v.is_empty())
            .collect();
        if values.is_empty() {
            return Err(SpecError(format!("axis `{key}` has no values")));
        }
        Ok(SweepAxis {
            key: key.trim().to_string(),
            values,
        })
    }
}

/// Outcome of one (axis value, seed) trial, flattened off the driver's
/// summary so it can cross threads and be compared bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct Trial {
    /// The axis value this trial ran under (the policy name for
    /// [`run_seeds`], which has no axis).
    pub axis_value: String,
    /// The trial's seed.
    pub seed: u64,
    /// Per-job outcomes (empty for `stream=on` trials — the report's
    /// digest is then the only per-job record).
    pub jobs: Vec<JobResult>,
    /// The unified run-output surface: counters, duration digest, live
    /// high-water, and — when `telemetry_window_ms > 0` — the windowed
    /// time-series (see `--series-dir`).
    pub report: RunReport,
}

impl Trial {
    /// Mean job duration (ms) — exact in both modes.
    pub fn mean_duration_ms(&self) -> f64 {
        if self.jobs.is_empty() {
            self.report.digest.mean_ms()
        } else {
            hopper_metrics::mean_duration(&self.jobs)
        }
    }

    /// Duration percentile (ms), `p` ∈ [0, 1]: exact when per-job
    /// results are retained, the digest's ε-approximate quantile on
    /// streaming trials.
    pub fn percentile_duration_ms(&self, p: f64) -> f64 {
        if self.jobs.is_empty() {
            return self.report.digest.quantile_ms(p);
        }
        let durs: Vec<f64> = self.jobs.iter().map(|r| r.duration_ms() as f64).collect();
        percentile(&durs, p)
    }
}

/// Results of a sweep, in grid order (axis-major, seeds inner).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepTable {
    /// The swept key.
    pub axis_key: String,
    /// One entry per (axis value, seed), grid order.
    pub trials: Vec<Trial>,
}

impl SweepTable {
    /// Axis values in grid order (deduplicated, order-preserving).
    pub fn axis_values(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for t in &self.trials {
            if out.last() != Some(&t.axis_value) {
                out.push(t.axis_value.clone());
            }
        }
        out
    }

    /// Trials under one axis value.
    pub fn trials_for(&self, value: &str) -> Vec<&Trial> {
        self.trials
            .iter()
            .filter(|t| t.axis_value == value)
            .collect()
    }

    /// Mean JCT (ms) for an axis value: [`mean_jct`] over the value's
    /// trials — the aggregation every figure bench uses.
    pub fn mean_for(&self, value: &str) -> f64 {
        mean_jct(self.trials_for(value))
    }

    /// Duration percentile (ms) for an axis value, pooled over every
    /// job of every seed's trial. Streaming trials (no retained jobs)
    /// pool through digest merges instead — exact pooling of the
    /// sketches, ε-approximate quantile out.
    pub fn percentile_for(&self, value: &str, p: f64) -> f64 {
        let trials = self.trials_for(value);
        if trials.iter().all(|t| t.jobs.is_empty()) {
            let mut pooled = hopper_metrics::JobDigest::new();
            for t in &trials {
                pooled.merge(&t.report.digest);
            }
            return pooled.quantile_ms(p);
        }
        let durs: Vec<f64> = trials
            .iter()
            .flat_map(|t| t.jobs.iter().map(|r| r.duration_ms() as f64))
            .collect();
        percentile(&durs, p)
    }

    /// Render one row per axis value (seed-aggregated) as an ASCII table.
    pub fn to_table(&self, title: &str) -> Table {
        let mut t = Table::new(
            title,
            &[
                self.axis_key.as_str(),
                "seeds",
                "mean JCT (ms)",
                "p50 (ms)",
                "p90 (ms)",
                "spec won/launched",
                "events",
                "messages",
            ],
        );
        for value in self.axis_values() {
            let trials = self.trials_for(&value);
            let (mut won, mut launched, mut events, mut messages) = (0u64, 0u64, 0u64, 0u64);
            for tr in &trials {
                won += tr.report.core.spec_won;
                launched += tr.report.core.spec_launched;
                events += tr.report.core.events;
                messages += tr.report.core.messages;
            }
            t.row(&[
                value.clone(),
                trials.len().to_string(),
                format!("{:.0}", self.mean_for(&value)),
                format!("{:.0}", self.percentile_for(&value, 0.5)),
                format!("{:.0}", self.percentile_for(&value, 0.9)),
                format!("{won}/{launched}"),
                events.to_string(),
                messages.to_string(),
            ]);
        }
        t
    }

    /// Per-trial CSV (one row per axis value × seed) for external
    /// plotting, same dialect as `hopper_metrics::export`.
    pub fn to_csv(&self) -> String {
        let mut out = format!(
            "{},seed,jobs,mean_jct_ms,p50_ms,p90_ms,orig_launched,spec_launched,spec_won,events,messages,makespan_ms\n",
            self.axis_key
        );
        for t in &self.trials {
            out.push_str(&format!(
                "{},{},{},{:.3},{:.3},{:.3},{},{},{},{},{},{}\n",
                t.axis_value,
                t.seed,
                t.report.digest.count(),
                t.mean_duration_ms(),
                t.percentile_duration_ms(0.5),
                t.percentile_duration_ms(0.9),
                t.report.core.orig_launched,
                t.report.core.spec_launched,
                t.report.core.spec_won,
                t.report.core.events,
                t.report.core.messages,
                t.report.core.makespan.as_millis(),
            ));
        }
        out
    }
}

/// Expand `spec` × `axis` into the trial grid (axis-major, seeds inner),
/// validating every variant up front so workers cannot fail mid-flight.
fn grid(
    spec: &ExperimentSpec,
    axis: &SweepAxis,
) -> Result<Vec<(ExperimentSpec, String, u64)>, SpecError> {
    if axis.key == "seeds" {
        return Err(SpecError(
            "`seeds` is the implicit inner grid dimension; sweep a different key".into(),
        ));
    }
    if axis.key == "engine" {
        // `set("engine", ..)` flips only the enum — engine-specific
        // *defaults* (schedulers, handoff, cluster shape) are chosen by
        // the spec constructors / `parse`, so an engine axis would run
        // the second engine with the first engine's field values and
        // compare unlike with unlike. Run one sweep per engine instead.
        return Err(SpecError(
            "`engine` cannot be a sweep axis (each engine has its own defaults); \
             run one sweep per engine"
                .into(),
        ));
    }
    if axis.key == "telemetry_window_ms" {
        // The telemetry window is an observation knob with no effect on
        // simulation results (the observer invariant) — every axis value
        // would produce identical rows. Set it on the spec instead.
        return Err(SpecError(
            "`telemetry_window_ms` cannot be a sweep axis: it only changes what is \
             observed, never the simulation — every value would produce identical \
             rows. Set telemetry_window_ms= on the spec instead"
                .into(),
        ));
    }
    if axis.values.is_empty() {
        return Err(SpecError(format!("axis `{}` has no values", axis.key)));
    }
    let mut cells = Vec::new();
    for value in &axis.values {
        let mut variant = spec.clone();
        variant
            .set(&axis.key, value)
            .map_err(|e| SpecError(format!("axis {}={value}: {}", axis.key, e.0)))?;
        variant.validate()?;
        for &seed in &variant.seeds {
            cells.push((variant.clone(), value.clone(), seed));
        }
    }
    Ok(cells)
}

/// Run a pre-validated trial grid over `threads` scoped workers,
/// collecting results in grid order.
fn run_cells(cells: Vec<(ExperimentSpec, String, u64)>, threads: usize) -> Vec<Trial> {
    let threads = threads.max(1).min(cells.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Trial>>> = cells.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((spec, value, seed)) = cells.get(i) else {
                    break;
                };
                let summary = spec
                    .run_one(*seed)
                    .expect("grid variants are validated before workers start");
                *slots[i].lock().unwrap() = Some(Trial {
                    axis_value: value.clone(),
                    seed: *seed,
                    jobs: summary.jobs().to_vec(),
                    report: summary.report().clone(),
                });
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap()
                .expect("every grid index was claimed by a worker")
        })
        .collect()
}

/// Default worker count: the host's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Clamp a sweep's worker count so `workers × shards-per-trial` does not
/// oversubscribe `parallelism` hardware threads: a `shards=N` spec runs
/// every trial on `N` engine threads of its own, so the sweep pool must
/// shrink accordingly. Pure so the arithmetic is testable on any host;
/// always at least 1 (a single trial may legitimately want more shards
/// than the host has cores — it just won't also run trials in parallel).
pub fn clamp_threads(requested: usize, shards: usize, parallelism: usize) -> usize {
    let per_trial = shards.max(1);
    requested.max(1).min((parallelism / per_trial).max(1))
}

/// Parallel sweep with the default worker count. See the module docs
/// for the determinism invariant.
pub fn sweep(spec: &ExperimentSpec, axis: &SweepAxis) -> Result<SweepTable, SpecError> {
    sweep_with_threads(spec, axis, default_threads())
}

/// Parallel sweep with an explicit worker count (1 = sequential worker,
/// still through the same claiming loop). The count is clamped by
/// [`clamp_threads`] when the spec runs sharded trials — results are
/// bit-identical at any worker count, so clamping only changes pacing.
pub fn sweep_with_threads(
    spec: &ExperimentSpec,
    axis: &SweepAxis,
    threads: usize,
) -> Result<SweepTable, SpecError> {
    let cells = grid(spec, axis)?;
    let threads = clamp_threads(threads, spec.shards, default_threads());
    Ok(SweepTable {
        axis_key: axis.key.clone(),
        trials: run_cells(cells, threads),
    })
}

/// Serial reference implementation: a plain fold over the same grid, no
/// threads, no atomics. Exists so tests can pin that the parallel path
/// is bit-identical; not the fast path.
pub fn sweep_serial(spec: &ExperimentSpec, axis: &SweepAxis) -> Result<SweepTable, SpecError> {
    let cells = grid(spec, axis)?;
    let mut trials = Vec::with_capacity(cells.len());
    for (variant, value, seed) in cells {
        let summary = variant.run_one(seed)?;
        trials.push(Trial {
            axis_value: value,
            seed,
            jobs: summary.jobs().to_vec(),
            report: summary.report().clone(),
        });
    }
    Ok(SweepTable {
        axis_key: axis.key.clone(),
        trials,
    })
}

/// The seed-aggregation rule every figure bench and
/// [`SweepTable::mean_for`] share: per-trial mean JCTs (ms) averaged
/// across trials. 0.0 on empty input.
pub fn mean_jct<'a, I: IntoIterator<Item = &'a Trial>>(trials: I) -> f64 {
    let means: Vec<f64> = trials.into_iter().map(|t| t.mean_duration_ms()).collect();
    hopper_metrics::mean(&means)
}

/// Run a spec's seed list in parallel with no axis — the repeated-trial
/// primitive figure benches use for their reference points. Trials are
/// labelled with the spec's policy name.
pub fn run_seeds(spec: &ExperimentSpec) -> Result<Vec<Trial>, SpecError> {
    spec.validate()?;
    let cells: Vec<(ExperimentSpec, String, u64)> = spec
        .seeds
        .iter()
        .map(|&seed| (spec.clone(), spec.policy.clone(), seed))
        .collect();
    let threads = clamp_threads(default_threads(), spec.shards, default_threads());
    Ok(run_cells(cells, threads))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_decentral() -> ExperimentSpec {
        let mut s = ExperimentSpec::decentral();
        s.jobs = 8;
        s.machines = 30;
        s.util = 0.6;
        s.seeds = vec![1, 2];
        s
    }

    #[test]
    fn clamp_threads_keeps_workers_times_shards_within_parallelism() {
        // Serial specs (shards=0) are untouched.
        assert_eq!(clamp_threads(8, 0, 8), 8);
        assert_eq!(clamp_threads(8, 1, 8), 8);
        // Each trial runs `shards` engine threads: the pool shrinks so
        // the product stays within the host budget.
        assert_eq!(clamp_threads(8, 4, 8), 2);
        assert_eq!(clamp_threads(8, 3, 8), 2);
        // A single trial may exceed the budget on its own; the sweep
        // then degrades to one trial at a time, never zero workers.
        assert_eq!(clamp_threads(8, 16, 8), 1);
        assert_eq!(clamp_threads(0, 1, 8), 1);
        assert_eq!(clamp_threads(4, 2, 1), 1);
        for shards in [0usize, 1, 2, 5, 9] {
            for avail in [1usize, 2, 8] {
                let got = clamp_threads(8, shards, avail);
                assert!(got >= 1);
                assert!(got == 1 || got * shards.max(1) <= avail);
            }
        }
    }

    #[test]
    fn sharded_sweep_matches_serial_reference() {
        let mut spec = tiny_decentral();
        spec.shards = 2;
        let axis = SweepAxis::new("policy", &["sparrow", "hopper"]);
        // The parallel path (clamped workers, each trial on 2 engine
        // threads) must be bit-identical to the serial fold.
        let par = sweep_with_threads(&spec, &axis, 4).unwrap();
        let ser = sweep_serial(&spec, &axis).unwrap();
        assert_eq!(par.trials.len(), ser.trials.len());
        for (p, s) in par.trials.iter().zip(&ser.trials) {
            assert_eq!(p.axis_value, s.axis_value);
            assert_eq!(p.seed, s.seed);
            assert_eq!(p.report.core, s.report.core);
            assert_eq!(p.jobs, s.jobs);
        }
    }

    #[test]
    fn axis_parse_and_new_agree() {
        let a = SweepAxis::parse("util=0.6, 0.8").unwrap();
        let b = SweepAxis::new("util", &[0.6, 0.8]);
        assert_eq!(a, b);
        assert!(SweepAxis::parse("util").is_err());
        assert!(SweepAxis::parse("util=").is_err());
    }

    #[test]
    fn grid_is_axis_major_seeds_inner() {
        let spec = tiny_decentral();
        let axis = SweepAxis::new("util", &[0.6, 0.7]);
        let cells = grid(&spec, &axis).unwrap();
        let shape: Vec<(String, u64)> = cells.iter().map(|(_, v, s)| (v.clone(), *s)).collect();
        assert_eq!(
            shape,
            vec![
                ("0.6".into(), 1),
                ("0.6".into(), 2),
                ("0.7".into(), 1),
                ("0.7".into(), 2)
            ]
        );
    }

    #[test]
    fn seeds_axis_is_rejected() {
        let spec = tiny_decentral();
        let axis = SweepAxis::new("seeds", &[1, 2]);
        assert!(grid(&spec, &axis).is_err());
    }

    #[test]
    fn telemetry_window_axis_is_rejected() {
        // Observer invariant: every axis value runs the same simulation,
        // so a telemetry_window_ms sweep is rejected rather than run.
        let spec = tiny_decentral();
        let axis = SweepAxis::new("telemetry_window_ms", &[0u64, 1000]);
        let e = grid(&spec, &axis).unwrap_err();
        assert!(e.0.contains("telemetry_window_ms"), "{e}");
        assert!(e.0.contains("observed"), "{e}");
    }

    #[test]
    fn engine_axis_is_rejected() {
        // set("engine") flips only the enum, not the engine's default
        // field-set — an engine axis would compare unlike with unlike.
        let spec = tiny_decentral();
        let axis = SweepAxis::new("engine", &["central", "decentral"]);
        let e = grid(&spec, &axis).unwrap_err();
        assert!(e.0.contains("one sweep per engine"), "{e}");
    }

    #[test]
    fn mean_jct_is_the_shared_aggregation() {
        let spec = tiny_decentral();
        let axis = SweepAxis::new("policy", &["hopper"]);
        let table = sweep_with_threads(&spec, &axis, 2).unwrap();
        assert_eq!(table.mean_for("hopper"), mean_jct(&table.trials));
        assert_eq!(mean_jct(&[]), 0.0);
    }

    #[test]
    fn invalid_axis_value_fails_before_running() {
        let spec = tiny_decentral();
        let axis = SweepAxis::new("policy", &["sparrow", "fifo"]);
        let e = sweep_with_threads(&spec, &axis, 2).unwrap_err();
        assert!(e.0.contains("sparrow|sparrow-srpt|hopper"), "{e}");
    }

    #[test]
    fn sweep_runs_and_orders_results() {
        let spec = tiny_decentral();
        let axis = SweepAxis::new("policy", &["sparrow", "hopper"]);
        let table = sweep_with_threads(&spec, &axis, 3).unwrap();
        assert_eq!(table.trials.len(), 4);
        assert_eq!(table.axis_values(), vec!["sparrow", "hopper"]);
        assert_eq!(table.trials_for("sparrow").len(), 2);
        assert!(table.mean_for("sparrow") > 0.0);
        // CSV has a header plus one row per trial.
        assert_eq!(table.to_csv().lines().count(), 5);
        // The ASCII table has one row per axis value.
        assert_eq!(table.to_table("t").len(), 2);
    }

    #[test]
    fn run_seeds_matches_run_one() {
        let spec = tiny_decentral();
        let trials = run_seeds(&spec).unwrap();
        assert_eq!(trials.len(), 2);
        let direct = spec.run_one(1).unwrap();
        assert_eq!(trials[0].jobs, direct.jobs());
        assert_eq!(trials[0].report.core, direct.report().core);
        assert_eq!(trials[0].axis_value, "hopper");
    }
}
