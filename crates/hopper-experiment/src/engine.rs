//! The [`Engine`] abstraction: both drivers behind one `run` surface.
//!
//! The centralized and decentralized simulators keep their concrete
//! output types (`RunOutput` / `DecOutput` — the golden tests pin those
//! bit-for-bit); this module unifies *access*, not representation. A
//! [`RunSummary`] exposes what every consumer of either driver actually
//! reads: the per-job [`JobResult`]s, duration aggregates, and the
//! [`RunReport`] both outputs embed (counter core, streaming digest,
//! live high-water, optional telemetry series). The report *is* the
//! unified surface — the former per-field `core()` / `digest()` /
//! `live_high_water()` accessors were deleted in its favor.

use hopper_central::{Policy, RunOutput, SimConfig};
use hopper_decentral::{DecConfig, DecOutput, DecPolicy};
use hopper_metrics::{mean_duration, percentile, JobResult, RunReport};
use hopper_workload::{ArrivalSource, Trace, TraceStream};

/// Unified read surface over one scheduler run, regardless of driver.
///
/// `Send` is a supertrait so summaries can be produced on sweep worker
/// threads and collected by the caller.
pub trait RunSummary: Send {
    /// Per-job outcomes. Empty for streaming runs, whose per-job
    /// statistics are folded into the report's digest instead.
    fn jobs(&self) -> &[JobResult];

    /// The unified run-output surface: driver-agnostic counter core,
    /// constant-memory duration digest, live-jobs high-water mark, and
    /// — when `telemetry_window_ms > 0` — the windowed time-series.
    fn report(&self) -> &RunReport;

    /// Mean job duration in milliseconds (exact in both modes — the
    /// digest's mean is an integer-millisecond sum).
    fn mean_duration_ms(&self) -> f64 {
        if self.jobs().is_empty() {
            self.report().digest.mean_ms()
        } else {
            mean_duration(self.jobs())
        }
    }

    /// Duration percentile (`p` ∈ [0, 1]) in ms: linear-interpolated
    /// and exact when per-job results are retained, the sketch's
    /// ε-approximate quantile on streaming runs. 0.0 on a run with no
    /// jobs (see `hopper_metrics::percentile`).
    fn percentile_duration_ms(&self, p: f64) -> f64 {
        if self.jobs().is_empty() {
            return self.report().digest.quantile_ms(p);
        }
        let durs: Vec<f64> = self.jobs().iter().map(|r| r.duration_ms() as f64).collect();
        percentile(&durs, p)
    }
}

impl RunSummary for RunOutput {
    fn jobs(&self) -> &[JobResult] {
        &self.jobs
    }

    fn report(&self) -> &RunReport {
        &self.report
    }
}

impl RunSummary for DecOutput {
    fn jobs(&self) -> &[JobResult] {
        &self.jobs
    }

    fn report(&self) -> &RunReport {
        &self.report
    }
}

/// Anything that can run a trace and summarize the result.
///
/// `Sync` so a configured engine can be shared by sweep worker threads.
/// Engines must be deterministic functions of their configuration: two
/// `run` calls with the same trace must return identical summaries —
/// the sweep runner's parallel-equals-serial guarantee rests on it.
pub trait Engine: Sync {
    /// Display name for tables ("Hopper", "Sparrow-SRPT", …).
    fn name(&self) -> String;

    /// Simulate `trace` to completion.
    fn run(&self, trace: &Trace) -> Box<dyn RunSummary>;

    /// Simulate a lazy arrival stream to completion with O(active jobs)
    /// job state (completed jobs retired, per-job results folded into the
    /// digest). Decisions are bit-identical to [`Engine::run`] on the
    /// materialized form of the same stream.
    fn run_stream(&self, stream: TraceStream) -> Box<dyn RunSummary>;

    /// Simulate an arbitrary [`ArrivalSource`] — the seam replayed CSV
    /// traces come through. `retain_jobs` selects between per-job
    /// results ([`Engine::run`] semantics) and the streaming retirement
    /// pipeline ([`Engine::run_stream`] semantics); the scheduling
    /// decisions are identical either way.
    fn run_source(&self, source: ArrivalSource<'_>, retain_jobs: bool) -> Box<dyn RunSummary>;
}

/// The centralized driver as an [`Engine`].
#[derive(Debug, Clone)]
pub struct CentralEngine {
    /// Scheduling policy.
    pub policy: Policy,
    /// Simulator configuration (cluster, speculator, scan period, seed).
    pub cfg: SimConfig,
}

impl Engine for CentralEngine {
    fn name(&self) -> String {
        self.policy.name().to_string()
    }

    fn run(&self, trace: &Trace) -> Box<dyn RunSummary> {
        Box::new(hopper_central::run(trace, &self.policy, &self.cfg))
    }

    fn run_stream(&self, stream: TraceStream) -> Box<dyn RunSummary> {
        Box::new(hopper_central::run_stream(stream, &self.policy, &self.cfg))
    }

    fn run_source(&self, source: ArrivalSource<'_>, retain_jobs: bool) -> Box<dyn RunSummary> {
        Box::new(hopper_central::run_source(
            source,
            &self.policy,
            &self.cfg,
            retain_jobs,
        ))
    }
}

/// The decentralized (Sparrow-style) driver as an [`Engine`].
#[derive(Debug, Clone)]
pub struct DecentralEngine {
    /// Worker/scheduler policy.
    pub policy: DecPolicy,
    /// Simulator configuration (cluster, probe ratio, refusals, seed).
    pub cfg: DecConfig,
}

impl Engine for DecentralEngine {
    fn name(&self) -> String {
        self.policy.name().to_string()
    }

    fn run(&self, trace: &Trace) -> Box<dyn RunSummary> {
        Box::new(hopper_decentral::run(trace, self.policy, &self.cfg))
    }

    fn run_stream(&self, stream: TraceStream) -> Box<dyn RunSummary> {
        Box::new(hopper_decentral::run_stream(stream, self.policy, &self.cfg))
    }

    fn run_source(&self, source: ArrivalSource<'_>, retain_jobs: bool) -> Box<dyn RunSummary> {
        Box::new(hopper_decentral::run_source(
            source,
            self.policy,
            &self.cfg,
            retain_jobs,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopper_workload::{TraceGenerator, WorkloadProfile};

    fn tiny_trace(seed: u64, slots: usize) -> Trace {
        let profile = WorkloadProfile::facebook().interactive();
        TraceGenerator::new(profile, 10, seed).generate_with_utilization(slots, 0.6)
    }

    #[test]
    fn both_engines_run_behind_the_trait() {
        let mut ccfg = SimConfig::default();
        ccfg.cluster.machines = 10;
        ccfg.cluster.slots_per_machine = 4;
        let central = CentralEngine {
            policy: Policy::Srpt,
            cfg: ccfg,
        };
        let dcfg = DecConfig {
            cluster: hopper_cluster::ClusterConfig {
                machines: 20,
                slots_per_machine: 2,
                handoff_ms: 0,
                ..Default::default()
            },
            ..Default::default()
        };
        let decentral = DecentralEngine {
            policy: DecPolicy::Sparrow,
            cfg: dcfg,
        };

        let engines: Vec<Box<dyn Engine>> = vec![Box::new(central), Box::new(decentral)];
        for e in &engines {
            let trace = tiny_trace(5, 40);
            let out = e.run(&trace);
            assert_eq!(out.jobs().len(), trace.len(), "{}", e.name());
            assert!(out.mean_duration_ms() > 0.0);
            assert!(out.report().core.events > 0);
            // Telemetry is off by default: the report carries no series.
            assert!(out.report().telemetry.is_none());
            // Percentiles bracket the mean's order of magnitude.
            assert!(out.percentile_duration_ms(0.0) <= out.percentile_duration_ms(1.0));
        }
    }

    #[test]
    fn summary_report_matches_driver_stats() {
        let trace = tiny_trace(9, 40);
        let mut cfg = SimConfig::default();
        cfg.cluster.machines = 10;
        cfg.cluster.slots_per_machine = 4;
        let raw = hopper_central::run(&trace, &Policy::Srpt, &cfg);
        let core = &RunSummary::report(&raw).core;
        assert_eq!(core.events, raw.stats.events);
        assert_eq!(core.spec_launched, raw.stats.spec_launched);
        assert_eq!(core.makespan, raw.stats.makespan);
        assert_eq!(core.messages, 0, "central driver has no network");
        assert_eq!(raw.report.digest.count() as usize, trace.len());
    }
}
