//! Experiment layer for the Hopper reproduction.
//!
//! The paper's evaluation is a grid of sweeps — policy × workload ×
//! utilization × probe-ratio × seeds. This crate makes "one scheduler
//! run" a first-class value so the grid is assembled declaratively
//! instead of hand-wired per figure:
//!
//! - [`Engine`] — one trait over both drivers: anything that can run a
//!   [`Trace`](hopper_workload::Trace) and yield a [`RunSummary`].
//!   [`CentralEngine`] and [`DecentralEngine`] wrap the existing
//!   `hopper-central` / `hopper-decentral` entry points without touching
//!   their concrete `RunStats` / `DecStats` types.
//! - [`ExperimentSpec`] — a serializable description of one experiment
//!   cell: workload source, cluster shape, engine + policy, utilization,
//!   seed list. Round-trips through a `key=value` text form whose keys
//!   map 1:1 onto `hopper` CLI flags, so specs can live in files.
//! - [`sweep()`] — fans a seed × axis grid out over scoped worker threads
//!   and collects a [`SweepTable`] in grid order. Each trial owns its
//!   seed-derived RNGs, so the parallel result is bit-identical to a
//!   serial fold ([`sweep_serial`] exists to pin that in tests).
//! - [`find_frontier`] — bisects a spec's maximum sustainable
//!   utilization (its *stability frontier*) using a streaming
//!   unbounded-queue detector; [`frontier_grid`] fans cells out over
//!   threads with deterministic results.

pub mod engine;
pub mod spec;
pub mod stability;
pub mod sweep;

pub use engine::{CentralEngine, DecentralEngine, Engine, RunSummary};
pub use spec::{EngineKind, ExperimentSpec, SpecError};
pub use stability::{
    find_frontier, frontier_csv, frontier_grid, probe, saturated, FrontierConfig, FrontierResult,
};
pub use sweep::{
    clamp_threads, default_threads, mean_jct, run_seeds, sweep, sweep_serial, sweep_with_threads,
    SweepAxis, SweepTable, Trial,
};
