//! [`ExperimentSpec`]: one experiment cell as a serializable value.
//!
//! A spec names everything a trial needs — workload source, cluster
//! shape, engine + policy, utilization, seed list — and round-trips
//! through a plain `key=value` text form (one pair per line, `#`
//! comments). The keys map 1:1 onto `hopper` CLI flags, so a spec file
//! and a command line describe the same thing; [`ExperimentSpec::set`]
//! is the single dispatch both go through, and the sweep axis reuses it
//! to vary one key across a grid.
//!
//! Round-trip contract (pinned by tests): `parse(render(parse(text)))`
//! equals `parse(text)`, and unknown keys are rejected with an error
//! naming the key, the line, and the known-key list.

use hopper_central::{HopperConfig, Policy, SimConfig};
use hopper_cluster::{ClusterConfig, DynamicsConfig, HeteroProfile};
use hopper_core::AllocConfig;
use hopper_decentral::{DecConfig, DecPolicy, FaultConfig};
use hopper_sim::SimTime;
use hopper_spec::{SpecConfig, Speculator};
use hopper_workload::{
    parse_replay_csv, ArrivalSource, RateProfile, Trace, TraceGenerator, TraceStream,
    WorkloadProfile,
};
use std::sync::Arc;

use crate::engine::{CentralEngine, DecentralEngine, Engine, RunSummary};

/// Which simulator family runs the trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// `hopper-central`: one global scheduler.
    Central,
    /// `hopper-decentral`: autonomous schedulers + probes.
    Decentral,
}

impl EngineKind {
    /// The `engine=` key spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            EngineKind::Central => "central",
            EngineKind::Decentral => "decentral",
        }
    }
}

/// Error from parsing, validating, or building an experiment spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "experiment spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

fn err(msg: impl Into<String>) -> SpecError {
    SpecError(msg.into())
}

/// Canonical key order — `render` emits exactly these, `KNOWN_KEYS`
/// powers the unknown-key diagnostic.
const KNOWN_KEYS: &[&str] = &[
    "engine",
    "policy",
    "workload",
    "interactive",
    "single_phase",
    "fixed_dag_len",
    "fixed_beta",
    "fixed_tasks",
    "learn_beta",
    "realloc_drift",
    "jobs",
    "max_jobs",
    "stream",
    "rate_profile",
    "rate_period_ms",
    "burst_rate",
    "burst_mult",
    "burst_len_ms",
    "replay",
    "machines",
    "slots",
    "handoff_ms",
    "util",
    "eps",
    "scan_ms",
    "spec_min_elapsed_ms",
    "probe_ratio",
    "refusals",
    "schedulers",
    "hetero",
    "slow_frac",
    "slow_factor",
    "hetero_sigma",
    "slowdown_rate",
    "fail_rate",
    "mttr_ms",
    "msg_loss",
    "msg_jitter_ms",
    "msg_dup",
    "sched_fail_rate",
    "sched_mttr_ms",
    "rpc_timeout_ms",
    "rpc_retries",
    "shards",
    "telemetry_window_ms",
    "seeds",
];

/// A complete description of one experiment cell.
///
/// Every field maps 1:1 onto a `key=value` pair (and a CLI flag). The
/// workload source is profile-generated; to run an explicit in-memory
/// trace, build the [`Engine`] via [`ExperimentSpec::engine`] and call
/// [`Engine::run`] on it directly.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Simulator family (`engine=central|decentral`).
    pub engine: EngineKind,
    /// Policy name within the engine: `fifo|fair|srpt|budgeted|hopper`
    /// (central) or `sparrow|sparrow-srpt|hopper` (decentral).
    pub policy: String,
    /// Workload profile (`facebook|bing`).
    pub workload: String,
    /// Spark-style interactive variant (sub-second tasks).
    pub interactive: bool,
    /// Force single-phase jobs.
    pub single_phase: bool,
    /// Force every DAG to exactly this many phases.
    pub fixed_dag_len: Option<usize>,
    /// Pin every job's Pareto tail index β.
    pub fixed_beta: Option<f64>,
    /// Pin every job's input-phase task count, removing the heavy-tailed
    /// job-size dimension (`fixed_tasks=none|N`). With `single_phase`
    /// and `fixed_beta` this is the analytic stability-frontier
    /// reference workload (saturation at `util=1`).
    pub fixed_tasks: Option<usize>,
    /// Centralized Hopper: learn β online (vs per-job trace β).
    pub learn_beta: bool,
    /// Centralized Hopper: bounded-staleness reallocation threshold
    /// (`realloc_drift=0` — the default — is the exact eager schedule;
    /// a positive value keeps the previous allocation while the total
    /// virtual size stays within that relative drift). Sweepable.
    pub realloc_drift: f64,
    /// Jobs per trial.
    pub jobs: usize,
    /// Cap on jobs actually delivered (`max_jobs=none|N`): the arrival
    /// window is calibrated over all `jobs`, but the run stops consuming
    /// the stream after `N` — the knob for cutting a long calibrated
    /// stream short. `None` delivers everything.
    pub max_jobs: Option<usize>,
    /// Streaming pipeline (`stream=on|off`, default off): arrivals are
    /// generated lazily and injected as simulation time advances,
    /// completed jobs retire their state, and per-job results fold into
    /// a constant-memory digest — live job state is O(active jobs) (plus
    /// fixed-width per-id bookkeeping, tens of bytes per job).
    /// Simulation decisions (and `CoreStats`/means) are identical to a
    /// materialized run of the same seed; percentiles come from the
    /// digest's ε-approximate sketch instead of an exact sort.
    pub stream: bool,
    /// Arrival-rate shape (`rate_profile=constant|diurnal`, default
    /// `constant`). `constant` is the stationary Poisson process and is
    /// byte-identical to builds that predate the knob; `diurnal`
    /// modulates arrivals along a piecewise-linear day/night curve whose
    /// time-average is pinned to 1, so `util` stays the honest
    /// time-average target. Sweepable.
    pub rate_profile: String,
    /// Diurnal period in ms (`rate_period_ms=0` — the default — derives
    /// one from the calibrated arrival window so each run sees a few
    /// cycles).
    pub rate_period_ms: u64,
    /// Burst injections per hour layered on the base profile
    /// (`burst_rate=0` — the default — disables bursts entirely).
    /// Burst *placement* depends only on the seed, so sweeping
    /// `burst_mult` moves how hard bursts hit, never when. Sweepable.
    pub burst_rate: f64,
    /// Rate multiplier inside a burst window (≥ 1). Off-burst rate is
    /// normalized down so the time-average stays 1. Sweepable.
    pub burst_mult: f64,
    /// Burst window length in ms. `burst_rate × burst_len_ms` must stay
    /// below one hour (bursts must not tile the timeline).
    pub burst_len_ms: u64,
    /// External trace replay (`replay=none|<path.csv>`): ingest jobs
    /// from a CSV (`arrival_ms,tasks,work_ms[,dag_len[,beta]]`) instead
    /// of synthesizing them. Replay fixes the arrival process, so it
    /// requires `rate_profile=constant`, no bursts, and no `max_jobs`;
    /// `jobs`/`util`/`workload` shaping keys are ignored. (A file
    /// literally named `none` cannot be specified — rename it.)
    pub replay: Option<String>,
    /// Cluster machines.
    pub machines: usize,
    /// Slots per machine.
    pub slots: usize,
    /// Slot hand-off cost in ms (0 = long-lived executors).
    pub handoff_ms: u64,
    /// Target average cluster utilization the trace generator hits.
    pub util: f64,
    /// Fairness ε.
    pub eps: f64,
    /// Straggler-scan period override (ms); engine default when `None`.
    pub scan_ms: Option<u64>,
    /// LATE warm-up override (ms); engine default when `None`.
    pub spec_min_elapsed_ms: Option<u64>,
    /// Decentralized probe ratio (reservations per task).
    pub probe_ratio: f64,
    /// Decentralized refusal threshold.
    pub refusals: usize,
    /// Number of autonomous schedulers (decentralized).
    pub schedulers: usize,
    /// Machine-speed heterogeneity profile
    /// (`hetero=off|uniform|bimodal|lognormal`). `off` — the default —
    /// leaves every run bit-identical to a dynamics-free build.
    pub hetero: String,
    /// Bimodal profile: fraction of slow machines, in `[0, 1]`.
    pub slow_frac: f64,
    /// Slow-machine speed: the bimodal slow speed, and the floor of the
    /// uniform band (`uniform` draws speeds in `[slow_factor, 1]`).
    pub slow_factor: f64,
    /// Lognormal profile: σ of the underlying normal.
    pub hetero_sigma: f64,
    /// Transient machine slowdowns per machine per hour (0 disables).
    /// Degradation factor and interval use the fixed
    /// [`DynamicsConfig::off`] bands (0.3–0.7× for 5–60 s).
    pub slowdown_rate: f64,
    /// Machine failures per machine per hour (0 disables). A failure
    /// kills every running copy on the machine for re-dispatch.
    pub fail_rate: f64,
    /// Mean time to recover a failed machine, ms (recovery times are
    /// uniform in `[0.5, 1.5] × mttr_ms`).
    pub mttr_ms: u64,
    /// Decentralized message-fault plane: per-RPC loss probability in
    /// `[0, 1]` (0 disables). Sweepable.
    pub msg_loss: f64,
    /// Max extra per-message delivery jitter, ms (uniform per-message
    /// draw, so deliveries reorder; 0 disables).
    pub msg_jitter_ms: u64,
    /// Per-RPC duplication probability in `[0, 1]` (0 disables).
    pub msg_dup: f64,
    /// Scheduler crashes per scheduler per hour (0 disables the chains).
    pub sched_fail_rate: f64,
    /// Mean scheduler recovery time, ms (uniform in
    /// `[0.5, 1.5] × sched_mttr_ms`).
    pub sched_mttr_ms: u64,
    /// RPC hardening: per-job watchdog / per-response lease horizon, ms.
    /// Must be positive. Hardening knobs alone never change a run.
    pub rpc_timeout_ms: u64,
    /// RPC hardening: watchdog retries before the capped exponential
    /// backoff wraps to a fresh probe round. Must be at least 1.
    pub rpc_retries: u32,
    /// Execution shards for the decentralized conservative-PDES engine
    /// (`shards=0` — the default — is the serial driver; any `N >= 1`
    /// runs the sharded engine, bit-identical for every such `N`).
    /// Decentralized-only: the central engine rejects `shards > 0`.
    pub shards: usize,
    /// Telemetry window width in ms (`telemetry_window_ms=0` — the
    /// default — disables collection entirely and is bit-identical to a
    /// telemetry-free build). Any positive width attaches a windowed
    /// time-series to the run's report without changing simulation
    /// results (observer invariant). Not sweepable — it is an
    /// observation knob, not an experiment variable.
    pub telemetry_window_ms: u64,
    /// Seed list — one trial per seed.
    pub seeds: Vec<u64>,
}

impl ExperimentSpec {
    /// Centralized defaults (the `hopper central` CLI defaults).
    pub fn central() -> Self {
        ExperimentSpec {
            engine: EngineKind::Central,
            policy: "hopper".into(),
            workload: "facebook".into(),
            interactive: false,
            single_phase: false,
            fixed_dag_len: None,
            fixed_beta: None,
            fixed_tasks: None,
            learn_beta: true,
            realloc_drift: 0.0,
            jobs: 100,
            max_jobs: None,
            stream: false,
            rate_profile: "constant".into(),
            rate_period_ms: 0,
            burst_rate: 0.0,
            burst_mult: 4.0,
            burst_len_ms: 60_000,
            replay: None,
            machines: 50,
            slots: 4,
            handoff_ms: ClusterConfig::default().handoff_ms,
            util: 0.7,
            eps: 0.1,
            scan_ms: None,
            spec_min_elapsed_ms: None,
            probe_ratio: 4.0,
            refusals: 2,
            schedulers: 1,
            hetero: "off".into(),
            slow_frac: 0.2,
            slow_factor: 0.4,
            hetero_sigma: 0.25,
            slowdown_rate: 0.0,
            fail_rate: 0.0,
            mttr_ms: 30_000,
            msg_loss: 0.0,
            msg_jitter_ms: 0,
            msg_dup: 0.0,
            sched_fail_rate: 0.0,
            sched_mttr_ms: 10_000,
            rpc_timeout_ms: 2_000,
            rpc_retries: 3,
            shards: 0,
            telemetry_window_ms: 0,
            seeds: vec![1],
        }
    }

    /// Decentralized defaults (the paper's deployment shape: long-lived
    /// executors, 10 schedulers, probe ratio 4, refusal threshold 2).
    pub fn decentral() -> Self {
        ExperimentSpec {
            engine: EngineKind::Decentral,
            policy: "hopper".into(),
            machines: 300,
            slots: 2,
            handoff_ms: 0,
            schedulers: 10,
            ..ExperimentSpec::central()
        }
    }

    /// Set one field by its `key=value` spelling. The single dispatch
    /// shared by the text parser, the CLI flag mapping, and the sweep
    /// axis.
    ///
    /// Note that `set("engine", ..)` flips only the engine selector —
    /// it does not re-base the other fields onto that engine's
    /// defaults. [`ExperimentSpec::parse`] handles `engine=` specially
    /// (it picks the default set before applying the other pairs), and
    /// the sweep runner rejects `engine` as an axis for the same
    /// reason.
    pub fn set(&mut self, key: &str, value: &str) -> Result<(), SpecError> {
        match key {
            "engine" => {
                self.engine = match value {
                    "central" => EngineKind::Central,
                    "decentral" => EngineKind::Decentral,
                    other => {
                        return Err(err(format!(
                            "engine must be central|decentral, got `{other}`"
                        )))
                    }
                }
            }
            "policy" => self.policy = value.to_string(),
            "workload" => self.workload = value.to_string(),
            "interactive" => self.interactive = parse_bool(key, value)?,
            "single_phase" => self.single_phase = parse_bool(key, value)?,
            "fixed_dag_len" => self.fixed_dag_len = parse_opt(key, value)?,
            "fixed_beta" => self.fixed_beta = parse_opt(key, value)?,
            "fixed_tasks" => self.fixed_tasks = parse_opt(key, value)?,
            "learn_beta" => self.learn_beta = parse_bool(key, value)?,
            "realloc_drift" => self.realloc_drift = parse_num(key, value)?,
            "jobs" => self.jobs = parse_num(key, value)?,
            "max_jobs" => self.max_jobs = parse_opt(key, value)?,
            "stream" => {
                self.stream = match value {
                    "on" => true,
                    "off" => false,
                    other => return Err(err(format!("stream must be on|off, got `{other}`"))),
                }
            }
            "rate_profile" => self.rate_profile = value.to_string(),
            "rate_period_ms" => self.rate_period_ms = parse_num(key, value)?,
            "burst_rate" => self.burst_rate = parse_num(key, value)?,
            "burst_mult" => self.burst_mult = parse_num(key, value)?,
            "burst_len_ms" => self.burst_len_ms = parse_num(key, value)?,
            "replay" => self.replay = parse_opt(key, value)?,
            "machines" => self.machines = parse_num(key, value)?,
            "slots" => self.slots = parse_num(key, value)?,
            "handoff_ms" => self.handoff_ms = parse_num(key, value)?,
            "util" => self.util = parse_num(key, value)?,
            "eps" => self.eps = parse_num(key, value)?,
            "scan_ms" => self.scan_ms = parse_opt(key, value)?,
            "spec_min_elapsed_ms" => self.spec_min_elapsed_ms = parse_opt(key, value)?,
            "probe_ratio" => self.probe_ratio = parse_num(key, value)?,
            "refusals" => self.refusals = parse_num(key, value)?,
            "schedulers" => self.schedulers = parse_num(key, value)?,
            "hetero" => self.hetero = value.to_string(),
            "slow_frac" => self.slow_frac = parse_num(key, value)?,
            "slow_factor" => self.slow_factor = parse_num(key, value)?,
            "hetero_sigma" => self.hetero_sigma = parse_num(key, value)?,
            "slowdown_rate" => self.slowdown_rate = parse_num(key, value)?,
            "fail_rate" => self.fail_rate = parse_num(key, value)?,
            "mttr_ms" => self.mttr_ms = parse_num(key, value)?,
            "msg_loss" => self.msg_loss = parse_num(key, value)?,
            "msg_jitter_ms" => self.msg_jitter_ms = parse_num(key, value)?,
            "msg_dup" => self.msg_dup = parse_num(key, value)?,
            "sched_fail_rate" => self.sched_fail_rate = parse_num(key, value)?,
            "sched_mttr_ms" => self.sched_mttr_ms = parse_num(key, value)?,
            "rpc_timeout_ms" => self.rpc_timeout_ms = parse_num(key, value)?,
            "rpc_retries" => self.rpc_retries = parse_num(key, value)?,
            "shards" => self.shards = parse_num(key, value)?,
            "telemetry_window_ms" => self.telemetry_window_ms = parse_num(key, value)?,
            "seeds" => {
                let seeds: Result<Vec<u64>, _> = value
                    .split(',')
                    .map(|s| parse_num::<u64>("seeds", s.trim()))
                    .collect();
                self.seeds = seeds?;
            }
            unknown => {
                return Err(err(format!(
                    "unknown key `{unknown}`; known keys: {}",
                    KNOWN_KEYS.join(", ")
                )))
            }
        }
        Ok(())
    }

    /// Parse the `key=value` text form (one pair per line; blank lines
    /// and `#` comments ignored). The `engine` key — wherever it appears
    /// — picks the defaults the remaining pairs refine, so a spec file
    /// only needs to name what deviates.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        let mut pairs: Vec<(usize, &str, &str)> = Vec::new();
        let mut engine = EngineKind::Central;
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(err(format!(
                    "line {}: expected key=value, got `{line}`",
                    i + 1
                )));
            };
            let (key, value) = (key.trim(), value.trim());
            if key == "engine" {
                // Applied first: it selects the default set.
                let mut probe = ExperimentSpec::central();
                probe
                    .set("engine", value)
                    .map_err(|e| err(format!("line {}: {}", i + 1, e.0)))?;
                engine = probe.engine;
            } else {
                pairs.push((i + 1, key, value));
            }
        }
        let mut spec = match engine {
            EngineKind::Central => ExperimentSpec::central(),
            EngineKind::Decentral => ExperimentSpec::decentral(),
        };
        for (line, key, value) in pairs {
            spec.set(key, value)
                .map_err(|e| err(format!("line {line}: {}", e.0)))?;
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Render the canonical text form: every key, fixed order, one per
    /// line. `parse(render(spec))` reproduces `spec` exactly.
    pub fn render(&self) -> String {
        let opt_u64 = |v: &Option<u64>| v.map_or("none".to_string(), |x| x.to_string());
        let mut out = String::new();
        for key in KNOWN_KEYS {
            let value = match *key {
                "engine" => self.engine.as_str().to_string(),
                "policy" => self.policy.clone(),
                "workload" => self.workload.clone(),
                "interactive" => self.interactive.to_string(),
                "single_phase" => self.single_phase.to_string(),
                "fixed_dag_len" => self
                    .fixed_dag_len
                    .map_or("none".to_string(), |x| x.to_string()),
                "fixed_beta" => self
                    .fixed_beta
                    .map_or("none".to_string(), |x| x.to_string()),
                "fixed_tasks" => self
                    .fixed_tasks
                    .map_or("none".to_string(), |x| x.to_string()),
                "learn_beta" => self.learn_beta.to_string(),
                "realloc_drift" => self.realloc_drift.to_string(),
                "jobs" => self.jobs.to_string(),
                "max_jobs" => self.max_jobs.map_or("none".to_string(), |x| x.to_string()),
                "stream" => if self.stream { "on" } else { "off" }.to_string(),
                "rate_profile" => self.rate_profile.clone(),
                "rate_period_ms" => self.rate_period_ms.to_string(),
                "burst_rate" => self.burst_rate.to_string(),
                "burst_mult" => self.burst_mult.to_string(),
                "burst_len_ms" => self.burst_len_ms.to_string(),
                "replay" => self.replay.clone().unwrap_or_else(|| "none".to_string()),
                "machines" => self.machines.to_string(),
                "slots" => self.slots.to_string(),
                "handoff_ms" => self.handoff_ms.to_string(),
                "util" => self.util.to_string(),
                "eps" => self.eps.to_string(),
                "scan_ms" => opt_u64(&self.scan_ms),
                "spec_min_elapsed_ms" => opt_u64(&self.spec_min_elapsed_ms),
                "probe_ratio" => self.probe_ratio.to_string(),
                "refusals" => self.refusals.to_string(),
                "schedulers" => self.schedulers.to_string(),
                "hetero" => self.hetero.clone(),
                "slow_frac" => self.slow_frac.to_string(),
                "slow_factor" => self.slow_factor.to_string(),
                "hetero_sigma" => self.hetero_sigma.to_string(),
                "slowdown_rate" => self.slowdown_rate.to_string(),
                "fail_rate" => self.fail_rate.to_string(),
                "mttr_ms" => self.mttr_ms.to_string(),
                "msg_loss" => self.msg_loss.to_string(),
                "msg_jitter_ms" => self.msg_jitter_ms.to_string(),
                "msg_dup" => self.msg_dup.to_string(),
                "sched_fail_rate" => self.sched_fail_rate.to_string(),
                "sched_mttr_ms" => self.sched_mttr_ms.to_string(),
                "rpc_timeout_ms" => self.rpc_timeout_ms.to_string(),
                "rpc_retries" => self.rpc_retries.to_string(),
                "shards" => self.shards.to_string(),
                "telemetry_window_ms" => self.telemetry_window_ms.to_string(),
                "seeds" => self
                    .seeds
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>()
                    .join(","),
                _ => unreachable!("KNOWN_KEYS covered"),
            };
            out.push_str(key);
            out.push('=');
            out.push_str(&value);
            out.push('\n');
        }
        out
    }

    /// Check cross-field consistency (policy known to the engine,
    /// workload known, non-degenerate grid).
    pub fn validate(&self) -> Result<(), SpecError> {
        match self.engine {
            EngineKind::Central => {
                if !["fifo", "fair", "srpt", "budgeted", "hopper"].contains(&self.policy.as_str()) {
                    return Err(err(format!(
                        "central policy must be fifo|fair|srpt|budgeted|hopper, got `{}`",
                        self.policy
                    )));
                }
            }
            EngineKind::Decentral => {
                if !["sparrow", "sparrow-srpt", "hopper"].contains(&self.policy.as_str()) {
                    return Err(err(format!(
                        "decentral policy must be sparrow|sparrow-srpt|hopper, got `{}`",
                        self.policy
                    )));
                }
            }
        }
        if !["facebook", "bing"].contains(&self.workload.as_str()) {
            return Err(err(format!(
                "workload must be facebook|bing, got `{}`",
                self.workload
            )));
        }
        if self.single_phase && self.fixed_dag_len.is_some() {
            return Err(err("single_phase and fixed_dag_len are mutually exclusive"));
        }
        if self.jobs == 0 {
            return Err(err("jobs must be positive"));
        }
        if !(self.realloc_drift >= 0.0 && self.realloc_drift.is_finite()) {
            return Err(err(format!(
                "realloc_drift must be finite and >= 0, got {}",
                self.realloc_drift
            )));
        }
        if self.max_jobs == Some(0) {
            return Err(err("max_jobs must be positive (or none)"));
        }
        if self.fixed_tasks == Some(0) {
            return Err(err("fixed_tasks must be positive (or none)"));
        }
        if self.machines == 0 || self.slots == 0 {
            return Err(err("machines and slots must be positive"));
        }
        if !(self.util > 0.0 && self.util <= 1.5) {
            return Err(err(format!("util must be in (0, 1.5], got {}", self.util)));
        }
        if !["off", "uniform", "bimodal", "lognormal"].contains(&self.hetero.as_str()) {
            return Err(err(format!(
                "hetero must be off|uniform|bimodal|lognormal, got `{}`",
                self.hetero
            )));
        }
        if !(0.0..=1.0).contains(&self.slow_frac) {
            return Err(err(format!(
                "slow_frac must be in [0, 1], got {}",
                self.slow_frac
            )));
        }
        if !(self.slow_factor > 0.0 && self.slow_factor <= 1.0) {
            return Err(err(format!(
                "slow_factor must be in (0, 1], got {}",
                self.slow_factor
            )));
        }
        if !(self.hetero_sigma >= 0.0 && self.hetero_sigma.is_finite()) {
            return Err(err(format!(
                "hetero_sigma must be finite and >= 0, got {}",
                self.hetero_sigma
            )));
        }
        for (key, rate) in [
            ("slowdown_rate", self.slowdown_rate),
            ("fail_rate", self.fail_rate),
        ] {
            if !(rate >= 0.0 && rate.is_finite()) {
                return Err(err(format!("{key} must be finite and >= 0, got {rate}")));
            }
        }
        if self.fail_rate > 0.0 && self.mttr_ms == 0 {
            return Err(err("mttr_ms must be positive when fail_rate > 0"));
        }
        for (key, p) in [("msg_loss", self.msg_loss), ("msg_dup", self.msg_dup)] {
            if !(p.is_finite() && (0.0..=1.0).contains(&p)) {
                return Err(err(format!("{key} must be in [0, 1], got {p}")));
            }
        }
        if !(self.sched_fail_rate >= 0.0 && self.sched_fail_rate.is_finite()) {
            return Err(err(format!(
                "sched_fail_rate must be finite and >= 0, got {}",
                self.sched_fail_rate
            )));
        }
        if self.sched_fail_rate > 0.0 && self.sched_mttr_ms == 0 {
            return Err(err(
                "sched_mttr_ms must be positive when sched_fail_rate > 0",
            ));
        }
        if self.rpc_timeout_ms == 0 {
            return Err(err("rpc_timeout_ms must be positive"));
        }
        if self.rpc_retries == 0 {
            return Err(err("rpc_retries must be at least 1"));
        }
        if self.engine == EngineKind::Central && self.faults().enabled() {
            return Err(err(
                "message faults (msg_loss/msg_jitter_ms/msg_dup/sched_fail_rate) \
                 require engine=decentral — the central engine has no RPC plane",
            ));
        }
        if self.engine == EngineKind::Central && self.shards > 0 {
            return Err(err(
                "shards requires engine=decentral — the central engine has no sharded driver",
            ));
        }
        if !["constant", "diurnal"].contains(&self.rate_profile.as_str()) {
            return Err(err(format!(
                "rate_profile must be constant|diurnal, got `{}`",
                self.rate_profile
            )));
        }
        if !(self.burst_rate >= 0.0 && self.burst_rate.is_finite()) {
            return Err(err(format!(
                "burst_rate must be finite and >= 0, got {}",
                self.burst_rate
            )));
        }
        // The profile's own invariants (burst_mult >= 1, windows must not
        // tile the hour, ...) live with the profile.
        self.rate().check().map_err(err)?;
        if self.replay.is_some() {
            if self.rate_profile != "constant" || self.burst_rate > 0.0 {
                return Err(err("replay fixes the arrival process — it requires \
                     rate_profile=constant and burst_rate=0"));
            }
            if self.max_jobs.is_some() {
                return Err(err("replay and max_jobs are mutually exclusive"));
            }
        }
        if !(self.probe_ratio > 0.0 && self.probe_ratio.is_finite()) {
            return Err(err(format!(
                "probe_ratio must be finite and > 0, got {}",
                self.probe_ratio
            )));
        }
        if !(self.eps.is_finite() && (0.0..=1.0).contains(&self.eps)) {
            return Err(err(format!("eps must be in [0, 1], got {}", self.eps)));
        }
        if self.seeds.is_empty() {
            return Err(err("seeds must name at least one seed"));
        }
        Ok(())
    }

    /// The cluster-dynamics plane this spec describes.
    /// [`DynamicsConfig::off`] (bit-identical runs) unless a dynamics key
    /// was set.
    pub fn dynamics(&self) -> DynamicsConfig {
        let hetero = match self.hetero.as_str() {
            "uniform" => HeteroProfile::Uniform {
                lo: self.slow_factor,
                hi: 1.0,
            },
            "bimodal" => HeteroProfile::Bimodal {
                slow_frac: self.slow_frac,
                slow_factor: self.slow_factor,
            },
            "lognormal" => HeteroProfile::LogNormal {
                sigma: self.hetero_sigma,
            },
            _ => HeteroProfile::Off,
        };
        DynamicsConfig {
            hetero,
            slowdown_rate_per_hour: self.slowdown_rate,
            fail_rate_per_hour: self.fail_rate,
            recovery_ms: (self.mttr_ms / 2, self.mttr_ms + self.mttr_ms / 2),
            ..DynamicsConfig::off()
        }
    }

    /// The message-fault plane this spec describes (decentralized only).
    /// [`FaultConfig::off`] — bit-identical runs — unless a fault key was
    /// set; hardening keys (`rpc_timeout_ms`, `rpc_retries`,
    /// `sched_mttr_ms`) alone do not enable it.
    pub fn faults(&self) -> FaultConfig {
        FaultConfig {
            msg_loss: self.msg_loss,
            msg_jitter_ms: self.msg_jitter_ms,
            msg_dup: self.msg_dup,
            sched_fail_rate_per_hour: self.sched_fail_rate,
            sched_mttr_ms: self.sched_mttr_ms,
            rpc_timeout_ms: self.rpc_timeout_ms,
            rpc_retries: self.rpc_retries,
        }
    }

    /// Total cluster slots (trace sizing input).
    pub fn total_slots(&self) -> usize {
        self.machines * self.slots
    }

    /// The arrival-rate profile this spec describes.
    /// [`RateProfile::Constant`] — bit-identical runs — unless a
    /// non-stationary key was set.
    pub fn rate(&self) -> RateProfile {
        let base = match self.rate_profile.as_str() {
            "diurnal" => RateProfile::diurnal(self.rate_period_ms),
            _ => RateProfile::constant(),
        };
        if self.burst_rate > 0.0 {
            base.with_bursts(self.burst_rate, self.burst_mult, self.burst_len_ms)
        } else {
            base
        }
    }

    /// Synthesize the trial's trace for `seed`. Identical (workload,
    /// jobs, cluster, util, seed) ⇒ identical trace, which is what lets
    /// reduction comparisons across policies share a trace by sharing a
    /// seed. Honors `max_jobs` (the materialized trace is then the
    /// stream's delivered prefix, so `stream=on` and `stream=off` trials
    /// always simulate the same jobs).
    pub fn trace(&self, seed: u64) -> Trace {
        Trace::new(self.stream(seed).collect())
    }

    /// The trial's lazy arrival stream for `seed` — the same jobs
    /// [`ExperimentSpec::trace`] materializes, yielded one at a time.
    pub fn stream(&self, seed: u64) -> TraceStream {
        let mut profile = match self.workload.as_str() {
            "bing" => WorkloadProfile::bing(),
            _ => WorkloadProfile::facebook(),
        };
        if self.interactive {
            profile = profile.interactive();
        }
        if self.single_phase {
            profile = profile.single_phase();
        }
        if let Some(len) = self.fixed_dag_len {
            profile = profile.fixed_dag_len(len);
        }
        if let Some(beta) = self.fixed_beta {
            profile = profile.fixed_beta(beta);
        }
        if let Some(tasks) = self.fixed_tasks {
            profile = profile.fixed_job_size(tasks);
        }
        let stream = TraceGenerator::new(profile, self.jobs, seed).stream_with_profile(
            self.total_slots(),
            self.util,
            &self.rate(),
        );
        match self.max_jobs {
            Some(m) => stream.truncated(m),
            None => stream,
        }
    }

    fn cluster(&self) -> ClusterConfig {
        ClusterConfig {
            machines: self.machines,
            slots_per_machine: self.slots,
            handoff_ms: self.handoff_ms,
            ..Default::default()
        }
    }

    /// Build the configured engine for one trial seed.
    pub fn engine(&self, seed: u64) -> Result<Box<dyn Engine>, SpecError> {
        self.validate()?;
        match self.engine {
            EngineKind::Central => {
                let policy = match self.policy.as_str() {
                    "fifo" => Policy::Fifo,
                    "fair" => Policy::Fair,
                    "srpt" => Policy::Srpt,
                    "budgeted" => Policy::BudgetedSrpt {
                        budget_fraction: 0.2,
                    },
                    _ => Policy::Hopper(HopperConfig {
                        alloc: AllocConfig {
                            fairness_eps: self.eps,
                            ..Default::default()
                        },
                        learn_beta: self.learn_beta,
                        realloc_drift: self.realloc_drift,
                        ..Default::default()
                    }),
                };
                let mut cfg = SimConfig {
                    cluster: self.cluster(),
                    dynamics: self.dynamics(),
                    seed,
                    telemetry_window_ms: self.telemetry_window_ms,
                    ..Default::default()
                };
                if let Some(ms) = self.scan_ms {
                    cfg.scan_interval = SimTime::from_millis(ms);
                }
                if let Some(ms) = self.spec_min_elapsed_ms {
                    cfg.speculator = Speculator::Late(SpecConfig {
                        min_elapsed: SimTime::from_millis(ms),
                        ..Default::default()
                    });
                }
                Ok(Box::new(CentralEngine { policy, cfg }))
            }
            EngineKind::Decentral => {
                let policy = match self.policy.as_str() {
                    "sparrow" => DecPolicy::Sparrow,
                    "sparrow-srpt" => DecPolicy::SparrowSrpt,
                    _ => DecPolicy::Hopper,
                };
                let mut cfg = DecConfig {
                    cluster: self.cluster(),
                    num_schedulers: self.schedulers,
                    probe_ratio: self.probe_ratio,
                    refusal_threshold: self.refusals,
                    fairness_eps: Some(self.eps),
                    dynamics: self.dynamics(),
                    faults: self.faults(),
                    shards: self.shards,
                    seed,
                    telemetry_window_ms: self.telemetry_window_ms,
                    ..Default::default()
                };
                if let Some(ms) = self.scan_ms {
                    cfg.scan_interval = SimTime::from_millis(ms);
                }
                if let Some(ms) = self.spec_min_elapsed_ms {
                    cfg.speculator = Speculator::Late(SpecConfig {
                        min_elapsed: SimTime::from_millis(ms),
                        ..Default::default()
                    });
                }
                Ok(Box::new(DecentralEngine { policy, cfg }))
            }
        }
    }

    /// Run one trial: synthesize the seed's workload (or ingest the
    /// `replay=` CSV) and simulate it — through the streaming pipeline
    /// when `stream=on` (lazy arrivals, retired jobs, digest-only
    /// results), materialized otherwise.
    pub fn run_one(&self, seed: u64) -> Result<Box<dyn RunSummary>, SpecError> {
        let engine = self.engine(seed)?;
        if let Some(path) = &self.replay {
            let text =
                std::fs::read_to_string(path).map_err(|e| err(format!("replay `{path}`: {e}")))?;
            let trace =
                parse_replay_csv(&text).map_err(|e| err(format!("replay `{path}`: {e}")))?;
            let source = ArrivalSource::from_shared(Arc::new(trace));
            return Ok(engine.run_source(source, !self.stream));
        }
        if self.stream {
            Ok(engine.run_stream(self.stream(seed)))
        } else {
            Ok(engine.run(&self.trace(seed)))
        }
    }
}

fn parse_bool(key: &str, value: &str) -> Result<bool, SpecError> {
    match value {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(err(format!("{key} must be true|false, got `{other}`"))),
    }
}

fn parse_num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, SpecError> {
    value
        .parse()
        .map_err(|_| err(format!("could not parse {key}=`{value}`")))
}

fn parse_opt<T: std::str::FromStr>(key: &str, value: &str) -> Result<Option<T>, SpecError> {
    if value == "none" {
        Ok(None)
    } else {
        parse_num(key, value).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        ExperimentSpec::central().validate().unwrap();
        ExperimentSpec::decentral().validate().unwrap();
    }

    #[test]
    fn parse_render_parse_is_identity() {
        let text = "\
# decentralized cell of figure 6
engine=decentral
policy=sparrow-srpt
workload=bing
interactive=true
jobs=80
util=0.8
probe_ratio=2.5
seeds=0,1,2
";
        let once = ExperimentSpec::parse(text).unwrap();
        let twice = ExperimentSpec::parse(&once.render()).unwrap();
        assert_eq!(once, twice);
        assert_eq!(once.render(), twice.render());
        // Spot-check the refined fields landed.
        assert_eq!(once.engine, EngineKind::Decentral);
        assert_eq!(once.policy, "sparrow-srpt");
        assert_eq!(once.seeds, vec![0, 1, 2]);
        // Engine-specific defaults came from the decentral base.
        assert_eq!(once.machines, 300);
        assert_eq!(once.handoff_ms, 0);
    }

    #[test]
    fn engine_key_position_does_not_matter() {
        let a = ExperimentSpec::parse("engine=decentral\nmachines=100\n").unwrap();
        let b = ExperimentSpec::parse("machines=100\nengine=decentral\n").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.slots, 2, "decentral default slots");
    }

    #[test]
    fn unknown_key_is_rejected_with_context() {
        let e = ExperimentSpec::parse("jobs=10\nprobe_ration=4\n").unwrap_err();
        assert!(e.0.contains("line 2"), "{e}");
        assert!(e.0.contains("unknown key `probe_ration`"), "{e}");
        assert!(e.0.contains("probe_ratio"), "should list known keys: {e}");
    }

    #[test]
    fn malformed_lines_and_values_are_rejected() {
        assert!(ExperimentSpec::parse("jobs 10\n").is_err());
        assert!(ExperimentSpec::parse("jobs=ten\n").is_err());
        assert!(ExperimentSpec::parse("interactive=yes\n").is_err());
        assert!(ExperimentSpec::parse("engine=federated\n").is_err());
        assert!(ExperimentSpec::parse("seeds=\n").is_err());
    }

    #[test]
    fn validation_catches_cross_field_errors() {
        let mut s = ExperimentSpec::central();
        s.policy = "sparrow".into();
        assert!(s.validate().is_err(), "sparrow is not a central policy");
        let mut s = ExperimentSpec::decentral();
        s.policy = "fifo".into();
        assert!(s.validate().is_err());
        let mut s = ExperimentSpec::central();
        s.single_phase = true;
        s.fixed_dag_len = Some(3);
        assert!(s.validate().is_err());
        let mut s = ExperimentSpec::central();
        s.seeds.clear();
        assert!(s.validate().is_err());
    }

    #[test]
    fn options_round_trip_through_none() {
        let mut s = ExperimentSpec::central();
        s.fixed_beta = Some(1.5);
        s.scan_ms = Some(200);
        let back = ExperimentSpec::parse(&s.render()).unwrap();
        assert_eq!(back.fixed_beta, Some(1.5));
        assert_eq!(back.scan_ms, Some(200));
        assert_eq!(back.spec_min_elapsed_ms, None);
        assert_eq!(s, back);
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let s = ExperimentSpec::parse("\n# comment\njobs=7 # trailing\n\n").unwrap();
        assert_eq!(s.jobs, 7);
    }

    #[test]
    fn dynamics_keys_round_trip_and_map() {
        let text = "\
engine=decentral
hetero=bimodal
slow_frac=0.3
slow_factor=0.5
slowdown_rate=2
fail_rate=0.5
mttr_ms=20000
";
        let s = ExperimentSpec::parse(text).unwrap();
        let again = ExperimentSpec::parse(&s.render()).unwrap();
        assert_eq!(s, again);
        let d = s.dynamics();
        assert!(d.enabled());
        assert_eq!(
            d.hetero,
            HeteroProfile::Bimodal {
                slow_frac: 0.3,
                slow_factor: 0.5
            }
        );
        assert_eq!(d.slowdown_rate_per_hour, 2.0);
        assert_eq!(d.fail_rate_per_hour, 0.5);
        assert_eq!(d.recovery_ms, (10_000, 30_000));
        // The default spec carries a disabled plane.
        assert!(!ExperimentSpec::central().dynamics().enabled());
    }

    #[test]
    fn dynamics_values_are_validated() {
        let mut s = ExperimentSpec::central();
        s.hetero = "zipf".into();
        assert!(s.validate().is_err());
        let mut s = ExperimentSpec::central();
        s.slow_frac = 1.5;
        assert!(s.validate().is_err());
        let mut s = ExperimentSpec::central();
        s.slow_factor = 0.0;
        assert!(s.validate().is_err());
        let mut s = ExperimentSpec::central();
        s.fail_rate = -1.0;
        assert!(s.validate().is_err());
        let mut s = ExperimentSpec::central();
        s.fail_rate = 1.0;
        s.mttr_ms = 0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn fault_keys_round_trip_and_map() {
        let text = "\
engine=decentral
msg_loss=0.05
msg_jitter_ms=5
msg_dup=0.02
sched_fail_rate=12
sched_mttr_ms=1500
rpc_timeout_ms=1000
rpc_retries=4
";
        let s = ExperimentSpec::parse(text).unwrap();
        let again = ExperimentSpec::parse(&s.render()).unwrap();
        assert_eq!(s, again);
        let f = s.faults();
        assert!(f.enabled());
        assert_eq!(f.msg_loss, 0.05);
        assert_eq!(f.msg_jitter_ms, 5);
        assert_eq!(f.msg_dup, 0.02);
        assert_eq!(f.sched_fail_rate_per_hour, 12.0);
        assert_eq!(f.sched_mttr_ms, 1_500);
        assert_eq!(f.rpc_timeout_ms, 1_000);
        assert_eq!(f.rpc_retries, 4);
        // The default spec carries a disabled plane.
        assert!(!ExperimentSpec::decentral().faults().enabled());
    }

    #[test]
    fn fault_values_are_validated() {
        // Probabilities outside [0, 1] / non-finite are rejected, and
        // the error names the key.
        for bad in ["msg_loss=1.5", "msg_loss=-0.1", "msg_loss=nan", "msg_dup=2"] {
            let e = ExperimentSpec::parse(&format!("engine=decentral\n{bad}\n")).unwrap_err();
            let key = bad.split('=').next().unwrap();
            assert!(e.0.contains(key), "error should name `{key}`: {e}");
        }
        let e = ExperimentSpec::parse("engine=decentral\nsched_fail_rate=-5\n").unwrap_err();
        assert!(e.0.contains("sched_fail_rate"), "{e}");
        // Hardening knobs have hard floors.
        let e = ExperimentSpec::parse("engine=decentral\nrpc_timeout_ms=0\n").unwrap_err();
        assert!(e.0.contains("rpc_timeout_ms"), "{e}");
        let e = ExperimentSpec::parse("engine=decentral\nrpc_retries=0\n").unwrap_err();
        assert!(e.0.contains("rpc_retries"), "{e}");
        let e = ExperimentSpec::parse("engine=decentral\nsched_fail_rate=1\nsched_mttr_ms=0\n")
            .unwrap_err();
        assert!(e.0.contains("sched_mttr_ms"), "{e}");
        // Fault injection is decentralized-only; neutral hardening keys
        // are fine on the central engine.
        assert!(ExperimentSpec::parse("engine=central\nmsg_loss=0.1\n").is_err());
        assert!(ExperimentSpec::parse("engine=central\nrpc_timeout_ms=500\n").is_ok());
    }

    #[test]
    fn probe_ratio_and_eps_are_validated() {
        for bad in ["probe_ratio=0", "probe_ratio=-1", "probe_ratio=inf"] {
            let e = ExperimentSpec::parse(&format!("engine=decentral\n{bad}\n")).unwrap_err();
            assert!(e.0.contains("probe_ratio"), "{e}");
        }
        for bad in ["eps=-0.1", "eps=1.5", "eps=nan"] {
            let e = ExperimentSpec::parse(&format!("{bad}\n")).unwrap_err();
            assert!(e.0.contains("eps"), "{e}");
        }
    }

    #[test]
    fn faulted_run_one_completes_every_job() {
        let mut s = ExperimentSpec::decentral();
        s.jobs = 8;
        s.machines = 30;
        s.util = 0.6;
        s.msg_loss = 0.05;
        s.msg_jitter_ms = 3;
        s.rpc_timeout_ms = 1_000;
        let out = s.run_one(4).unwrap();
        assert_eq!(out.jobs().len(), 8);
    }

    #[test]
    fn realloc_drift_round_trips_and_validates() {
        let s = ExperimentSpec::parse("realloc_drift=0.05\n").unwrap();
        assert_eq!(s.realloc_drift, 0.05);
        let again = ExperimentSpec::parse(&s.render()).unwrap();
        assert_eq!(s, again);
        // Default is the exact eager schedule.
        assert_eq!(ExperimentSpec::central().realloc_drift, 0.0);
        assert!(ExperimentSpec::central()
            .render()
            .contains("realloc_drift=0\n"));
        // Negative / non-finite values are rejected.
        assert!(ExperimentSpec::parse("realloc_drift=-0.1\n").is_err());
        assert!(ExperimentSpec::parse("realloc_drift=inf\n").is_err());
    }

    #[test]
    fn stream_and_max_jobs_keys_round_trip() {
        let s =
            ExperimentSpec::parse("engine=decentral\nstream=on\nmax_jobs=50\njobs=200\n").unwrap();
        assert!(s.stream);
        assert_eq!(s.max_jobs, Some(50));
        let again = ExperimentSpec::parse(&s.render()).unwrap();
        assert_eq!(s, again);
        // Defaults: off / none.
        let d = ExperimentSpec::central();
        assert!(!d.stream);
        assert_eq!(d.max_jobs, None);
        assert!(d.render().contains("stream=off\n"));
        assert!(d.render().contains("max_jobs=none\n"));
        // Value validation.
        assert!(ExperimentSpec::parse("stream=yes\n").is_err());
        assert!(ExperimentSpec::parse("max_jobs=0\n").is_err());
    }

    #[test]
    fn shards_key_round_trips_and_is_decentral_only() {
        let s = ExperimentSpec::parse("engine=decentral\nshards=4\n").unwrap();
        assert_eq!(s.shards, 4);
        let again = ExperimentSpec::parse(&s.render()).unwrap();
        assert_eq!(s, again);
        // Default: 0 — the serial driver.
        let d = ExperimentSpec::decentral();
        assert_eq!(d.shards, 0);
        assert!(d.render().contains("shards=0\n"));
        // The central engine has no sharded driver.
        let e = ExperimentSpec::parse("engine=central\nshards=2\n").unwrap_err();
        assert!(e.0.contains("engine=decentral"), "{e}");
        assert!(ExperimentSpec::parse("engine=central\nshards=0\n").is_ok());
    }

    #[test]
    fn sharded_run_one_matches_across_shard_counts() {
        let mut s = ExperimentSpec::decentral();
        s.jobs = 10;
        s.machines = 30;
        s.util = 0.6;
        s.shards = 1;
        let a = s.run_one(5).unwrap();
        s.shards = 3;
        let b = s.run_one(5).unwrap();
        assert_eq!(
            a.report().core,
            b.report().core,
            "shard count changed the run"
        );
        assert_eq!(a.jobs(), b.jobs());
    }

    #[test]
    fn max_jobs_truncates_both_trace_and_stream() {
        let mut s = ExperimentSpec::central();
        s.jobs = 40;
        s.max_jobs = Some(12);
        let t = s.trace(3);
        assert_eq!(t.len(), 12);
        assert_eq!(s.stream(3).count(), 12);
        // The truncated trace is a prefix of the full one.
        let mut full = s.clone();
        full.max_jobs = None;
        let ft = full.trace(3);
        for (a, b) in ft.jobs.iter().zip(&t.jobs) {
            assert_eq!(a.arrival, b.arrival);
            assert_eq!(a.total_work_ms(), b.total_work_ms());
        }
    }

    #[test]
    fn streaming_run_one_reports_through_the_digest() {
        let mut s = ExperimentSpec::decentral();
        s.jobs = 10;
        s.machines = 30;
        s.util = 0.6;
        s.stream = true;
        let out = s.run_one(2).unwrap();
        assert!(out.jobs().is_empty(), "streaming retires per-job results");
        assert_eq!(out.report().digest.count(), 10);
        assert!(out.mean_duration_ms() > 0.0);
        let hw = out.report().live_high_water;
        assert!((1..=10).contains(&hw));

        // Same seed, materialized: identical counters and mean.
        s.stream = false;
        let mat = s.run_one(2).unwrap();
        assert_eq!(mat.report().core, out.report().core);
        assert_eq!(
            mat.report().digest.mean_ms().to_bits(),
            out.report().digest.mean_ms().to_bits()
        );
    }

    #[test]
    fn rate_keys_round_trip_and_map() {
        let text = "\
rate_profile=diurnal
rate_period_ms=600000
burst_rate=6
burst_mult=3
burst_len_ms=30000
";
        let s = ExperimentSpec::parse(text).unwrap();
        let again = ExperimentSpec::parse(&s.render()).unwrap();
        assert_eq!(s, again);
        assert_eq!(
            s.rate(),
            RateProfile::diurnal(600_000).with_bursts(6.0, 3.0, 30_000)
        );
        // The default spec carries the stationary profile.
        let d = ExperimentSpec::central();
        assert_eq!(d.rate(), RateProfile::Constant);
        assert!(d.render().contains("rate_profile=constant\n"));
        assert!(d.render().contains("burst_rate=0\n"));
        // Bursts layer onto a constant base too.
        let s = ExperimentSpec::parse("burst_rate=2\n").unwrap();
        assert_eq!(
            s.rate(),
            RateProfile::constant().with_bursts(2.0, 4.0, 60_000)
        );
    }

    #[test]
    fn rate_values_are_validated() {
        let e = ExperimentSpec::parse("rate_profile=sinusoid\n").unwrap_err();
        assert!(e.0.contains("rate_profile"), "{e}");
        let e = ExperimentSpec::parse("burst_rate=-1\n").unwrap_err();
        assert!(e.0.contains("burst_rate"), "{e}");
        // Profile invariants surface through validate(): mult < 1 and
        // hour-tiling windows are rejected.
        let e = ExperimentSpec::parse("burst_rate=2\nburst_mult=0.5\n").unwrap_err();
        assert!(e.0.contains("mult"), "{e}");
        let e = ExperimentSpec::parse("burst_rate=60\nburst_len_ms=60000\n").unwrap_err();
        assert!(e.0.contains("hour"), "{e}");
        // burst_mult alone is inert (burst_rate=0 builds no burst layer).
        assert!(ExperimentSpec::parse("burst_mult=0.5\n").is_ok());
    }

    #[test]
    fn replay_key_round_trips_and_is_exclusive() {
        let s = ExperimentSpec::parse("replay=trace.csv\n").unwrap();
        assert_eq!(s.replay.as_deref(), Some("trace.csv"));
        let again = ExperimentSpec::parse(&s.render()).unwrap();
        assert_eq!(s, again);
        assert!(ExperimentSpec::central().render().contains("replay=none\n"));
        // Replay fixes the arrival process.
        let e = ExperimentSpec::parse("replay=t.csv\nrate_profile=diurnal\n").unwrap_err();
        assert!(e.0.contains("rate_profile=constant"), "{e}");
        let e = ExperimentSpec::parse("replay=t.csv\nburst_rate=2\n").unwrap_err();
        assert!(e.0.contains("burst_rate"), "{e}");
        let e = ExperimentSpec::parse("replay=t.csv\nmax_jobs=5\n").unwrap_err();
        assert!(e.0.contains("max_jobs"), "{e}");
        // A missing file errors at run time with the path in the message.
        let e = s.run_one(1).err().expect("missing replay file must error");
        assert!(e.0.contains("trace.csv"), "{e}");
    }

    #[test]
    fn diurnal_run_one_completes_and_differs_from_constant() {
        let mut s = ExperimentSpec::central();
        s.policy = "srpt".into();
        s.jobs = 20;
        s.machines = 10;
        s.util = 0.6;
        let stationary = s.run_one(7).unwrap();
        s.rate_profile = "diurnal".into();
        let diurnal = s.run_one(7).unwrap();
        assert_eq!(diurnal.jobs().len(), 20);
        // Same jobs, same total work — only the arrival spacing moved.
        let t_const = {
            s.rate_profile = "constant".into();
            s.trace(7)
        };
        s.rate_profile = "diurnal".into();
        let t_diur = s.trace(7);
        assert_eq!(t_const.len(), t_diur.len());
        for (a, b) in t_const.jobs.iter().zip(&t_diur.jobs) {
            assert_eq!(a.total_work_ms(), b.total_work_ms());
        }
        assert_ne!(
            stationary.report().core,
            diurnal.report().core,
            "a diurnal curve should actually change the run"
        );
    }

    #[test]
    fn run_one_executes_both_engines() {
        let mut c = ExperimentSpec::central();
        c.jobs = 8;
        c.machines = 10;
        c.util = 0.6;
        let out = c.run_one(3).unwrap();
        assert_eq!(out.jobs().len(), 8);

        let mut d = ExperimentSpec::decentral();
        d.jobs = 8;
        d.machines = 30;
        d.util = 0.6;
        let out = d.run_one(3).unwrap();
        assert_eq!(out.jobs().len(), 8);
        assert!(
            out.report().core.messages > 0,
            "decentral runs send messages"
        );
    }
}
