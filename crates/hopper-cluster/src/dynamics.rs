//! Machine-level cluster dynamics: heterogeneous speeds, transient
//! slowdowns, and machine failures.
//!
//! The straggler model of [`crate::job`] is *task*-level: every copy draws
//! an i.i.d. Pareto duration multiplier. Production stragglers, however,
//! are dominated by the *machine* — contended, degraded, or failing nodes
//! slow (or kill) everything placed on them. This module supplies that
//! plane:
//!
//! - **Static heterogeneity** ([`HeteroProfile`]): each machine draws a
//!   base speed factor at cluster construction (uniform band, bimodal
//!   slow-node fraction, or lognormal spread). A copy on machine `m` runs
//!   at `speed(m)`: its wall-clock duration is the unit-speed duration
//!   divided by the speed.
//! - **Transient slowdowns**: a machine degrades by a sampled factor for a
//!   sampled interval (background load, I/O contention). In-flight copies
//!   have their *remaining* work stretched — see
//!   [`crate::JobRun::rescale_machine`].
//! - **Failures**: a machine goes down for a sampled recovery interval;
//!   every running copy on it is killed and its tasks become pending again
//!   ([`crate::JobRun::fail_machine`]).
//!
//! **Determinism.** Every machine owns its own seed-derived RNG
//! ([`SeedSequence::child_rng`] at a dedicated index namespace), and a
//! machine's incident chain consumes only that RNG. Drivers schedule the
//! returned [`DynEvent`]s through their ordinary event queues, so dynamics
//! interleave with scheduling deterministically and parallel sweeps stay
//! bit-identical. With the config [`DynamicsConfig::off`] (the default)
//! nothing is drawn and nothing is scheduled: runs are bit-identical to a
//! dynamics-free build.
//!
//! **Incident chain.** Per machine, incidents never overlap: a healthy
//! machine waits an exponential time (total incident rate = the sum of
//! the slowdown and failure rates, per machine-hour), suffers *either* a
//! slowdown *or* a failure (chosen proportionally to the rates), runs
//! through it, and only then draws its next incident. This keeps the
//! per-machine state a simple `(base speed, transient factor, up)` triple.

use hopper_sim::{SeedSequence, SimTime};
use hopper_workload::Dist;
use rand::rngs::StdRng;
use rand::Rng;

use crate::ids::MachineId;

/// Child-seed namespace for per-machine dynamics RNGs (machine `m` uses
/// child index `DYN_SEED_BASE + m`). Disjoint from the drivers' placement
/// (`0xB10C`) and duration (`0xD00D` / `0xDEC`) children.
const DYN_SEED_BASE: u64 = 0xD1_CE00_0000;

/// How per-machine base speed factors are drawn (1.0 = nominal).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HeteroProfile {
    /// Homogeneous cluster: every machine runs at speed 1.0.
    Off,
    /// Speeds uniform in `[lo, hi]`.
    Uniform {
        /// Slowest base speed.
        lo: f64,
        /// Fastest base speed.
        hi: f64,
    },
    /// A `slow_frac` fraction of machines run at `slow_factor`, the rest
    /// at 1.0 — the "few bad nodes" shape production studies report.
    Bimodal {
        /// Fraction of slow machines, in `[0, 1]`.
        slow_frac: f64,
        /// Speed of a slow machine, in `(0, 1]`.
        slow_factor: f64,
    },
    /// Speeds `exp(N(0, σ))`, clamped to `[0.1, 10]` — a long-tailed
    /// spread around nominal.
    LogNormal {
        /// σ of the underlying normal.
        sigma: f64,
    },
}

impl HeteroProfile {
    /// Draw one machine's base speed from its own RNG.
    fn sample(&self, rng: &mut StdRng) -> f64 {
        match *self {
            HeteroProfile::Off => 1.0,
            HeteroProfile::Uniform { lo, hi } => Dist::Uniform { lo, hi }.sample(rng),
            HeteroProfile::Bimodal {
                slow_frac,
                slow_factor,
            } => {
                if rng.gen::<f64>() < slow_frac {
                    slow_factor
                } else {
                    1.0
                }
            }
            HeteroProfile::LogNormal { sigma } => Dist::LogNormal { mu: 0.0, sigma }
                .sample(rng)
                .clamp(0.1, 10.0),
        }
    }
}

/// Full description of a cluster's dynamics plane. The default is
/// [`DynamicsConfig::off`]: no heterogeneity, no slowdowns, no failures —
/// and, by contract, zero effect on any run.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicsConfig {
    /// Base speed heterogeneity.
    pub hetero: HeteroProfile,
    /// Transient slowdowns per machine per hour (0 disables).
    pub slowdown_rate_per_hour: f64,
    /// Uniform range of the transient speed multiplier (applied on top of
    /// the base speed; `< 1` = degradation).
    pub slowdown_factor: (f64, f64),
    /// Uniform range of a slowdown's duration, ms.
    pub slowdown_ms: (u64, u64),
    /// Machine failures per machine per hour (0 disables).
    pub fail_rate_per_hour: f64,
    /// Uniform range of a failed machine's recovery time, ms.
    pub recovery_ms: (u64, u64),
}

impl Default for DynamicsConfig {
    fn default() -> Self {
        DynamicsConfig::off()
    }
}

impl DynamicsConfig {
    /// The neutral config: perfectly homogeneous, always-healthy cluster.
    pub fn off() -> Self {
        DynamicsConfig {
            hetero: HeteroProfile::Off,
            slowdown_rate_per_hour: 0.0,
            slowdown_factor: (0.3, 0.7),
            slowdown_ms: (5_000, 60_000),
            fail_rate_per_hour: 0.0,
            recovery_ms: (15_000, 45_000),
        }
    }

    /// Whether any dynamics mechanism is active. Drivers skip the whole
    /// plane (no state, no events, no speed lookups) when this is false.
    pub fn enabled(&self) -> bool {
        self.hetero != HeteroProfile::Off
            || self.slowdown_rate_per_hour > 0.0
            || self.fail_rate_per_hour > 0.0
    }
}

/// Exponential inter-incident delay (ms, floored at 1) for a Poisson
/// process of `rate_per_hour` events, drawn from `rng`. `None` when the
/// rate is zero or negative — the chain never starts.
///
/// This is the draw every incident chain in the system shares: machine
/// slowdown/failure chains here, and the scheduler crash chains of the
/// decentralized message-fault plane (`hopper-decentral`). One
/// definition, so "incidents per hour" means the same thing everywhere.
pub fn exp_incident_delay_ms(rng: &mut StdRng, rate_per_hour: f64) -> Option<u64> {
    if rate_per_hour <= 0.0 {
        return None;
    }
    let mean_ms = 3_600_000.0 / rate_per_hour;
    Some((Dist::Exp { mean: mean_ms }.sample(rng).round() as u64).max(1))
}

/// Uniform duration draw in `[lo, hi]` ms, floored at 1 ms (shared by
/// recovery and slowdown intervals, machine and scheduler chains alike).
/// A degenerate range (`hi <= lo`) returns `lo` (floored) without
/// consuming the RNG.
pub fn uniform_duration_ms(rng: &mut StdRng, (lo, hi): (u64, u64)) -> u64 {
    if hi <= lo {
        return lo.max(1);
    }
    (Dist::Uniform {
        lo: lo as f64,
        hi: hi as f64,
    }
    .sample(rng)
    .round() as u64)
        .clamp(lo.max(1), hi)
}

/// A machine-dynamics incident, scheduled through the driver's event
/// queue. Slowdown and failure intervals are bracketed: every `Start`/
/// `Fail` schedules its matching `End`/`Recover`, and only the closing
/// event draws the machine's next incident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynEvent {
    /// Machine degrades by a sampled transient factor.
    SlowdownStart(MachineId),
    /// The transient degradation ends.
    SlowdownEnd(MachineId),
    /// Machine dies: running copies are killed, slots leave the pool.
    Fail(MachineId),
    /// Machine rejoins with all slots free (and warmth lost).
    Recover(MachineId),
}

impl DynEvent {
    /// The machine this incident concerns.
    pub fn machine(&self) -> MachineId {
        match *self {
            DynEvent::SlowdownStart(m)
            | DynEvent::SlowdownEnd(m)
            | DynEvent::Fail(m)
            | DynEvent::Recover(m) => m,
        }
    }
}

/// What applying a [`DynEvent`] asks the driver to do.
#[derive(Debug, Clone, PartialEq)]
pub struct DynOutcome {
    /// `old_speed / new_speed` when the machine's speed changed while up —
    /// the factor by which in-flight copies' remaining wall-clock time
    /// stretches (pass to [`crate::JobRun::rescale_machine`]). `None` for
    /// fail/recover (failures kill copies instead of rescaling them).
    pub rescale_ratio: Option<f64>,
    /// Follow-up incidents to schedule, as delays from now.
    pub next: Vec<(SimTime, DynEvent)>,
}

/// Per-machine dynamics state: base speeds, transient factors,
/// availability, and each machine's private incident RNG.
#[derive(Debug, Clone)]
pub struct MachineDynamics {
    cfg: DynamicsConfig,
    base: Vec<f64>,
    transient: Vec<f64>,
    up: Vec<bool>,
    rngs: Vec<StdRng>,
}

impl MachineDynamics {
    /// Build the dynamics plane for `machines` machines, deriving one RNG
    /// per machine from `seq` (the run's root seed sequence). Base speeds
    /// are drawn immediately, from each machine's own RNG.
    pub fn new(cfg: DynamicsConfig, machines: usize, seq: &SeedSequence) -> Self {
        let mut rngs: Vec<StdRng> = (0..machines)
            .map(|m| seq.child_rng(DYN_SEED_BASE + m as u64))
            .collect();
        let base: Vec<f64> = rngs.iter_mut().map(|r| cfg.hetero.sample(r)).collect();
        MachineDynamics {
            cfg,
            base,
            transient: vec![1.0; machines],
            up: vec![true; machines],
            rngs,
        }
    }

    /// Current effective speed of `m` (base × transient). Only meaningful
    /// while the machine is up; a down machine runs nothing.
    pub fn speed(&self, m: MachineId) -> f64 {
        self.base[m.0] * self.transient[m.0]
    }

    /// Whether `m` is currently up.
    pub fn is_up(&self, m: MachineId) -> bool {
        self.up[m.0]
    }

    /// Base (static-heterogeneity) speed of `m`.
    pub fn base_speed(&self, m: MachineId) -> f64 {
        self.base[m.0]
    }

    /// First incident per machine, as absolute times from simulation
    /// start. Empty when both rates are zero (pure static heterogeneity).
    pub fn initial_incidents(&mut self) -> Vec<(SimTime, DynEvent)> {
        (0..self.base.len())
            .filter_map(|m| self.next_incident(m))
            .collect()
    }

    /// Exponential inter-incident draw + proportional type choice for
    /// machine `m`, consuming only `m`'s RNG.
    fn next_incident(&mut self, m: usize) -> Option<(SimTime, DynEvent)> {
        let total = self.cfg.slowdown_rate_per_hour + self.cfg.fail_rate_per_hour;
        let rng = &mut self.rngs[m];
        let delay_ms = exp_incident_delay_ms(rng, total)?;
        let fail = rng.gen::<f64>() * total < self.cfg.fail_rate_per_hour;
        let ev = if fail {
            DynEvent::Fail(MachineId(m))
        } else {
            DynEvent::SlowdownStart(MachineId(m))
        };
        Some((SimTime::from_millis(delay_ms), ev))
    }

    /// Apply one incident to the machine's state. The caller (driver) is
    /// responsible for the cluster-side effects: rescaling in-flight
    /// copies on a speed change, killing copies and parking the machine's
    /// slots on failure, restoring them on recovery — and for scheduling
    /// the returned follow-up events.
    pub fn apply(&mut self, ev: DynEvent) -> DynOutcome {
        let m = ev.machine().0;
        match ev {
            DynEvent::SlowdownStart(_) => {
                let old = self.base[m] * self.transient[m];
                let (flo, fhi) = self.cfg.slowdown_factor;
                let factor = Dist::Uniform { lo: flo, hi: fhi }
                    .sample(&mut self.rngs[m])
                    .max(0.01);
                let dur = uniform_duration_ms(&mut self.rngs[m], self.cfg.slowdown_ms);
                self.transient[m] = factor;
                let new = self.base[m] * self.transient[m];
                DynOutcome {
                    rescale_ratio: Some(old / new),
                    next: vec![(
                        SimTime::from_millis(dur),
                        DynEvent::SlowdownEnd(MachineId(m)),
                    )],
                }
            }
            DynEvent::SlowdownEnd(_) => {
                let old = self.base[m] * self.transient[m];
                self.transient[m] = 1.0;
                let new = self.base[m];
                DynOutcome {
                    rescale_ratio: Some(old / new),
                    next: self.next_incident(m).into_iter().collect(),
                }
            }
            DynEvent::Fail(_) => {
                self.up[m] = false;
                self.transient[m] = 1.0;
                let rec = uniform_duration_ms(&mut self.rngs[m], self.cfg.recovery_ms);
                DynOutcome {
                    rescale_ratio: None,
                    next: vec![(SimTime::from_millis(rec), DynEvent::Recover(MachineId(m)))],
                }
            }
            DynEvent::Recover(_) => {
                self.up[m] = true;
                DynOutcome {
                    rescale_ratio: None,
                    next: self.next_incident(m).into_iter().collect(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq() -> SeedSequence {
        SeedSequence::new(42)
    }

    #[test]
    fn off_config_is_disabled_and_neutral() {
        let cfg = DynamicsConfig::off();
        assert!(!cfg.enabled());
        let mut d = MachineDynamics::new(cfg, 8, &seq());
        for m in 0..8 {
            assert_eq!(d.speed(MachineId(m)), 1.0);
            assert!(d.is_up(MachineId(m)));
        }
        assert!(d.initial_incidents().is_empty());
    }

    #[test]
    fn uniform_point_mass_keeps_all_speeds_at_one() {
        // The "enabled but neutral" config the golden-equivalence test
        // uses: heterogeneity on, but degenerate at speed 1.0.
        let cfg = DynamicsConfig {
            hetero: HeteroProfile::Uniform { lo: 1.0, hi: 1.0 },
            ..DynamicsConfig::off()
        };
        assert!(cfg.enabled());
        let d = MachineDynamics::new(cfg, 16, &seq());
        for m in 0..16 {
            assert_eq!(d.speed(MachineId(m)), 1.0);
        }
    }

    #[test]
    fn bimodal_matches_fraction_roughly() {
        let cfg = DynamicsConfig {
            hetero: HeteroProfile::Bimodal {
                slow_frac: 0.25,
                slow_factor: 0.5,
            },
            ..DynamicsConfig::off()
        };
        let d = MachineDynamics::new(cfg, 2000, &seq());
        let slow = (0..2000).filter(|&m| d.speed(MachineId(m)) < 1.0).count() as f64 / 2000.0;
        assert!((slow - 0.25).abs() < 0.05, "slow fraction {slow}");
        for m in 0..2000 {
            let s = d.speed(MachineId(m));
            assert!(s == 0.5 || s == 1.0, "bimodal speed {s}");
        }
    }

    #[test]
    fn lognormal_speeds_are_clamped_and_spread() {
        let cfg = DynamicsConfig {
            hetero: HeteroProfile::LogNormal { sigma: 0.5 },
            ..DynamicsConfig::off()
        };
        let d = MachineDynamics::new(cfg, 500, &seq());
        let speeds: Vec<f64> = (0..500).map(|m| d.speed(MachineId(m))).collect();
        assert!(speeds.iter().all(|&s| (0.1..=10.0).contains(&s)));
        let distinct = speeds.iter().filter(|&&s| s != speeds[0]).count();
        assert!(distinct > 0, "lognormal should spread speeds");
    }

    #[test]
    fn per_machine_rngs_are_independent_of_construction_order() {
        // Machine 3's base speed must not depend on how many machines
        // exist — each machine's stream is its own seed child.
        let cfg = DynamicsConfig {
            hetero: HeteroProfile::LogNormal { sigma: 0.4 },
            ..DynamicsConfig::off()
        };
        let small = MachineDynamics::new(cfg.clone(), 4, &seq());
        let big = MachineDynamics::new(cfg, 64, &seq());
        assert_eq!(small.speed(MachineId(3)), big.speed(MachineId(3)));
    }

    #[test]
    fn slowdown_brackets_and_ratio() {
        let cfg = DynamicsConfig {
            slowdown_rate_per_hour: 1.0,
            slowdown_factor: (0.5, 0.5),
            slowdown_ms: (1000, 1000),
            ..DynamicsConfig::off()
        };
        let mut d = MachineDynamics::new(cfg, 2, &seq());
        let init = d.initial_incidents();
        assert_eq!(init.len(), 2);
        assert!(matches!(init[0].1, DynEvent::SlowdownStart(_)));
        let m = init[0].1.machine();
        let out = d.apply(DynEvent::SlowdownStart(m));
        assert_eq!(d.speed(m), 0.5);
        // old/new = 1.0/0.5: remaining work takes twice the wall clock.
        assert!((out.rescale_ratio.unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(
            out.next,
            vec![(SimTime::from_millis(1000), DynEvent::SlowdownEnd(m))]
        );
        let back = d.apply(DynEvent::SlowdownEnd(m));
        assert_eq!(d.speed(m), 1.0);
        assert!((back.rescale_ratio.unwrap() - 0.5).abs() < 1e-12);
        // The chain continues: the end draws the next incident.
        assert_eq!(back.next.len(), 1);
    }

    #[test]
    fn failure_brackets_recovery_and_chain_continues() {
        let cfg = DynamicsConfig {
            fail_rate_per_hour: 2.0,
            recovery_ms: (7_000, 7_000),
            ..DynamicsConfig::off()
        };
        let mut d = MachineDynamics::new(cfg, 1, &seq());
        let m = MachineId(0);
        let out = d.apply(DynEvent::Fail(m));
        assert!(!d.is_up(m));
        assert_eq!(out.rescale_ratio, None);
        assert_eq!(
            out.next,
            vec![(SimTime::from_millis(7_000), DynEvent::Recover(m))]
        );
        let rec = d.apply(DynEvent::Recover(m));
        assert!(d.is_up(m));
        assert_eq!(rec.next.len(), 1, "recovery draws the next incident");
    }

    #[test]
    fn incident_type_split_follows_rates() {
        let cfg = DynamicsConfig {
            slowdown_rate_per_hour: 3.0,
            fail_rate_per_hour: 1.0,
            ..DynamicsConfig::off()
        };
        let mut d = MachineDynamics::new(cfg, 400, &seq());
        let init = d.initial_incidents();
        let fails = init
            .iter()
            .filter(|(_, e)| matches!(e, DynEvent::Fail(_)))
            .count() as f64
            / init.len() as f64;
        assert!((fails - 0.25).abs() < 0.1, "fail share {fails}");
    }
}
