//! Strongly-typed identifiers for cluster entities.

/// A machine (worker host) in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MachineId(pub usize);

/// A task within a job: `(phase index, task index)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskRef {
    /// Index of the phase within the job DAG.
    pub phase: usize,
    /// Index of the task within the phase.
    pub task: usize,
}

/// One execution copy of a task (original or speculative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CopyRef {
    /// The task this copy belongs to.
    pub task: TaskRef,
    /// Copy index within the task (0 = original).
    pub copy: usize,
}

impl TaskRef {
    /// Construct a task reference.
    pub fn new(phase: usize, task: usize) -> Self {
        TaskRef { phase, task }
    }
}

impl CopyRef {
    /// Construct a copy reference.
    pub fn new(phase: usize, task: usize, copy: usize) -> Self {
        CopyRef {
            task: TaskRef::new(phase, task),
            copy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_ordering() {
        let a = CopyRef::new(0, 1, 0);
        let b = CopyRef::new(0, 1, 1);
        assert!(a < b);
        assert_eq!(a.task, TaskRef::new(0, 1));
        assert_eq!(MachineId(3), MachineId(3));
    }
}
