//! The physical cluster: machines with compute slots, and slot↔job
//! affinity ("warm" slots).
//!
//! Mirrors the paper's testbed shape (§7.1: 200 machines, multiple slots
//! each). Slots are fungible within a machine; machine identity matters
//! for data locality and for the decentralized per-worker queues.
//!
//! **Warm slots.** Handing a slot from one job to another costs a
//! scheduling round-trip plus container/executor setup (YARN heartbeat +
//! container launch; Spark executor hand-off). A slot freed by a job stays
//! *bound* (warm) to it: relaunching within the same job is instant, while
//! taking over a foreign slot pays [`ClusterConfig::handoff_ms`]. This is
//! the mechanism that makes slot *reservation* (Hopper's held slots,
//! Figure 2) physically meaningful: binding happens while the slot idles,
//! so the job's next speculative copy starts immediately.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::ids::MachineId;

/// Static cluster and execution-model parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of machines.
    pub machines: usize,
    /// Compute slots per machine.
    pub slots_per_machine: usize,
    /// DFS replication factor: input tasks may run locally on this many
    /// machines (3 in HDFS and in the paper's setup).
    pub dfs_replicas: usize,
    /// Duration multiplier for an input task reading its data remotely
    /// (non-local placement). ~1.1–1.3 in measurement studies.
    pub remote_read_penalty: f64,
    /// Per-slot network bandwidth in MB/s used to convert intermediate
    /// data volume into transfer time (drives α and shuffle durations).
    pub bandwidth_mbps: f64,
    /// Fraction of upstream tasks that must finish before a downstream
    /// phase becomes eligible. 1.0 = strict barrier (default); lower
    /// values emulate Hadoop "slowstart" pipelining.
    pub slowstart_fraction: f64,
    /// Upper clamp on the per-copy Pareto duration multiplier, bounding
    /// pathological tail draws (production stragglers observed up to ~8×;
    /// we allow well beyond that, the clamp only guards simulation time).
    pub max_straggle_factor: f64,
    /// Cost (ms) of handing a slot to a *different* job: scheduler
    /// round-trip plus container/executor start. Zero for long-lived
    /// shared executors (the Sparrow/decentralized setting).
    pub handoff_ms: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            machines: 200,
            slots_per_machine: 16,
            dfs_replicas: 3,
            remote_read_penalty: 1.2,
            bandwidth_mbps: 125.0, // 1 Gbps, as in the paper's cluster
            slowstart_fraction: 1.0,
            max_straggle_factor: 40.0,
            handoff_ms: 1000,
        }
    }
}

impl ClusterConfig {
    /// Total slot count.
    pub fn total_slots(&self) -> usize {
        self.machines * self.slots_per_machine
    }

    /// Convert an intermediate data volume (MB) into transfer milliseconds
    /// at per-slot bandwidth.
    pub fn transfer_ms(&self, mb: f64) -> f64 {
        if mb <= 0.0 {
            0.0
        } else {
            mb / self.bandwidth_mbps * 1000.0
        }
    }
}

/// Whether an occupied slot was already warm for the job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotTemp {
    /// Slot was bound to the launching job: no handoff cost.
    Warm,
    /// Slot was unbound or bound to another job: pays the handoff cost.
    Cold,
}

/// Dynamic slot occupancy across machines, with per-job slot affinity.
///
/// Beyond the per-machine arrays, the struct maintains deterministic
/// indices — ascending-ordered sets of machines with free / unbound /
/// bound slots, plus per-job warm-machine sets and warm totals — so that
/// the hot queries (`machines_with_free`, `preferred_free_machine`,
/// `warm_total`, `bind_idle`) cost O(log M) or O(1) instead of O(M) /
/// O(M·jobs) scans. Every index iterates in ascending machine id, the
/// exact order the replaced scans used, so placement tie-breaking is
/// bit-identical (see DESIGN.md, "Index invariants").
#[derive(Debug, Clone)]
pub struct Machines {
    /// Per machine: free slots bound (warm) per job. `BTreeMap` so the
    /// deterministic smallest-id victim pick is a first-key read.
    bound: Vec<BTreeMap<usize, usize>>,
    /// Per machine: free slots bound to no job.
    unbound: Vec<usize>,
    /// Per machine: total free (cache of unbound + Σ bound).
    free: Vec<usize>,
    slots_per_machine: usize,
    total_free: usize,
    /// Machines with at least one free slot, ascending.
    free_set: BTreeSet<usize>,
    /// Machines with at least one unbound free slot, ascending.
    unbound_set: BTreeSet<usize>,
    /// Machines whose bound map is non-empty, ascending.
    bound_set: BTreeSet<usize>,
    /// job → machines where the job has ≥ 1 warm slot (entries non-empty).
    warm_machines: HashMap<usize, BTreeSet<usize>>,
    /// job → total free slots bound to it (entries non-zero).
    warm_totals: HashMap<usize, usize>,
    /// Total bound (warm) slots across the cluster (Σ warm_totals).
    total_bound: usize,
    /// Machines currently failed (dynamics plane). A down machine has no
    /// free, unbound, or bound slots, so every index skips it naturally;
    /// the flag guards against accidental occupy/release while down.
    down: Vec<bool>,
}

impl Machines {
    /// All slots free and unbound.
    pub fn new(cfg: &ClusterConfig) -> Self {
        let all: BTreeSet<usize> = (0..cfg.machines).collect();
        Machines {
            bound: vec![BTreeMap::new(); cfg.machines],
            unbound: vec![cfg.slots_per_machine; cfg.machines],
            free: vec![cfg.slots_per_machine; cfg.machines],
            slots_per_machine: cfg.slots_per_machine,
            total_free: cfg.total_slots(),
            free_set: if cfg.slots_per_machine > 0 {
                all.clone()
            } else {
                BTreeSet::new()
            },
            unbound_set: if cfg.slots_per_machine > 0 {
                all
            } else {
                BTreeSet::new()
            },
            bound_set: BTreeSet::new(),
            warm_machines: HashMap::new(),
            warm_totals: HashMap::new(),
            total_bound: 0,
            down: vec![false; cfg.machines],
        }
    }

    /// Take machine `m` out of the cluster (machine failure). Its free
    /// slots leave every pool and its warm bindings are forgotten; slots
    /// occupied by (now killed) copies are simply gone — the machine
    /// rejoins fully reset via [`Machines::set_up`]. Panics on double
    /// failure.
    pub fn set_down(&mut self, m: MachineId) {
        let m = m.0;
        assert!(!self.down[m], "machine {m} failed while already down");
        self.down[m] = true;
        self.total_free -= self.free[m];
        self.free[m] = 0;
        self.free_set.remove(&m);
        self.unbound[m] = 0;
        self.unbound_set.remove(&m);
        for (job, c) in std::mem::take(&mut self.bound[m]) {
            self.total_bound -= c;
            let t = self.warm_totals.get_mut(&job).expect("warm total");
            *t -= c;
            if *t == 0 {
                self.warm_totals.remove(&job);
            }
            if let Some(set) = self.warm_machines.get_mut(&job) {
                set.remove(&m);
                if set.is_empty() {
                    self.warm_machines.remove(&job);
                }
            }
        }
        self.bound_set.remove(&m);
        #[cfg(debug_assertions)]
        self.debug_check_index();
    }

    /// Return a failed machine to service with every slot free and
    /// unbound (the reboot lost all executor warmth). Panics if `m` is
    /// not down.
    pub fn set_up(&mut self, m: MachineId) {
        let m = m.0;
        assert!(self.down[m], "machine {m} recovered while up");
        self.down[m] = false;
        self.free[m] = self.slots_per_machine;
        self.unbound[m] = self.slots_per_machine;
        self.total_free += self.slots_per_machine;
        if self.slots_per_machine > 0 {
            self.free_set.insert(m);
            self.unbound_set.insert(m);
        }
        #[cfg(debug_assertions)]
        self.debug_check_index();
    }

    /// Whether machine `m` is currently down (failed).
    pub fn is_down(&self, m: MachineId) -> bool {
        self.down[m.0]
    }

    /// One free slot disappears on `m`.
    fn free_dec(&mut self, m: usize) {
        self.free[m] -= 1;
        self.total_free -= 1;
        if self.free[m] == 0 {
            self.free_set.remove(&m);
        }
    }

    /// One free slot appears on `m`.
    fn free_inc(&mut self, m: usize) {
        if self.free[m] == 0 {
            self.free_set.insert(m);
        }
        self.free[m] += 1;
        self.total_free += 1;
    }

    /// One unbound free slot disappears on `m`.
    fn unbound_dec(&mut self, m: usize) {
        self.unbound[m] -= 1;
        if self.unbound[m] == 0 {
            self.unbound_set.remove(&m);
        }
    }

    /// Bind one free slot on `m` to `job` (warm count +1).
    fn bound_inc(&mut self, m: usize, job: usize) {
        let c = self.bound[m].entry(job).or_insert(0);
        *c += 1;
        if *c == 1 {
            self.warm_machines.entry(job).or_default().insert(m);
            self.bound_set.insert(m);
        }
        *self.warm_totals.entry(job).or_insert(0) += 1;
        self.total_bound += 1;
    }

    /// Unbind one of `job`'s warm slots on `m` (warm count −1).
    fn bound_dec(&mut self, m: usize, job: usize) {
        let c = self.bound[m].get_mut(&job).expect("warm slot to consume");
        *c -= 1;
        if *c == 0 {
            self.bound[m].remove(&job);
            if let Some(set) = self.warm_machines.get_mut(&job) {
                set.remove(&m);
                if set.is_empty() {
                    self.warm_machines.remove(&job);
                }
            }
            if self.bound[m].is_empty() {
                self.bound_set.remove(&m);
            }
        }
        let t = self.warm_totals.get_mut(&job).expect("warm total");
        *t -= 1;
        if *t == 0 {
            self.warm_totals.remove(&job);
        }
        self.total_bound -= 1;
    }

    /// Debug-build oracle: every index must match the per-machine arrays.
    /// Sampled (every 64th mutation) — the reconciliation is O(M) and
    /// would otherwise dominate dev-profile test time on large clusters.
    #[cfg(debug_assertions)]
    fn debug_check_index(&self) {
        use std::sync::atomic::{AtomicU64, Ordering};
        static TICK: AtomicU64 = AtomicU64::new(0);
        if !TICK.fetch_add(1, Ordering::Relaxed).is_multiple_of(64) {
            return;
        }
        let free_set: BTreeSet<usize> =
            (0..self.free.len()).filter(|&m| self.free[m] > 0).collect();
        assert_eq!(free_set, self.free_set, "free_set drifted");
        let unbound_set: BTreeSet<usize> = (0..self.unbound.len())
            .filter(|&m| self.unbound[m] > 0)
            .collect();
        assert_eq!(unbound_set, self.unbound_set, "unbound_set drifted");
        let bound_set: BTreeSet<usize> = (0..self.bound.len())
            .filter(|&m| !self.bound[m].is_empty())
            .collect();
        assert_eq!(bound_set, self.bound_set, "bound_set drifted");
        let mut warm_machines: HashMap<usize, BTreeSet<usize>> = HashMap::new();
        let mut warm_totals: HashMap<usize, usize> = HashMap::new();
        for (m, b) in self.bound.iter().enumerate() {
            for (&job, &c) in b {
                assert!(c > 0, "zero-count bound entry survived");
                warm_machines.entry(job).or_default().insert(m);
                *warm_totals.entry(job).or_insert(0) += c;
            }
        }
        assert_eq!(warm_machines, self.warm_machines, "warm_machines drifted");
        assert_eq!(
            warm_totals.values().sum::<usize>(),
            self.total_bound,
            "total_bound drifted"
        );
        assert_eq!(warm_totals, self.warm_totals, "warm_totals drifted");
        for m in 0..self.free.len() {
            let bound_sum: usize = self.bound[m].values().sum();
            assert_eq!(
                self.free[m],
                self.unbound[m] + bound_sum,
                "free/unbound/bound accounting broke on machine {m}"
            );
        }
    }

    /// Number of machines.
    pub fn len(&self) -> usize {
        self.free.len()
    }

    /// True when the cluster has no machines (degenerate configs in tests).
    pub fn is_empty(&self) -> bool {
        self.free.is_empty()
    }

    /// Total free slots across the cluster.
    pub fn total_free(&self) -> usize {
        self.total_free
    }

    /// Free slots on one machine.
    pub fn free_on(&self, m: MachineId) -> usize {
        self.free[m.0]
    }

    /// Free slots on `m` already bound to `job`.
    pub fn warm_on(&self, m: MachineId, job: usize) -> usize {
        self.bound[m.0].get(&job).copied().unwrap_or(0)
    }

    /// Total free slots bound to `job` across the cluster. O(1).
    pub fn warm_total(&self, job: usize) -> usize {
        let total = self.warm_totals.get(&job).copied().unwrap_or(0);
        debug_assert_eq!(
            total,
            self.bound
                .iter()
                .map(|b| b.get(&job).copied().unwrap_or(0))
                .sum::<usize>()
        );
        total
    }

    /// Occupy one slot on `m` for `job`, consuming a warm slot when
    /// available. Returns whether the slot was warm. Panics if `m` has no
    /// free slot (callers check first).
    pub fn occupy_for(&mut self, m: MachineId, job: usize) -> SlotTemp {
        assert!(!self.down[m.0], "occupy on down machine {}", m.0);
        assert!(self.free[m.0] > 0, "occupy on full machine {}", m.0);
        self.free_dec(m.0);
        let temp = if self.bound[m.0].contains_key(&job) {
            self.bound_dec(m.0, job);
            SlotTemp::Warm
        } else if self.unbound[m.0] > 0 {
            self.unbound_dec(m.0);
            SlotTemp::Cold
        } else {
            // Steal a slot bound to some other job (deterministic:
            // smallest id = the BTreeMap's first key).
            let victim = *self.bound[m.0]
                .keys()
                .next()
                .expect("free slot must exist somewhere");
            self.bound_dec(m.0, victim);
            SlotTemp::Cold
        };
        #[cfg(debug_assertions)]
        self.debug_check_index();
        temp
    }

    /// Release one slot on `m`, leaving it warm (bound) for `job`.
    /// Panics on double release.
    pub fn release_to(&mut self, m: MachineId, job: usize) {
        assert!(!self.down[m.0], "release to down machine {}", m.0);
        assert!(
            self.free[m.0] < self.slots_per_machine,
            "double release on machine {}",
            m.0
        );
        self.free_inc(m.0);
        self.bound_inc(m.0, job);
        #[cfg(debug_assertions)]
        self.debug_check_index();
    }

    /// Re-bind up to `want` currently-free slots to `job` (Hopper's slot
    /// holding: prepare containers while the slot idles). Unbound slots are
    /// consumed first, then slots warm for other jobs. Returns how many
    /// were bound (beyond those already warm for `job`).
    ///
    /// Both passes walk machines in ascending id, exactly like the O(M)
    /// scans they replace — but only over machines that actually hold an
    /// unbound (pass 1) or foreign-warm (pass 2) slot.
    pub fn bind_idle(&mut self, job: usize, want: usize) -> usize {
        let mut bound = 0;
        // Pass 1: unbound slots, smallest machine first. Draining the set
        // head either consumes the machine's last unbound slot (removing
        // it from the set) or satisfies `want`, so this makes progress
        // every step without materializing the whole set.
        while bound < want {
            let Some(&m) = self.unbound_set.first() else {
                break;
            };
            while bound < want && self.unbound[m] > 0 {
                self.unbound_dec(m);
                self.bound_inc(m, job);
                bound += 1;
            }
        }
        // Pass 2: steal from other jobs' warm slots (ascending machine,
        // smallest victim job id first on each machine). `foreign` bounds
        // the walk: once every remaining warm slot belongs to `job`
        // itself — the common steady state after a high-priority job has
        // absorbed the cluster's idle warmth — there is nothing to steal
        // and the machine scan is skipped outright.
        let mut foreign = self.total_bound - self.warm_totals.get(&job).copied().unwrap_or(0);
        let mut cursor: Option<usize> = None;
        while bound < want && foreign > 0 {
            let next = match cursor {
                None => self.bound_set.first().copied(),
                Some(c) => self
                    .bound_set
                    .range((std::ops::Bound::Excluded(c), std::ops::Bound::Unbounded))
                    .next()
                    .copied(),
            };
            let Some(m) = next else { break };
            cursor = Some(m);
            while bound < want {
                let victim = self.bound[m].keys().copied().find(|&j| j != job);
                let Some(v) = victim else { break };
                self.bound_dec(m, v);
                self.bound_inc(m, job);
                bound += 1;
                foreign -= 1;
            }
        }
        #[cfg(debug_assertions)]
        self.debug_check_index();
        bound
    }

    /// Iterate machines that currently have at least one free slot, in
    /// ascending id order. O(free machines), not O(M).
    pub fn machines_with_free(&self) -> impl Iterator<Item = MachineId> + '_ {
        self.free_set.iter().map(|&m| MachineId(m))
    }

    /// A free machine for `job`, preferring one where the job has a warm
    /// slot, skipping `exclude`; falls back to the first free machine
    /// (even an excluded one) when every candidate is excluded — the
    /// historical contract of the O(M) `max_by_key` scan this replaces.
    /// `exclude` is at most a couple of busy machines, so the membership
    /// probe is a small-vec early-out, not the old full rescan.
    pub fn preferred_free_machine(&self, job: usize, exclude: &[MachineId]) -> Option<MachineId> {
        let picked = self.pick_preferred(job, exclude);
        #[cfg(debug_assertions)]
        {
            let scanned = self
                .machines_with_free()
                .filter(|m| !exclude.contains(m))
                .max_by_key(|&m| (self.warm_on(m, job).min(1), usize::MAX - m.0))
                .or_else(|| self.machines_with_free().next());
            assert_eq!(picked, scanned, "preferred_free_machine drifted");
        }
        picked
    }

    fn pick_preferred(&self, job: usize, exclude: &[MachineId]) -> Option<MachineId> {
        // Warm machines hold ≥ 1 free slot by construction (`bound` only
        // counts free slots), so the first non-excluded one wins.
        if let Some(warm) = self.warm_machines.get(&job) {
            for &m in warm {
                if !exclude.contains(&MachineId(m)) {
                    debug_assert!(self.free[m] > 0, "warm machine without a free slot");
                    return Some(MachineId(m));
                }
            }
        }
        self.free_set
            .iter()
            .find(|&&m| !exclude.contains(&MachineId(m)))
            .or(self.free_set.first())
            .map(|&m| MachineId(m))
    }

    /// First free machine among `preferred`, if any.
    pub fn first_free_of(&self, preferred: &[MachineId]) -> Option<MachineId> {
        preferred.iter().copied().find(|&m| self.free[m.0] > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (ClusterConfig, Machines) {
        let cfg = ClusterConfig {
            machines: 3,
            slots_per_machine: 2,
            ..Default::default()
        };
        let m = Machines::new(&cfg);
        (cfg, m)
    }

    #[test]
    fn totals() {
        let (cfg, m) = small();
        assert_eq!(cfg.total_slots(), 6);
        assert_eq!(m.total_free(), 6);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn occupy_release_roundtrip_with_warmth() {
        let (_, mut m) = small();
        // Fresh slots are cold.
        assert_eq!(m.occupy_for(MachineId(1), 7), SlotTemp::Cold);
        assert_eq!(m.occupy_for(MachineId(1), 7), SlotTemp::Cold);
        assert_eq!(m.total_free(), 4);
        assert_eq!(m.free_on(MachineId(1)), 0);
        // Released slots are warm for the releasing job.
        m.release_to(MachineId(1), 7);
        assert_eq!(m.warm_on(MachineId(1), 7), 1);
        assert_eq!(m.occupy_for(MachineId(1), 7), SlotTemp::Warm);
        // ... but cold for another job.
        m.release_to(MachineId(1), 7);
        assert_eq!(m.occupy_for(MachineId(1), 9), SlotTemp::Cold);
        assert_eq!(m.warm_on(MachineId(1), 7), 0, "stolen by job 9");
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_panics() {
        let (_, mut m) = small();
        m.release_to(MachineId(0), 0);
        m.release_to(MachineId(0), 0);
        m.release_to(MachineId(0), 0);
    }

    #[test]
    fn free_iteration_and_preference() {
        let (_, mut m) = small();
        m.occupy_for(MachineId(0), 1);
        m.occupy_for(MachineId(0), 1);
        let free: Vec<usize> = m.machines_with_free().map(|x| x.0).collect();
        assert_eq!(free, vec![1, 2]);
        assert_eq!(
            m.first_free_of(&[MachineId(0), MachineId(2)]),
            Some(MachineId(2))
        );
        assert_eq!(m.first_free_of(&[MachineId(0)]), None);
    }

    #[test]
    fn bind_idle_prewarns_slots() {
        let (_, mut m) = small();
        assert_eq!(m.bind_idle(3, 4), 4);
        assert_eq!(m.warm_total(3), 4);
        // Warm slots are consumed warm.
        let mm = m.preferred_free_machine(3, &[]).unwrap();
        assert_eq!(m.occupy_for(mm, 3), SlotTemp::Warm);
        // Binding beyond free capacity binds only what exists.
        assert_eq!(m.bind_idle(4, 100), 5);
        assert_eq!(m.warm_total(4), 5);
        assert_eq!(m.warm_total(3), 0, "job 4 stole job 3's idle warmth");
    }

    #[test]
    fn preferred_machine_prefers_warmth() {
        let (_, mut m) = small();
        m.occupy_for(MachineId(2), 5);
        m.release_to(MachineId(2), 5);
        assert_eq!(m.preferred_free_machine(5, &[]), Some(MachineId(2)));
        assert_eq!(
            m.preferred_free_machine(5, &[MachineId(2)]),
            Some(MachineId(0))
        );
    }

    #[test]
    fn set_down_parks_every_slot_and_forgets_warmth() {
        let (_, mut m) = small();
        m.occupy_for(MachineId(1), 7);
        m.release_to(MachineId(1), 7); // warm slot for job 7 on machine 1
        m.occupy_for(MachineId(1), 9); // one slot occupied (steals warmth)
        m.set_down(MachineId(1));
        assert!(m.is_down(MachineId(1)));
        assert_eq!(m.free_on(MachineId(1)), 0);
        assert_eq!(m.warm_on(MachineId(1), 7), 0);
        assert_eq!(m.total_free(), 4, "only machines 0 and 2 contribute");
        assert!(m.machines_with_free().all(|x| x != MachineId(1)));
        // Recovery restores a fully free, fully cold machine.
        m.set_up(MachineId(1));
        assert!(!m.is_down(MachineId(1)));
        assert_eq!(m.free_on(MachineId(1)), 2);
        assert_eq!(m.total_free(), 6);
        assert_eq!(m.occupy_for(MachineId(1), 7), SlotTemp::Cold);
    }

    #[test]
    fn bind_idle_skips_down_machines() {
        let (_, mut m) = small();
        m.set_down(MachineId(0));
        assert_eq!(m.bind_idle(3, 10), 4, "only machines 1 and 2 bind");
        assert!(m.warm_on(MachineId(0), 3) == 0);
    }

    #[test]
    #[should_panic(expected = "occupy on down machine")]
    fn occupy_on_down_machine_panics() {
        let (_, mut m) = small();
        m.set_down(MachineId(2));
        m.occupy_for(MachineId(2), 1);
    }

    #[test]
    #[should_panic(expected = "release to down machine")]
    fn release_to_down_machine_panics() {
        let (_, mut m) = small();
        m.occupy_for(MachineId(2), 1);
        m.set_down(MachineId(2));
        m.release_to(MachineId(2), 1);
    }

    #[test]
    fn transfer_time_math() {
        let cfg = ClusterConfig {
            bandwidth_mbps: 100.0,
            ..Default::default()
        };
        assert_eq!(cfg.transfer_ms(0.0), 0.0);
        assert!((cfg.transfer_ms(50.0) - 500.0).abs() < 1e-9);
    }
}
