//! The physical cluster: machines with compute slots, and slot↔job
//! affinity ("warm" slots).
//!
//! Mirrors the paper's testbed shape (§7.1: 200 machines, multiple slots
//! each). Slots are fungible within a machine; machine identity matters
//! for data locality and for the decentralized per-worker queues.
//!
//! **Warm slots.** Handing a slot from one job to another costs a
//! scheduling round-trip plus container/executor setup (YARN heartbeat +
//! container launch; Spark executor hand-off). A slot freed by a job stays
//! *bound* (warm) to it: relaunching within the same job is instant, while
//! taking over a foreign slot pays [`ClusterConfig::handoff_ms`]. This is
//! the mechanism that makes slot *reservation* (Hopper's held slots,
//! Figure 2) physically meaningful: binding happens while the slot idles,
//! so the job's next speculative copy starts immediately.

use crate::ids::MachineId;

/// Static cluster and execution-model parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of machines.
    pub machines: usize,
    /// Compute slots per machine.
    pub slots_per_machine: usize,
    /// DFS replication factor: input tasks may run locally on this many
    /// machines (3 in HDFS and in the paper's setup).
    pub dfs_replicas: usize,
    /// Duration multiplier for an input task reading its data remotely
    /// (non-local placement). ~1.1–1.3 in measurement studies.
    pub remote_read_penalty: f64,
    /// Per-slot network bandwidth in MB/s used to convert intermediate
    /// data volume into transfer time (drives α and shuffle durations).
    pub bandwidth_mbps: f64,
    /// Fraction of upstream tasks that must finish before a downstream
    /// phase becomes eligible. 1.0 = strict barrier (default); lower
    /// values emulate Hadoop "slowstart" pipelining.
    pub slowstart_fraction: f64,
    /// Upper clamp on the per-copy Pareto duration multiplier, bounding
    /// pathological tail draws (production stragglers observed up to ~8×;
    /// we allow well beyond that, the clamp only guards simulation time).
    pub max_straggle_factor: f64,
    /// Cost (ms) of handing a slot to a *different* job: scheduler
    /// round-trip plus container/executor start. Zero for long-lived
    /// shared executors (the Sparrow/decentralized setting).
    pub handoff_ms: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            machines: 200,
            slots_per_machine: 16,
            dfs_replicas: 3,
            remote_read_penalty: 1.2,
            bandwidth_mbps: 125.0, // 1 Gbps, as in the paper's cluster
            slowstart_fraction: 1.0,
            max_straggle_factor: 40.0,
            handoff_ms: 1000,
        }
    }
}

impl ClusterConfig {
    /// Total slot count.
    pub fn total_slots(&self) -> usize {
        self.machines * self.slots_per_machine
    }

    /// Convert an intermediate data volume (MB) into transfer milliseconds
    /// at per-slot bandwidth.
    pub fn transfer_ms(&self, mb: f64) -> f64 {
        if mb <= 0.0 {
            0.0
        } else {
            mb / self.bandwidth_mbps * 1000.0
        }
    }
}

/// Whether an occupied slot was already warm for the job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotTemp {
    /// Slot was bound to the launching job: no handoff cost.
    Warm,
    /// Slot was unbound or bound to another job: pays the handoff cost.
    Cold,
}

/// Ascending set of machine ids as a fixed-width bitset. The slot-holding
/// bind/steal churn hits these sets on nearly every dispatch; a bitset
/// makes membership flips branchless O(1) and `first`/`next_after` a short
/// word scan (32 words for a 2 000-machine cluster), where the `BTreeSet`
/// this replaces paid a node allocation and a pointer chase per flip.
/// Iteration order is ascending machine id — identical to the tree's.
#[derive(Debug, Clone, Default)]
struct MachineSet {
    words: Vec<u64>,
}

impl MachineSet {
    fn empty(n: usize) -> Self {
        MachineSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    fn full(n: usize) -> Self {
        let mut s = Self::empty(n);
        for m in 0..n {
            s.words[m / 64] |= 1 << (m % 64);
        }
        s
    }

    #[inline]
    fn insert(&mut self, m: usize) {
        self.words[m / 64] |= 1 << (m % 64);
    }

    #[inline]
    fn remove(&mut self, m: usize) {
        self.words[m / 64] &= !(1 << (m % 64));
    }

    /// Smallest member, if any.
    fn first(&self) -> Option<usize> {
        self.scan(0, self.words.first().copied().unwrap_or(0))
    }

    fn scan(&self, mut wi: usize, mut cur: u64) -> Option<usize> {
        loop {
            if cur != 0 {
                return Some(wi * 64 + cur.trailing_zeros() as usize);
            }
            wi += 1;
            cur = *self.words.get(wi)?;
        }
    }

    /// Insert, growing the word array on demand. The per-job warm sets
    /// start as empty (zero-word) sets and only ever pay for the highest
    /// machine id they have seen, so a dense job-indexed table of them
    /// stays cheap for jobs that never hold warmth.
    #[inline]
    fn insert_grow(&mut self, m: usize) {
        let wi = m / 64;
        if self.words.len() <= wi {
            self.words.resize(wi + 1, 0);
        }
        self.words[wi] |= 1 << (m % 64);
    }

    /// Members in ascending order.
    fn iter(&self) -> MachineSetIter<'_> {
        MachineSetIter {
            words: &self.words,
            wi: 0,
            cur: self.words.first().copied().unwrap_or(0),
        }
    }
}

struct MachineSetIter<'a> {
    words: &'a [u64],
    wi: usize,
    cur: u64,
}

impl Iterator for MachineSetIter<'_> {
    type Item = usize;
    fn next(&mut self) -> Option<usize> {
        loop {
            if self.cur != 0 {
                let b = self.cur.trailing_zeros() as usize;
                self.cur &= self.cur - 1;
                return Some(self.wi * 64 + b);
            }
            self.wi += 1;
            self.cur = *self.words.get(self.wi)?;
        }
    }
}

/// One machine's warm-slot counts: `(job, count)` ascending by job id.
/// A machine has at most `slots_per_machine` warm entries (each counts a
/// *free* slot), so linear probes over an inline vector beat the
/// `BTreeMap` this replaces — the bind/steal hot path was dominated by
/// tree-node allocator traffic. The smallest-id reads (`first_job`,
/// `first_other`) that the deterministic victim picks rely on are the
/// leading elements of the sorted vector.
#[derive(Debug, Clone, Default)]
struct WarmCounts {
    e: Vec<(usize, usize)>,
}

impl WarmCounts {
    fn is_empty(&self) -> bool {
        self.e.is_empty()
    }

    fn get(&self, job: usize) -> usize {
        self.e
            .iter()
            .find(|&&(j, _)| j == job)
            .map_or(0, |&(_, c)| c)
    }

    fn contains(&self, job: usize) -> bool {
        self.e.iter().any(|&(j, _)| j == job)
    }

    /// Number of distinct jobs with warm slots here.
    fn distinct(&self) -> usize {
        self.e.len()
    }

    /// Smallest job id with a warm slot here.
    fn first_job(&self) -> Option<usize> {
        self.e.first().map(|&(j, _)| j)
    }

    /// Smallest job id with a warm slot here, excluding `job`.
    fn first_other(&self, job: usize) -> Option<usize> {
        self.e.iter().map(|&(j, _)| j).find(|&j| j != job)
    }

    /// Add `k` warm slots for `job`; returns whether the job was absent
    /// before (0 → k transition).
    fn inc_by(&mut self, job: usize, k: usize) -> bool {
        match self.e.iter().position(|&(j, _)| j >= job) {
            Some(i) if self.e[i].0 == job => {
                self.e[i].1 += k;
                false
            }
            Some(i) => {
                self.e.insert(i, (job, k));
                true
            }
            None => {
                self.e.push((job, k));
                true
            }
        }
    }

    /// Drop `k` warm slots of `job` (entry removed at zero); returns the
    /// new count. Panics if the job has fewer than `k`.
    fn dec_by(&mut self, job: usize, k: usize) -> usize {
        let i = self
            .e
            .iter()
            .position(|&(j, _)| j == job)
            .expect("warm slot to consume");
        self.e[i].1 -= k;
        let c = self.e[i].1;
        if c == 0 {
            self.e.remove(i);
        }
        c
    }

    /// Entries in ascending job order (debug-oracle reconciliation).
    #[cfg(debug_assertions)]
    fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.e.iter().copied()
    }

    fn take(&mut self) -> Vec<(usize, usize)> {
        std::mem::take(&mut self.e)
    }
}

/// Dynamic slot occupancy across machines, with per-job slot affinity.
///
/// Beyond the per-machine arrays, the struct maintains deterministic
/// indices — ascending-ordered sets of machines with free / unbound /
/// bound slots, plus per-job warm-machine sets and warm totals — so that
/// the hot queries (`machines_with_free`, `preferred_free_machine`,
/// `warm_total`, `bind_idle`) cost O(1)-ish instead of O(M) /
/// O(M·jobs) scans. Every index iterates in ascending machine id, the
/// exact order the replaced scans used, so placement tie-breaking is
/// bit-identical (see DESIGN.md, "Index invariants").
#[derive(Debug, Clone)]
pub struct Machines {
    /// Per machine: free slots bound (warm) per job, ascending job id (the
    /// deterministic smallest-id victim pick is a leading read).
    bound: Vec<WarmCounts>,
    /// Per machine: free slots bound to no job.
    unbound: Vec<usize>,
    /// Per machine: total free (cache of unbound + Σ bound).
    free: Vec<usize>,
    slots_per_machine: usize,
    total_free: usize,
    /// Machines with at least one free slot, ascending.
    free_set: MachineSet,
    /// Machines with at least one unbound free slot, ascending.
    unbound_set: MachineSet,
    /// Machines with at least one warm (bound) slot, ascending.
    bound_set: MachineSet,
    /// Machines whose warm slots span ≥ 2 distinct jobs, ascending. Lets
    /// the steal walk of [`Machines::bind_idle`] compute "machines with
    /// warmth foreign to job j" with pure word ops:
    /// `(bound & !warm_machines[j]) | (multi & warm_machines[j])` — a
    /// machine has foreign warmth iff someone is warm there and j is not,
    /// or j is warm there alongside at least one other job.
    multi_set: MachineSet,
    /// job → machines where the job has ≥ 1 warm slot, as an ascending
    /// bitset (dense by job id, grown on demand; empty set = no warmth).
    /// A bitset instead of a sorted vector because the steal churn of
    /// `bind_idle` flips one machine in and one out per transfer — O(1)
    /// word ops, where the vector paid a binary search plus a memmove.
    warm_machines: Vec<MachineSet>,
    /// job → total free slots bound to it (dense by job id, grown on
    /// demand; 0 = no warmth).
    warm_totals: Vec<usize>,
    /// Total bound (warm) slots across the cluster (Σ warm_totals).
    total_bound: usize,
    /// Machines currently failed (dynamics plane). A down machine has no
    /// free, unbound, or bound slots, so every index skips it naturally;
    /// the flag guards against accidental occupy/release while down.
    down: Vec<bool>,
}

impl Machines {
    /// All slots free and unbound.
    pub fn new(cfg: &ClusterConfig) -> Self {
        let all = if cfg.slots_per_machine > 0 {
            MachineSet::full(cfg.machines)
        } else {
            MachineSet::empty(cfg.machines)
        };
        Machines {
            bound: vec![WarmCounts::default(); cfg.machines],
            unbound: vec![cfg.slots_per_machine; cfg.machines],
            free: vec![cfg.slots_per_machine; cfg.machines],
            slots_per_machine: cfg.slots_per_machine,
            total_free: cfg.total_slots(),
            free_set: all.clone(),
            unbound_set: all,
            bound_set: MachineSet::empty(cfg.machines),
            multi_set: MachineSet::empty(cfg.machines),
            warm_machines: Vec::new(),
            warm_totals: Vec::new(),
            total_bound: 0,
            down: vec![false; cfg.machines],
        }
    }

    /// Grow the dense per-job indices to cover `job`.
    #[inline]
    fn ensure_job(&mut self, job: usize) {
        if self.warm_totals.len() <= job {
            self.warm_totals.resize(job + 1, 0);
            self.warm_machines.resize(job + 1, MachineSet::default());
        }
    }

    /// Take machine `m` out of the cluster (machine failure). Its free
    /// slots leave every pool and its warm bindings are forgotten; slots
    /// occupied by (now killed) copies are simply gone — the machine
    /// rejoins fully reset via [`Machines::set_up`]. Panics on double
    /// failure.
    pub fn set_down(&mut self, m: MachineId) {
        let m = m.0;
        assert!(!self.down[m], "machine {m} failed while already down");
        self.down[m] = true;
        self.total_free -= self.free[m];
        self.free[m] = 0;
        self.free_set.remove(m);
        self.unbound[m] = 0;
        self.unbound_set.remove(m);
        for (job, c) in self.bound[m].take() {
            self.total_bound -= c;
            self.warm_totals[job] -= c;
            self.warm_machines[job].remove(m);
        }
        self.bound_set.remove(m);
        self.multi_set.remove(m);
        #[cfg(debug_assertions)]
        self.debug_check_index();
    }

    /// Return a failed machine to service with every slot free and
    /// unbound (the reboot lost all executor warmth). Panics if `m` is
    /// not down.
    pub fn set_up(&mut self, m: MachineId) {
        let m = m.0;
        assert!(self.down[m], "machine {m} recovered while up");
        self.down[m] = false;
        self.free[m] = self.slots_per_machine;
        self.unbound[m] = self.slots_per_machine;
        self.total_free += self.slots_per_machine;
        if self.slots_per_machine > 0 {
            self.free_set.insert(m);
            self.unbound_set.insert(m);
        }
        #[cfg(debug_assertions)]
        self.debug_check_index();
    }

    /// Whether machine `m` is currently down (failed).
    pub fn is_down(&self, m: MachineId) -> bool {
        self.down[m.0]
    }

    /// One free slot disappears on `m`.
    fn free_dec(&mut self, m: usize) {
        self.free[m] -= 1;
        self.total_free -= 1;
        if self.free[m] == 0 {
            self.free_set.remove(m);
        }
    }

    /// One free slot appears on `m`.
    fn free_inc(&mut self, m: usize) {
        if self.free[m] == 0 {
            self.free_set.insert(m);
        }
        self.free[m] += 1;
        self.total_free += 1;
    }

    /// One unbound free slot disappears on `m`.
    fn unbound_dec(&mut self, m: usize) {
        self.unbound[m] -= 1;
        if self.unbound[m] == 0 {
            self.unbound_set.remove(m);
        }
    }

    /// Bind one free slot on `m` to `job` (warm count +1).
    fn bound_inc(&mut self, m: usize, job: usize) {
        self.bound_inc_by(m, job, 1);
    }

    /// Bind `k` free slots on `m` to `job` in one index update — the
    /// bind/steal loops transfer whole per-machine holdings at once, so
    /// batching turns per-slot index churn into per-(machine, job) churn.
    fn bound_inc_by(&mut self, m: usize, job: usize, k: usize) {
        if k == 0 {
            return;
        }
        self.ensure_job(job);
        if self.bound[m].inc_by(job, k) {
            self.warm_machines[job].insert_grow(m);
            self.bound_set.insert(m);
            self.refresh_multi(m);
        }
        self.warm_totals[job] += k;
        self.total_bound += k;
    }

    /// Keep `multi_set` consistent with the distinct-job count of `m`'s
    /// warm map after a membership change.
    #[inline]
    fn refresh_multi(&mut self, m: usize) {
        if self.bound[m].distinct() >= 2 {
            self.multi_set.insert(m);
        } else {
            self.multi_set.remove(m);
        }
    }

    /// Unbind one of `job`'s warm slots on `m` (warm count −1).
    fn bound_dec(&mut self, m: usize, job: usize) {
        self.bound_dec_by(m, job, 1);
    }

    /// Unbind `k` of `job`'s warm slots on `m` in one index update.
    fn bound_dec_by(&mut self, m: usize, job: usize, k: usize) {
        if k == 0 {
            return;
        }
        if self.bound[m].dec_by(job, k) == 0 {
            self.warm_machines[job].remove(m);
            if self.bound[m].is_empty() {
                self.bound_set.remove(m);
            }
            self.refresh_multi(m);
        }
        self.warm_totals[job] -= k;
        self.total_bound -= k;
    }

    /// Move `k` warm slots on `m` from job `from` to job `to` in one index
    /// update — the steal path of [`Machines::bind_idle`]. Equivalent to
    /// `bound_dec_by(m, from, k); bound_inc_by(m, to, k)` but skips the
    /// updates that cancel: `total_bound` is unchanged and `m` stays in
    /// `bound_set` throughout (it holds `to`'s slots the moment it loses
    /// `from`'s).
    fn bound_transfer(&mut self, m: usize, from: usize, to: usize, k: usize) {
        self.ensure_job(to);
        let mut changed = self.bound[m].dec_by(from, k) == 0;
        if changed {
            self.warm_machines[from].remove(m);
        }
        if self.bound[m].inc_by(to, k) {
            self.warm_machines[to].insert_grow(m);
            changed = true;
        }
        if changed {
            self.refresh_multi(m);
        }
        self.warm_totals[from] -= k;
        self.warm_totals[to] += k;
    }

    /// Debug-build oracle: every index must match the per-machine arrays.
    /// Sampled (every 64th mutation) — the reconciliation is O(M) and
    /// would otherwise dominate dev-profile test time on large clusters.
    #[cfg(debug_assertions)]
    fn debug_check_index(&self) {
        use std::sync::atomic::{AtomicU64, Ordering};
        static TICK: AtomicU64 = AtomicU64::new(0);
        if !TICK.fetch_add(1, Ordering::Relaxed).is_multiple_of(64) {
            return;
        }
        let free_set: Vec<usize> = (0..self.free.len()).filter(|&m| self.free[m] > 0).collect();
        assert_eq!(
            free_set,
            self.free_set.iter().collect::<Vec<_>>(),
            "free_set drifted"
        );
        let unbound_set: Vec<usize> = (0..self.unbound.len())
            .filter(|&m| self.unbound[m] > 0)
            .collect();
        assert_eq!(
            unbound_set,
            self.unbound_set.iter().collect::<Vec<_>>(),
            "unbound_set drifted"
        );
        let bound_set: Vec<usize> = (0..self.bound.len())
            .filter(|&m| !self.bound[m].is_empty())
            .collect();
        assert_eq!(
            bound_set,
            self.bound_set.iter().collect::<Vec<_>>(),
            "bound_set drifted"
        );
        let multi_set: Vec<usize> = (0..self.bound.len())
            .filter(|&m| self.bound[m].distinct() >= 2)
            .collect();
        assert_eq!(
            multi_set,
            self.multi_set.iter().collect::<Vec<_>>(),
            "multi_set drifted"
        );
        let jobs = self.warm_totals.len();
        let mut warm_machines: Vec<Vec<usize>> = vec![Vec::new(); jobs];
        let mut warm_totals: Vec<usize> = vec![0; jobs];
        for (m, b) in self.bound.iter().enumerate() {
            for (job, c) in b.iter() {
                assert!(c > 0, "zero-count bound entry survived");
                assert!(job < jobs, "bound entry beyond the dense job index");
                warm_machines[job].push(m);
                warm_totals[job] += c;
            }
        }
        for wm in &mut warm_machines {
            wm.sort_unstable();
        }
        let indexed: Vec<Vec<usize>> = self
            .warm_machines
            .iter()
            .map(|s| s.iter().collect())
            .collect();
        assert_eq!(warm_machines, indexed, "warm_machines drifted");
        assert_eq!(
            warm_totals.iter().sum::<usize>(),
            self.total_bound,
            "total_bound drifted"
        );
        assert_eq!(warm_totals, self.warm_totals, "warm_totals drifted");
        for m in 0..self.free.len() {
            let bound_sum: usize = self.bound[m].iter().map(|(_, c)| c).sum();
            assert_eq!(
                self.free[m],
                self.unbound[m] + bound_sum,
                "free/unbound/bound accounting broke on machine {m}"
            );
        }
    }

    /// Number of machines.
    pub fn len(&self) -> usize {
        self.free.len()
    }

    /// True when the cluster has no machines (degenerate configs in tests).
    pub fn is_empty(&self) -> bool {
        self.free.is_empty()
    }

    /// Total free slots across the cluster.
    pub fn total_free(&self) -> usize {
        self.total_free
    }

    /// Free slots on one machine.
    pub fn free_on(&self, m: MachineId) -> usize {
        self.free[m.0]
    }

    /// Free slots on `m` already bound to `job`.
    pub fn warm_on(&self, m: MachineId, job: usize) -> usize {
        self.bound[m.0].get(job)
    }

    /// Total free slots bound to `job` across the cluster. O(1).
    pub fn warm_total(&self, job: usize) -> usize {
        let total = self.warm_totals.get(job).copied().unwrap_or(0);
        debug_assert_eq!(total, self.bound.iter().map(|b| b.get(job)).sum::<usize>());
        total
    }

    /// Occupy one slot on `m` for `job`, consuming a warm slot when
    /// available. Returns whether the slot was warm. Panics if `m` has no
    /// free slot (callers check first).
    pub fn occupy_for(&mut self, m: MachineId, job: usize) -> SlotTemp {
        assert!(!self.down[m.0], "occupy on down machine {}", m.0);
        assert!(self.free[m.0] > 0, "occupy on full machine {}", m.0);
        self.free_dec(m.0);
        let temp = if self.bound[m.0].contains(job) {
            self.bound_dec(m.0, job);
            SlotTemp::Warm
        } else if self.unbound[m.0] > 0 {
            self.unbound_dec(m.0);
            SlotTemp::Cold
        } else {
            // Steal a slot bound to some other job (deterministic:
            // smallest id = the sorted vector's first entry).
            let victim = self.bound[m.0]
                .first_job()
                .expect("free slot must exist somewhere");
            self.bound_dec(m.0, victim);
            SlotTemp::Cold
        };
        #[cfg(debug_assertions)]
        self.debug_check_index();
        temp
    }

    /// Release one slot on `m`, leaving it warm (bound) for `job`.
    /// Panics on double release.
    pub fn release_to(&mut self, m: MachineId, job: usize) {
        assert!(!self.down[m.0], "release to down machine {}", m.0);
        assert!(
            self.free[m.0] < self.slots_per_machine,
            "double release on machine {}",
            m.0
        );
        self.free_inc(m.0);
        self.bound_inc(m.0, job);
        #[cfg(debug_assertions)]
        self.debug_check_index();
    }

    /// Re-bind up to `want` currently-free slots to `job` (Hopper's slot
    /// holding: prepare containers while the slot idles). Unbound slots are
    /// consumed first, then slots warm for other jobs. Returns how many
    /// were bound (beyond those already warm for `job`).
    ///
    /// Both passes walk machines in ascending id, exactly like the O(M)
    /// scans they replace — but only over machines that actually hold an
    /// unbound (pass 1) or foreign-warm (pass 2) slot.
    pub fn bind_idle(&mut self, job: usize, want: usize) -> usize {
        let mut bound = 0;
        // Pass 1: unbound slots, smallest machine first. Draining the set
        // head either consumes the machine's last unbound slot (removing
        // it from the set) or satisfies `want`, so this makes progress
        // every step without materializing the whole set.
        while bound < want {
            let Some(m) = self.unbound_set.first() else {
                break;
            };
            let take = (want - bound).min(self.unbound[m]);
            self.unbound[m] -= take;
            if self.unbound[m] == 0 {
                self.unbound_set.remove(m);
            }
            self.bound_inc_by(m, job, take);
            bound += take;
        }
        // Pass 2: steal from other jobs' warm slots (ascending machine,
        // smallest victim job id first on each machine). `foreign` bounds
        // the walk: once every remaining warm slot belongs to `job`
        // itself — the common steady state after a high-priority job has
        // absorbed the cluster's idle warmth — there is nothing to steal.
        // Candidate machines are found word-parallel: a machine has
        // warmth foreign to `job` iff it is bound and `job` is not warm
        // there, or `job` is warm there alongside ≥ 2 distinct jobs
        // (`multi_set`) — so whole words of `job`'s own warm machines are
        // skipped without per-machine probes. Draining a machine clears
        // its candidate bit (all its foreign warmth now belongs to
        // `job`), so re-deriving the word after each machine terminates.
        let mut foreign = self.total_bound - self.warm_totals.get(job).copied().unwrap_or(0);
        let nwords = self.bound_set.words.len();
        'words: for wi in 0..nwords {
            loop {
                if bound >= want || foreign == 0 {
                    break 'words;
                }
                let mine = self
                    .warm_machines
                    .get(job)
                    .and_then(|s| s.words.get(wi))
                    .copied()
                    .unwrap_or(0);
                let cand = (self.bound_set.words[wi] & !mine) | (self.multi_set.words[wi] & mine);
                if cand == 0 {
                    continue 'words;
                }
                let m = wi * 64 + cand.trailing_zeros() as usize;
                while bound < want {
                    let Some(v) = self.bound[m].first_other(job) else {
                        break;
                    };
                    let take = (want - bound).min(self.bound[m].get(v));
                    self.bound_transfer(m, v, job, take);
                    bound += take;
                    foreign -= take;
                }
            }
        }
        #[cfg(debug_assertions)]
        self.debug_check_index();
        bound
    }

    /// Iterate machines that currently have at least one free slot, in
    /// ascending id order. O(free machines), not O(M).
    pub fn machines_with_free(&self) -> impl Iterator<Item = MachineId> + '_ {
        self.free_set.iter().map(MachineId)
    }

    /// A free machine for `job`, preferring one where the job has a warm
    /// slot, skipping `exclude`; falls back to the first free machine
    /// (even an excluded one) when every candidate is excluded — the
    /// historical contract of the O(M) `max_by_key` scan this replaces.
    /// `exclude` is at most a couple of busy machines, so the membership
    /// probe is a small-vec early-out, not the old full rescan.
    pub fn preferred_free_machine(&self, job: usize, exclude: &[MachineId]) -> Option<MachineId> {
        let picked = self.pick_preferred(job, exclude);
        #[cfg(debug_assertions)]
        {
            let scanned = self
                .machines_with_free()
                .filter(|m| !exclude.contains(m))
                .max_by_key(|&m| (self.warm_on(m, job).min(1), usize::MAX - m.0))
                .or_else(|| self.machines_with_free().next());
            assert_eq!(picked, scanned, "preferred_free_machine drifted");
        }
        picked
    }

    fn pick_preferred(&self, job: usize, exclude: &[MachineId]) -> Option<MachineId> {
        // Warm machines hold ≥ 1 free slot by construction (`bound` only
        // counts free slots), so the first non-excluded one wins.
        if let Some(warm) = self.warm_machines.get(job) {
            for m in warm.iter() {
                if !exclude.contains(&MachineId(m)) {
                    debug_assert!(self.free[m] > 0, "warm machine without a free slot");
                    return Some(MachineId(m));
                }
            }
        }
        self.free_set
            .iter()
            .find(|&m| !exclude.contains(&MachineId(m)))
            .or(self.free_set.first())
            .map(MachineId)
    }

    /// First free machine among `preferred`, if any.
    pub fn first_free_of(&self, preferred: &[MachineId]) -> Option<MachineId> {
        preferred.iter().copied().find(|&m| self.free[m.0] > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (ClusterConfig, Machines) {
        let cfg = ClusterConfig {
            machines: 3,
            slots_per_machine: 2,
            ..Default::default()
        };
        let m = Machines::new(&cfg);
        (cfg, m)
    }

    #[test]
    fn totals() {
        let (cfg, m) = small();
        assert_eq!(cfg.total_slots(), 6);
        assert_eq!(m.total_free(), 6);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn occupy_release_roundtrip_with_warmth() {
        let (_, mut m) = small();
        // Fresh slots are cold.
        assert_eq!(m.occupy_for(MachineId(1), 7), SlotTemp::Cold);
        assert_eq!(m.occupy_for(MachineId(1), 7), SlotTemp::Cold);
        assert_eq!(m.total_free(), 4);
        assert_eq!(m.free_on(MachineId(1)), 0);
        // Released slots are warm for the releasing job.
        m.release_to(MachineId(1), 7);
        assert_eq!(m.warm_on(MachineId(1), 7), 1);
        assert_eq!(m.occupy_for(MachineId(1), 7), SlotTemp::Warm);
        // ... but cold for another job.
        m.release_to(MachineId(1), 7);
        assert_eq!(m.occupy_for(MachineId(1), 9), SlotTemp::Cold);
        assert_eq!(m.warm_on(MachineId(1), 7), 0, "stolen by job 9");
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_panics() {
        let (_, mut m) = small();
        m.release_to(MachineId(0), 0);
        m.release_to(MachineId(0), 0);
        m.release_to(MachineId(0), 0);
    }

    #[test]
    fn free_iteration_and_preference() {
        let (_, mut m) = small();
        m.occupy_for(MachineId(0), 1);
        m.occupy_for(MachineId(0), 1);
        let free: Vec<usize> = m.machines_with_free().map(|x| x.0).collect();
        assert_eq!(free, vec![1, 2]);
        assert_eq!(
            m.first_free_of(&[MachineId(0), MachineId(2)]),
            Some(MachineId(2))
        );
        assert_eq!(m.first_free_of(&[MachineId(0)]), None);
    }

    #[test]
    fn bind_idle_prewarns_slots() {
        let (_, mut m) = small();
        assert_eq!(m.bind_idle(3, 4), 4);
        assert_eq!(m.warm_total(3), 4);
        // Warm slots are consumed warm.
        let mm = m.preferred_free_machine(3, &[]).unwrap();
        assert_eq!(m.occupy_for(mm, 3), SlotTemp::Warm);
        // Binding beyond free capacity binds only what exists.
        assert_eq!(m.bind_idle(4, 100), 5);
        assert_eq!(m.warm_total(4), 5);
        assert_eq!(m.warm_total(3), 0, "job 4 stole job 3's idle warmth");
    }

    #[test]
    fn preferred_machine_prefers_warmth() {
        let (_, mut m) = small();
        m.occupy_for(MachineId(2), 5);
        m.release_to(MachineId(2), 5);
        assert_eq!(m.preferred_free_machine(5, &[]), Some(MachineId(2)));
        assert_eq!(
            m.preferred_free_machine(5, &[MachineId(2)]),
            Some(MachineId(0))
        );
    }

    #[test]
    fn set_down_parks_every_slot_and_forgets_warmth() {
        let (_, mut m) = small();
        m.occupy_for(MachineId(1), 7);
        m.release_to(MachineId(1), 7); // warm slot for job 7 on machine 1
        m.occupy_for(MachineId(1), 9); // one slot occupied (steals warmth)
        m.set_down(MachineId(1));
        assert!(m.is_down(MachineId(1)));
        assert_eq!(m.free_on(MachineId(1)), 0);
        assert_eq!(m.warm_on(MachineId(1), 7), 0);
        assert_eq!(m.total_free(), 4, "only machines 0 and 2 contribute");
        assert!(m.machines_with_free().all(|x| x != MachineId(1)));
        // Recovery restores a fully free, fully cold machine.
        m.set_up(MachineId(1));
        assert!(!m.is_down(MachineId(1)));
        assert_eq!(m.free_on(MachineId(1)), 2);
        assert_eq!(m.total_free(), 6);
        assert_eq!(m.occupy_for(MachineId(1), 7), SlotTemp::Cold);
    }

    #[test]
    fn bind_idle_skips_down_machines() {
        let (_, mut m) = small();
        m.set_down(MachineId(0));
        assert_eq!(m.bind_idle(3, 10), 4, "only machines 1 and 2 bind");
        assert!(m.warm_on(MachineId(0), 3) == 0);
    }

    #[test]
    #[should_panic(expected = "occupy on down machine")]
    fn occupy_on_down_machine_panics() {
        let (_, mut m) = small();
        m.set_down(MachineId(2));
        m.occupy_for(MachineId(2), 1);
    }

    #[test]
    #[should_panic(expected = "release to down machine")]
    fn release_to_down_machine_panics() {
        let (_, mut m) = small();
        m.occupy_for(MachineId(2), 1);
        m.set_down(MachineId(2));
        m.release_to(MachineId(2), 1);
    }

    #[test]
    fn transfer_time_math() {
        let cfg = ClusterConfig {
            bandwidth_mbps: 100.0,
            ..Default::default()
        };
        assert_eq!(cfg.transfer_ms(0.0), 0.0);
        assert!((cfg.transfer_ms(50.0) - 500.0).abs() < 1e-9);
    }
}
