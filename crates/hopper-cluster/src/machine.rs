//! The physical cluster: machines with compute slots, and slot↔job
//! affinity ("warm" slots).
//!
//! Mirrors the paper's testbed shape (§7.1: 200 machines, multiple slots
//! each). Slots are fungible within a machine; machine identity matters
//! for data locality and for the decentralized per-worker queues.
//!
//! **Warm slots.** Handing a slot from one job to another costs a
//! scheduling round-trip plus container/executor setup (YARN heartbeat +
//! container launch; Spark executor hand-off). A slot freed by a job stays
//! *bound* (warm) to it: relaunching within the same job is instant, while
//! taking over a foreign slot pays [`ClusterConfig::handoff_ms`]. This is
//! the mechanism that makes slot *reservation* (Hopper's held slots,
//! Figure 2) physically meaningful: binding happens while the slot idles,
//! so the job's next speculative copy starts immediately.

use std::collections::HashMap;

use crate::ids::MachineId;

/// Static cluster and execution-model parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of machines.
    pub machines: usize,
    /// Compute slots per machine.
    pub slots_per_machine: usize,
    /// DFS replication factor: input tasks may run locally on this many
    /// machines (3 in HDFS and in the paper's setup).
    pub dfs_replicas: usize,
    /// Duration multiplier for an input task reading its data remotely
    /// (non-local placement). ~1.1–1.3 in measurement studies.
    pub remote_read_penalty: f64,
    /// Per-slot network bandwidth in MB/s used to convert intermediate
    /// data volume into transfer time (drives α and shuffle durations).
    pub bandwidth_mbps: f64,
    /// Fraction of upstream tasks that must finish before a downstream
    /// phase becomes eligible. 1.0 = strict barrier (default); lower
    /// values emulate Hadoop "slowstart" pipelining.
    pub slowstart_fraction: f64,
    /// Upper clamp on the per-copy Pareto duration multiplier, bounding
    /// pathological tail draws (production stragglers observed up to ~8×;
    /// we allow well beyond that, the clamp only guards simulation time).
    pub max_straggle_factor: f64,
    /// Cost (ms) of handing a slot to a *different* job: scheduler
    /// round-trip plus container/executor start. Zero for long-lived
    /// shared executors (the Sparrow/decentralized setting).
    pub handoff_ms: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            machines: 200,
            slots_per_machine: 16,
            dfs_replicas: 3,
            remote_read_penalty: 1.2,
            bandwidth_mbps: 125.0, // 1 Gbps, as in the paper's cluster
            slowstart_fraction: 1.0,
            max_straggle_factor: 40.0,
            handoff_ms: 1000,
        }
    }
}

impl ClusterConfig {
    /// Total slot count.
    pub fn total_slots(&self) -> usize {
        self.machines * self.slots_per_machine
    }

    /// Convert an intermediate data volume (MB) into transfer milliseconds
    /// at per-slot bandwidth.
    pub fn transfer_ms(&self, mb: f64) -> f64 {
        if mb <= 0.0 {
            0.0
        } else {
            mb / self.bandwidth_mbps * 1000.0
        }
    }
}

/// Whether an occupied slot was already warm for the job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotTemp {
    /// Slot was bound to the launching job: no handoff cost.
    Warm,
    /// Slot was unbound or bound to another job: pays the handoff cost.
    Cold,
}

/// Dynamic slot occupancy across machines, with per-job slot affinity.
#[derive(Debug, Clone)]
pub struct Machines {
    /// Per machine: free slots bound (warm) per job.
    bound: Vec<HashMap<usize, usize>>,
    /// Per machine: free slots bound to no job.
    unbound: Vec<usize>,
    /// Per machine: total free (cache of unbound + Σ bound).
    free: Vec<usize>,
    slots_per_machine: usize,
    total_free: usize,
}

impl Machines {
    /// All slots free and unbound.
    pub fn new(cfg: &ClusterConfig) -> Self {
        Machines {
            bound: vec![HashMap::new(); cfg.machines],
            unbound: vec![cfg.slots_per_machine; cfg.machines],
            free: vec![cfg.slots_per_machine; cfg.machines],
            slots_per_machine: cfg.slots_per_machine,
            total_free: cfg.total_slots(),
        }
    }

    /// Number of machines.
    pub fn len(&self) -> usize {
        self.free.len()
    }

    /// True when the cluster has no machines (degenerate configs in tests).
    pub fn is_empty(&self) -> bool {
        self.free.is_empty()
    }

    /// Total free slots across the cluster.
    pub fn total_free(&self) -> usize {
        self.total_free
    }

    /// Free slots on one machine.
    pub fn free_on(&self, m: MachineId) -> usize {
        self.free[m.0]
    }

    /// Free slots on `m` already bound to `job`.
    pub fn warm_on(&self, m: MachineId, job: usize) -> usize {
        self.bound[m.0].get(&job).copied().unwrap_or(0)
    }

    /// Total free slots bound to `job` across the cluster.
    pub fn warm_total(&self, job: usize) -> usize {
        self.bound
            .iter()
            .map(|b| b.get(&job).copied().unwrap_or(0))
            .sum()
    }

    /// Occupy one slot on `m` for `job`, consuming a warm slot when
    /// available. Returns whether the slot was warm. Panics if `m` has no
    /// free slot (callers check first).
    pub fn occupy_for(&mut self, m: MachineId, job: usize) -> SlotTemp {
        assert!(self.free[m.0] > 0, "occupy on full machine {}", m.0);
        self.free[m.0] -= 1;
        self.total_free -= 1;
        let slots = &mut self.bound[m.0];
        if let Some(c) = slots.get_mut(&job) {
            *c -= 1;
            if *c == 0 {
                slots.remove(&job);
            }
            return SlotTemp::Warm;
        }
        if self.unbound[m.0] > 0 {
            self.unbound[m.0] -= 1;
            return SlotTemp::Cold;
        }
        // Steal a slot bound to some other job (deterministic: smallest id).
        let victim = *slots.keys().min().expect("free slot must exist somewhere");
        let c = slots.get_mut(&victim).unwrap();
        *c -= 1;
        if *c == 0 {
            slots.remove(&victim);
        }
        SlotTemp::Cold
    }

    /// Release one slot on `m`, leaving it warm (bound) for `job`.
    /// Panics on double release.
    pub fn release_to(&mut self, m: MachineId, job: usize) {
        assert!(
            self.free[m.0] < self.slots_per_machine,
            "double release on machine {}",
            m.0
        );
        self.free[m.0] += 1;
        self.total_free += 1;
        *self.bound[m.0].entry(job).or_insert(0) += 1;
    }

    /// Re-bind up to `want` currently-free slots to `job` (Hopper's slot
    /// holding: prepare containers while the slot idles). Unbound slots are
    /// consumed first, then slots warm for other jobs. Returns how many
    /// were bound (beyond those already warm for `job`).
    pub fn bind_idle(&mut self, job: usize, want: usize) -> usize {
        let mut bound = 0;
        // Pass 1: unbound slots.
        for m in 0..self.free.len() {
            while bound < want && self.unbound[m] > 0 {
                self.unbound[m] -= 1;
                *self.bound[m].entry(job).or_insert(0) += 1;
                bound += 1;
            }
            if bound == want {
                return bound;
            }
        }
        // Pass 2: steal from other jobs' warm slots.
        for m in 0..self.free.len() {
            while bound < want {
                let victim = self.bound[m]
                    .iter()
                    .filter(|(&j, &c)| j != job && c > 0)
                    .map(|(&j, _)| j)
                    .min();
                let Some(v) = victim else { break };
                let c = self.bound[m].get_mut(&v).unwrap();
                *c -= 1;
                if *c == 0 {
                    self.bound[m].remove(&v);
                }
                *self.bound[m].entry(job).or_insert(0) += 1;
                bound += 1;
            }
            if bound == want {
                break;
            }
        }
        bound
    }

    /// Iterate machines that currently have at least one free slot.
    pub fn machines_with_free(&self) -> impl Iterator<Item = MachineId> + '_ {
        self.free
            .iter()
            .enumerate()
            .filter(|(_, &f)| f > 0)
            .map(|(i, _)| MachineId(i))
    }

    /// A free machine for `job`, preferring one where the job has a warm
    /// slot, skipping `exclude`.
    pub fn preferred_free_machine(&self, job: usize, exclude: &[MachineId]) -> Option<MachineId> {
        self.machines_with_free()
            .filter(|m| !exclude.contains(m))
            .max_by_key(|&m| (self.warm_on(m, job).min(1), usize::MAX - m.0))
            .or_else(|| self.machines_with_free().next())
    }

    /// First free machine among `preferred`, if any.
    pub fn first_free_of(&self, preferred: &[MachineId]) -> Option<MachineId> {
        preferred.iter().copied().find(|&m| self.free[m.0] > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (ClusterConfig, Machines) {
        let cfg = ClusterConfig {
            machines: 3,
            slots_per_machine: 2,
            ..Default::default()
        };
        let m = Machines::new(&cfg);
        (cfg, m)
    }

    #[test]
    fn totals() {
        let (cfg, m) = small();
        assert_eq!(cfg.total_slots(), 6);
        assert_eq!(m.total_free(), 6);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn occupy_release_roundtrip_with_warmth() {
        let (_, mut m) = small();
        // Fresh slots are cold.
        assert_eq!(m.occupy_for(MachineId(1), 7), SlotTemp::Cold);
        assert_eq!(m.occupy_for(MachineId(1), 7), SlotTemp::Cold);
        assert_eq!(m.total_free(), 4);
        assert_eq!(m.free_on(MachineId(1)), 0);
        // Released slots are warm for the releasing job.
        m.release_to(MachineId(1), 7);
        assert_eq!(m.warm_on(MachineId(1), 7), 1);
        assert_eq!(m.occupy_for(MachineId(1), 7), SlotTemp::Warm);
        // ... but cold for another job.
        m.release_to(MachineId(1), 7);
        assert_eq!(m.occupy_for(MachineId(1), 9), SlotTemp::Cold);
        assert_eq!(m.warm_on(MachineId(1), 7), 0, "stolen by job 9");
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_panics() {
        let (_, mut m) = small();
        m.release_to(MachineId(0), 0);
        m.release_to(MachineId(0), 0);
        m.release_to(MachineId(0), 0);
    }

    #[test]
    fn free_iteration_and_preference() {
        let (_, mut m) = small();
        m.occupy_for(MachineId(0), 1);
        m.occupy_for(MachineId(0), 1);
        let free: Vec<usize> = m.machines_with_free().map(|x| x.0).collect();
        assert_eq!(free, vec![1, 2]);
        assert_eq!(
            m.first_free_of(&[MachineId(0), MachineId(2)]),
            Some(MachineId(2))
        );
        assert_eq!(m.first_free_of(&[MachineId(0)]), None);
    }

    #[test]
    fn bind_idle_prewarns_slots() {
        let (_, mut m) = small();
        assert_eq!(m.bind_idle(3, 4), 4);
        assert_eq!(m.warm_total(3), 4);
        // Warm slots are consumed warm.
        let mm = m.preferred_free_machine(3, &[]).unwrap();
        assert_eq!(m.occupy_for(mm, 3), SlotTemp::Warm);
        // Binding beyond free capacity binds only what exists.
        assert_eq!(m.bind_idle(4, 100), 5);
        assert_eq!(m.warm_total(4), 5);
        assert_eq!(m.warm_total(3), 0, "job 4 stole job 3's idle warmth");
    }

    #[test]
    fn preferred_machine_prefers_warmth() {
        let (_, mut m) = small();
        m.occupy_for(MachineId(2), 5);
        m.release_to(MachineId(2), 5);
        assert_eq!(m.preferred_free_machine(5, &[]), Some(MachineId(2)));
        assert_eq!(
            m.preferred_free_machine(5, &[MachineId(2)]),
            Some(MachineId(0))
        );
    }

    #[test]
    fn transfer_time_math() {
        let cfg = ClusterConfig {
            bandwidth_mbps: 100.0,
            ..Default::default()
        };
        assert_eq!(cfg.transfer_ms(0.0), 0.0);
        assert!((cfg.transfer_ms(50.0) - 500.0).abs() < 1e-9);
    }
}
