//! Runtime state of jobs: phases, tasks, and execution copies.
//!
//! This module owns the execution semantics shared by both schedulers:
//!
//! - **Straggler model.** Each launched copy draws an i.i.d. duration
//!   `work × X`, `X ~` unit-mean Pareto(β of the job) — the paper's own
//!   analytic model (\[8\]); heavy-tail draws *are* the stragglers. A
//!   speculative copy redraws `X` (different machine, fresh conditions),
//!   which is why speculation helps.
//! - **Race semantics.** The first copy of a task to finish wins; all
//!   other running copies are killed at that instant and their slots
//!   freed (paper §2.2, footnote 1: both run "until the first completes").
//! - **Locality.** Input-phase tasks carry a replica set; running
//!   elsewhere multiplies the duration by the remote-read penalty.
//! - **DAG + shuffle.** A downstream phase becomes eligible when its
//!   upstream phases pass the slow-start fraction; its tasks' durations
//!   include the per-task intermediate-data transfer time, which also
//!   feeds the job's α (remaining transfer vs remaining compute, §4.2).

use std::collections::{BTreeMap, BTreeSet};

use hopper_sim::SimTime;
use hopper_workload::{Dist, TraceJob, TracePhase};
use rand::rngs::StdRng;
use rand::Rng;

use crate::ids::{CopyRef, MachineId, TaskRef};
use crate::machine::ClusterConfig;

/// Lifecycle of one execution copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyStatus {
    /// Occupying a slot.
    Running,
    /// Finished first and won the race.
    Finished,
    /// Killed because a sibling finished first.
    Killed,
}

/// One execution copy of a task.
#[derive(Debug, Clone)]
pub struct Copy {
    /// Machine the copy runs on.
    pub machine: MachineId,
    /// Launch time.
    pub start: SimTime,
    /// Total duration the copy would take if never killed. Schedulers and
    /// speculation policies must not read this directly; they see elapsed
    /// time and progress through [`CopyObservation`].
    pub duration: SimTime,
    /// Current status.
    pub status: CopyStatus,
    /// True if this is a speculative (non-first) copy.
    pub speculative: bool,
    /// Whether the copy reads its input locally.
    pub local: bool,
}

impl Copy {
    /// Completion instant if the copy runs to completion.
    pub fn finish_time(&self) -> SimTime {
        self.start + self.duration
    }
}

/// Fixed durations for scripted scenarios (the §3 motivating example):
/// originals take `original`, every speculative copy takes `speculative`.
#[derive(Debug, Clone, Copy)]
pub struct ScriptedTask {
    /// Duration of the original copy.
    pub original: SimTime,
    /// Duration of any speculative copy.
    pub speculative: SimTime,
}

/// Runtime state of one task.
#[derive(Debug, Clone)]
pub struct TaskRun {
    /// Nominal compute work (expected duration net of transfer/locality).
    pub work: SimTime,
    /// Machines holding this task's input (empty = no preference).
    pub replicas: Vec<MachineId>,
    /// Scripted durations override the stochastic model when present.
    pub scripted: Option<ScriptedTask>,
    /// All copies launched so far (index = copy id).
    pub copies: Vec<Copy>,
    /// When the task finished (first copy completion).
    pub finished_at: Option<SimTime>,
    /// Maintained count of copies in [`CopyStatus::Running`] (kept in sync
    /// by [`JobRun::launch_copy`] / [`JobRun::finish_copy`]).
    running: u32,
}

impl TaskRun {
    /// Whether the task has finished.
    pub fn is_finished(&self) -> bool {
        self.finished_at.is_some()
    }

    /// Whether any copy has been launched.
    pub fn is_launched(&self) -> bool {
        !self.copies.is_empty()
    }

    /// Whether the task needs an original (re-)dispatched: unfinished
    /// with nothing currently running. True before the first launch and
    /// again after a machine failure killed its last running copy —
    /// without failures this is exactly `!is_launched() && !is_finished()`
    /// (a launched, unfinished task always has a running copy, since race
    /// kills only happen at task completion).
    pub fn needs_original(&self) -> bool {
        self.finished_at.is_none() && self.running == 0
    }

    /// Ground-truth form of [`TaskRun::needs_original`] by copy-status
    /// scan (the `scan_*` oracle family).
    fn scan_needs_original(&self) -> bool {
        self.finished_at.is_none() && self.scan_running_copies() == 0
    }

    /// Number of currently running copies (O(1); counter maintained by the
    /// launch / finish transitions).
    pub fn running_copies(&self) -> usize {
        debug_assert_eq!(self.running as usize, self.scan_running_copies());
        self.running as usize
    }

    /// Ground-truth running-copy count by scanning copy statuses (the
    /// pre-index implementation; retained as the cross-check oracle).
    fn scan_running_copies(&self) -> usize {
        self.copies
            .iter()
            .filter(|c| c.status == CopyStatus::Running)
            .count()
    }
}

/// Runtime state of one phase.
#[derive(Debug, Clone)]
pub struct PhaseRun {
    /// The static description this phase was built from.
    pub spec: TracePhase,
    /// Task states (same length as `spec.task_works`).
    pub tasks: Vec<TaskRun>,
    /// Finished task count.
    pub finished: usize,
    /// Whether tasks of this phase may be launched yet.
    pub eligible: bool,
    /// Shuffle transfer time included in every task of this phase
    /// (upstream output volume divided over this phase's tasks), ms.
    pub transfer_ms_per_task: f64,
    /// Sum of completed copy durations (for observed-duration stats).
    pub completed_duration_sum_ms: u64,
    /// Count of completed copies.
    pub completed_duration_count: u64,
}

impl PhaseRun {
    /// Number of tasks.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Whether all tasks have finished.
    pub fn is_complete(&self) -> bool {
        self.finished == self.tasks.len()
    }

    /// Unfinished task count.
    pub fn remaining(&self) -> usize {
        self.tasks.len() - self.finished
    }

    /// Mean duration of completed copies in this phase, if any completed.
    pub fn mean_completed_duration(&self) -> Option<SimTime> {
        (self.completed_duration_count > 0).then(|| {
            SimTime::from_millis(self.completed_duration_sum_ms / self.completed_duration_count)
        })
    }

    /// Effective nominal duration of task `i` (compute + transfer), before
    /// the straggler multiplier.
    pub fn effective_work(&self, i: usize) -> SimTime {
        self.tasks[i].work + SimTime::from_millis(self.transfer_ms_per_task as u64)
    }
}

/// What a finished copy did to the job (returned by [`JobRun::finish_copy`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FinishOutcome {
    /// Machines whose slots freed: the finishing copy's machine plus one
    /// entry per killed sibling copy.
    pub freed: Vec<MachineId>,
    /// The completed copy's total duration (for β estimation: duration
    /// divided by nominal work is the straggler multiplier).
    pub duration: SimTime,
    /// Nominal (effective) work of the task, for duration normalization.
    pub nominal: SimTime,
    /// Whether the whole phase completed with this task.
    pub phase_done: bool,
    /// Phases that just became eligible (slow-start satisfied).
    pub newly_eligible: Vec<usize>,
    /// Whether the whole job completed.
    pub job_done: bool,
}

/// What a machine failure did to one job (returned by
/// [`JobRun::fail_machine`]): how many running copies died with the
/// machine and which tasks went back to the pending pool.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FailOutcome {
    /// Running copies killed on the failed machine.
    pub killed: usize,
    /// Of those, speculative copies.
    pub killed_spec: usize,
    /// Tasks whose last running copy died: pending again, in
    /// `(phase, task)` order.
    pub requeued: Vec<TaskRef>,
}

/// A scheduler-visible view of one running copy (progress observation).
///
/// `est_remaining_ms` is derived from the copy's progress rate the way
/// LATE does it (progress / elapsed extrapolated to 1.0) — in this
/// execution model progress is linear in time, so the estimate equals
/// duration − elapsed.
#[derive(Debug, Clone, Copy)]
pub struct CopyObservation {
    /// Which copy.
    pub copy: CopyRef,
    /// Machine it runs on.
    pub machine: MachineId,
    /// Time since launch.
    pub elapsed: SimTime,
    /// Progress fraction in [0, 1).
    pub progress: f64,
    /// Progress-rate-extrapolated remaining time.
    pub est_remaining: SimTime,
    /// Whether this copy is speculative.
    pub speculative: bool,
}

/// Incremental indices over a job's phase/task state.
///
/// Pure caches: every field is derivable by a full scan (the `scan_*`
/// methods on [`JobRun`]), and `debug_assert!` cross-checks re-run those
/// scans after every state transition in debug builds (all of `cargo
/// test`). The counters turn the per-event O(tasks) queries of both
/// drivers into O(1) reads; the `BTreeMap`/`BTreeSet` structures iterate
/// in ascending `(phase, task)` / machine order, which is exactly the
/// order the replaced scans visited, so tie-breaking is bit-identical.
/// See DESIGN.md, "Index invariants".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct JobIndex {
    /// Remaining tasks in eligible phases — `current_remaining()`.
    current_remaining: usize,
    /// Remaining tasks across all phases — `total_remaining()`.
    total_remaining: usize,
    /// Unlaunched originals in eligible phases — `pending_originals()`.
    pending_originals: usize,
    /// Running copies across the job — `occupied_slots()`.
    running_copies: usize,
    /// Exact integer sum of unfinished tasks' nominal work (ms) in
    /// eligible phases — the compute term of `alpha()`. Integer so that
    /// incremental updates reproduce the old f64 scan bit-for-bit (task
    /// works are integral millis and job totals stay far below 2^53).
    remaining_compute_ms: u64,
    /// Index of the first not-yet-eligible phase — `downstream_remaining()`
    /// and the transfer term of `alpha()`.
    first_ineligible: Option<usize>,
    /// Pending (unlaunched, unfinished, eligible-phase) tasks.
    pending: BTreeSet<TaskRef>,
    /// Pending tasks with an empty replica set (no locality preference).
    pending_no_replica: BTreeSet<TaskRef>,
    /// Inverted replica index: machine → pending tasks with a replica
    /// there. Sets are non-empty by invariant (emptied entries removed).
    pending_local: BTreeMap<MachineId, BTreeSet<TaskRef>>,
    /// Running copies on tasks with *exactly one* running copy, keyed by
    /// the copy's completion instant — the candidate set of
    /// `best_extra_speculation`.
    solo_running: BTreeSet<(SimTime, TaskRef)>,
}

/// Runtime state of a job.
#[derive(Debug, Clone)]
pub struct JobRun {
    /// Trace identifier.
    pub id: usize,
    /// The static job description.
    pub spec: TraceJob,
    /// Phase states (same order as `spec.phases`). Crate-private: every
    /// index in [`JobIndex`] is a pure cache over this state, so outside
    /// mutation must flow through the maintained transitions
    /// ([`JobRun::launch_copy`] / [`JobRun::finish_copy`]) or through the
    /// rebuild-on-write mutators ([`JobRun::script_single_phase`],
    /// [`JobRun::set_replicas`]). Read access is [`JobRun::phases`].
    pub(crate) phases: Vec<PhaseRun>,
    /// Completion time, set when the last phase finishes.
    pub completed_at: Option<SimTime>,
    /// Scheduler-estimated α (set by drivers from the online estimator);
    /// when `None`, [`JobRun::alpha`] computes the ground-truth value.
    pub alpha_override: Option<f64>,
    /// Scheduler-estimated β (defaults to the spec value; drivers may
    /// substitute the online estimate).
    pub beta_estimate: f64,
    /// Local / non-local launch counters for input-phase tasks (Figure 13).
    pub local_launches: usize,
    /// Non-local input-phase launches.
    pub nonlocal_launches: usize,
    /// Incremental indices (pure caches; see [`JobIndex`]).
    idx: JobIndex,
}

impl JobRun {
    /// Instantiate runtime state for `spec` on a cluster, assigning DFS
    /// replicas for input-phase tasks from `rng`.
    pub fn new(spec: TraceJob, cfg: &ClusterConfig, rng: &mut StdRng) -> Self {
        let mut phases: Vec<PhaseRun> = Vec::with_capacity(spec.phases.len());
        for (pi, p) in spec.phases.iter().enumerate() {
            // Shuffle volume arriving at this phase: every upstream task's
            // output, divided across this phase's tasks.
            let upstream_mb: f64 = p
                .upstream
                .iter()
                .map(|&u| spec.phases[u].output_mb_per_task * spec.phases[u].num_tasks() as f64)
                .sum();
            let transfer_ms_per_task = if p.num_tasks() > 0 {
                cfg.transfer_ms(upstream_mb / p.num_tasks() as f64)
            } else {
                0.0
            };
            let tasks = p
                .task_works
                .iter()
                .map(|&w| TaskRun {
                    work: w,
                    replicas: if p.reads_dfs_input && cfg.machines > 0 {
                        sample_replicas(cfg, rng)
                    } else {
                        Vec::new()
                    },
                    scripted: None,
                    copies: Vec::new(),
                    finished_at: None,
                    running: 0,
                })
                .collect();
            phases.push(PhaseRun {
                spec: p.clone(),
                tasks,
                finished: 0,
                eligible: pi == 0 || p.upstream.is_empty(),
                transfer_ms_per_task,
                completed_duration_sum_ms: 0,
                completed_duration_count: 0,
            });
        }
        let beta = spec.beta;
        let mut job = JobRun {
            id: spec.id,
            spec,
            phases,
            completed_at: None,
            alpha_override: None,
            beta_estimate: beta,
            local_launches: 0,
            nonlocal_launches: 0,
            idx: JobIndex::default(),
        };
        job.rebuild_index();
        job
    }

    /// Recompute every incremental index from scratch. Called at
    /// construction and by the rebuild-on-write mutators below. Public as
    /// an escape hatch for in-crate tests that reach into task state;
    /// out-of-crate code cannot mutate `phases` directly and should not
    /// need this.
    pub fn rebuild_index(&mut self) {
        self.idx = self.scan_index();
    }

    /// Read-only view of the per-phase runtime state.
    pub fn phases(&self) -> &[PhaseRun] {
        &self.phases
    }

    /// Install scripted `(original_ms, speculative_ms)` durations for the
    /// leading tasks of the input phase — the §3 motivating example and
    /// the scripted scenario benches. Rebuilds the incremental indices
    /// afterwards (scripts are index-neutral today, but this keeps the
    /// "mutation ⇒ rebuild" invariant mechanical rather than argued).
    ///
    /// Panics if there are more scripts than input-phase tasks.
    pub fn script_single_phase(&mut self, scripts: &[(u64, u64)]) {
        for (t, &(orig, spec)) in scripts.iter().enumerate() {
            self.phases[0].tasks[t].scripted = Some(ScriptedTask {
                original: SimTime::from_millis(orig),
                speculative: SimTime::from_millis(spec),
            });
        }
        self.rebuild_index();
    }

    /// Replace the DFS replica set of `task`, rebuilding the locality
    /// indices (`pending_no_replica`, `pending_local`) that depend on it.
    /// The sanctioned form of the replica rewrites scenario tests do.
    pub fn set_replicas(&mut self, task: TaskRef, replicas: Vec<MachineId>) {
        self.phases[task.phase].tasks[task.task].replicas = replicas;
        self.rebuild_index();
    }

    /// Ground-truth index state by full scan — the pre-index query code,
    /// retained as the oracle for `debug_assert!` cross-checks.
    fn scan_index(&self) -> JobIndex {
        let mut idx = JobIndex {
            current_remaining: self.scan_current_remaining(),
            total_remaining: self.scan_total_remaining(),
            pending_originals: self.scan_pending_originals(),
            running_copies: self.scan_occupied_slots(),
            remaining_compute_ms: 0,
            first_ineligible: self.phases.iter().position(|p| !p.eligible),
            pending: BTreeSet::new(),
            pending_no_replica: BTreeSet::new(),
            pending_local: BTreeMap::new(),
            solo_running: BTreeSet::new(),
        };
        for (pi, p) in self.phases.iter().enumerate() {
            if !p.eligible {
                continue;
            }
            for (ti, t) in p.tasks.iter().enumerate() {
                if !t.is_finished() {
                    idx.remaining_compute_ms += t.work.as_millis();
                }
                let tr = TaskRef::new(pi, ti);
                if t.scan_needs_original() {
                    idx.pending.insert(tr);
                    if t.replicas.is_empty() {
                        idx.pending_no_replica.insert(tr);
                    }
                    for &r in &t.replicas {
                        idx.pending_local.entry(r).or_default().insert(tr);
                    }
                }
                if t.scan_running_copies() == 1 {
                    let c = t
                        .copies
                        .iter()
                        .find(|c| c.status == CopyStatus::Running)
                        .expect("one running copy");
                    idx.solo_running.insert((c.finish_time(), tr));
                }
            }
        }
        idx
    }

    /// Debug-build oracle: the maintained index must equal a fresh scan.
    /// Sampled (every 16th transition) — the full scan is O(tasks), and
    /// running it on every event would make the dev-profile test suite
    /// quadratic again; the always-on per-accessor asserts plus the golden
    /// and determinism suites close the gap between samples.
    #[cfg(debug_assertions)]
    fn debug_check_index(&self) {
        use std::sync::atomic::{AtomicU64, Ordering};
        static TICK: AtomicU64 = AtomicU64::new(0);
        if !TICK.fetch_add(1, Ordering::Relaxed).is_multiple_of(16) {
            return;
        }
        let fresh = self.scan_index();
        assert_eq!(
            fresh, self.idx,
            "incremental job index drifted from scan ground truth (job {})",
            self.id
        );
    }

    /// Remove a newly-launched or no-longer-pending task from the pending
    /// index structures.
    fn index_remove_pending(&mut self, tr: TaskRef) {
        if !self.idx.pending.remove(&tr) {
            return;
        }
        let t = &self.phases[tr.phase].tasks[tr.task];
        if t.replicas.is_empty() {
            self.idx.pending_no_replica.remove(&tr);
        }
        for r in &t.replicas {
            if let Some(set) = self.idx.pending_local.get_mut(r) {
                set.remove(&tr);
                if set.is_empty() {
                    self.idx.pending_local.remove(r);
                }
            }
        }
    }

    /// Re-insert a task into the pending index structures (machine
    /// failure requeued it for re-dispatch).
    fn index_insert_pending(&mut self, tr: TaskRef) {
        if !self.idx.pending.insert(tr) {
            return;
        }
        let t = &self.phases[tr.phase].tasks[tr.task];
        if t.replicas.is_empty() {
            self.idx.pending_no_replica.insert(tr);
        }
        for &r in &t.replicas {
            self.idx.pending_local.entry(r).or_default().insert(tr);
        }
    }

    /// Build a single-phase job with *scripted* per-task durations — used
    /// by the §3 motivating example (Table 1) and in tests.
    pub fn scripted(id: usize, arrival: SimTime, tasks: &[(u64, u64)]) -> Self {
        let spec = hopper_workload::single_phase_job(
            id,
            arrival,
            tasks
                .iter()
                .map(|&(orig, _)| SimTime::from_millis(orig))
                .collect(),
            1.5,
        );
        let cfg = ClusterConfig {
            machines: 0,
            ..Default::default()
        };
        let mut rng = hopper_sim::rng_from_seed(0);
        let mut job = JobRun::new(spec, &cfg, &mut rng);
        job.script_single_phase(tasks);
        job
    }

    /// Whether the job has completed.
    pub fn is_done(&self) -> bool {
        self.completed_at.is_some()
    }

    /// Launch a copy of `task` on `machine` at `now`; the copy starts
    /// running at `now + delay` (slot hand-off / container setup cost).
    /// Returns the copy id and its (hidden) duration so the driver can
    /// schedule the completion event at `now + delay + duration`. Panics if the task already finished or its phase is not
    /// eligible — drivers must not launch dead work.
    #[allow(clippy::too_many_arguments)]
    pub fn launch_copy(
        &mut self,
        task: TaskRef,
        machine: MachineId,
        speculative: bool,
        now: SimTime,
        delay: SimTime,
        cfg: &ClusterConfig,
        rng: &mut StdRng,
    ) -> (CopyRef, SimTime) {
        self.launch_copy_at_speed(task, machine, speculative, now, delay, cfg, rng, 1.0)
    }

    /// [`JobRun::launch_copy`] on a machine running at `speed` (the
    /// cluster-dynamics plane): the copy's wall-clock duration is the
    /// unit-speed duration divided by the speed. `speed == 1.0` is
    /// bit-identical to `launch_copy` — the dynamics-off invariant.
    #[allow(clippy::too_many_arguments)]
    pub fn launch_copy_at_speed(
        &mut self,
        task: TaskRef,
        machine: MachineId,
        speculative: bool,
        now: SimTime,
        delay: SimTime,
        cfg: &ClusterConfig,
        rng: &mut StdRng,
        speed: f64,
    ) -> (CopyRef, SimTime) {
        debug_assert!(speed > 0.0 && speed.is_finite(), "bad machine speed");
        let phase = &mut self.phases[task.phase];
        assert!(phase.eligible, "launching into ineligible phase");
        let effective = phase.effective_work(task.task);
        let t = &mut phase.tasks[task.task];
        assert!(t.finished_at.is_none(), "launching a finished task");
        debug_assert!(
            !speculative || t.running > 0,
            "speculating on a task with no running copy"
        );

        let local = t.replicas.is_empty() || t.replicas.contains(&machine);
        let unit_speed = match t.scripted {
            Some(s) => {
                if speculative {
                    s.speculative
                } else {
                    s.original
                }
            }
            None => {
                let mult = Dist::unit_mean_pareto(self.spec.beta)
                    .sample(rng)
                    .min(cfg.max_straggle_factor);
                let penalty = if local { 1.0 } else { cfg.remote_read_penalty };
                effective.scale(mult * penalty)
            }
        };
        // The speed division is gated so the homogeneous path stays
        // bit-identical (scale() re-rounds even at factor 1.0).
        let duration = if speed == 1.0 {
            unit_speed
        } else {
            unit_speed.scale(1.0 / speed).max(SimTime::from_millis(1))
        };
        if !t.replicas.is_empty() {
            if local {
                self.local_launches += 1;
            } else {
                self.nonlocal_launches += 1;
            }
        }
        // The task leaves the pending pool when it had no running copy —
        // on its very first launch, or on a re-dispatch after a machine
        // failure requeued it.
        let was_pending = t.running == 0;
        let copy_idx = t.copies.len();
        let start = now + delay;
        t.copies.push(Copy {
            machine,
            start,
            duration,
            status: CopyStatus::Running,
            speculative,
            local,
        });
        t.running += 1;
        // Index maintenance: running totals, the solo-running set, and (on
        // the first copy) the pending-original structures.
        self.idx.running_copies += 1;
        let running_now = self.phases[task.phase].tasks[task.task].running;
        match running_now {
            1 => {
                self.idx.solo_running.insert((start + duration, task));
            }
            2 => {
                // The task just gained a second copy: its previously solo
                // copy leaves the candidate set.
                let prev = self.phases[task.phase].tasks[task.task]
                    .copies
                    .iter()
                    .enumerate()
                    .find(|(i, c)| *i != copy_idx && c.status == CopyStatus::Running)
                    .map(|(_, c)| c.finish_time())
                    .expect("second running copy implies a first");
                self.idx.solo_running.remove(&(prev, task));
            }
            _ => {}
        }
        if was_pending {
            self.idx.pending_originals -= 1;
            self.index_remove_pending(task);
        }
        #[cfg(debug_assertions)]
        self.debug_check_index();
        (
            CopyRef {
                task,
                copy: copy_idx,
            },
            duration,
        )
    }

    /// Draw the unit-speed duration a copy of `task` would run for on
    /// `machine`, *without* launching it — the sharded engine's
    /// scheduler-side pre-draw: the owning scheduler samples the
    /// duration (consuming only its own RNG child), ships it inside the
    /// assignment, and the worker commits it via
    /// [`JobRun::launch_copy_prepared`] after scaling by its local
    /// machine speed. Scripted tasks consume no randomness, exactly
    /// like [`JobRun::launch_copy_at_speed`].
    pub fn sample_unit_duration(
        &self,
        task: TaskRef,
        machine: MachineId,
        speculative: bool,
        cfg: &ClusterConfig,
        rng: &mut StdRng,
    ) -> SimTime {
        let phase = &self.phases[task.phase];
        let effective = phase.effective_work(task.task);
        let t = &phase.tasks[task.task];
        let local = t.replicas.is_empty() || t.replicas.contains(&machine);
        match t.scripted {
            Some(s) => {
                if speculative {
                    s.speculative
                } else {
                    s.original
                }
            }
            None => {
                let mult = Dist::unit_mean_pareto(self.spec.beta)
                    .sample(rng)
                    .min(cfg.max_straggle_factor);
                let penalty = if local { 1.0 } else { cfg.remote_read_penalty };
                effective.scale(mult * penalty)
            }
        }
    }

    /// Commit a copy whose start instant and (already speed-scaled)
    /// duration were fixed elsewhere — the worker-side half of the
    /// sharded launch protocol ([`JobRun::sample_unit_duration`] is the
    /// scheduler-side half). Identical index/counter maintenance to
    /// [`JobRun::launch_copy_at_speed`], with no RNG consumed. `start`
    /// may lie in the past relative to the caller's clock (the launch
    /// acknowledgment travelled over the simulated network); all
    /// consumers of copy finish times saturate.
    pub fn launch_copy_prepared(
        &mut self,
        task: TaskRef,
        machine: MachineId,
        speculative: bool,
        start: SimTime,
        duration: SimTime,
    ) -> CopyRef {
        let phase = &mut self.phases[task.phase];
        assert!(phase.eligible, "launching into ineligible phase");
        let t = &mut phase.tasks[task.task];
        assert!(t.finished_at.is_none(), "launching a finished task");
        debug_assert!(
            !speculative || t.running > 0,
            "speculating on a task with no running copy"
        );
        let local = t.replicas.is_empty() || t.replicas.contains(&machine);
        if !t.replicas.is_empty() {
            if local {
                self.local_launches += 1;
            } else {
                self.nonlocal_launches += 1;
            }
        }
        let was_pending = t.running == 0;
        let copy_idx = t.copies.len();
        t.copies.push(Copy {
            machine,
            start,
            duration,
            status: CopyStatus::Running,
            speculative,
            local,
        });
        t.running += 1;
        self.idx.running_copies += 1;
        let running_now = self.phases[task.phase].tasks[task.task].running;
        match running_now {
            1 => {
                self.idx.solo_running.insert((start + duration, task));
            }
            2 => {
                let prev = self.phases[task.phase].tasks[task.task]
                    .copies
                    .iter()
                    .enumerate()
                    .find(|(i, c)| *i != copy_idx && c.status == CopyStatus::Running)
                    .map(|(_, c)| c.finish_time())
                    .expect("second running copy implies a first");
                self.idx.solo_running.remove(&(prev, task));
            }
            _ => {}
        }
        if was_pending {
            self.idx.pending_originals -= 1;
            self.index_remove_pending(task);
        }
        #[cfg(debug_assertions)]
        self.debug_check_index();
        CopyRef {
            task,
            copy: copy_idx,
        }
    }

    /// Kill one running copy — its machine died under it (the sharded
    /// engine's per-copy mirror of [`JobRun::fail_machine`], driven by
    /// individual loss notifications instead of one bulk sweep). The
    /// slot freed nothing (it died with the machine); a task whose last
    /// running copy was lost becomes pending again. Returns
    /// `Some(requeued)` — or `None` when the copy is no longer running
    /// (its race resolved while the loss notification was in flight).
    pub fn lose_copy(&mut self, c: CopyRef) -> Option<bool> {
        let t = &mut self.phases[c.task.phase].tasks[c.task.task];
        if t.finished_at.is_some() || t.copies[c.copy].status != CopyStatus::Running {
            return None;
        }
        let prev_running = t.running;
        let killed_finish = t.copies[c.copy].finish_time();
        t.copies[c.copy].status = CopyStatus::Killed;
        t.running -= 1;
        let now_running = t.running;
        let survivor_finish = t
            .copies
            .iter()
            .find(|cp| cp.status == CopyStatus::Running)
            .map(|cp| cp.finish_time());
        self.idx.running_copies -= 1;
        if prev_running == 1 {
            let removed = self.idx.solo_running.remove(&(killed_finish, c.task));
            debug_assert!(removed, "solo-running entry missing at copy loss");
        }
        if now_running == 1 {
            self.idx
                .solo_running
                .insert((survivor_finish.expect("one running copy"), c.task));
        }
        let requeued = now_running == 0;
        if requeued {
            self.idx.pending_originals += 1;
            self.index_insert_pending(c.task);
        }
        #[cfg(debug_assertions)]
        self.debug_check_index();
        Some(requeued)
    }

    /// Handle a copy-completion event. Returns `None` when the event is
    /// stale (the copy was killed or its task already finished) — drivers
    /// simply drop such events.
    pub fn finish_copy(&mut self, c: CopyRef, now: SimTime) -> Option<FinishOutcome> {
        let nominal = self.phases[c.task.phase].effective_work(c.task.task);
        let phase = &mut self.phases[c.task.phase];
        let t = &mut phase.tasks[c.task.task];
        if t.copies[c.copy].status != CopyStatus::Running || t.finished_at.is_some() {
            return None;
        }
        let prev_running = t.running;
        t.copies[c.copy].status = CopyStatus::Finished;
        t.finished_at = Some(now);
        let duration = t.copies[c.copy].duration;
        let winner_finish = t.copies[c.copy].finish_time();
        let mut freed = vec![t.copies[c.copy].machine];
        for sibling in t.copies.iter_mut() {
            if sibling.status == CopyStatus::Running {
                sibling.status = CopyStatus::Killed;
                freed.push(sibling.machine);
            }
        }
        t.running = 0;
        let work_ms = t.work.as_millis();
        phase.finished += 1;
        phase.completed_duration_sum_ms += duration.as_millis();
        phase.completed_duration_count += 1;
        let phase_done = phase.is_complete();

        // Index maintenance: the finished task leaves every remaining
        // count, and its running copies (winner + killed) leave the
        // running totals and the solo-running set.
        if prev_running == 1 {
            self.idx.solo_running.remove(&(winner_finish, c.task));
        }
        self.idx.running_copies -= prev_running as usize;
        self.idx.current_remaining -= 1;
        self.idx.total_remaining -= 1;
        self.idx.remaining_compute_ms -= work_ms;

        // Slow-start: re-evaluate eligibility of downstream phases.
        let mut newly_eligible = Vec::new();
        for pi in 0..self.phases.len() {
            if self.phases[pi].eligible {
                continue;
            }
            let ready = self.phases[pi].spec.upstream.iter().all(|&u| {
                let up = &self.phases[u];
                let need = (up.num_tasks() as f64 * self.slowstart(u)).ceil() as usize;
                up.finished >= need.max(1)
            });
            if ready {
                self.phases[pi].eligible = true;
                newly_eligible.push(pi);
                self.index_phase_eligible(pi);
            }
        }
        if !newly_eligible.is_empty() {
            self.idx.first_ineligible = self.phases.iter().position(|p| !p.eligible);
        }

        let job_done = self.phases.iter().all(|p| p.is_complete());
        if job_done && self.completed_at.is_none() {
            self.completed_at = Some(now);
        }
        #[cfg(debug_assertions)]
        self.debug_check_index();
        Some(FinishOutcome {
            freed,
            duration,
            nominal,
            phase_done,
            newly_eligible,
            job_done,
        })
    }

    /// Kill every running copy of this job on `machine` (the machine
    /// failed). Killed copies free no slot — the slot died with the
    /// machine — and a task whose *last* running copy was killed becomes
    /// pending again for re-dispatch (it re-enters `pending_originals`
    /// and the locality indices). The task's already-accumulated copies
    /// stay recorded (`Killed`), so duration statistics are untouched.
    pub fn fail_machine(&mut self, machine: MachineId) -> FailOutcome {
        let mut out = FailOutcome {
            killed: 0,
            killed_spec: 0,
            requeued: Vec::new(),
        };
        // (task, prev_running, killed_here, solo_finish_before, survivor_finish_after)
        let mut solo_removals: Vec<(SimTime, TaskRef)> = Vec::new();
        let mut solo_insertions: Vec<(SimTime, TaskRef)> = Vec::new();
        for pi in 0..self.phases.len() {
            if !self.phases[pi].eligible {
                continue;
            }
            for ti in 0..self.phases[pi].tasks.len() {
                let t = &mut self.phases[pi].tasks[ti];
                if t.finished_at.is_some() || t.running == 0 {
                    continue;
                }
                let tr = TaskRef::new(pi, ti);
                let prev_running = t.running;
                let mut killed_here: u32 = 0;
                let mut killed_finish = SimTime::ZERO;
                for c in t.copies.iter_mut() {
                    if c.status == CopyStatus::Running && c.machine == machine {
                        c.status = CopyStatus::Killed;
                        killed_here += 1;
                        killed_finish = c.finish_time();
                        if c.speculative {
                            out.killed_spec += 1;
                        }
                    }
                }
                if killed_here == 0 {
                    continue;
                }
                t.running -= killed_here;
                let now_running = t.running;
                let survivor_finish = t
                    .copies
                    .iter()
                    .find(|c| c.status == CopyStatus::Running)
                    .map(|c| c.finish_time());
                out.killed += killed_here as usize;
                self.idx.running_copies -= killed_here as usize;
                if prev_running == 1 {
                    solo_removals.push((killed_finish, tr));
                }
                if now_running == 1 {
                    solo_insertions.push((survivor_finish.expect("one running copy"), tr));
                }
                if now_running == 0 {
                    self.idx.pending_originals += 1;
                    out.requeued.push(tr);
                }
            }
        }
        for key in solo_removals {
            let removed = self.idx.solo_running.remove(&key);
            debug_assert!(removed, "solo-running entry missing at failure");
        }
        for key in solo_insertions {
            self.idx.solo_running.insert(key);
        }
        for &tr in &out.requeued {
            self.index_insert_pending(tr);
        }
        #[cfg(debug_assertions)]
        self.debug_check_index();
        out
    }

    /// Stretch (or shrink) the remaining wall-clock time of every running
    /// copy on `machine` by `ratio` = old speed / new speed, re-anchoring
    /// at `now` (the machine's speed just changed — the cluster-dynamics
    /// transient-slowdown hook). A copy whose hand-off delay has not
    /// elapsed yet (`start > now`) rescales its whole duration instead.
    /// Returns `(copy, new finish instant)` for every rescheduled copy so
    /// the driver can push fresh completion events; the previously queued
    /// events become stale (their pop time no longer matches the copy's
    /// finish time). Maintains the solo-running index, whose keys embed
    /// the finish instant.
    pub fn rescale_machine(
        &mut self,
        machine: MachineId,
        now: SimTime,
        ratio: f64,
    ) -> Vec<(CopyRef, SimTime)> {
        debug_assert!(ratio > 0.0 && ratio.is_finite(), "bad rescale ratio");
        let mut resched: Vec<(CopyRef, SimTime)> = Vec::new();
        let mut solo_moves: Vec<(SimTime, SimTime, TaskRef)> = Vec::new();
        for pi in 0..self.phases.len() {
            if !self.phases[pi].eligible {
                continue;
            }
            for ti in 0..self.phases[pi].tasks.len() {
                let t = &mut self.phases[pi].tasks[ti];
                if t.finished_at.is_some() || t.running == 0 {
                    continue;
                }
                let solo = t.running == 1;
                for (ci, c) in t.copies.iter_mut().enumerate() {
                    if c.status != CopyStatus::Running || c.machine != machine {
                        continue;
                    }
                    let old_finish = c.finish_time();
                    let new_finish = if c.start >= now {
                        let d = ((c.duration.as_millis() as f64 * ratio).round() as u64).max(1);
                        c.start + SimTime::from_millis(d)
                    } else {
                        let rem = old_finish.saturating_sub(now).as_millis();
                        if rem == 0 {
                            continue; // due at this very instant; let it land
                        }
                        now + SimTime::from_millis(((rem as f64 * ratio).round() as u64).max(1))
                    };
                    if new_finish == old_finish {
                        continue;
                    }
                    c.duration = new_finish - c.start;
                    if solo {
                        solo_moves.push((old_finish, new_finish, TaskRef::new(pi, ti)));
                    }
                    resched.push((CopyRef::new(pi, ti, ci), new_finish));
                }
            }
        }
        for (old, new, tr) in solo_moves {
            let removed = self.idx.solo_running.remove(&(old, tr));
            debug_assert!(removed, "solo-running entry missing at rescale");
            self.idx.solo_running.insert((new, tr));
        }
        #[cfg(debug_assertions)]
        self.debug_check_index();
        resched
    }

    /// Slow-start fraction for upstream phase `u` (constant today; indexed
    /// so per-phase policies can be added without changing callers).
    fn slowstart(&self, _u: usize) -> f64 {
        1.0
    }

    /// Insert a newly-eligible phase's tasks into the counters and pending
    /// index structures (tasks of a fresh phase are all unlaunched).
    fn index_phase_eligible(&mut self, pi: usize) {
        let p = &self.phases[pi];
        self.idx.current_remaining += p.remaining();
        self.idx.pending_originals += p.remaining();
        for (ti, t) in p.tasks.iter().enumerate() {
            debug_assert!(!t.is_launched() && !t.is_finished());
            self.idx.remaining_compute_ms += t.work.as_millis();
            let tr = TaskRef::new(pi, ti);
            self.idx.pending.insert(tr);
            if t.replicas.is_empty() {
                self.idx.pending_no_replica.insert(tr);
            }
        }
        // Second pass for the replica map (split to appease the borrow
        // checker: `entry` needs `&mut self.idx` while `p` borrows phases).
        for (ti, t) in self.phases[pi].tasks.iter().enumerate() {
            for &r in &t.replicas {
                self.idx
                    .pending_local
                    .entry(r)
                    .or_default()
                    .insert(TaskRef::new(pi, ti));
            }
        }
    }

    /// Remaining tasks in eligible, incomplete phases — the paper's
    /// `T_i(t)` (current-phase remaining tasks). O(1).
    pub fn current_remaining(&self) -> usize {
        debug_assert_eq!(self.idx.current_remaining, self.scan_current_remaining());
        self.idx.current_remaining
    }

    fn scan_current_remaining(&self) -> usize {
        self.phases
            .iter()
            .filter(|p| p.eligible && !p.is_complete())
            .map(|p| p.remaining())
            .sum()
    }

    /// Remaining tasks across the entire job. O(1).
    pub fn total_remaining(&self) -> usize {
        debug_assert_eq!(self.idx.total_remaining, self.scan_total_remaining());
        self.idx.total_remaining
    }

    fn scan_total_remaining(&self) -> usize {
        self.phases.iter().map(|p| p.remaining()).sum()
    }

    /// Tasks of the next not-yet-eligible phase — the paper's `T'_i(t)`
    /// used in the `max{V, V'}` DAG priority. O(1) via the cached
    /// first-ineligible phase index.
    pub fn downstream_remaining(&self) -> usize {
        let indexed = self
            .idx
            .first_ineligible
            .map_or(0, |pi| self.phases[pi].remaining());
        debug_assert_eq!(
            indexed,
            self.phases
                .iter()
                .find(|p| !p.eligible)
                .map_or(0, |p| p.remaining())
        );
        indexed
    }

    /// Unlaunched original tasks in eligible phases. O(1).
    pub fn pending_originals(&self) -> usize {
        debug_assert_eq!(self.idx.pending_originals, self.scan_pending_originals());
        self.idx.pending_originals
    }

    fn scan_pending_originals(&self) -> usize {
        self.phases
            .iter()
            .filter(|p| p.eligible)
            .flat_map(|p| &p.tasks)
            .filter(|t| t.scan_needs_original())
            .count()
    }

    /// Currently running copies (slot occupancy of this job). O(1).
    pub fn occupied_slots(&self) -> usize {
        debug_assert_eq!(self.idx.running_copies, self.scan_occupied_slots());
        self.idx.running_copies
    }

    fn scan_occupied_slots(&self) -> usize {
        self.phases
            .iter()
            .flat_map(|p| &p.tasks)
            .map(|t| t.scan_running_copies())
            .sum()
    }

    /// Pick the next original task to launch, preferring one whose input
    /// is local to `machine`. Returns the task and whether it is local.
    ///
    /// O(log tasks) via the pending index. The replaced scan visited tasks
    /// in `(phase, task)` order and returned at the first task that was
    /// either replica-free or local to `machine`; the index reproduces
    /// that by taking the minimum of the two ordered sets' heads.
    pub fn next_task_for(&self, machine: Option<MachineId>) -> Option<(TaskRef, bool)> {
        let picked = match machine {
            Some(m) => {
                let no_pref = self.idx.pending_no_replica.first().copied();
                let local = self
                    .idx
                    .pending_local
                    .get(&m)
                    .and_then(|s| s.first())
                    .copied();
                match (no_pref, local) {
                    (Some(a), Some(b)) => Some((a.min(b), true)),
                    (Some(a), None) => Some((a, true)),
                    (None, Some(b)) => Some((b, true)),
                    (None, None) => self.idx.pending.first().map(|&t| (t, false)),
                }
            }
            None => self
                .idx
                .pending
                .first()
                .map(|&t| (t, self.phases[t.phase].tasks[t.task].replicas.is_empty())),
        };
        debug_assert_eq!(picked, self.scan_next_task_for(machine));
        picked
    }

    fn scan_next_task_for(&self, machine: Option<MachineId>) -> Option<(TaskRef, bool)> {
        let mut fallback: Option<TaskRef> = None;
        for (pi, p) in self.phases.iter().enumerate() {
            if !p.eligible || p.is_complete() {
                continue;
            }
            for (ti, t) in p.tasks.iter().enumerate() {
                if !t.scan_needs_original() {
                    continue;
                }
                let tr = TaskRef::new(pi, ti);
                match machine {
                    Some(m) if !t.replicas.is_empty() => {
                        if t.replicas.contains(&m) {
                            return Some((tr, true));
                        }
                        if fallback.is_none() {
                            fallback = Some(tr);
                        }
                    }
                    _ => return Some((tr, t.replicas.is_empty())),
                }
            }
        }
        fallback.map(|tr| (tr, false))
    }

    /// Whether the job has a task that would be data-local on `machine`.
    /// O(log machines) via the inverted replica index.
    pub fn has_local_task_for(&self, machine: MachineId) -> bool {
        let indexed = self.idx.pending_local.contains_key(&machine);
        debug_assert_eq!(indexed, self.scan_has_local_task_for(machine));
        indexed
    }

    fn scan_has_local_task_for(&self, machine: MachineId) -> bool {
        self.phases.iter().any(|p| {
            p.eligible
                && !p.is_complete()
                && p.tasks
                    .iter()
                    .any(|t| t.scan_needs_original() && t.replicas.contains(&machine))
        })
    }

    /// Machines holding a replica of at least one pending task, in
    /// ascending id order (the free-machine probe of the centralized
    /// driver's `launch_original` walks this instead of every machine).
    pub fn machines_with_local_pending(&self) -> impl Iterator<Item = MachineId> + '_ {
        self.idx.pending_local.keys().copied()
    }

    /// First pending task with a replica on `machine`, if any.
    pub fn first_local_pending(&self, machine: MachineId) -> Option<TaskRef> {
        self.idx
            .pending_local
            .get(&machine)
            .and_then(|s| s.first())
            .copied()
    }

    /// Whether any pending task has no replica set (such a task launches
    /// "locally" anywhere, so locality probes can stop at the first free
    /// machine).
    pub fn has_pending_no_replica(&self) -> bool {
        !self.idx.pending_no_replica.is_empty()
    }

    /// Pending (unlaunched, eligible-phase) tasks in `(phase, task)` order.
    pub fn pending_tasks(&self) -> impl Iterator<Item = TaskRef> + '_ {
        self.idx.pending.iter().copied()
    }

    /// Pending tasks with no replica preference, in `(phase, task)` order.
    pub fn pending_no_replica_tasks(&self) -> impl Iterator<Item = TaskRef> + '_ {
        self.idx.pending_no_replica.iter().copied()
    }

    /// Pending tasks with a replica on `machine`, in `(phase, task)` order.
    pub fn pending_local_tasks(&self, machine: MachineId) -> impl Iterator<Item = TaskRef> + '_ {
        self.idx
            .pending_local
            .get(&machine)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// Observations of all running copies, for speculation policies.
    pub fn observe_running(&self, now: SimTime) -> Vec<(TaskRef, Vec<CopyObservation>)> {
        let mut out = Vec::new();
        for (pi, p) in self.phases.iter().enumerate() {
            if !p.eligible {
                continue;
            }
            for (ti, t) in p.tasks.iter().enumerate() {
                if t.is_finished() || t.running == 0 {
                    continue;
                }
                let obs: Vec<CopyObservation> = t
                    .copies
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| c.status == CopyStatus::Running)
                    .map(|(ci, c)| {
                        let elapsed = now.saturating_sub(c.start);
                        let progress = if c.duration.as_millis() == 0 {
                            1.0
                        } else {
                            (elapsed.as_millis() as f64 / c.duration.as_millis() as f64).min(1.0)
                        };
                        CopyObservation {
                            copy: CopyRef::new(pi, ti, ci),
                            machine: c.machine,
                            elapsed,
                            progress,
                            est_remaining: c.duration.saturating_sub(elapsed),
                            speculative: c.speculative,
                        }
                    })
                    .collect();
                if !obs.is_empty() {
                    out.push((TaskRef::new(pi, ti), obs));
                }
            }
        }
        out
    }

    /// Mean completed-copy duration across eligible phases (the scheduler's
    /// `t_new` estimate for a fresh copy), falling back to the phase's
    /// nominal work when nothing has completed yet. Scripted tasks report
    /// their scripted speculative duration (the §3 example's known `t_new`).
    pub fn estimated_new_copy_duration(&self, task: TaskRef) -> SimTime {
        let p = &self.phases[task.phase];
        if let Some(s) = p.tasks[task.task].scripted {
            return s.speculative;
        }
        p.mean_completed_duration()
            .unwrap_or_else(|| p.effective_work(task.task))
    }

    /// The best target for an *unsolicited* extra speculative copy: the
    /// running task with the longest estimated remaining time among tasks
    /// with exactly one running copy, provided a fresh copy could
    /// plausibly win the race (`t_rem > t_new`); ties prefer the earliest
    /// `(phase, task)`. O(log) via the solo-running set instead of an
    /// O(tasks) `observe_running` sweep.
    ///
    /// Contract: copies must have started at or before `now` (true for
    /// the zero-launch-delay decentralized driver, the only caller) — the
    /// remaining time is read off the copy's completion instant.
    pub fn best_extra_speculation(&self, now: SimTime) -> Option<TaskRef> {
        let mut best: Option<(SimTime, TaskRef)> = None;
        for &(finish, task) in self.idx.solo_running.iter().rev() {
            // Descending (finish, task): once below the best finish (or
            // out of positive-remaining entries) nothing later can win.
            if finish <= now {
                break;
            }
            if let Some((best_finish, _)) = best {
                if finish < best_finish {
                    break;
                }
            }
            let rem = finish.saturating_sub(now);
            if rem > self.estimated_new_copy_duration(task) {
                best = match best {
                    // Equal-finish entries iterate in descending TaskRef,
                    // so keep the minimum to match the scan's tie-break.
                    Some((_, prev)) => Some((finish, task.min(prev))),
                    None => Some((finish, task)),
                };
            }
        }
        #[cfg(debug_assertions)]
        {
            let mut scan_best: Option<(SimTime, TaskRef)> = None;
            for (task, obs) in self.observe_running(now) {
                if obs.len() >= 2 {
                    continue;
                }
                let rem = obs.iter().map(|o| o.est_remaining).min().unwrap();
                if rem <= self.estimated_new_copy_duration(task) {
                    continue;
                }
                if scan_best.is_none_or(|(b, _)| rem > b) {
                    scan_best = Some((rem, task));
                }
            }
            assert_eq!(
                best.map(|(_, t)| t),
                scan_best.map(|(_, t)| t),
                "solo-running index disagrees with the observe_running scan"
            );
        }
        best.map(|(_, t)| t)
    }

    /// Exact remaining compute work (ms) in eligible phases, as the f64
    /// the pre-index scan produced. The incremental counter is integral,
    /// and every partial sum of the old task-order f64 accumulation was an
    /// exact integer (task works are integral millis, totals ≪ 2^53), so
    /// the two are bit-identical.
    fn remaining_compute_ms_f64(&self) -> f64 {
        #[cfg(debug_assertions)]
        {
            let scanned: f64 = self
                .phases
                .iter()
                .filter(|p| p.eligible && !p.is_complete())
                .flat_map(|p| &p.tasks)
                .filter(|t| !t.is_finished())
                .map(|t| t.work.as_millis() as f64)
                .sum();
            assert_eq!(
                scanned, self.idx.remaining_compute_ms as f64,
                "incremental compute-ms counter diverged from the f64 scan"
            );
        }
        self.idx.remaining_compute_ms as f64
    }

    /// The job's DAG weight α: remaining downstream transfer work over
    /// remaining current-phase compute work (§4.2), or the override the
    /// driver installed from the online estimator. O(1) via the compute
    /// counter and cached first-ineligible phase.
    pub fn alpha(&self) -> f64 {
        if let Some(a) = self.alpha_override {
            return a;
        }
        let compute_ms = self.remaining_compute_ms_f64();
        let transfer_ms: f64 = self
            .idx
            .first_ineligible
            .map(|pi| {
                let p = &self.phases[pi];
                p.transfer_ms_per_task * p.remaining() as f64
            })
            .unwrap_or(0.0);
        if transfer_ms <= 0.0 {
            1.0
        } else {
            hopper_core_alpha(transfer_ms, compute_ms)
        }
    }

    /// α computed with a *predicted* per-task intermediate output for the
    /// current upstream phase(s), instead of the ground-truth spec value.
    ///
    /// This is what a scheduler using the online α estimator (§6.3) sees:
    /// intermediate data sizes are unknown until the phase runs, so the
    /// transfer term is built from the recurring-job prediction.
    pub fn alpha_with_predicted_output(&self, mb_per_task: f64, cfg: &ClusterConfig) -> f64 {
        let compute_ms = self.remaining_compute_ms_f64();
        let Some((pi, next)) = self.idx.first_ineligible.map(|pi| (pi, &self.phases[pi])) else {
            return 1.0;
        };
        let upstream_tasks: usize = next
            .spec
            .upstream
            .iter()
            .map(|&u| self.phases[u].num_tasks())
            .sum();
        let _ = pi;
        if next.num_tasks() == 0 {
            return 1.0;
        }
        let per_task_mb = mb_per_task.max(0.0) * upstream_tasks as f64 / next.num_tasks() as f64;
        let transfer_ms = cfg.transfer_ms(per_task_mb) * next.remaining() as f64;
        if transfer_ms <= 0.0 {
            1.0
        } else {
            hopper_core_alpha(transfer_ms, compute_ms)
        }
    }

    /// Fraction of input-phase launches that were data-local.
    pub fn locality_fraction(&self) -> Option<f64> {
        let total = self.local_launches + self.nonlocal_launches;
        (total > 0).then(|| self.local_launches as f64 / total as f64)
    }
}

/// α clamped like `hopper_core::alpha_from_work` (duplicated locally to
/// avoid a dependency cycle; the clamp band is part of the documented
/// contract in both places).
fn hopper_core_alpha(transfer_ms: f64, compute_ms: f64) -> f64 {
    if compute_ms <= 0.0 {
        return 1.0;
    }
    (transfer_ms / compute_ms).clamp(0.05, 20.0)
}

/// Sample `dfs_replicas` distinct machines.
fn sample_replicas(cfg: &ClusterConfig, rng: &mut StdRng) -> Vec<MachineId> {
    let k = cfg.dfs_replicas.min(cfg.machines);
    let mut picked: Vec<MachineId> = Vec::with_capacity(k);
    while picked.len() < k {
        let m = MachineId(rng.gen_range(0..cfg.machines));
        if !picked.contains(&m) {
            picked.push(m);
        }
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopper_sim::rng_from_seed;
    use hopper_workload::{single_phase_job, CommPattern};

    fn cfg() -> ClusterConfig {
        ClusterConfig {
            machines: 10,
            slots_per_machine: 2,
            ..Default::default()
        }
    }

    fn simple_job(n_tasks: usize, work_ms: u64) -> JobRun {
        let spec = single_phase_job(
            0,
            SimTime::ZERO,
            vec![SimTime::from_millis(work_ms); n_tasks],
            1.5,
        );
        JobRun::new(spec, &cfg(), &mut rng_from_seed(7))
    }

    fn two_phase_job() -> JobRun {
        let mut spec = single_phase_job(0, SimTime::ZERO, vec![SimTime::from_millis(1000); 4], 1.5);
        spec.phases[0].output_mb_per_task = 50.0;
        spec.phases.push(hopper_workload::TracePhase {
            task_works: vec![SimTime::from_millis(500); 2],
            upstream: vec![0],
            output_mb_per_task: 0.0,
            comm: CommPattern::AllToAll,
            reads_dfs_input: false,
        });
        JobRun::new(spec, &cfg(), &mut rng_from_seed(3))
    }

    #[test]
    fn replicas_assigned_to_input_phase_only() {
        let j = two_phase_job();
        for t in &j.phases[0].tasks {
            assert_eq!(t.replicas.len(), 3);
            let mut sorted = t.replicas.clone();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "replicas must be distinct");
        }
        for t in &j.phases[1].tasks {
            assert!(t.replicas.is_empty());
        }
    }

    #[test]
    fn downstream_phase_ineligible_until_upstream_done() {
        let mut j = two_phase_job();
        assert!(j.phases[0].eligible);
        assert!(!j.phases[1].eligible);
        assert_eq!(j.current_remaining(), 4);
        assert_eq!(j.downstream_remaining(), 2);

        let mut rng = rng_from_seed(1);
        let c = cfg();
        // Run all 4 upstream tasks to completion.
        let mut finish_times = Vec::new();
        for ti in 0..4 {
            let (cr, d) = j.launch_copy(
                TaskRef::new(0, ti),
                MachineId(0),
                false,
                SimTime::ZERO,
                SimTime::ZERO,
                &c,
                &mut rng,
            );
            finish_times.push((cr, d));
        }
        let mut eligible_seen = false;
        for (i, (cr, d)) in finish_times.into_iter().enumerate() {
            let out = j.finish_copy(cr, d).unwrap();
            if i < 3 {
                assert!(out.newly_eligible.is_empty());
            } else {
                assert_eq!(out.newly_eligible, vec![1]);
                assert!(out.phase_done);
                eligible_seen = true;
            }
        }
        assert!(eligible_seen);
        assert!(j.phases[1].eligible);
        assert_eq!(j.current_remaining(), 2);
        assert_eq!(j.downstream_remaining(), 0);
    }

    #[test]
    fn shuffle_transfer_is_in_downstream_duration() {
        let j = two_phase_job();
        // 4 upstream tasks × 50 MB = 200 MB over 2 downstream tasks =
        // 100 MB each at 125 MB/s = 800 ms per task.
        assert!((j.phases[1].transfer_ms_per_task - 800.0).abs() < 1.0);
        assert_eq!(
            j.phases[1].effective_work(0),
            SimTime::from_millis(500 + 800)
        );
    }

    #[test]
    fn set_replicas_rebuilds_locality_indices() {
        let mut j = simple_job(3, 1000);
        let t0 = TaskRef::new(0, 0);
        // Point task 0's replicas at a known machine and verify every
        // locality query agrees — the mutator must rebuild the
        // pending/locality indices, not just the raw field.
        j.set_replicas(t0, vec![MachineId(7)]);
        assert!(j.has_local_task_for(MachineId(7)));
        assert_eq!(j.first_local_pending(MachineId(7)), Some(t0));
        assert_eq!(j.phases()[0].tasks[0].replicas, vec![MachineId(7)]);
        // Strip the replicas: the task must move to the no-replica set.
        j.set_replicas(t0, Vec::new());
        assert_eq!(j.first_local_pending(MachineId(7)), None);
        assert!(j.pending_no_replica_tasks().any(|t| t == t0));
        // The external read surface is the accessor; the oracle re-scan
        // (dev profile) double-checks the rebuilt index on access.
        assert_eq!(j.phases().len(), 1);
    }

    #[test]
    fn script_single_phase_installs_and_keeps_index() {
        let mut j = simple_job(2, 1000);
        j.script_single_phase(&[(123, 45), (678, 90)]);
        assert_eq!(
            j.phases()[0].tasks[0].scripted.unwrap().original,
            SimTime::from_millis(123)
        );
        assert_eq!(
            j.phases()[0].tasks[1].scripted.unwrap().speculative,
            SimTime::from_millis(90)
        );
        // Scripts are index-neutral: pending counts unchanged.
        assert_eq!(j.current_remaining(), 2);
        assert_eq!(j.pending_originals(), 2);
    }

    #[test]
    fn race_kills_siblings_and_frees_slots() {
        let mut j = simple_job(1, 1000);
        let mut rng = rng_from_seed(2);
        let c = cfg();
        let task = TaskRef::new(0, 0);
        let (orig, _) = j.launch_copy(
            task,
            MachineId(0),
            false,
            SimTime::ZERO,
            SimTime::ZERO,
            &c,
            &mut rng,
        );
        let (spec, _) = j.launch_copy(
            task,
            MachineId(1),
            true,
            SimTime::from_millis(100),
            SimTime::ZERO,
            &c,
            &mut rng,
        );
        assert_eq!(j.occupied_slots(), 2);

        let out = j.finish_copy(spec, SimTime::from_millis(600)).unwrap();
        assert_eq!(out.freed.len(), 2, "winner + killed sibling");
        assert!(out.freed.contains(&MachineId(0)));
        assert!(out.freed.contains(&MachineId(1)));
        assert!(out.job_done);
        assert_eq!(j.occupied_slots(), 0);

        // The original's own completion event is now stale.
        assert!(j.finish_copy(orig, SimTime::from_millis(1000)).is_none());
    }

    #[test]
    fn stale_finish_for_killed_copy_is_ignored() {
        let mut j = simple_job(2, 1000);
        let mut rng = rng_from_seed(2);
        let c = cfg();
        let t0 = TaskRef::new(0, 0);
        let (c0, _) = j.launch_copy(
            t0,
            MachineId(0),
            false,
            SimTime::ZERO,
            SimTime::ZERO,
            &c,
            &mut rng,
        );
        let out = j.finish_copy(c0, SimTime::from_millis(500)).unwrap();
        assert!(!out.job_done);
        assert!(!out.phase_done);
        assert_eq!(j.current_remaining(), 1);
        assert!(j.finish_copy(c0, SimTime::from_millis(900)).is_none());
    }

    #[test]
    fn scripted_durations_are_exact() {
        let mut j = JobRun::scripted(0, SimTime::ZERO, &[(30_000, 10_000), (10_000, 10_000)]);
        let mut rng = rng_from_seed(5);
        let c = cfg();
        let (_, d0) = j.launch_copy(
            TaskRef::new(0, 0),
            MachineId(0),
            false,
            SimTime::ZERO,
            SimTime::ZERO,
            &c,
            &mut rng,
        );
        assert_eq!(d0, SimTime::from_millis(30_000));
        let (_, d0s) = j.launch_copy(
            TaskRef::new(0, 0),
            MachineId(1),
            true,
            SimTime::from_millis(2000),
            SimTime::ZERO,
            &c,
            &mut rng,
        );
        assert_eq!(d0s, SimTime::from_millis(10_000));
    }

    #[test]
    fn observation_progress_and_estimates() {
        let mut j = JobRun::scripted(0, SimTime::ZERO, &[(10_000, 5_000)]);
        let mut rng = rng_from_seed(5);
        let c = cfg();
        j.launch_copy(
            TaskRef::new(0, 0),
            MachineId(0),
            false,
            SimTime::ZERO,
            SimTime::ZERO,
            &c,
            &mut rng,
        );
        let obs = j.observe_running(SimTime::from_millis(2_500));
        assert_eq!(obs.len(), 1);
        let (task, copies) = &obs[0];
        assert_eq!(*task, TaskRef::new(0, 0));
        assert_eq!(copies.len(), 1);
        assert!((copies[0].progress - 0.25).abs() < 1e-9);
        assert_eq!(copies[0].est_remaining, SimTime::from_millis(7_500));
        assert_eq!(copies[0].elapsed, SimTime::from_millis(2_500));
    }

    #[test]
    fn next_task_prefers_local() {
        let mut j = simple_job(5, 1000);
        // Make task 3 local to machine 9, others not.
        for (i, t) in j.phases[0].tasks.iter_mut().enumerate() {
            t.replicas = if i == 3 {
                vec![MachineId(9)]
            } else {
                vec![MachineId(0)]
            };
        }
        j.rebuild_index();
        let (tr, local) = j.next_task_for(Some(MachineId(9))).unwrap();
        assert_eq!(tr, TaskRef::new(0, 3));
        assert!(local);
        assert!(j.has_local_task_for(MachineId(9)));
        assert!(!j.has_local_task_for(MachineId(5)));
        // A machine with no local tasks falls back to the first unlaunched.
        let (tr2, local2) = j.next_task_for(Some(MachineId(5))).unwrap();
        assert_eq!(tr2, TaskRef::new(0, 0));
        assert!(!local2);
    }

    #[test]
    fn locality_counters() {
        let mut j = simple_job(2, 1000);
        for t in j.phases[0].tasks.iter_mut() {
            t.replicas = vec![MachineId(1)];
        }
        j.rebuild_index();
        let mut rng = rng_from_seed(2);
        let c = cfg();
        j.launch_copy(
            TaskRef::new(0, 0),
            MachineId(1),
            false,
            SimTime::ZERO,
            SimTime::ZERO,
            &c,
            &mut rng,
        );
        j.launch_copy(
            TaskRef::new(0, 1),
            MachineId(2),
            false,
            SimTime::ZERO,
            SimTime::ZERO,
            &c,
            &mut rng,
        );
        assert_eq!(j.local_launches, 1);
        assert_eq!(j.nonlocal_launches, 1);
        assert!((j.locality_fraction().unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn alpha_reflects_transfer_vs_compute() {
        let j = two_phase_job();
        // transfer = 800 ms × 2 tasks = 1600; compute = 4 × 1000 = 4000.
        let a = j.alpha();
        assert!((a - 0.4).abs() < 0.01, "alpha {a}");
        // Single-phase job: no downstream → α = 1.
        assert_eq!(simple_job(3, 500).alpha(), 1.0);
        // Override wins.
        let mut j2 = two_phase_job();
        j2.alpha_override = Some(2.5);
        assert_eq!(j2.alpha(), 2.5);
    }

    #[test]
    fn pending_and_remaining_counts() {
        let mut j = simple_job(3, 1000);
        assert_eq!(j.pending_originals(), 3);
        let mut rng = rng_from_seed(2);
        let c = cfg();
        j.launch_copy(
            TaskRef::new(0, 0),
            MachineId(0),
            false,
            SimTime::ZERO,
            SimTime::ZERO,
            &c,
            &mut rng,
        );
        assert_eq!(j.pending_originals(), 2);
        assert_eq!(j.current_remaining(), 3);
        assert_eq!(j.total_remaining(), 3);
        assert_eq!(j.occupied_slots(), 1);
    }

    #[test]
    fn estimated_new_copy_duration_uses_completed_stats() {
        let mut j = simple_job(3, 1000);
        let task = TaskRef::new(0, 0);
        // Before anything completes: nominal work.
        assert_eq!(
            j.estimated_new_copy_duration(task),
            SimTime::from_millis(1000)
        );
        let mut rng = rng_from_seed(2);
        let c = cfg();
        let (c0, d0) = j.launch_copy(
            task,
            MachineId(0),
            false,
            SimTime::ZERO,
            SimTime::ZERO,
            &c,
            &mut rng,
        );
        j.finish_copy(c0, d0).unwrap();
        assert_eq!(j.estimated_new_copy_duration(TaskRef::new(0, 1)), d0);
    }

    #[test]
    #[should_panic(expected = "ineligible phase")]
    fn launching_into_ineligible_phase_panics() {
        let mut j = two_phase_job();
        let mut rng = rng_from_seed(2);
        let c = cfg();
        j.launch_copy(
            TaskRef::new(1, 0),
            MachineId(0),
            false,
            SimTime::ZERO,
            SimTime::ZERO,
            &c,
            &mut rng,
        );
    }

    #[test]
    fn fail_machine_requeues_sole_copy_tasks() {
        let mut j = simple_job(3, 1000);
        let mut rng = rng_from_seed(2);
        let c = cfg();
        // Task 0 runs on machine 4, task 1 on machine 5.
        for (ti, m) in [(0usize, 4usize), (1, 5)] {
            j.launch_copy(
                TaskRef::new(0, ti),
                MachineId(m),
                false,
                SimTime::ZERO,
                SimTime::ZERO,
                &c,
                &mut rng,
            );
        }
        assert_eq!(j.pending_originals(), 1);
        let out = j.fail_machine(MachineId(4));
        assert_eq!(out.killed, 1);
        assert_eq!(out.killed_spec, 0);
        assert_eq!(out.requeued, vec![TaskRef::new(0, 0)]);
        // The task is pending again and relaunchable.
        assert_eq!(j.pending_originals(), 2);
        assert_eq!(j.occupied_slots(), 1);
        assert!(j.pending_tasks().any(|t| t == TaskRef::new(0, 0)));
        let (copy, _) = j.launch_copy(
            TaskRef::new(0, 0),
            MachineId(6),
            false,
            SimTime::from_millis(10),
            SimTime::ZERO,
            &c,
            &mut rng,
        );
        assert_eq!(copy.copy, 1, "relaunch is a fresh copy of the same task");
        assert_eq!(j.pending_originals(), 1);
        // Unrelated machines are untouched.
        let none = j.fail_machine(MachineId(9));
        assert_eq!(none.killed, 0);
        assert!(none.requeued.is_empty());
    }

    #[test]
    fn fail_machine_with_speculative_sibling_keeps_task_running() {
        let mut j = simple_job(1, 1000);
        let mut rng = rng_from_seed(2);
        let c = cfg();
        let task = TaskRef::new(0, 0);
        j.launch_copy(
            task,
            MachineId(0),
            false,
            SimTime::ZERO,
            SimTime::ZERO,
            &c,
            &mut rng,
        );
        let (spec, _) = j.launch_copy(
            task,
            MachineId(1),
            true,
            SimTime::from_millis(100),
            SimTime::ZERO,
            &c,
            &mut rng,
        );
        // The original's machine dies; the speculative copy survives and
        // the task is NOT requeued.
        let out = j.fail_machine(MachineId(0));
        assert_eq!(out.killed, 1);
        assert!(out.requeued.is_empty());
        assert_eq!(j.occupied_slots(), 1);
        assert_eq!(j.pending_originals(), 0);
        // The surviving speculative copy can finish the task.
        let fin = j
            .finish_copy(spec, SimTime::from_millis(50_000))
            .expect("survivor finishes");
        assert!(fin.job_done);
        assert_eq!(fin.freed.len(), 1, "only the survivor frees a slot");
    }

    #[test]
    fn rescale_machine_stretches_remaining_time_only() {
        let mut j = JobRun::scripted(0, SimTime::ZERO, &[(10_000, 5_000)]);
        let mut rng = rng_from_seed(5);
        let c = cfg();
        j.launch_copy(
            TaskRef::new(0, 0),
            MachineId(0),
            false,
            SimTime::ZERO,
            SimTime::ZERO,
            &c,
            &mut rng,
        );
        // At t = 4 s the machine halves its speed: 6 s remaining → 12 s.
        let now = SimTime::from_millis(4_000);
        let resched = j.rescale_machine(MachineId(0), now, 2.0);
        assert_eq!(resched.len(), 1);
        assert_eq!(resched[0].1, SimTime::from_millis(16_000));
        let cp = &j.phases()[0].tasks[0].copies[0];
        assert_eq!(cp.finish_time(), SimTime::from_millis(16_000));
        // Speed restored at t = 10 s: 6 s remaining → 3 s.
        let back = j.rescale_machine(MachineId(0), SimTime::from_millis(10_000), 0.5);
        assert_eq!(back[0].1, SimTime::from_millis(13_000));
        // Other machines are untouched.
        assert!(j
            .rescale_machine(MachineId(3), SimTime::from_millis(11_000), 2.0)
            .is_empty());
    }

    #[test]
    fn rescale_keeps_best_extra_speculation_consistent() {
        // Two solo-running tasks; rescaling one must move it within the
        // solo-running index (pinned by the debug oracle in
        // best_extra_speculation).
        let mut j = JobRun::scripted(0, SimTime::ZERO, &[(10_000, 1_000), (8_000, 1_000)]);
        let mut rng = rng_from_seed(5);
        let c = cfg();
        for ti in 0..2 {
            j.launch_copy(
                TaskRef::new(0, ti),
                MachineId(ti),
                false,
                SimTime::ZERO,
                SimTime::ZERO,
                &c,
                &mut rng,
            );
        }
        assert_eq!(
            j.best_extra_speculation(SimTime::from_millis(100)),
            Some(TaskRef::new(0, 0))
        );
        // Machine 1 slows 4×: task 1's finish moves to 32 s — past task 0.
        j.rescale_machine(MachineId(1), SimTime::ZERO, 4.0);
        assert_eq!(
            j.best_extra_speculation(SimTime::from_millis(100)),
            Some(TaskRef::new(0, 1))
        );
    }

    #[test]
    fn launch_at_speed_divides_duration() {
        let mut j = JobRun::scripted(0, SimTime::ZERO, &[(10_000, 5_000), (10_000, 5_000)]);
        let mut rng = rng_from_seed(5);
        let c = cfg();
        let (_, d_slow) = j.launch_copy_at_speed(
            TaskRef::new(0, 0),
            MachineId(0),
            false,
            SimTime::ZERO,
            SimTime::ZERO,
            &c,
            &mut rng,
            0.5,
        );
        assert_eq!(d_slow, SimTime::from_millis(20_000));
        let (_, d_fast) = j.launch_copy_at_speed(
            TaskRef::new(0, 1),
            MachineId(1),
            false,
            SimTime::ZERO,
            SimTime::ZERO,
            &c,
            &mut rng,
            2.0,
        );
        assert_eq!(d_fast, SimTime::from_millis(5_000));
    }

    #[test]
    fn beta_drives_duration_variance() {
        // Heavier tail (β=1.1) must produce more extreme max multipliers
        // than a light tail (β=1.9) over many draws.
        let c = cfg();
        let max_mult = |beta: f64, seed: u64| -> f64 {
            let spec = single_phase_job(
                0,
                SimTime::ZERO,
                vec![SimTime::from_millis(1000); 400],
                beta,
            );
            let mut j = JobRun::new(spec, &c, &mut rng_from_seed(seed));
            let mut rng = rng_from_seed(seed + 1);
            let mut max = 0.0f64;
            for ti in 0..400 {
                let (_, d) = j.launch_copy(
                    TaskRef::new(0, ti),
                    MachineId(0),
                    false,
                    SimTime::ZERO,
                    SimTime::ZERO,
                    &c,
                    &mut rng,
                );
                max = max.max(d.as_millis() as f64 / 1000.0);
            }
            max
        };
        assert!(max_mult(1.1, 10) > max_mult(1.9, 10));
    }
}
