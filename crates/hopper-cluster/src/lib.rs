//! Cluster substrate for the Hopper reproduction.
//!
//! The paper's prototypes run inside Hadoop/Spark/Sparrow on a 200-node
//! cluster; this crate is the simulated equivalent: machines with slots
//! ([`machine`]), and jobs whose tasks execute as racing copies with
//! heavy-tailed durations, data locality, DAG phases, and shuffle transfer
//! ([`job`]). Both the centralized (`hopper-central`) and decentralized
//! (`hopper-decentral`) drivers share these execution semantics, so policy
//! comparisons are apples-to-apples.

pub mod dynamics;
pub mod ids;
pub mod job;
pub mod machine;
pub mod slab;

pub use dynamics::{
    exp_incident_delay_ms, uniform_duration_ms, DynEvent, DynOutcome, DynamicsConfig,
    HeteroProfile, MachineDynamics,
};
pub use ids::{CopyRef, MachineId, TaskRef};
pub use job::{
    Copy, CopyObservation, CopyStatus, FailOutcome, FinishOutcome, JobRun, PhaseRun, ScriptedTask,
    TaskRun,
};
pub use machine::{ClusterConfig, Machines, SlotTemp};
pub use slab::JobSlab;
