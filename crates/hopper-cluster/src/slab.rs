//! [`JobSlab`]: id-indexed storage of live [`JobRun`]s with retirement.
//!
//! The streaming pipeline's memory contract rests here: a driver inserts
//! a job's runtime state at its arrival and **retires** it the moment it
//! completes, so live memory is O(active jobs) instead of O(total jobs).
//! Retirement is observational, not just a `drop`: indexing a retired
//! (or not-yet-arrived) job id panics, which is how the invariant *"a
//! retired job is observationally gone — no index, estimator, or refusal
//! path may reference it"* (DESIGN.md, "Streaming pipeline") is enforced
//! rather than hoped for. Every access in both drivers goes through this
//! panic, in release builds too.
//!
//! The slab also keeps the run's *live high-water mark* — the scale
//! tests and the `fig_scale` bench assert it stays a small fraction of
//! total jobs on long streams.

use std::ops::{Index, IndexMut};

use crate::job::JobRun;

/// Storage for live jobs, indexed by trace job id.
///
/// Slots are boxed so an empty (never-arrived or retired) slot costs one
/// pointer, not `size_of::<JobRun>()` — a million-job stream keeps the
/// slot table at a few MB while only active jobs own real state.
#[derive(Debug)]
pub struct JobSlab {
    slots: Vec<Option<Box<JobRun>>>,
    live: usize,
    high_water: usize,
    retired: usize,
}

impl JobSlab {
    /// An all-empty slab with id capacity `total_jobs`.
    pub fn new(total_jobs: usize) -> Self {
        let mut slots = Vec::new();
        slots.resize_with(total_jobs, || None);
        JobSlab {
            slots,
            live: 0,
            high_water: 0,
            retired: 0,
        }
    }

    /// Insert job `j`'s runtime state (at its arrival). Panics if the
    /// slot is already occupied.
    pub fn insert(&mut self, j: usize, job: JobRun) {
        assert!(self.slots[j].is_none(), "job {j} inserted twice");
        self.slots[j] = Some(Box::new(job));
        self.live += 1;
        self.high_water = self.high_water.max(self.live);
    }

    /// Remove and return job `j`'s state (at its completion). After this
    /// call any indexed access to `j` panics. Panics if `j` is not live.
    pub fn retire(&mut self, j: usize) -> Box<JobRun> {
        let job = self.slots[j].take().unwrap_or_else(|| {
            panic!("retiring job {j}, which is not live");
        });
        self.live -= 1;
        self.retired += 1;
        job
    }

    /// Whether job `j` is currently live.
    pub fn is_live(&self, j: usize) -> bool {
        self.slots.get(j).is_some_and(|s| s.is_some())
    }

    /// Jobs currently live.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Maximum simultaneous live jobs over the slab's lifetime.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Jobs retired so far.
    pub fn retired(&self) -> usize {
        self.retired
    }

    /// Id capacity (total jobs of the run).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

impl Index<usize> for JobSlab {
    type Output = JobRun;

    #[inline]
    fn index(&self, j: usize) -> &JobRun {
        self.slots[j]
            .as_deref()
            .unwrap_or_else(|| panic!("job {j} referenced while not live (retirement invariant)"))
    }
}

impl IndexMut<usize> for JobSlab {
    #[inline]
    fn index_mut(&mut self, j: usize) -> &mut JobRun {
        self.slots[j]
            .as_deref_mut()
            .unwrap_or_else(|| panic!("job {j} referenced while not live (retirement invariant)"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::ClusterConfig;
    use hopper_sim::{rng_from_seed, SimTime};
    use hopper_workload::single_phase_job;

    fn job(id: usize) -> JobRun {
        let spec = single_phase_job(id, SimTime::ZERO, vec![SimTime::from_millis(100)], 1.5);
        JobRun::new(spec, &ClusterConfig::default(), &mut rng_from_seed(1))
    }

    #[test]
    fn insert_retire_tracks_live_and_high_water() {
        let mut s = JobSlab::new(4);
        assert_eq!((s.live(), s.high_water(), s.capacity()), (0, 0, 4));
        s.insert(0, job(0));
        s.insert(2, job(2));
        assert_eq!((s.live(), s.high_water()), (2, 2));
        assert!(s.is_live(2) && !s.is_live(1));
        let retired = s.retire(0);
        assert_eq!(retired.id, 0);
        assert_eq!((s.live(), s.high_water(), s.retired()), (1, 2, 1));
        s.insert(1, job(1));
        s.insert(3, job(3));
        assert_eq!((s.live(), s.high_water()), (3, 3));
        assert_eq!(s[3].id, 3);
    }

    #[test]
    #[should_panic(expected = "retirement invariant")]
    fn indexing_a_retired_job_panics() {
        let mut s = JobSlab::new(1);
        s.insert(0, job(0));
        s.retire(0);
        let _ = &s[0];
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn double_insert_panics() {
        let mut s = JobSlab::new(1);
        s.insert(0, job(0));
        s.insert(0, job(0));
    }
}
