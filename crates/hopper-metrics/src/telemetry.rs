//! Windowed time-series telemetry: the run-dynamics plane.
//!
//! End-of-run aggregates (mean, p99, makespan) hide exactly the
//! transients the simulator exists to study — failure-recovery dips,
//! fault-storm degradation, shard-window stalls. This module adds a
//! fixed-width windowed collector that drivers *observe* into while the
//! simulation runs, producing per-window utilization, queue depth, live
//! jobs, launch/kill/completion rates, message counters, and a
//! per-window JCT [`JobDigest`] — in O(windows) memory, independent of
//! job count.
//!
//! Three contracts (see DESIGN.md, "Telemetry plane"):
//!
//! - **Observer invariant.** The collector never touches simulation
//!   state, RNG, or event ordering. A run with telemetry enabled
//!   produces bit-identical stats, digest, and job results to the same
//!   run with telemetry off; `window_ms = 0` (the default) constructs
//!   nothing and every method is a no-op.
//! - **Boundary sampling is exact.** Drivers call
//!   [`SeriesCollector::boundary_due`] with each event's timestamp
//!   *before* processing it. Because event times are non-decreasing,
//!   every event counted since the last close necessarily falls inside
//!   the still-open window — so per-window counter deltas attribute
//!   each event to exactly the window containing its timestamp. Gauges
//!   are sampled at the first event at-or-past a boundary; since state
//!   is frozen between events, that sample *is* the state at the
//!   boundary, and windows skipped without any event carry the same
//!   gauges forward with zero counters.
//! - **Shard-merge commutativity.** Counters and gauges are sums over
//!   disjoint entity sets (each scheduler, worker, and job is owned by
//!   exactly one shard) and the per-window digest merge is an exact
//!   multiset union, so [`TelemetrySeries::merge`] is independent of
//!   shard count and merge order: shards=1 and shards=N produce
//!   bit-identical merged series.

use crate::digest::JobDigest;
use crate::stats::CoreStats;

/// Point-in-time view a driver hands the collector at a window boundary
/// (and once more at the end of the run).
///
/// Gauges (`busy_slots`, `queue_depth`, `live_jobs`) are instantaneous
/// state; the rest are *cumulative* counters since the start of the run
/// — the collector differences consecutive snapshots to get per-window
/// deltas.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// Slots currently running a task copy.
    pub busy_slots: u64,
    /// Queued work not yet running (pending original tasks for the
    /// central driver; parked worker-queue reservations for the
    /// decentralized drivers).
    pub queue_depth: u64,
    /// Jobs arrived but not yet complete.
    pub live_jobs: u64,
    /// Cumulative jobs completed.
    pub completed: u64,
    /// Cumulative original copies launched.
    pub orig_launched: u64,
    /// Cumulative speculative copies launched.
    pub spec_launched: u64,
    /// Cumulative tasks won by a speculative copy.
    pub spec_won: u64,
    /// Cumulative copies killed (central: scheduler kills; decentral:
    /// kill RPCs sent).
    pub killed: u64,
    /// Cumulative protocol messages (reservations + responses +
    /// refusals; 0 for the central driver).
    pub messages: u64,
    /// Cumulative simulator events processed.
    pub events: u64,
}

/// One closed window of the series: gauges at the window-end boundary
/// plus counter deltas and the JCT digest of completions inside
/// `[index·window_ms, (index+1)·window_ms)`.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryWindow {
    /// Window index; the window covers
    /// `[index·window_ms, (index+1)·window_ms)` in simulation time.
    pub index: u64,
    /// Busy slots at the end-of-window boundary.
    pub busy_slots: u64,
    /// Queue depth at the end-of-window boundary.
    pub queue_depth: u64,
    /// Live jobs at the end-of-window boundary.
    pub live_jobs: u64,
    /// Jobs completed inside this window.
    pub completed: u64,
    /// Original copies launched inside this window.
    pub orig_launched: u64,
    /// Speculative copies launched inside this window.
    pub spec_launched: u64,
    /// Tasks won by a speculative copy inside this window.
    pub spec_won: u64,
    /// Copies killed inside this window.
    pub killed: u64,
    /// Protocol messages inside this window.
    pub messages: u64,
    /// Simulator events inside this window.
    pub events: u64,
    /// Digest of job completion times for jobs that finished inside
    /// this window.
    pub jct: JobDigest,
}

impl Default for TelemetryWindow {
    /// The all-zero window at index 0 (empty digest) — scaffolding for
    /// synthesizing series (detector tests build inputs from it).
    fn default() -> Self {
        TelemetryWindow::carried(0, 0, 0, 0)
    }
}

impl TelemetryWindow {
    /// An all-zero window at `index` carrying the given gauges — used
    /// for boundary crossings without events and for padding shorter
    /// shard series during a merge.
    fn carried(index: u64, busy_slots: u64, queue_depth: u64, live_jobs: u64) -> Self {
        TelemetryWindow {
            index,
            busy_slots,
            queue_depth,
            live_jobs,
            completed: 0,
            orig_launched: 0,
            spec_launched: 0,
            spec_won: 0,
            killed: 0,
            messages: 0,
            events: 0,
            jct: JobDigest::new(),
        }
    }

    /// Fold another shard's same-index window in: counters and gauges
    /// sum (disjoint entity ownership), digests merge exactly.
    fn absorb(&mut self, other: &TelemetryWindow) {
        debug_assert_eq!(self.index, other.index);
        self.busy_slots += other.busy_slots;
        self.queue_depth += other.queue_depth;
        self.live_jobs += other.live_jobs;
        self.completed += other.completed;
        self.orig_launched += other.orig_launched;
        self.spec_launched += other.spec_launched;
        self.spec_won += other.spec_won;
        self.killed += other.killed;
        self.messages += other.messages;
        self.events += other.events;
        self.jct.merge(&other.jct);
    }
}

/// A complete windowed time-series for one run (or one shard of one
/// run, before [`TelemetrySeries::merge`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySeries {
    /// Window width in simulation milliseconds (always > 0 — a
    /// disabled collector produces no series at all).
    pub window_ms: u64,
    /// Total slot capacity behind `busy_slots` (for utilization).
    pub total_slots: u64,
    /// Closed windows in index order, contiguous from 0.
    pub windows: Vec<TelemetryWindow>,
}

impl TelemetrySeries {
    /// Merge another shard's series into this one, window by window.
    ///
    /// The shorter series is padded with its **last** gauges (frozen
    /// entity state — zero-padding would mis-report, e.g., unpurged
    /// worker queues) and zero counters; capacity sums because each
    /// shard owns a disjoint worker set. Sum + exact digest union make
    /// the result independent of shard count and merge order. Panics
    /// if the window widths differ.
    pub fn merge(&mut self, other: &TelemetrySeries) {
        assert_eq!(
            self.window_ms, other.window_ms,
            "merging series with different window widths"
        );
        self.total_slots += other.total_slots;
        let pad = |w: &[TelemetryWindow], i: u64| match w.last() {
            Some(last) => {
                TelemetryWindow::carried(i, last.busy_slots, last.queue_depth, last.live_jobs)
            }
            None => TelemetryWindow::carried(i, 0, 0, 0),
        };
        if other.windows.len() > self.windows.len() {
            for i in self.windows.len()..other.windows.len() {
                let w = pad(&self.windows, i as u64);
                self.windows.push(w);
            }
        }
        for (i, mine) in self.windows.iter_mut().enumerate() {
            if let Some(theirs) = other.windows.get(i) {
                mine.absorb(theirs);
            } else {
                mine.absorb(&pad(&other.windows, i as u64));
            }
        }
    }

    /// Sum of per-window completion counts — the conservation check:
    /// equals the run's total completed jobs.
    pub fn total_completed(&self) -> u64 {
        self.windows.iter().map(|w| w.completed).sum()
    }

    /// Sum of per-window event counts — equals the run's total events.
    pub fn total_events(&self) -> u64 {
        self.windows.iter().map(|w| w.events).sum()
    }

    /// Render as JSON lines: a `meta` line, then one object per window.
    ///
    /// The format is the repo's own stable contract (hand-rolled, no
    /// external deps) consumed by `hopper report` and the nightly diff:
    /// floats are fixed to 3 decimals, field order is fixed, and the
    /// `label` must not contain `"` (writers sanitize).
    pub fn to_jsonl(&self, label: &str, seed: u64) -> String {
        let mut out = String::with_capacity(128 * (self.windows.len() + 1));
        let label = label.replace('"', "'");
        out.push_str(&format!(
            "{{\"meta\":true,\"label\":\"{}\",\"seed\":{},\"window_ms\":{},\"total_slots\":{},\"windows\":{}}}\n",
            label,
            seed,
            self.window_ms,
            self.total_slots,
            self.windows.len()
        ));
        for w in &self.windows {
            out.push_str(&format!(
                "{{\"w\":{},\"busy\":{},\"queue\":{},\"live\":{},\"completed\":{},\"orig\":{},\"spec\":{},\"spec_won\":{},\"killed\":{},\"msgs\":{},\"events\":{},\"jct_count\":{},\"jct_mean_ms\":{:.3},\"jct_p50_ms\":{:.3},\"jct_p99_ms\":{:.3},\"jct_max_ms\":{}}}\n",
                w.index,
                w.busy_slots,
                w.queue_depth,
                w.live_jobs,
                w.completed,
                w.orig_launched,
                w.spec_launched,
                w.spec_won,
                w.killed,
                w.messages,
                w.events,
                w.jct.count(),
                w.jct.mean_ms(),
                w.jct.quantile_ms(0.5),
                w.jct.quantile_ms(0.99),
                w.jct.max_ms(),
            ));
        }
        out
    }

    /// Render as CSV with a fixed header (same fields and float
    /// formatting as [`to_jsonl`](Self::to_jsonl)).
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(64 * (self.windows.len() + 1));
        out.push_str(
            "window,busy_slots,queue_depth,live_jobs,completed,orig_launched,spec_launched,spec_won,killed,messages,events,jct_count,jct_mean_ms,jct_p50_ms,jct_p99_ms,jct_max_ms\n",
        );
        for w in &self.windows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{:.3},{:.3},{:.3},{}\n",
                w.index,
                w.busy_slots,
                w.queue_depth,
                w.live_jobs,
                w.completed,
                w.orig_launched,
                w.spec_launched,
                w.spec_won,
                w.killed,
                w.messages,
                w.events,
                w.jct.count(),
                w.jct.mean_ms(),
                w.jct.quantile_ms(0.5),
                w.jct.quantile_ms(0.99),
                w.jct.max_ms(),
            ));
        }
        out
    }
}

/// The windowed collector a driver embeds. `window_ms = 0` disables it:
/// construction allocates nothing and every method returns immediately,
/// which is what keeps the telemetry-off path bit-identical to the
/// pre-telemetry simulator.
#[derive(Debug, Clone)]
pub struct SeriesCollector {
    window_ms: u64,
    total_slots: u64,
    /// Index of the currently open window.
    cur: u64,
    /// Counter snapshot at the last close (deltas subtract this).
    last: TelemetrySnapshot,
    /// JCT digest accumulating into the open window.
    open_jct: JobDigest,
    windows: Vec<TelemetryWindow>,
}

impl SeriesCollector {
    /// A collector with the given window width (ms) and slot capacity.
    /// `window_ms = 0` yields a disabled, allocation-free collector.
    pub fn new(window_ms: u64, total_slots: u64) -> Self {
        SeriesCollector {
            window_ms,
            total_slots,
            cur: 0,
            last: TelemetrySnapshot::default(),
            open_jct: JobDigest::new(),
            windows: Vec::new(),
        }
    }

    /// Whether this collector records anything at all.
    pub fn enabled(&self) -> bool {
        self.window_ms != 0
    }

    /// Cheap per-event check: does processing an event at `now_ms`
    /// require closing one or more windows first? Drivers guard the
    /// (O(live-state)) snapshot construction behind this so the
    /// disabled path costs one branch per event.
    #[inline]
    pub fn boundary_due(&self, now_ms: u64) -> bool {
        self.window_ms != 0 && now_ms >= (self.cur + 1) * self.window_ms
    }

    /// Close every window strictly before the one containing `now_ms`,
    /// given the pre-event state `snap`. The first closed window takes
    /// the counter deltas and the open JCT digest (every uncounted
    /// event lies inside it — see the module docs); later skipped
    /// windows carry the gauges forward with zero counters.
    pub fn close_to(&mut self, now_ms: u64, snap: TelemetrySnapshot) {
        if self.window_ms == 0 {
            return;
        }
        let target = now_ms / self.window_ms;
        while self.cur < target {
            self.close_one(snap);
        }
    }

    /// Fold one completed job's duration into the open window's digest.
    #[inline]
    pub fn observe_jct(&mut self, duration_ms: u64) {
        if self.window_ms != 0 {
            self.open_jct.observe_ms(duration_ms);
        }
    }

    /// Close the final (partial) window from the end-of-run state and
    /// return the finished series; `None` when disabled.
    pub fn finish(&mut self, snap: TelemetrySnapshot) -> Option<TelemetrySeries> {
        if self.window_ms == 0 {
            return None;
        }
        self.close_one(snap);
        Some(TelemetrySeries {
            window_ms: self.window_ms,
            total_slots: self.total_slots,
            windows: std::mem::take(&mut self.windows),
        })
    }

    fn close_one(&mut self, snap: TelemetrySnapshot) {
        self.windows.push(TelemetryWindow {
            index: self.cur,
            busy_slots: snap.busy_slots,
            queue_depth: snap.queue_depth,
            live_jobs: snap.live_jobs,
            completed: snap.completed - self.last.completed,
            orig_launched: snap.orig_launched - self.last.orig_launched,
            spec_launched: snap.spec_launched - self.last.spec_launched,
            spec_won: snap.spec_won - self.last.spec_won,
            killed: snap.killed - self.last.killed,
            messages: snap.messages - self.last.messages,
            events: snap.events - self.last.events,
            jct: std::mem::take(&mut self.open_jct),
        });
        self.last = snap;
        self.cur += 1;
    }
}

/// The unified run-output surface: everything a caller needs from a
/// finished run without reaching into engine-specific stats structs.
///
/// Both `RunOutput` (central) and `DecOutput` (decentralized) embed one
/// of these, and the `RunSummary` trait exposes it directly — replacing
/// the former per-field `core()` / `digest()` / `live_high_water()`
/// accessors. The engine-specific `RunStats` / `DecStats` remain on the
/// outputs untouched, so golden files keyed to their `Debug` rendering
/// are unaffected.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Engine-independent counters (launches, events, messages,
    /// makespan).
    pub core: CoreStats,
    /// Streaming JCT digest over every completed job.
    pub digest: JobDigest,
    /// High-water mark of simultaneously live jobs (the streaming
    /// memory gate).
    pub live_high_water: usize,
    /// Windowed time-series; `None` unless the run set
    /// `telemetry_window_ms > 0`.
    pub telemetry: Option<TelemetrySeries>,
}

impl Default for RunReport {
    /// The report of a run that did nothing: zero counters, empty
    /// digest, no telemetry.
    fn default() -> Self {
        RunReport {
            core: CoreStats::default(),
            digest: JobDigest::default(),
            live_high_water: 0,
            telemetry: None,
        }
    }
}

impl RunReport {
    /// Exact mean job duration (ms) from the digest.
    pub fn mean_duration_ms(&self) -> f64 {
        self.digest.mean_ms()
    }

    /// ε-approximate duration quantile (ms) at `p` from the digest.
    pub fn percentile_duration_ms(&self, p: f64) -> f64 {
        self.digest.quantile_ms(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(gauges: (u64, u64, u64), completed: u64, events: u64) -> TelemetrySnapshot {
        TelemetrySnapshot {
            busy_slots: gauges.0,
            queue_depth: gauges.1,
            live_jobs: gauges.2,
            completed,
            events,
            ..TelemetrySnapshot::default()
        }
    }

    #[test]
    fn disabled_collector_is_inert() {
        let mut c = SeriesCollector::new(0, 100);
        assert!(!c.enabled());
        assert!(!c.boundary_due(u64::MAX / 2));
        c.observe_jct(5);
        c.close_to(1_000_000, TelemetrySnapshot::default());
        assert_eq!(c.finish(TelemetrySnapshot::default()), None);
    }

    #[test]
    fn deltas_land_in_the_window_containing_their_events() {
        let mut c = SeriesCollector::new(100, 10);
        // Events at t=10, t=40 (window 0), then one at t=250 (window 2).
        assert!(!c.boundary_due(10));
        assert!(!c.boundary_due(40));
        c.observe_jct(40);
        assert!(c.boundary_due(250));
        c.close_to(250, snap((7, 3, 2), 1, 2));
        // Event at t=250 processes, run ends at t=260.
        let s = c.finish(snap((0, 0, 0), 2, 3)).unwrap();
        assert_eq!(s.windows.len(), 3);
        // Window 0 holds both early events and the JCT observation.
        assert_eq!(s.windows[0].events, 2);
        assert_eq!(s.windows[0].completed, 1);
        assert_eq!(s.windows[0].jct.count(), 1);
        assert_eq!(s.windows[0].busy_slots, 7);
        // Window 1 was skipped: carried gauges, zero counters.
        assert_eq!(s.windows[1].events, 0);
        assert_eq!(s.windows[1].busy_slots, 7);
        assert_eq!(s.windows[1].jct.count(), 0);
        // Window 2 holds the final event.
        assert_eq!(s.windows[2].events, 1);
        assert_eq!(s.windows[2].completed, 1);
        assert_eq!(s.total_events(), 3);
        assert_eq!(s.total_completed(), 2);
    }

    #[test]
    fn merge_is_commutative_and_pads_with_last_gauges() {
        let mk = |n: usize, busy: u64| {
            let mut c = SeriesCollector::new(50, 100);
            for i in 0..n as u64 {
                let t = (i + 1) * 50;
                if c.boundary_due(t) {
                    c.close_to(t, snap((busy, 1, 1), i, i));
                }
            }
            c.finish(snap((busy, 1, 1), n as u64, n as u64)).unwrap()
        };
        let (a, b) = (mk(5, 3), mk(2, 9));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        // Events at t=50..250 close windows 0..=4 on their boundaries;
        // finish() closes the final partial window 5.
        assert_eq!(ab.windows.len(), 6);
        assert_eq!(ab.total_slots, 200);
        // Padded tail windows carry b's last gauges (9), not zero.
        assert_eq!(ab.windows[5].busy_slots, 3 + 9);
        assert_eq!(
            ab.total_completed(),
            a.total_completed() + b.total_completed()
        );
    }

    #[test]
    fn jsonl_and_csv_roundtrip_shapes() {
        let mut c = SeriesCollector::new(100, 10);
        c.observe_jct(123);
        let s = c.finish(snap((4, 2, 1), 1, 5)).unwrap();
        let jsonl = s.to_jsonl("policy=hopper", 7);
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.starts_with("{\"meta\":true,"));
        assert!(jsonl.contains("\"jct_count\":1"));
        let csv = s.to_csv();
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.starts_with("window,busy_slots,"));
    }
}
