//! Constant-memory statistics for streaming (million-job) runs.
//!
//! A materialized run keeps every [`JobResult`](crate::JobResult) and
//! computes percentiles by sorting all durations — O(total jobs) memory,
//! the wall between 10k-job benches and sustained million-job arrival
//! streams. This module is the streaming replacement: an online
//! [`JobDigest`] folds each completed job into O(1) counters plus a
//! deterministic ε-approximate [`QuantileSketch`], so a driver can retire
//! a job's state the moment it completes and still report the paper's
//! duration statistics at the end.
//!
//! Two contracts matter (see DESIGN.md, "Streaming pipeline"):
//!
//! - **Determinism.** Both structures are pure functions of the observed
//!   *multiset* — observation order, thread count, and retirement timing
//!   cannot change any reported value. The digest's mean is an exact
//!   integer-millisecond sum divided at the end, so a streaming run and a
//!   materialized run of the same seed report bit-identical means.
//! - **Bounded error.** [`QuantileSketch::quantile`] returns a value
//!   within relative error ε of the true order statistic at the queried
//!   rank, using O(log(max/min)/ε) memory independent of the sample count.

use std::collections::BTreeMap;

/// A deterministic quantile sketch with bounded *relative* error.
///
/// Values are folded into logarithmically sized bins (a fixed-resolution
/// variant of the DDSketch/HDR-histogram family): bin `i` covers
/// `(γ^(i-1), γ^i]` with `γ = (1+ε)/(1-ε)`, and a query answers with the
/// bin's relative-error midpoint `2γ^i/(γ+1)`. Any value `x` in a bin is
/// therefore reported as some `v` with `|v − x| ≤ ε·x`.
///
/// Unlike sampling-based sketches (KLL, random GK variants) there is no
/// randomness anywhere: the sketch is a pure function of the observed
/// multiset, which is what lets streaming runs stay exactly reproducible
/// across observation orders and thread counts.
///
/// ```
/// use hopper_metrics::QuantileSketch;
///
/// let mut s = QuantileSketch::new(0.01); // ε = 1% relative error
/// for x in 1..=10_000u64 {
///     s.observe(x as f64);
/// }
/// let p50 = s.quantile(0.5);
/// assert!((p50 - 5_000.0).abs() <= 0.01 * 5_000.0 + 1.0);
/// let p99 = s.quantile(0.99);
/// assert!((p99 - 9_901.0).abs() <= 0.01 * 9_901.0 + 1.0);
/// // Memory is O(bins), not O(samples): 10k observations, < 2k bins.
/// assert!(s.num_bins() < 2_000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    /// Relative-error bound ε.
    eps: f64,
    /// Bin growth factor `γ = (1+ε)/(1-ε)`.
    gamma: f64,
    /// Cached `ln γ` (the per-observe index divisor).
    ln_gamma: f64,
    /// Observations equal to zero (log-binning excludes exactly 0; every
    /// positive value, however small, gets a real bin).
    zeros: u64,
    /// Bin index → count. A `BTreeMap` so rank walks are in ascending
    /// value order without a sort.
    bins: BTreeMap<i32, u64>,
    /// Total observations.
    count: u64,
}

impl QuantileSketch {
    /// Create a sketch with relative-error bound `eps` (e.g. `0.01` for
    /// 1%). Panics unless `0 < eps < 1`.
    pub fn new(eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0, 1), got {eps}");
        let gamma = (1.0 + eps) / (1.0 - eps);
        QuantileSketch {
            eps,
            gamma,
            ln_gamma: gamma.ln(),
            zeros: 0,
            bins: BTreeMap::new(),
            count: 0,
        }
    }

    /// The ε this sketch guarantees.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Total observations folded in.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of occupied bins (the memory footprint driver).
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Fold one non-negative, finite value into the sketch.
    ///
    /// Zero is exact (its own bucket); every positive value — however
    /// small — lands in a real logarithmic bin, so the relative-error
    /// contract holds across the full non-negative range.
    pub fn observe(&mut self, x: f64) {
        assert!(
            x >= 0.0 && x.is_finite(),
            "sketch values must be finite ≥ 0"
        );
        self.count += 1;
        if x == 0.0 {
            self.zeros += 1;
            return;
        }
        let idx = (x.ln() / self.ln_gamma).ceil() as i32;
        *self.bins.entry(idx).or_insert(0) += 1;
    }

    /// Fold another sketch in. Because bin boundaries are a pure
    /// function of ε, the merge is exact: the result equals the sketch
    /// of the pooled multiset. Panics if the ε values differ.
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert_eq!(
            self.eps.to_bits(),
            other.eps.to_bits(),
            "merging sketches with different ε"
        );
        self.zeros += other.zeros;
        self.count += other.count;
        for (&idx, &c) in &other.bins {
            *self.bins.entry(idx).or_insert(0) += c;
        }
    }

    /// The ε-approximate quantile at `p` ∈ \[0, 1\]: a value within
    /// relative error ε of the order statistic at rank `⌈p·(n−1)⌉`.
    /// Returns 0.0 on an empty sketch (mirroring
    /// [`percentile`](crate::percentile) on empty input).
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile {p} out of range");
        if self.count == 0 {
            return 0.0;
        }
        let rank = (p * (self.count - 1) as f64).ceil() as u64;
        if rank < self.zeros {
            return 0.0;
        }
        let mut cum = self.zeros;
        for (&idx, &c) in &self.bins {
            cum += c;
            if cum > rank {
                // Relative-error midpoint of bin (γ^(i−1), γ^i].
                return 2.0 * self.gamma.powi(idx) / (self.gamma + 1.0);
            }
        }
        // rank == count − 1 lands here only through float round-up; the
        // maximum bin answers it.
        let (&idx, _) = self.bins.iter().next_back().expect("count > zeros");
        2.0 * self.gamma.powi(idx) / (self.gamma + 1.0)
    }
}

/// Online per-job duration statistics: the constant-memory replacement
/// for keeping every `JobResult` alive to the end of a run.
///
/// The mean is exact (an integer millisecond sum — observation order
/// cannot perturb it, so streaming and materialized runs of the same
/// seed report the same mean bit-for-bit); percentiles come from the
/// embedded [`QuantileSketch`] with its ε relative-error contract.
///
/// ```
/// use hopper_metrics::JobDigest;
///
/// let mut d = JobDigest::new();
/// for ms in [100u64, 200, 300] {
///     d.observe_ms(ms);
/// }
/// assert_eq!(d.count(), 3);
/// assert_eq!(d.mean_ms(), 200.0); // exact: (100+200+300)/3
/// assert_eq!(d.max_ms(), 300);
/// let p50 = d.quantile_ms(0.5);
/// assert!((p50 - 200.0).abs() <= 0.01 * 200.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct JobDigest {
    /// Jobs observed.
    count: u64,
    /// Exact sum of durations in integer milliseconds.
    total_ms: u64,
    /// Largest observed duration (exact).
    max_ms: u64,
    /// ε-approximate duration quantiles.
    sketch: QuantileSketch,
}

/// The default relative-error bound of a [`JobDigest`]'s sketch (1%).
pub const DIGEST_EPS: f64 = 0.01;

impl Default for JobDigest {
    fn default() -> Self {
        Self::new()
    }
}

impl JobDigest {
    /// An empty digest with the default ε ([`DIGEST_EPS`]).
    pub fn new() -> Self {
        JobDigest {
            count: 0,
            total_ms: 0,
            max_ms: 0,
            sketch: QuantileSketch::new(DIGEST_EPS),
        }
    }

    /// Fold one job's duration (ms) in.
    pub fn observe_ms(&mut self, duration_ms: u64) {
        self.count += 1;
        self.total_ms += duration_ms;
        self.max_ms = self.max_ms.max(duration_ms);
        self.sketch.observe(duration_ms as f64);
    }

    /// Fold another digest in (exact for count/total/max; the sketch
    /// merge equals the pooled multiset's sketch).
    pub fn merge(&mut self, other: &JobDigest) {
        self.count += other.count;
        self.total_ms += other.total_ms;
        self.max_ms = self.max_ms.max(other.max_ms);
        self.sketch.merge(&other.sketch);
    }

    /// Jobs observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of observed durations (ms).
    pub fn total_ms(&self) -> u64 {
        self.total_ms
    }

    /// Exact maximum observed duration (ms); 0 when empty.
    pub fn max_ms(&self) -> u64 {
        self.max_ms
    }

    /// Exact mean duration (ms); 0.0 when empty (matching
    /// [`mean_duration`](crate::mean_duration) on an empty run).
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ms as f64 / self.count as f64
        }
    }

    /// ε-approximate duration quantile (ms) at `p` ∈ \[0, 1\].
    pub fn quantile_ms(&self, p: f64) -> f64 {
        self.sketch.quantile(p)
    }

    /// The sketch's relative-error bound ε.
    pub fn eps(&self) -> f64 {
        self.sketch.eps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact order statistic at the sketch's rank rule, for comparison.
    fn exact_rank(sorted: &[f64], p: f64) -> f64 {
        let rank = (p * (sorted.len() - 1) as f64).ceil() as usize;
        sorted[rank]
    }

    #[test]
    fn sketch_meets_relative_error_on_uniform_data() {
        let mut s = QuantileSketch::new(0.01);
        let data: Vec<f64> = (1..=50_000u64).map(|x| x as f64).collect();
        for &x in &data {
            s.observe(x);
        }
        for p in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
            let exact = exact_rank(&data, p);
            let approx = s.quantile(p);
            assert!(
                (approx - exact).abs() <= 0.01 * exact + 1e-9,
                "p={p}: approx {approx} vs exact {exact}"
            );
        }
    }

    #[test]
    fn sketch_meets_relative_error_on_heavy_tail() {
        // Pareto-ish data spanning 6 orders of magnitude.
        let mut s = QuantileSketch::new(0.01);
        let data: Vec<f64> = (0..20_000)
            .map(|i| 10.0 * (1.0 - (i as f64 + 0.5) / 20_000.0).powf(-1.5))
            .collect();
        let mut sorted = data.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for &x in &data {
            s.observe(x);
        }
        for p in [0.01, 0.5, 0.9, 0.99, 0.9999] {
            let exact = exact_rank(&sorted, p);
            let approx = s.quantile(p);
            assert!(
                (approx - exact).abs() <= 0.01 * exact,
                "p={p}: approx {approx} vs exact {exact}"
            );
        }
        // Memory stays bounded: 6 decades at ε=1% is ~700 bins.
        assert!(s.num_bins() < 1_000, "bins: {}", s.num_bins());
    }

    #[test]
    fn sketch_is_order_independent() {
        let data: Vec<f64> = (1..=5_000u64).map(|x| (x * 7 % 9_001) as f64).collect();
        let mut fwd = QuantileSketch::new(0.02);
        let mut rev = QuantileSketch::new(0.02);
        for &x in &data {
            fwd.observe(x);
        }
        for &x in data.iter().rev() {
            rev.observe(x);
        }
        assert_eq!(fwd, rev);
        for p in [0.0, 0.3, 0.5, 0.97, 1.0] {
            assert_eq!(fwd.quantile(p).to_bits(), rev.quantile(p).to_bits());
        }
    }

    #[test]
    fn sketch_handles_zeros_and_empty() {
        let mut s = QuantileSketch::new(0.01);
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.count(), 0);
        for _ in 0..10 {
            s.observe(0.0);
        }
        s.observe(100.0);
        assert_eq!(s.quantile(0.5), 0.0, "majority zeros ⇒ median 0");
        let p100 = s.quantile(1.0);
        assert!((p100 - 100.0).abs() <= 1.0);
    }

    #[test]
    fn sketch_keeps_relative_error_below_one() {
        // Positive sub-1.0 values must not collapse into the zero
        // bucket: the contract is relative error for *all* x > 0.
        let mut s = QuantileSketch::new(0.01);
        for &x in &[0.001, 0.02, 0.3, 0.4, 0.45] {
            s.observe(x);
        }
        for (p, exact) in [(0.0, 0.001), (0.5, 0.3), (1.0, 0.45)] {
            let approx = s.quantile(p);
            assert!(
                (approx - exact).abs() <= 0.01 * exact,
                "p={p}: {approx} vs {exact}"
            );
        }
    }

    #[test]
    fn sketch_singleton_and_endpoints() {
        let mut s = QuantileSketch::new(0.01);
        s.observe(42.0);
        for p in [0.0, 0.5, 1.0] {
            assert!((s.quantile(p) - 42.0).abs() <= 0.42 + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn sketch_rejects_negative() {
        QuantileSketch::new(0.01).observe(-1.0);
    }

    #[test]
    fn digest_mean_is_exact_integer_math() {
        let mut d = JobDigest::new();
        let durations: Vec<u64> = (0..10_000).map(|i| (i * 31) % 100_000).collect();
        for &ms in &durations {
            d.observe_ms(ms);
        }
        let total: u64 = durations.iter().sum();
        assert_eq!(d.total_ms(), total);
        assert_eq!(d.mean_ms().to_bits(), (total as f64 / 10_000.0).to_bits());
        assert_eq!(d.max_ms(), *durations.iter().max().unwrap());
        assert_eq!(d.count(), 10_000);
    }

    #[test]
    fn digest_empty_is_zero() {
        let d = JobDigest::new();
        assert_eq!(d.mean_ms(), 0.0);
        assert_eq!(d.quantile_ms(0.5), 0.0);
        assert_eq!(d.max_ms(), 0);
        assert_eq!(d, JobDigest::default());
    }

    #[test]
    fn digest_quantiles_track_exact_percentiles() {
        let mut d = JobDigest::new();
        let durations: Vec<f64> = (1..=20_000u64).map(|i| i as f64).collect();
        for &ms in &durations {
            d.observe_ms(ms as u64);
        }
        for p in [0.1, 0.5, 0.9, 0.99] {
            let exact = crate::percentile(&durations, p);
            let approx = d.quantile_ms(p);
            // ε on the order statistic, plus one rank of interpolation
            // slack versus the linear-interpolated exact percentile.
            assert!(
                (approx - exact).abs() <= d.eps() * exact + 1.0,
                "p={p}: {approx} vs {exact}"
            );
        }
    }
}
