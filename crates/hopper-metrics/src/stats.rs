//! Job-completion statistics and paper-style aggregations.

use hopper_sim::SimTime;

/// Outcome of one job in a simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobResult {
    /// Trace job id (stable across compared runs of the same trace).
    pub job: usize,
    /// Job size = input-phase task count (Figure 7 binning).
    pub size_tasks: usize,
    /// DAG length in phases (Figure 8b / 12b binning).
    pub dag_len: usize,
    /// Arrival time.
    pub arrival: SimTime,
    /// Completion time.
    pub completed: SimTime,
}

impl JobResult {
    /// Job duration (completion − arrival) in milliseconds.
    pub fn duration_ms(&self) -> u64 {
        self.completed.saturating_sub(self.arrival).as_millis()
    }
}

/// The counters every simulator run exposes, regardless of driver.
///
/// `hopper-central`'s `RunStats` and `hopper-decentral`'s `DecStats` keep
/// their driver-specific fields (refusal counts, locality fractions, …)
/// but both flatten into this core, which is what the experiment layer's
/// unified `RunSummary` surface reports. Counters a driver does not have
/// are zero (`messages` for the centralized driver).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Original copies launched.
    pub orig_launched: u64,
    /// Speculative copies launched.
    pub spec_launched: u64,
    /// Tasks whose winning copy was speculative.
    pub spec_won: u64,
    /// Events processed by the simulator.
    pub events: u64,
    /// Scheduler↔worker protocol messages (reservations + responses +
    /// refusals; kill notifications are not counted); zero for the
    /// centralized driver, which has no network.
    pub messages: u64,
    /// Completion time of the last job.
    pub makespan: SimTime,
}

/// The paper's job-size bins (Figure 7 / 9 / 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SizeBin {
    /// Fewer than 50 tasks.
    Lt50,
    /// 51 to 150 tasks (the paper's label; we place 50 here too).
    B51to150,
    /// 151 to 500 tasks.
    B151to500,
    /// More than 500 tasks.
    Gt500,
}

impl SizeBin {
    /// Bin for a given task count.
    pub fn of(tasks: usize) -> SizeBin {
        match tasks {
            0..=49 => SizeBin::Lt50,
            50..=150 => SizeBin::B51to150,
            151..=500 => SizeBin::B151to500,
            _ => SizeBin::Gt500,
        }
    }

    /// All bins in display order.
    pub fn all() -> [SizeBin; 4] {
        [
            SizeBin::Lt50,
            SizeBin::B51to150,
            SizeBin::B151to500,
            SizeBin::Gt500,
        ]
    }

    /// The paper's column label.
    pub fn label(&self) -> &'static str {
        match self {
            SizeBin::Lt50 => "<50",
            SizeBin::B51to150 => "51-150",
            SizeBin::B151to500 => "151-500",
            SizeBin::Gt500 => ">500",
        }
    }
}

/// Mean of a slice (0 for empty — callers print "n/a" on empty bins).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Linear-interpolated percentile (`p` in \[0, 1\]) of unsorted data.
///
/// Empty input returns 0.0 (not NaN): durations and gains are
/// non-negative quantities, so 0 is the natural "no data" value and lets
/// callers render empty sweep cells without special-casing. Panics only
/// on `p` outside \[0, 1\] — a caller bug, not a data condition.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "percentile {p} out of range");
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    if v.len() == 1 {
        return v[0];
    }
    let rank = p * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    v[lo] * (1.0 - frac) + v[hi] * frac
}

/// Five-number-ish summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistSummary {
    /// Sample count.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// 10th percentile.
    pub p10: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Maximum.
    pub max: f64,
}

/// Summarize a sample.
///
/// Empty input returns the all-zero summary (`count == 0` flags it) —
/// never NaN or −∞, so tables built over sparse sweep grids stay
/// printable. `max` is additionally floored at 0 for non-empty input,
/// matching the non-negative quantities (durations, gains) this
/// summarizes.
pub fn summarize(xs: &[f64]) -> DistSummary {
    if xs.is_empty() {
        return DistSummary {
            count: 0,
            mean: 0.0,
            p10: 0.0,
            p50: 0.0,
            p90: 0.0,
            max: 0.0,
        };
    }
    DistSummary {
        count: xs.len(),
        mean: mean(xs),
        p10: percentile(xs, 0.10),
        p50: percentile(xs, 0.50),
        p90: percentile(xs, 0.90),
        max: xs
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
            .max(0.0),
    }
}

/// The paper's headline metric: percentage reduction in average job
/// duration going from `baseline` to `improved`.
/// Positive = improvement.
pub fn reduction_pct(baseline_mean: f64, improved_mean: f64) -> f64 {
    if baseline_mean <= 0.0 {
        return 0.0;
    }
    (baseline_mean - improved_mean) / baseline_mean * 100.0
}

/// Per-job gain distribution between two runs of the *same trace*
/// (Figure 8a): gain of job j = reduction in its duration.
#[derive(Debug, Clone)]
pub struct GainCdf {
    /// Sorted per-job gains (%).
    pub gains: Vec<f64>,
}

impl GainCdf {
    /// Match jobs by id and compute per-job percentage gains.
    ///
    /// If either run is empty the result is the empty CDF (no gains) —
    /// an empty comparison is well-defined, and sweep cells with no
    /// completed jobs must not bring a whole table down. Panics only
    /// when both runs are non-empty and a job id of `improved` is
    /// missing from `baseline` — genuinely mismatched traces.
    pub fn between(baseline: &[JobResult], improved: &[JobResult]) -> GainCdf {
        if baseline.is_empty() || improved.is_empty() {
            return GainCdf { gains: Vec::new() };
        }
        let mut base: std::collections::HashMap<usize, u64> = std::collections::HashMap::new();
        for r in baseline {
            base.insert(r.job, r.duration_ms());
        }
        let mut gains: Vec<f64> = improved
            .iter()
            .map(|r| {
                let b = *base
                    .get(&r.job)
                    .unwrap_or_else(|| panic!("job {} missing from baseline run", r.job));
                reduction_pct(b as f64, r.duration_ms() as f64)
            })
            .collect();
        gains.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        GainCdf { gains }
    }

    /// Gain at CDF level `p` ∈ \[0,1\] (e.g. `value_at(0.5)` = median gain).
    pub fn value_at(&self, p: f64) -> f64 {
        percentile(&self.gains, p)
    }

    /// Fraction of jobs with negative gain (slowed down) — Figure 10b.
    pub fn fraction_slowed(&self) -> f64 {
        if self.gains.is_empty() {
            return 0.0;
        }
        self.gains.iter().filter(|&&g| g < 0.0).count() as f64 / self.gains.len() as f64
    }

    /// Average and worst slowdown (%) among slowed jobs — Figure 10c.
    /// Returns (avg, worst), both ≥ 0; (0, 0) when nothing slowed.
    pub fn slowdown_magnitude(&self) -> (f64, f64) {
        let slowed: Vec<f64> = self
            .gains
            .iter()
            .filter(|&&g| g < 0.0)
            .map(|g| -g)
            .collect();
        if slowed.is_empty() {
            (0.0, 0.0)
        } else {
            (mean(&slowed), slowed.iter().copied().fold(0.0, f64::max))
        }
    }
}

/// Mean duration (ms) of the jobs in a bin-filtered subset.
pub fn mean_duration_in_bin(results: &[JobResult], bin: SizeBin) -> Option<f64> {
    let durs: Vec<f64> = results
        .iter()
        .filter(|r| SizeBin::of(r.size_tasks) == bin)
        .map(|r| r.duration_ms() as f64)
        .collect();
    (!durs.is_empty()).then(|| mean(&durs))
}

/// Mean duration (ms) of jobs with the given DAG length.
pub fn mean_duration_for_dag(results: &[JobResult], dag_len: usize) -> Option<f64> {
    let durs: Vec<f64> = results
        .iter()
        .filter(|r| r.dag_len == dag_len)
        .map(|r| r.duration_ms() as f64)
        .collect();
    (!durs.is_empty()).then(|| mean(&durs))
}

/// Mean duration over all jobs.
pub fn mean_duration(results: &[JobResult]) -> f64 {
    mean(
        &results
            .iter()
            .map(|r| r.duration_ms() as f64)
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: usize, size: usize, dur_ms: u64) -> JobResult {
        JobResult {
            job: id,
            size_tasks: size,
            dag_len: 1,
            arrival: SimTime::ZERO,
            completed: SimTime::from_millis(dur_ms),
        }
    }

    #[test]
    fn bins_match_paper_labels() {
        assert_eq!(SizeBin::of(1), SizeBin::Lt50);
        assert_eq!(SizeBin::of(49), SizeBin::Lt50);
        assert_eq!(SizeBin::of(50), SizeBin::B51to150);
        assert_eq!(SizeBin::of(150), SizeBin::B51to150);
        assert_eq!(SizeBin::of(151), SizeBin::B151to500);
        assert_eq!(SizeBin::of(500), SizeBin::B151to500);
        assert_eq!(SizeBin::of(501), SizeBin::Gt500);
        assert_eq!(SizeBin::all()[0].label(), "<50");
    }

    #[test]
    fn percentile_interpolates() {
        let xs = vec![1.0, 2.0, 3.0, 4.0];
        assert!((percentile(&xs, 0.0) - 1.0).abs() < 1e-12);
        assert!((percentile(&xs, 1.0) - 4.0).abs() < 1e-12);
        assert!((percentile(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.9), 7.0);
    }

    #[test]
    fn reduction_math() {
        assert!((reduction_pct(100.0, 50.0) - 50.0).abs() < 1e-12);
        assert!((reduction_pct(100.0, 120.0) + 20.0).abs() < 1e-12);
        assert_eq!(reduction_pct(0.0, 10.0), 0.0);
    }

    #[test]
    fn summary_fields() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = summarize(&xs);
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert!((s.p50 - 50.5).abs() < 1e-9);
        assert!(s.p10 < s.p50 && s.p50 < s.p90);
        assert_eq!(s.max, 100.0);
    }

    #[test]
    fn gain_cdf_between_runs() {
        let base = vec![job(0, 10, 100), job(1, 10, 200), job(2, 10, 400)];
        let better = vec![job(0, 10, 50), job(1, 10, 220), job(2, 10, 100)];
        let cdf = GainCdf::between(&base, &better);
        assert_eq!(cdf.gains.len(), 3);
        // Gains: 50%, -10%, 75% → sorted [-10, 50, 75].
        assert!((cdf.value_at(0.0) + 10.0).abs() < 1e-9);
        assert!((cdf.value_at(1.0) - 75.0).abs() < 1e-9);
        assert!((cdf.fraction_slowed() - 1.0 / 3.0).abs() < 1e-9);
        let (avg, worst) = cdf.slowdown_magnitude();
        assert!((avg - 10.0).abs() < 1e-9);
        assert!((worst - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "missing from baseline")]
    fn gain_cdf_requires_matching_traces() {
        let base = vec![job(0, 10, 100)];
        let other = vec![job(5, 10, 100)];
        let _ = GainCdf::between(&base, &other);
    }

    #[test]
    fn no_slowdowns_is_zero_magnitude() {
        let base = vec![job(0, 10, 100)];
        let better = vec![job(0, 10, 50)];
        let cdf = GainCdf::between(&base, &better);
        assert_eq!(cdf.fraction_slowed(), 0.0);
        assert_eq!(cdf.slowdown_magnitude(), (0.0, 0.0));
    }

    #[test]
    fn bin_and_dag_means() {
        let rs = vec![job(0, 10, 100), job(1, 60, 300), job(2, 10, 200)];
        assert!((mean_duration_in_bin(&rs, SizeBin::Lt50).unwrap() - 150.0).abs() < 1e-9);
        assert!((mean_duration_in_bin(&rs, SizeBin::B51to150).unwrap() - 300.0).abs() < 1e-9);
        assert!(mean_duration_in_bin(&rs, SizeBin::Gt500).is_none());
        assert!((mean_duration(&rs) - 200.0).abs() < 1e-9);
        assert!((mean_duration_for_dag(&rs, 1).unwrap() - 200.0).abs() < 1e-9);
        assert!(mean_duration_for_dag(&rs, 3).is_none());
    }

    #[test]
    fn empty_inputs_have_defined_values() {
        // percentile: 0.0, never NaN.
        assert_eq!(percentile(&[], 0.0), 0.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[], 1.0), 0.0);
        // summarize: the all-zero summary, count flags emptiness.
        let s = summarize(&[]);
        assert_eq!(s, summarize(&[]));
        assert_eq!(s.count, 0);
        assert_eq!(
            (s.mean, s.p10, s.p50, s.p90, s.max),
            (0.0, 0.0, 0.0, 0.0, 0.0)
        );
        assert!(!s.mean.is_nan() && !s.max.is_nan());
        // mean: 0.0 on empty.
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn gain_cdf_empty_sides_yield_empty_cdf() {
        let some = [job(0, 10, 100)];
        for (b, i) in [
            (&[][..], &[][..]),
            (&some[..], &[][..]),
            (&[][..], &some[..]),
        ] {
            let cdf = GainCdf::between(b, i);
            assert!(cdf.gains.is_empty());
            assert_eq!(cdf.value_at(0.5), 0.0);
            assert_eq!(cdf.fraction_slowed(), 0.0);
            assert_eq!(cdf.slowdown_magnitude(), (0.0, 0.0));
        }
    }

    #[test]
    fn core_stats_default_is_zero() {
        let c = CoreStats::default();
        assert_eq!(c.orig_launched, 0);
        assert_eq!(c.messages, 0);
        assert_eq!(c.makespan, SimTime::ZERO);
    }

    #[test]
    fn duration_uses_arrival() {
        let r = JobResult {
            job: 0,
            size_tasks: 1,
            dag_len: 1,
            arrival: SimTime::from_millis(100),
            completed: SimTime::from_millis(350),
        };
        assert_eq!(r.duration_ms(), 250);
    }
}
