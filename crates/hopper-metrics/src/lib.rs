//! Measurement utilities for the Hopper reproduction.
//!
//! Everything the paper's evaluation reports is computed here: average job
//! completion times and their reductions ("Reduction (%) in Average Job
//! Duration", the y-axis of most figures), per-job gain distributions
//! (Figure 8a), the job-size bins of Figure 7 (`<50`, `51–150`, `151–500`,
//! `>500` tasks), and simple ASCII tables/series so every bench target can
//! print paper-shaped output.

#![warn(missing_docs)]

pub mod digest;
pub mod export;
pub mod report;
pub mod stats;
pub mod table;
pub mod telemetry;

pub use digest::{JobDigest, QuantileSketch, DIGEST_EPS};
pub use export::{jobs_to_csv, sweep_to_csv};
pub use report::{parse_jsonl, render_html, render_svg, SeriesData, WindowRow};
pub use stats::{
    mean, mean_duration, mean_duration_for_dag, mean_duration_in_bin, percentile, reduction_pct,
    summarize, CoreStats, DistSummary, GainCdf, JobResult, SizeBin,
};
pub use table::{f1, pct, Table};
pub use telemetry::{
    RunReport, SeriesCollector, TelemetrySeries, TelemetrySnapshot, TelemetryWindow,
};
