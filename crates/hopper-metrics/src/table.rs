//! Minimal ASCII table/series rendering for bench output.
//!
//! Every bench target prints the same rows/series the paper's figure or
//! table reports; this module keeps that output aligned and greppable.

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity mismatch in table '{}'",
            self.title
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut s = String::from("|");
            for i in 0..cols {
                let _ = write!(s, " {:>w$} |", cells[i], w = widths[i]);
            }
            let _ = writeln!(out, "{s}");
        };
        line(&mut out, &self.header);
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a float with one decimal (the paper's typical precision).
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Format a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{x:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["util", "gain"]);
        t.row(&["60%".into(), "52.3".into()]);
        t.row(&["90%".into(), "7.1".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("| util | gain |"));
        assert!(s.contains("|  60% | 52.3 |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("bad", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(pct(52.34), "52.3%");
    }
}
