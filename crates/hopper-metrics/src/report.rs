//! `hopper report`: render telemetry series into a self-contained
//! HTML/SVG page.
//!
//! The input is the JSON-lines format written by
//! [`TelemetrySeries::to_jsonl`](crate::TelemetrySeries::to_jsonl) —
//! the repo's own flat, stable contract, so the parser here is a few
//! string scans rather than a JSON library (the crate has no external
//! dependencies). The output embeds everything inline: no scripts, no
//! stylesheets fetched over the network, no image URLs — CI asserts the
//! page contains no `http(s)://` reference at all.
//!
//! One run renders as a column of per-metric panels; two runs (A/B)
//! overlay as two colored polylines per panel, which is how
//! fault-storm or policy regressions are eyeballed nightly.

use crate::telemetry::TelemetrySeries;

/// One window of chart-ready data (derived JCT stats, no sketch).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WindowRow {
    /// Window index.
    pub index: u64,
    /// Busy slots at the window-end boundary.
    pub busy: u64,
    /// Queue depth at the window-end boundary.
    pub queue: u64,
    /// Live jobs at the window-end boundary.
    pub live: u64,
    /// Completions inside the window.
    pub completed: u64,
    /// Original launches inside the window.
    pub orig: u64,
    /// Speculative launches inside the window.
    pub spec: u64,
    /// Speculative wins inside the window.
    pub spec_won: u64,
    /// Kills inside the window.
    pub killed: u64,
    /// Messages inside the window.
    pub msgs: u64,
    /// Events inside the window.
    pub events: u64,
    /// Jobs in the window's JCT digest.
    pub jct_count: u64,
    /// Mean JCT (ms) of jobs completing in the window.
    pub jct_mean_ms: f64,
    /// p50 JCT (ms) of jobs completing in the window.
    pub jct_p50_ms: f64,
    /// p99 JCT (ms) of jobs completing in the window.
    pub jct_p99_ms: f64,
    /// Max JCT (ms) of jobs completing in the window.
    pub jct_max_ms: u64,
}

/// A parsed (or converted) series ready for rendering.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesData {
    /// Run label (spec render or file stem).
    pub label: String,
    /// Seed of the run.
    pub seed: u64,
    /// Window width (simulation ms).
    pub window_ms: u64,
    /// Slot capacity (for the utilization panel).
    pub total_slots: u64,
    /// Chart rows in window order.
    pub rows: Vec<WindowRow>,
}

/// Quantize to the 3-decimal precision of the JSONL contract, so
/// in-memory and file-round-tripped chart data compare equal.
fn q3(x: f64) -> f64 {
    format!("{x:.3}").parse().expect("fixed-format float")
}

impl SeriesData {
    /// Flatten an in-memory series for rendering without a JSONL
    /// round-trip. Float fields are quantized to the JSONL contract's
    /// 3 decimals.
    pub fn from_series(series: &TelemetrySeries, label: &str, seed: u64) -> SeriesData {
        SeriesData {
            label: label.to_string(),
            seed,
            window_ms: series.window_ms,
            total_slots: series.total_slots,
            rows: series
                .windows
                .iter()
                .map(|w| WindowRow {
                    index: w.index,
                    busy: w.busy_slots,
                    queue: w.queue_depth,
                    live: w.live_jobs,
                    completed: w.completed,
                    orig: w.orig_launched,
                    spec: w.spec_launched,
                    spec_won: w.spec_won,
                    killed: w.killed,
                    msgs: w.messages,
                    events: w.events,
                    jct_count: w.jct.count(),
                    jct_mean_ms: q3(w.jct.mean_ms()),
                    jct_p50_ms: q3(w.jct.quantile_ms(0.5)),
                    jct_p99_ms: q3(w.jct.quantile_ms(0.99)),
                    jct_max_ms: w.jct.max_ms(),
                })
                .collect(),
        }
    }
}

/// Extract the raw text of `"key":<value>` from one JSONL line, up to
/// the next `,` or `}` (values in our format never contain either).
fn raw_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn u64_field(line: &str, key: &str) -> Result<u64, String> {
    raw_field(line, key)
        .ok_or_else(|| format!("missing field `{key}`"))?
        .parse()
        .map_err(|e| format!("bad u64 `{key}`: {e}"))
}

fn f64_field(line: &str, key: &str) -> Result<f64, String> {
    raw_field(line, key)
        .ok_or_else(|| format!("missing field `{key}`"))?
        .parse()
        .map_err(|e| format!("bad f64 `{key}`: {e}"))
}

fn str_field(line: &str, key: &str) -> Result<String, String> {
    let raw = raw_field(line, key).ok_or_else(|| format!("missing field `{key}`"))?;
    Some(raw)
        .filter(|r| r.len() >= 2 && r.starts_with('"') && r.ends_with('"'))
        .map(|r| r[1..r.len() - 1].to_string())
        .ok_or_else(|| format!("field `{key}` is not a string"))
}

/// Parse one telemetry JSONL document (as written by
/// [`TelemetrySeries::to_jsonl`](crate::TelemetrySeries::to_jsonl))
/// into chart-ready data. Errors name the offending line.
pub fn parse_jsonl(text: &str) -> Result<SeriesData, String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let meta = lines.next().ok_or("empty telemetry file")?;
    if raw_field(meta, "meta") != Some("true") {
        return Err("first line is not a telemetry meta line".into());
    }
    let mut data = SeriesData {
        label: str_field(meta, "label")?,
        seed: u64_field(meta, "seed")?,
        window_ms: u64_field(meta, "window_ms")?,
        total_slots: u64_field(meta, "total_slots")?,
        rows: Vec::new(),
    };
    let declared = u64_field(meta, "windows")?;
    for (i, line) in lines.enumerate() {
        let row = (|| -> Result<WindowRow, String> {
            Ok(WindowRow {
                index: u64_field(line, "w")?,
                busy: u64_field(line, "busy")?,
                queue: u64_field(line, "queue")?,
                live: u64_field(line, "live")?,
                completed: u64_field(line, "completed")?,
                orig: u64_field(line, "orig")?,
                spec: u64_field(line, "spec")?,
                spec_won: u64_field(line, "spec_won")?,
                killed: u64_field(line, "killed")?,
                msgs: u64_field(line, "msgs")?,
                events: u64_field(line, "events")?,
                jct_count: u64_field(line, "jct_count")?,
                jct_mean_ms: f64_field(line, "jct_mean_ms")?,
                jct_p50_ms: f64_field(line, "jct_p50_ms")?,
                jct_p99_ms: f64_field(line, "jct_p99_ms")?,
                jct_max_ms: u64_field(line, "jct_max_ms")?,
            })
        })()
        .map_err(|e| format!("window line {}: {e}", i + 2))?;
        data.rows.push(row);
    }
    if data.rows.len() as u64 != declared {
        return Err(format!(
            "meta declares {declared} windows, found {}",
            data.rows.len()
        ));
    }
    Ok(data)
}

/// Line colors for run A and run B.
const COLORS: [&str; 2] = ["#1f77b4", "#d62728"];
const PANEL_W: f64 = 720.0;
const PANEL_H: f64 = 110.0;
const PAD_L: f64 = 64.0;
const PAD_R: f64 = 12.0;
const GAP: f64 = 34.0;

/// One polyline: the per-window values of a single metric for one run.
fn polyline(values: &[f64], max: f64, y0: f64, color: &str) -> String {
    if values.is_empty() {
        return String::new();
    }
    let span = PANEL_W - PAD_L - PAD_R;
    let xstep = span / (values.len().max(2) - 1) as f64;
    let scale = if max > 0.0 {
        (PANEL_H - 8.0) / max
    } else {
        0.0
    };
    let pts: Vec<String> = values
        .iter()
        .enumerate()
        .map(|(i, v)| {
            format!(
                "{:.1},{:.1}",
                PAD_L + i as f64 * xstep,
                y0 + PANEL_H - 4.0 - v * scale
            )
        })
        .collect();
    format!(
        "<polyline fill=\"none\" stroke=\"{}\" stroke-width=\"1.5\" points=\"{}\"/>\n",
        color,
        pts.join(" ")
    )
}

fn fmt_max(max: f64) -> String {
    if max >= 100.0 || max == max.trunc() {
        format!("{max:.0}")
    } else {
        format!("{max:.2}")
    }
}

/// How a panel extracts its y-value from one window of one run.
type PanelValue = fn(&WindowRow, &SeriesData) -> f64;

/// Render the full multi-panel SVG (standalone: it carries its own
/// `xmlns` and white background, so it can be committed as an image).
pub fn render_svg(runs: &[SeriesData]) -> String {
    let panels: [(&str, PanelValue); 8] = [
        ("utilization (%)", |w, s| {
            if s.total_slots == 0 {
                0.0
            } else {
                100.0 * w.busy as f64 / s.total_slots as f64
            }
        }),
        ("queue depth", |w, _| w.queue as f64),
        ("live jobs", |w, _| w.live as f64),
        ("completions / window", |w, _| w.completed as f64),
        ("speculative launches / window", |w, _| w.spec as f64),
        ("kills / window", |w, _| w.killed as f64),
        ("messages / window", |w, _| w.msgs as f64),
        ("JCT p99 (ms)", |w, _| w.jct_p99_ms),
    ];
    let total_h = 28.0 + panels.len() as f64 * (PANEL_H + GAP);
    let mut svg = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{PANEL_W:.0}\" height=\"{total_h:.0}\" font-family=\"monospace\" font-size=\"11\">\n<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n"
    );
    for (i, run) in runs.iter().take(2).enumerate() {
        svg.push_str(&format!(
            "<text x=\"{:.0}\" y=\"16\" fill=\"{}\">&#9632; {} (seed {})</text>\n",
            PAD_L + i as f64 * 360.0,
            COLORS[i],
            escape(&run.label),
            run.seed
        ));
    }
    for (p, (title, metric)) in panels.iter().enumerate() {
        let y0 = 28.0 + p as f64 * (PANEL_H + GAP);
        let series: Vec<Vec<f64>> = runs
            .iter()
            .take(2)
            .map(|run| run.rows.iter().map(|w| metric(w, run)).collect())
            .collect();
        let max = series
            .iter()
            .flatten()
            .copied()
            .fold(0.0f64, f64::max)
            .max(1e-9);
        svg.push_str(&format!(
            "<text x=\"{PAD_L:.0}\" y=\"{:.1}\" fill=\"#333\">{title}</text>\n",
            y0 + 10.0
        ));
        svg.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" fill=\"#888\" text-anchor=\"end\">{}</text>\n",
            PAD_L - 6.0,
            y0 + 18.0,
            fmt_max(max)
        ));
        svg.push_str(&format!(
            "<line x1=\"{PAD_L:.0}\" y1=\"{:.1}\" x2=\"{:.1}\" y2=\"{:.1}\" stroke=\"#ccc\"/>\n",
            y0 + PANEL_H - 4.0,
            PANEL_W - PAD_R,
            y0 + PANEL_H - 4.0
        ));
        for (i, vals) in series.iter().enumerate() {
            svg.push_str(&polyline(vals, max, y0, COLORS[i]));
        }
    }
    svg.push_str("</svg>\n");
    svg
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Render one run (or an A/B pair) into a fully self-contained HTML
/// page: inline CSS, inline SVG, zero external references. The SVG
/// `xmlns` (optional inside HTML5) is stripped so the page contains no
/// URL-shaped string at all — CI greps for exactly that.
pub fn render_html(runs: &[SeriesData]) -> String {
    let svg = render_svg(runs).replacen(" xmlns=\"http://www.w3.org/2000/svg\"", "", 1);
    let mut rows = String::new();
    for (i, run) in runs.iter().take(2).enumerate() {
        let completed: u64 = run.rows.iter().map(|w| w.completed).sum();
        let events: u64 = run.rows.iter().map(|w| w.events).sum();
        let msgs: u64 = run.rows.iter().map(|w| w.msgs).sum();
        let kills: u64 = run.rows.iter().map(|w| w.killed).sum();
        rows.push_str(&format!(
            "<tr><td style=\"color:{}\">&#9632;</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>\n",
            COLORS[i],
            escape(&run.label),
            run.seed,
            run.rows.len(),
            completed,
            events,
            msgs,
            kills
        ));
    }
    format!(
        "<!doctype html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\n<title>hopper report</title>\n<style>body{{font-family:monospace;margin:24px;color:#222}}table{{border-collapse:collapse;margin-bottom:16px}}td,th{{border:1px solid #ccc;padding:4px 10px;text-align:right}}th{{background:#f4f4f4}}</style>\n</head><body>\n<h1>hopper report</h1>\n<table><tr><th></th><th>run</th><th>seed</th><th>windows</th><th>completed</th><th>events</th><th>messages</th><th>kills</th></tr>\n{rows}</table>\n{svg}</body></html>\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{SeriesCollector, TelemetrySnapshot};

    fn sample(seed: u64) -> SeriesData {
        let mut c = SeriesCollector::new(100, 50);
        for i in 1..=5u64 {
            let t = i * 100;
            if c.boundary_due(t) {
                c.close_to(
                    t,
                    TelemetrySnapshot {
                        busy_slots: 10 + i,
                        queue_depth: i,
                        live_jobs: 3,
                        completed: i,
                        events: i * 4,
                        ..TelemetrySnapshot::default()
                    },
                );
            }
            c.observe_jct(i * 37);
        }
        let series = c
            .finish(TelemetrySnapshot {
                completed: 6,
                events: 24,
                ..TelemetrySnapshot::default()
            })
            .unwrap();
        SeriesData::from_series(&series, "policy=hopper engine=central", seed)
    }

    #[test]
    fn jsonl_roundtrips_through_the_parser() {
        let mut c = SeriesCollector::new(100, 50);
        c.observe_jct(123);
        let series = c
            .finish(TelemetrySnapshot {
                busy_slots: 9,
                completed: 1,
                events: 7,
                ..TelemetrySnapshot::default()
            })
            .unwrap();
        let text = series.to_jsonl("label=x", 42);
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed, SeriesData::from_series(&series, "label=x", 42));
    }

    #[test]
    fn parser_errors_name_the_line() {
        let err = parse_jsonl("{\"meta\":true,\"label\":\"x\",\"seed\":0,\"window_ms\":10,\"total_slots\":5,\"windows\":1}\n{\"w\":0}\n")
            .unwrap_err();
        assert!(err.contains("window line 2"), "{err}");
    }

    #[test]
    fn html_is_self_contained() {
        let html = render_html(&[sample(1), sample(2)]);
        assert!(html.contains("<svg"));
        assert!(html.contains("polyline"));
        // Self-containment: no URL-shaped string anywhere (the SVG
        // xmlns is stripped when embedding in HTML5).
        assert!(!html.contains("http://") && !html.contains("https://"));
        assert!(!html.contains("<script") && !html.contains("<link"));
    }
}
