//! Plain-text export of experiment results, for plotting outside Rust.
//!
//! Bench targets print paper-style tables; for figure regeneration in
//! external tools (gnuplot, matplotlib), these helpers render the same
//! data as CSV. No external dependencies — the format is deliberately
//! minimal: header row, comma separation, no quoting (all fields are
//! numeric or simple labels).

use crate::stats::JobResult;

/// Render per-job results as CSV (`job,size_tasks,dag_len,arrival_ms,completed_ms,duration_ms`).
pub fn jobs_to_csv(jobs: &[JobResult]) -> String {
    let mut out = String::from("job,size_tasks,dag_len,arrival_ms,completed_ms,duration_ms\n");
    for r in jobs {
        out.push_str(&format!(
            "{},{},{},{},{},{}\n",
            r.job,
            r.size_tasks,
            r.dag_len,
            r.arrival.as_millis(),
            r.completed.as_millis(),
            r.duration_ms(),
        ));
    }
    out
}

/// Render an (x, series...) sweep as CSV. `series` pairs a name with one
/// value per x — the typical shape of the paper's figures.
///
/// Panics if any series length differs from `xs` (a malformed sweep).
pub fn sweep_to_csv(x_name: &str, xs: &[f64], series: &[(&str, Vec<f64>)]) -> String {
    for (name, ys) in series {
        assert_eq!(
            ys.len(),
            xs.len(),
            "series '{name}' length {} != x length {}",
            ys.len(),
            xs.len()
        );
    }
    let mut out = String::from(x_name);
    for (name, _) in series {
        out.push(',');
        out.push_str(name);
    }
    out.push('\n');
    for (i, x) in xs.iter().enumerate() {
        out.push_str(&format!("{x}"));
        for (_, ys) in series {
            out.push_str(&format!(",{}", ys[i]));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopper_sim::SimTime;

    #[test]
    fn jobs_csv_roundtrips_fields() {
        let jobs = vec![JobResult {
            job: 3,
            size_tasks: 12,
            dag_len: 2,
            arrival: SimTime::from_millis(100),
            completed: SimTime::from_millis(450),
        }];
        let csv = jobs_to_csv(&jobs);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "job,size_tasks,dag_len,arrival_ms,completed_ms,duration_ms"
        );
        assert_eq!(lines.next().unwrap(), "3,12,2,100,450,350");
        assert!(lines.next().is_none());
    }

    #[test]
    fn sweep_csv_layout() {
        let csv = sweep_to_csv(
            "util",
            &[0.6, 0.8],
            &[("sparrow", vec![44.9, 49.1]), ("srpt", vec![26.3, 6.7])],
        );
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "util,sparrow,srpt");
        assert_eq!(lines[1], "0.6,44.9,26.3");
        assert_eq!(lines[2], "0.8,49.1,6.7");
    }

    #[test]
    #[should_panic(expected = "length")]
    fn sweep_csv_rejects_ragged_series() {
        let _ = sweep_to_csv("x", &[1.0, 2.0], &[("bad", vec![1.0])]);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(
            jobs_to_csv(&[]),
            "job,size_tasks,dag_len,arrival_ms,completed_ms,duration_ms\n"
        );
        let csv = sweep_to_csv("x", &[], &[("s", vec![])]);
        assert_eq!(csv, "x,s\n");
    }
}
