//! Deterministic discrete-event simulation engine.
//!
//! Everything in the Hopper reproduction runs on top of this crate: a
//! virtual millisecond clock ([`SimTime`]), a stable priority event queue
//! ([`EventQueue`]) whose pop order is a *total* order (ties broken by
//! insertion sequence), and seeded randomness helpers ([`rng_from_seed`],
//! [`SeedSequence`]) so that every experiment is exactly reproducible from a
//! single `u64` seed.
//!
//! The engine is intentionally synchronous and single threaded, in the
//! spirit of event-driven network stacks (cf. smoltcp): simulation state
//! machines `poll` events, never block, and never perform hidden I/O.

pub mod queue;
pub mod time;

pub use queue::{EventEntry, EventQueue};
pub use time::SimTime;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Create a deterministic RNG from a `u64` seed.
///
/// All randomness in the workspace must flow through RNGs created here (or
/// split off a [`SeedSequence`]) so that a single seed reproduces an entire
/// experiment.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Deterministically derives independent child seeds from a root seed.
///
/// Different simulation components (workload synthesis, task-duration draws,
/// probe placement, ...) each take their own child seed so that changing how
/// many random numbers one component consumes does not perturb the others.
/// Derivation uses the SplitMix64 finalizer, which is well distributed even
/// for sequential indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSequence {
    root: u64,
}

impl SeedSequence {
    /// Create a sequence rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        Self { root: seed }
    }

    /// The root seed this sequence was created from.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Derive the `index`-th child seed.
    pub fn child(&self, index: u64) -> u64 {
        splitmix64(self.root ^ splitmix64(index.wrapping_add(0x9E37_79B9_7F4A_7C15)))
    }

    /// Derive an RNG for the `index`-th child.
    pub fn child_rng(&self, index: u64) -> StdRng {
        rng_from_seed(self.child(index))
    }
}

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixing function.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn rng_is_deterministic() {
        let mut a = rng_from_seed(42);
        let mut b = rng_from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = rng_from_seed(1);
        let mut b = rng_from_seed(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn seed_sequence_children_are_stable_and_distinct() {
        let seq = SeedSequence::new(7);
        let c0 = seq.child(0);
        let c1 = seq.child(1);
        assert_eq!(c0, SeedSequence::new(7).child(0));
        assert_ne!(c0, c1);
        assert_ne!(seq.child(100), seq.child(101));
    }

    #[test]
    fn seed_sequence_root_accessor() {
        assert_eq!(SeedSequence::new(99).root(), 99);
    }

    #[test]
    fn splitmix_spreads_sequential_inputs() {
        // Hamming-ish sanity: consecutive inputs should not produce
        // consecutive outputs.
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert!(a.abs_diff(b) > 1 << 16);
    }
}
