//! A stable discrete-event queue.
//!
//! Events are popped in nondecreasing time order; events scheduled for the
//! same instant are popped in the order they were pushed (FIFO). That
//! stability is what makes whole-simulation determinism cheap: no hash-map
//! iteration order or heap tie ambiguity ever leaks into results.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event plus its scheduling metadata, as stored in the queue.
#[derive(Debug, Clone)]
pub struct EventEntry<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Monotonic insertion sequence number; breaks same-time ties FIFO.
    pub seq: u64,
    /// The payload.
    pub event: E,
}

impl<E> PartialEq for EventEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for EventEntry<E> {}

impl<E> PartialOrd for EventEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for EventEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event priority queue with stable (FIFO) tie-breaking.
///
/// The queue also tracks the simulation clock: [`EventQueue::pop`] advances
/// `now` to the popped event's time, and pushing an event strictly in the
/// past panics in debug builds (an event sourced from time *t* may fire at
/// *t* — zero-latency self-messages are common in schedulers).
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<EventEntry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulation time (the time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever pushed (diagnostics).
    pub fn pushed(&self) -> u64 {
        self.next_seq
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// Debug-panics if `at` is before the current clock; the engine never
    /// rewrites history.
    pub fn push(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past: at={at:?} now={:?}",
            self.now
        );
        let entry = EventEntry {
            time: at,
            seq: self.next_seq,
            event,
        };
        self.next_seq += 1;
        self.heap.push(entry);
    }

    /// Schedule `event` at `delay` after the current clock.
    pub fn push_after(&mut self, delay: SimTime, event: E) {
        self.push(self.now + delay, event);
    }

    /// Pop the earliest event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now);
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// Time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Advance the clock to `t` without popping an event.
    ///
    /// For drivers that merge an external event source (e.g. a lazy
    /// arrival stream) with this queue: delivering a source event at `t`
    /// must advance the clock the same way popping a queued event at `t`
    /// would, so that subsequent [`EventQueue::push_after`] calls are
    /// relative to the right instant. Debug-panics on rewinding.
    pub fn advance_to(&mut self, t: SimTime) {
        debug_assert!(
            t >= self.now,
            "clock rewound: advance_to {t:?} from {:?}",
            self.now
        );
        self.now = t;
    }

    /// Drop every pending event (the clock is unchanged).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), "c");
        q.push(SimTime::from_millis(10), "a");
        q.push(SimTime::from_millis(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_millis(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((SimTime::from_millis(5), i)));
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(42), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(42));
    }

    #[test]
    fn push_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), 0u32);
        q.pop();
        q.push_after(SimTime::from_millis(5), 1u32);
        assert_eq!(q.pop(), Some((SimTime::from_millis(15), 1)));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    #[cfg(debug_assertions)]
    fn pushing_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), ());
        q.pop();
        q.push(SimTime::from_millis(5), ());
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_millis(7), ());
        q.push(SimTime::from_millis(3), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(3)));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pushed(), 2);
    }

    #[test]
    fn zero_latency_self_message_allowed() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), 0u8);
        q.pop();
        // An event may fire at the current instant.
        q.push(q.now(), 1u8);
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), 1)));
    }
}
