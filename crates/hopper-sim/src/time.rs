//! Virtual simulation time.
//!
//! Time is measured in integer milliseconds from the start of the
//! simulation. Using integers (rather than `f64`) keeps event ordering
//! exact and the whole simulation bit-for-bit deterministic.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in milliseconds since simulation start.
///
/// `SimTime` is also used for durations (the arithmetic is the same); the
/// paper's task durations range from sub-second (Spark) to minutes
/// (Hadoop), so millisecond resolution is comfortably fine-grained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero — the start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable time (used as an "infinitely far" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1000)
    }

    /// Construct from fractional seconds, rounding *up* to ≥ 1 ms for any
    /// strictly positive input (a task never takes zero time).
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0 && s.is_finite(), "invalid duration {s}");
        let ms = (s * 1000.0).ceil();
        if s > 0.0 {
            SimTime((ms as u64).max(1))
        } else {
            SimTime(0)
        }
    }

    /// The raw millisecond count.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// This time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Saturating subtraction: `self - other`, or zero if `other > self`.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, other: SimTime) -> Option<SimTime> {
        self.0.checked_add(other.0).map(SimTime)
    }

    /// Multiply a duration by a scalar (used for scaling workloads).
    pub fn scale(self, factor: f64) -> SimTime {
        debug_assert!(factor >= 0.0 && factor.is_finite());
        SimTime((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        debug_assert!(self.0 >= rhs.0, "SimTime underflow: {self} - {rhs}");
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1000 && self.0.is_multiple_of(100) {
            write!(f, "{:.1}s", self.as_secs_f64())
        } else {
            write!(f, "{}ms", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2000));
        assert_eq!(SimTime::from_secs_f64(1.5), SimTime::from_millis(1500));
        assert_eq!(SimTime::from_secs_f64(0.0), SimTime::ZERO);
    }

    #[test]
    fn from_secs_f64_rounds_up_to_one_ms() {
        // A strictly positive duration must never round to zero.
        assert_eq!(SimTime::from_secs_f64(0.000_01), SimTime::from_millis(1));
        assert_eq!(SimTime::from_secs_f64(0.0012), SimTime::from_millis(2));
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(100);
        let b = SimTime::from_millis(40);
        assert_eq!(a + b, SimTime::from_millis(140));
        assert_eq!(a - b, SimTime::from_millis(60));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_millis(140));
    }

    #[test]
    fn scale_rounds() {
        assert_eq!(
            SimTime::from_millis(100).scale(0.5),
            SimTime::from_millis(50)
        );
        assert_eq!(SimTime::from_millis(3).scale(0.5), SimTime::from_millis(2));
        // 1.5 rounds to 2
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_millis(5) < SimTime::from_millis(6));
        assert_eq!(format!("{}", SimTime::from_millis(7)), "7ms");
        assert_eq!(format!("{}", SimTime::from_secs(3)), "3.0s");
    }

    #[test]
    fn checked_add_overflow() {
        assert_eq!(SimTime::MAX.checked_add(SimTime::from_millis(1)), None);
        assert_eq!(
            SimTime::from_millis(1).checked_add(SimTime::from_millis(2)),
            Some(SimTime::from_millis(3))
        );
    }
}
