//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the (small) subset of the `rand 0.8` API that the workspace actually
//! uses, with the same spellings:
//!
//! - [`RngCore`] / [`Rng`] / [`SeedableRng`] traits,
//! - [`rngs::StdRng`] — here a xoshiro256\*\* generator seeded through the
//!   SplitMix64 expander (the reference seeding scheme from Blackman &
//!   Vigna), *not* ChaCha12 as in upstream `rand`. Streams are therefore
//!   deterministic per seed but numerically different from upstream; the
//!   workspace only ever relies on per-seed determinism, never on exact
//!   stream values.
//!
//! Everything is `no_std`-free plain Rust with zero dependencies.

pub mod rngs;

pub use rngs::StdRng;

/// Low-level source of randomness (mirror of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (high half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Seed material (mirrors `rand`'s associated `Seed` type; `StdRng`
    /// uses 32 bytes).
    type Seed: AsMut<[u8]> + Default;

    /// Build from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a single `u64`, expanded via SplitMix64 — the canonical
    /// way every RNG in this workspace is created.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let z = splitmix64_mix(state);
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 finalizer (state increment is applied by the caller).
fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (mirror of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its "standard" distribution:
    /// uniform over the whole domain for integers, uniform in `[0, 1)`
    /// for floats, fair coin for `bool`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range, e.g. `rng.gen_range(0..n)`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from the standard distribution for `Self`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is < 2^-64
                // per draw, far below anything the simulations can observe.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi - lo) as u64 + 1;
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo + draw as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as $u).wrapping_add(hi as $u) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                self.start + (self.end - self.start) * <$t as Standard>::sample_standard(rng)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..256 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        let mut acc = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            acc += x;
        }
        let mean = acc / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_uniform_int() {
        let mut r = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn gen_range_float_bounds() {
        let mut r = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = r.gen_range(2.0f64..5.0);
            assert!((2.0..5.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut r = StdRng::seed_from_u64(6);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = StdRng::seed_from_u64(8);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn trait_object_usable() {
        // `R: Rng + ?Sized` call sites must work through references.
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut r = StdRng::seed_from_u64(9);
        let x = draw(&mut r);
        assert!((0.0..1.0).contains(&x));
    }
}
