//! Named generators (mirror of `rand::rngs`).

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator.
///
/// Implemented as xoshiro256\*\* (Blackman & Vigna, 2018): 256 bits of
/// state, period 2^256 − 1, passes BigCrush. Upstream `rand`'s `StdRng` is
/// ChaCha12; the two produce different streams, but nothing in this
/// workspace depends on exact stream values — only on per-seed determinism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // xoshiro requires a nonzero state; the SplitMix64 expansion in
        // `seed_from_u64` never produces all-zero, but raw `from_seed`
        // callers could.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_rescued() {
        let mut r = StdRng::from_seed([0; 32]);
        // Must not get stuck at zero.
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn known_vector_xoshiro256starstar() {
        // Reference vector from the xoshiro256** C source: with state
        // {1, 2, 3, 4} the first output is 11520.
        let mut seed = [0u8; 32];
        seed[0] = 1;
        seed[8] = 2;
        seed[16] = 3;
        seed[24] = 4;
        let mut r = StdRng::from_seed(seed);
        assert_eq!(r.next_u64(), 11520);
        assert_eq!(r.next_u64(), 0);
        assert_eq!(r.next_u64(), 1509978240);
    }
}
