//! Event-driven centralized scheduling simulator.
//!
//! One event loop serves every [`Policy`]: job arrivals, copy completions,
//! and periodic straggler scans (the monitoring period of real
//! frameworks). After each event, freed slots are (re-)assigned by the
//! policy's dispatch rule. Speculation is *advisory* — the [`Speculator`]
//! proposes candidates at scan time and the policy decides whether a slot
//! is spent on them — which is exactly the coordination gap the paper
//! closes with Hopper.

use std::collections::VecDeque;

use hopper_cluster::{
    ClusterConfig, CopyRef, DynEvent, DynamicsConfig, JobRun, JobSlab, MachineDynamics, MachineId,
    Machines, TaskRef,
};
use hopper_core::{AllocCounters, AlphaEstimator, BetaEstimator, IncrementalAlloc, Regime};
use hopper_metrics::{JobDigest, JobResult, RunReport, SeriesCollector, TelemetrySnapshot};
use hopper_sim::{EventQueue, SeedSequence, SimTime};
use hopper_spec::{Candidate, Speculator};
use hopper_workload::{ArrivalSource, Trace, TraceJob, TraceStream};
use rand::rngs::StdRng;

use crate::policy::{HopperConfig, Policy};

/// Simulation-wide configuration (cluster + execution model + seed).
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Cluster shape and execution-model parameters.
    pub cluster: ClusterConfig,
    /// Straggler-mitigation policy paired with the scheduler.
    pub speculator: Speculator,
    /// Period of the straggler scan (progress-monitoring interval).
    pub scan_interval: SimTime,
    /// Root seed for all randomness in the run.
    pub seed: u64,
    /// Safety valve: abort if more events than this are processed.
    pub max_events: u64,
    /// Optional scripted `(original_ms, speculative_ms)` durations, per job
    /// then per task, for single-phase scenario jobs (the §3 example /
    /// Table 1 bench). Indexed by trace job id.
    pub scripted: Option<Vec<Vec<(u64, u64)>>>,
    /// Cluster-dynamics plane: machine speed heterogeneity, transient
    /// slowdowns, failures. The default ([`DynamicsConfig::off`]) is
    /// bit-identical to a dynamics-free build.
    pub dynamics: DynamicsConfig,
    /// Telemetry window width (simulation ms). `0` (the default)
    /// disables the windowed time-series entirely; any value `> 0`
    /// records per-window series as a pure observer — simulation
    /// results are bit-identical either way (see DESIGN.md,
    /// "Telemetry plane").
    pub telemetry_window_ms: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cluster: ClusterConfig::default(),
            speculator: Speculator::Late(hopper_spec::SpecConfig::default()),
            scan_interval: SimTime::from_millis(1000),
            seed: 1,
            max_events: 200_000_000,
            scripted: None,
            dynamics: DynamicsConfig::off(),
            telemetry_window_ms: 0,
        }
    }
}

/// Aggregate counters of one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Original copies launched.
    pub orig_launched: u64,
    /// Speculative copies launched.
    pub spec_launched: u64,
    /// Tasks whose winning copy was speculative.
    pub spec_won: u64,
    /// Copies killed (lost races, or died with a failed machine).
    pub killed: u64,
    /// Speculative copies launched on a warm (pre-bound) slot.
    pub spec_warm: u64,
    /// Cumulative hand-off delay paid by speculative copies (ms).
    pub spec_handoff_ms: u64,
    /// Jobs whose first allocation used Guideline 2 (capacity constrained).
    pub constrained_jobs: u64,
    /// Jobs whose first allocation used Guideline 3 (proportional).
    pub proportional_jobs: u64,
    /// Events processed.
    pub events: u64,
    /// Completion time of the last job.
    pub makespan: SimTime,
    /// Fraction of input-phase launches that were data-local.
    pub locality_fraction: Option<f64>,
    /// Final online β estimate (when learning was on).
    pub final_beta: Option<f64>,
    /// α prediction accuracy (when learning was on).
    pub alpha_accuracy: Option<f64>,
}

impl RunStats {
    /// Flatten into the driver-agnostic stats core shared with the
    /// decentralized driver (`messages` is 0: no network here).
    pub fn core(&self) -> hopper_metrics::CoreStats {
        hopper_metrics::CoreStats {
            orig_launched: self.orig_launched,
            spec_launched: self.spec_launched,
            spec_won: self.spec_won,
            events: self.events,
            messages: 0,
            makespan: self.makespan,
        }
    }
}

/// Result of a centralized run: per-job outcomes plus counters.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// One entry per trace job, sorted by job id. Empty for streaming
    /// runs ([`run_stream`]), whose per-job statistics live in the
    /// report's digest.
    pub jobs: Vec<JobResult>,
    /// Aggregate counters.
    pub stats: RunStats,
    /// The unified run-output surface: driver-agnostic core counters,
    /// streaming JCT digest, live-jobs high-water mark, and (when
    /// `telemetry_window_ms > 0`) the windowed time-series.
    pub report: RunReport,
    /// Allocation-churn counters of the incremental Hopper allocator
    /// (all zero for non-Hopper policies).
    pub alloc_counters: AllocCounters,
}

impl RunOutput {
    /// Mean job duration in milliseconds (exact in both modes).
    pub fn mean_duration_ms(&self) -> f64 {
        if self.jobs.is_empty() {
            self.report.digest.mean_ms()
        } else {
            hopper_metrics::mean_duration(&self.jobs)
        }
    }
}

/// Run `trace` under `policy`, retaining per-job results.
pub fn run(trace: &Trace, policy: &Policy, cfg: &SimConfig) -> RunOutput {
    Central::new(ArrivalSource::from_trace(trace), policy, cfg, true).run()
}

/// Run a lazy arrival stream under `policy` with O(active jobs) job state:
/// arrivals are injected as simulation time advances, completed jobs are
/// retired, and per-job results are folded into the output's digest
/// instead of being kept (`RunOutput::jobs` is empty).
///
/// Simulation decisions are bit-identical to [`run`] on the materialized
/// form of the same stream — `RunStats` and the digest match exactly.
pub fn run_stream(stream: TraceStream, policy: &Policy, cfg: &SimConfig) -> RunOutput {
    Central::new(ArrivalSource::from_stream(stream), policy, cfg, false).run()
}

/// Run any [`ArrivalSource`] under `policy` — the seam replayed CSV
/// traces come through (`ArrivalSource::from_shared`), and the common
/// generalization of [`run`] / [`run_stream`]: `retain_jobs` selects
/// between per-job results and the streaming retirement pipeline.
pub fn run_source(
    source: ArrivalSource<'_>,
    policy: &Policy,
    cfg: &SimConfig,
    retain_jobs: bool,
) -> RunOutput {
    Central::new(source, policy, cfg, retain_jobs).run()
}

#[derive(Debug, Clone)]
enum Event {
    Finish {
        job: usize,
        copy: CopyRef,
    },
    Scan,
    /// Machine-dynamics incident (slowdown / failure / recovery). Only
    /// ever queued when `SimConfig::dynamics` is enabled.
    Dyn(DynEvent),
}

struct Central<'a> {
    policy: &'a Policy,
    cfg: &'a SimConfig,
    queue: EventQueue<Event>,
    machines: Machines,
    /// Undelivered arrivals, merged with `queue` by the run loop (an
    /// arrival precedes any queued event at the same instant — the order
    /// the historical pre-loaded arrival events produced).
    arrivals: ArrivalSource<'a>,
    /// Live jobs' runtime state; completed jobs are retired (their
    /// task/copy state dropped, stats folded into accumulators).
    jobs: JobSlab,
    /// Placement randomness for lazily constructed `JobRun`s; consumed
    /// in arrival (= id) order, exactly as the eager constructor did.
    placement_rng: StdRng,
    /// Whether per-job `JobResult`s are retained (false for streaming).
    retain_jobs: bool,
    arrived: Vec<bool>,
    done: Vec<bool>,
    /// Driver-maintained running-copy count per job (avoids O(tasks) scans).
    usage: Vec<usize>,
    /// Driver-maintained unlaunched-original count per job.
    pending_orig: Vec<usize>,
    /// Cached speculation candidates per job (refreshed at scans);
    /// consumed front-first, so a deque instead of a `Vec::remove(0)`.
    candidates: Vec<VecDeque<Candidate>>,
    /// Cached α per job (refreshed at scans / phase transitions).
    alpha_cache: Vec<f64>,
    /// Whether a job's first allocation regime has been recorded.
    regime_counted: Vec<bool>,
    /// Active job ids, maintained in ascending id order (insertion by
    /// binary search) so per-event dispatch never re-sorts.
    active: Vec<usize>,
    arrivals_pending: usize,
    scan_armed: bool,
    /// Incrementally maintained Hopper allocation (empty for non-Hopper
    /// policies). Every `allocate` input change is pushed into it at the
    /// point the input changes — arrivals, task finishes, completions,
    /// α/β updates — so dispatch recomputes exactly when something
    /// actually moved (machine fail/recover and stale finishes change no
    /// allocator input and leave the cache intact).
    alloc: IncrementalAlloc,
    /// Jobs whose first-allocation regime is not yet recorded; drained
    /// into the regime counters at the next fresh allocation, exactly
    /// when the eager path would have first included them.
    uncounted: Vec<usize>,
    /// Bounded staleness must not skip the next reallocation (a job
    /// arrived or completed since the last one).
    force_realloc: bool,
    /// `approx_total_virtual` at the last fresh allocation — the
    /// bounded-staleness drift base.
    v_at_last_alloc: f64,
    /// Defer dispatch until all same-instant events are processed
    /// (Hopper with `realloc_drift > 0`: one allocation pass per
    /// instant instead of per event).
    defer_dispatch: bool,
    pending_dispatch: bool,
    /// Instant of the most recently delivered event (the deferred
    /// dispatch runs at this time once the instant's batch drains).
    last_now: SimTime,
    /// Scratch for the Hopper launch loop (reused across dispatches):
    /// `(job, target, hold)` rows in priority order + eligible row
    /// indices.
    rows_scratch: Vec<(usize, usize, usize)>,
    elig_scratch: Vec<u32>,
    /// Cluster-wide running original copies (BudgetedSrpt's cap input).
    orig_running: usize,
    /// Machine speed/availability state; `None` when dynamics are off
    /// (the common case — every lookup then short-circuits to 1.0/up).
    dynamics: Option<MachineDynamics>,
    rng: StdRng,
    beta_est: BetaEstimator,
    alpha_est: AlphaEstimator,
    predicted_mb: Vec<Option<f64>>,
    results: Vec<JobResult>,
    stats: RunStats,
    /// Online duration statistics, folded at each retirement.
    digest: JobDigest,
    /// Windowed time-series observer (inert when
    /// `telemetry_window_ms == 0`). Never feeds back into the
    /// simulation — see DESIGN.md, "Telemetry plane".
    tele: SeriesCollector,
    /// Input-phase launch counters folded out of retired jobs (the
    /// end-of-run locality fraction no longer walks every job).
    local_launches: usize,
    nonlocal_launches: usize,
}

impl<'a> Central<'a> {
    fn new(
        arrivals: ArrivalSource<'a>,
        policy: &'a Policy,
        cfg: &'a SimConfig,
        retain_jobs: bool,
    ) -> Self {
        let seq = SeedSequence::new(cfg.seed);
        let n = arrivals.total_jobs();
        let mut queue = EventQueue::new();
        let mut dynamics = cfg
            .dynamics
            .enabled()
            .then(|| MachineDynamics::new(cfg.dynamics.clone(), cfg.cluster.machines, &seq));
        if let Some(d) = dynamics.as_mut() {
            for (at, ev) in d.initial_incidents() {
                queue.push(at, Event::Dyn(ev));
            }
        }
        let beta_est = BetaEstimator::with_prior(1.5);
        // Shared-β mode mirrors `beta_for`: with learning on, every job's
        // virtual size uses the one global estimate.
        let alloc = IncrementalAlloc::new(
            matches!(policy, Policy::Hopper(h) if h.learn_beta).then(|| beta_est.beta()),
        );
        let defer_dispatch = matches!(policy, Policy::Hopper(h) if h.realloc_drift > 0.0);
        Central {
            policy,
            cfg,
            queue,
            machines: Machines::new(&cfg.cluster),
            arrivals,
            placement_rng: seq.child_rng(0xB10C),
            retain_jobs,
            arrived: vec![false; n],
            done: vec![false; n],
            usage: vec![0; n],
            pending_orig: vec![0; n],
            candidates: vec![VecDeque::new(); n],
            alpha_cache: vec![1.0; n],
            regime_counted: vec![false; n],
            active: Vec::new(),
            arrivals_pending: n,
            scan_armed: false,
            alloc,
            uncounted: Vec::new(),
            force_realloc: false,
            v_at_last_alloc: 0.0,
            defer_dispatch,
            pending_dispatch: false,
            last_now: SimTime::ZERO,
            rows_scratch: Vec::new(),
            elig_scratch: Vec::new(),
            orig_running: 0,
            dynamics,
            rng: seq.child_rng(0xD00D),
            beta_est,
            alpha_est: AlphaEstimator::new(),
            predicted_mb: vec![None; n],
            results: Vec::with_capacity(if retain_jobs { n } else { 0 }),
            stats: RunStats::default(),
            digest: JobDigest::new(),
            tele: SeriesCollector::new(cfg.telemetry_window_ms, cfg.cluster.total_slots() as u64),
            local_launches: 0,
            nonlocal_launches: 0,
            jobs: JobSlab::new(n),
        }
    }

    /// Build job `j`'s runtime state and make it schedulable. Lazy
    /// construction consumes `placement_rng` in arrival (= id) order —
    /// the same draw sequence the historical build-everything-up-front
    /// constructor used, so results are bit-identical.
    fn on_arrival(&mut self, spec: TraceJob, now: SimTime) {
        let j = spec.id;
        debug_assert_eq!(spec.arrival, now);
        let mut job = JobRun::new(spec, &self.cfg.cluster, &mut self.placement_rng);
        if let Some(scripts) = &self.cfg.scripted {
            if let Some(tasks) = scripts.get(j) {
                job.script_single_phase(tasks);
            }
        }
        self.pending_orig[j] = job
            .phases()
            .iter()
            .filter(|p| p.eligible)
            .map(|p| p.num_tasks())
            .sum();
        self.jobs.insert(j, job);
        self.arrived[j] = true;
        self.arrivals_pending -= 1;
        let pos = self.active.binary_search(&j).unwrap_err();
        self.active.insert(pos, j);
        self.predicted_mb[j] = self.alpha_est.predict(self.jobs[j].spec.template);
        self.refresh_alpha(j);
        // Enter the allocator (refresh_alpha only upserts on α change).
        self.alloc_upsert(j);
        self.uncounted.push(j);
        self.force_realloc = true;
        self.arm_scan();
        self.dispatch_or_defer(now);
    }

    /// Push job `j`'s current demand inputs into the incremental
    /// allocator (insert or update; a bit-identical update is a no-op
    /// and keeps the allocation cache clean). Non-Hopper policies do not
    /// allocate, so the allocator stays empty for them.
    fn alloc_upsert(&mut self, j: usize) {
        let Policy::Hopper(h) = self.policy else {
            return;
        };
        // Allocation is sized by the *runnable* (current-phase) work; the
        // priority key max(V, V') additionally sees all downstream work so
        // a deep DAG is not mistaken for a small job (ordering stays
        // SRPT-consistent).
        let remaining = self.jobs[j].current_remaining() as f64;
        let downstream = (self.jobs[j].total_remaining() - self.jobs[j].current_remaining()) as f64;
        // α *amplifies* the virtual size of communication-heavy jobs
        // (§4.2); flooring at 1 keeps map-heavy jobs from being allocated
        // fewer slots than their running phase can use (√α < 1 would
        // starve the upstream phase into extra waves — see DESIGN.md,
        // deviations).
        let alpha = if h.use_alpha {
            self.alpha_cache[j].max(1.0)
        } else {
            1.0
        };
        self.alloc.upsert(
            j,
            remaining,
            downstream,
            alpha,
            self.jobs[j].spec.beta,
            self.jobs[j].spec.weight,
        );
    }

    /// Dispatch now, or — in batching mode — once the current instant's
    /// event batch has drained (the run loop flushes the pending flag
    /// before delivering an event at a later instant).
    fn dispatch_or_defer(&mut self, now: SimTime) {
        if self.defer_dispatch {
            self.pending_dispatch = true;
        } else {
            self.dispatch(now);
        }
    }

    /// Earliest undelivered instant (arrival source merged with the
    /// event queue).
    fn next_instant(&mut self) -> Option<SimTime> {
        match (self.arrivals.peek_arrival(), self.queue.peek_time()) {
            (Some(a), Some(q)) => Some(a.min(q)),
            (Some(a), None) => Some(a),
            (None, q) => q,
        }
    }

    fn run(mut self) -> RunOutput {
        loop {
            // Batching mode: all events of one instant are processed
            // before the single dispatch for that instant runs. Flushing
            // here — before delivering an event at a *later* instant (or
            // none) — is what makes the batch boundary exact.
            if self.pending_dispatch && self.next_instant() != Some(self.last_now) {
                self.pending_dispatch = false;
                self.dispatch(self.last_now);
            }
            // Merge the arrival source with the event queue; at equal
            // instants the arrival is delivered first (see
            // `ArrivalSource`'s ordering contract).
            let arrival_due = match self.arrivals.peek_arrival() {
                Some(at) => match self.queue.peek_time() {
                    Some(qt) => at <= qt,
                    None => true,
                },
                None => false,
            };
            if arrival_due {
                let spec = self.arrivals.pop().expect("peeked arrival exists");
                let now = spec.arrival;
                self.queue.advance_to(now);
                self.tele_tick(now);
                self.stats.events += 1;
                self.last_now = now;
                self.on_arrival(spec, now);
                continue;
            }
            let Some((now, ev)) = self.queue.pop() else {
                break;
            };
            self.tele_tick(now);
            self.stats.events += 1;
            self.last_now = now;
            assert!(
                self.stats.events <= self.cfg.max_events,
                "event budget exceeded: likely a livelock (policy {})",
                self.policy.name()
            );
            match ev {
                Event::Finish { job, copy } => {
                    // Completions queued for copies that lost their race
                    // pop after the job completed and retired; they are
                    // stale by definition and must not touch its state.
                    if self.done[job] {
                        continue;
                    }
                    // A machine-speed change reschedules in-flight copies:
                    // the superseded completion event pops at a time that
                    // no longer matches the copy's finish instant. A no-op
                    // without dynamics (events always pop on time).
                    {
                        let c = &self.jobs[job].phases()[copy.task.phase].tasks[copy.task.task]
                            .copies[copy.copy];
                        if c.status == hopper_cluster::CopyStatus::Running && c.finish_time() != now
                        {
                            continue;
                        }
                    }
                    // Originals leaving the running set with this finish:
                    // every non-speculative copy still Running at this
                    // instant (winner included) is resolved by the race.
                    // Captured *before* finish_copy so copies a machine
                    // failure killed earlier — already deducted from
                    // `orig_running` at failure time — are not recounted.
                    let running_orig_delta = self.jobs[job].phases()[copy.task.phase].tasks
                        [copy.task.task]
                        .copies
                        .iter()
                        .filter(|c| {
                            !c.speculative && c.status == hopper_cluster::CopyStatus::Running
                        })
                        .count();
                    let Some(out) = self.jobs[job].finish_copy(copy, now) else {
                        continue; // stale: the copy lost its race earlier
                    };
                    // Slot bookkeeping for winner + killed siblings.
                    for &m in &out.freed {
                        self.machines.release_to(m, job);
                    }
                    let was_spec = self.jobs[job].phases()[copy.task.phase].tasks[copy.task.task]
                        .copies[copy.copy]
                        .speculative;
                    let freed_of_job = out.freed.len();
                    self.usage[job] -= freed_of_job;
                    let killed = freed_of_job - 1;
                    self.stats.killed += killed as u64;
                    self.orig_running -= running_orig_delta.min(self.orig_running);
                    if was_spec {
                        self.stats.spec_won += 1;
                    }
                    // β learning: observed duration multiplier. A moved
                    // estimate rescales every virtual size — pushed into
                    // the allocator as one lazy shared-β refresh.
                    if out.nominal.as_millis() > 0 {
                        self.beta_est.observe(
                            out.duration.as_millis() as f64 / out.nominal.as_millis() as f64,
                        );
                        if matches!(self.policy, Policy::Hopper(h) if h.learn_beta) {
                            self.alloc.set_shared_beta(self.beta_est.beta());
                        }
                    }
                    // α learning at phase completion.
                    if out.phase_done {
                        let ph = &self.jobs[job].phases()[copy.task.phase];
                        if ph.spec.output_mb_per_task > 0.0 {
                            let actual = ph.spec.output_mb_per_task;
                            self.alpha_est.observe(self.jobs[job].spec.template, actual);
                            if let Some(pred) = self.predicted_mb[job] {
                                self.alpha_est.record_outcome(pred, actual);
                            }
                        }
                    }
                    if !out.newly_eligible.is_empty() {
                        for &pi in &out.newly_eligible {
                            self.pending_orig[job] += self.jobs[job].phases()[pi].num_tasks();
                        }
                        self.refresh_alpha(job);
                    }
                    if out.job_done {
                        self.complete_job(job, now);
                    } else {
                        // Remaining-task counts changed: push the fresh
                        // demand into the allocator (a no-op if α/remaining
                        // bits happen to be unchanged).
                        self.alloc_upsert(job);
                    }
                    self.dispatch_or_defer(now);
                }
                Event::Scan => {
                    self.scan_armed = false;
                    for idx in 0..self.active.len() {
                        let j = self.active[idx];
                        self.candidates[j] =
                            self.cfg.speculator.candidates(&self.jobs[j], now).into();
                        self.refresh_alpha(j);
                    }
                    self.arm_scan();
                    self.dispatch_or_defer(now);
                }
                Event::Dyn(ev) => {
                    // The incident chain dies with the workload: once every
                    // job has completed, incidents are dropped unapplied and
                    // no follow-up is scheduled, so the queue drains.
                    if self.active.is_empty() && self.arrivals_pending == 0 {
                        continue;
                    }
                    self.on_dyn(ev, now);
                }
            }
        }
        assert!(
            self.active.is_empty() && self.arrivals_pending == 0,
            "simulation drained with unfinished jobs (deadlock?)"
        );
        self.stats.locality_fraction = {
            let total = self.local_launches + self.nonlocal_launches;
            (total > 0).then(|| self.local_launches as f64 / total as f64)
        };
        if let Policy::Hopper(h) = self.policy {
            if h.learn_beta {
                self.stats.final_beta = Some(self.beta_est.beta());
            }
            if h.learn_alpha {
                self.stats.alpha_accuracy = self.alpha_est.accuracy();
            }
        }
        let telemetry = {
            let snap = self.tele_snapshot();
            self.tele.finish(snap)
        };
        let mut jobs = self.results;
        jobs.sort_by_key(|r| r.job);
        let report = RunReport {
            core: self.stats.core(),
            digest: self.digest,
            live_high_water: self.jobs.high_water(),
            telemetry,
        };
        RunOutput {
            jobs,
            stats: self.stats,
            report,
            alloc_counters: self.alloc.counters(),
        }
    }

    /// Close any telemetry windows that end before the event about to
    /// be processed at `now`. Called with every event's timestamp
    /// *before* the event mutates state, so the snapshot is exactly
    /// the state at the crossed boundary. One branch when disabled.
    #[inline]
    fn tele_tick(&mut self, now: SimTime) {
        let now_ms = now.as_millis();
        if self.tele.boundary_due(now_ms) {
            let snap = self.tele_snapshot();
            self.tele.close_to(now_ms, snap);
        }
    }

    /// Gauges + cumulative counters for the telemetry plane. O(active
    /// jobs), and only ever evaluated at window boundaries and at the
    /// end of the run.
    fn tele_snapshot(&self) -> TelemetrySnapshot {
        let mut busy_slots = 0u64;
        let mut queue_depth = 0u64;
        for &j in &self.active {
            busy_slots += self.usage[j] as u64;
            queue_depth += self.pending_orig[j] as u64;
        }
        TelemetrySnapshot {
            busy_slots,
            queue_depth,
            live_jobs: self.active.len() as u64,
            completed: self.digest.count(),
            orig_launched: self.stats.orig_launched,
            spec_launched: self.stats.spec_launched,
            spec_won: self.stats.spec_won,
            killed: self.stats.killed,
            messages: 0,
            events: self.stats.events,
        }
    }

    /// Complete and **retire** job `j`: its per-job outcome is folded
    /// into the digest/accumulators (and, in materialized mode, pushed
    /// as a `JobResult`), then its task/copy state is dropped. From this
    /// instant the job is observationally gone — any path touching
    /// `jobs[j]` panics (the retirement invariant, DESIGN.md).
    fn complete_job(&mut self, j: usize, now: SimTime) {
        self.done[j] = true;
        if let Ok(pos) = self.active.binary_search(&j) {
            self.active.remove(pos);
        }
        self.alloc.remove(j);
        self.force_realloc = true;
        self.candidates[j] = VecDeque::new();
        let job = self.jobs.retire(j);
        self.local_launches += job.local_launches;
        self.nonlocal_launches += job.nonlocal_launches;
        let result = JobResult {
            job: job.id,
            size_tasks: job.spec.size_tasks(),
            dag_len: job.spec.dag_len(),
            arrival: job.spec.arrival,
            completed: now,
        };
        self.digest.observe_ms(result.duration_ms());
        self.tele.observe_jct(result.duration_ms());
        if self.retain_jobs {
            self.results.push(result);
        }
        self.stats.makespan = self.stats.makespan.max(now);
    }

    fn arm_scan(&mut self) {
        if !self.scan_armed && (!self.active.is_empty() || self.arrivals_pending > 0) {
            self.queue.push_after(self.cfg.scan_interval, Event::Scan);
            self.scan_armed = true;
        }
    }

    /// Effective speed of machine `m` (1.0 when dynamics are off).
    fn machine_speed(&self, m: MachineId) -> f64 {
        self.dynamics.as_ref().map_or(1.0, |d| d.speed(m))
    }

    /// Apply one machine-dynamics incident.
    fn on_dyn(&mut self, ev: DynEvent, now: SimTime) {
        let out = self
            .dynamics
            .as_mut()
            .expect("dyn event without dynamics plane")
            .apply(ev);
        for (delay, next) in out.next {
            self.queue.push(now + delay, Event::Dyn(next));
        }
        let m = ev.machine();
        match ev {
            DynEvent::SlowdownStart(_) | DynEvent::SlowdownEnd(_) => {
                // In-flight copies on `m` stretch (or shrink) their
                // remaining time; their old completion events go stale and
                // fresh ones are queued at the rescaled finish instants.
                let ratio = out.rescale_ratio.expect("speed change carries a ratio");
                for idx in 0..self.active.len() {
                    let j = self.active[idx];
                    for (copy, finish) in self.jobs[j].rescale_machine(m, now, ratio) {
                        self.queue.push(finish, Event::Finish { job: j, copy });
                    }
                }
            }
            DynEvent::Fail(_) => {
                // Every running copy on the machine dies with it; tasks
                // whose last copy died return to the pending pool for
                // re-dispatch. The machine's slots leave the cluster.
                for idx in 0..self.active.len() {
                    let j = self.active[idx];
                    let fo = self.jobs[j].fail_machine(m);
                    if fo.killed == 0 {
                        continue;
                    }
                    self.usage[j] -= fo.killed;
                    let orig = fo.killed - fo.killed_spec;
                    self.orig_running -= orig.min(self.orig_running);
                    self.pending_orig[j] += fo.requeued.len();
                    self.stats.killed += fo.killed as u64;
                }
                self.machines.set_down(m);
                // No allocate input moved: killed tasks return to
                // *pending* (remaining counts are unchanged) and the
                // capacity input is the static configured slot total —
                // the cached allocation stays valid.
                self.dispatch_or_defer(now);
            }
            DynEvent::Recover(_) => {
                // Pure capacity-return event; like `Fail`, it changes no
                // allocator input and must not trash the cache.
                self.machines.set_up(m);
                self.dispatch_or_defer(now);
            }
        }
    }

    fn refresh_alpha(&mut self, j: usize) {
        let learn = matches!(self.policy, Policy::Hopper(h) if h.learn_alpha);
        let fresh = if learn {
            match self.predicted_mb[j] {
                Some(mb) => self.jobs[j].alpha_with_predicted_output(mb, &self.cfg.cluster),
                None => self.jobs[j].alpha(), // cold start: ground truth
            }
        } else {
            self.jobs[j].alpha()
        };
        // Only an actual α change invalidates the cached allocation — a
        // no-op scan refresh keeps the cache intact.
        if fresh.to_bits() != self.alpha_cache[j].to_bits() {
            self.alpha_cache[j] = fresh;
            self.alloc_upsert(j);
        }
    }

    /// Effective β used for a job's virtual size. The hot paths inline
    /// this choice (`alloc_upsert` pushes β at input-change time and the
    /// launch loop hoists the shared multiplier), so the method itself
    /// only backs the debug-build eager shadow check.
    #[cfg(debug_assertions)]
    fn beta_for(&self, j: usize) -> f64 {
        match self.policy {
            Policy::Hopper(h) if h.learn_beta => self.beta_est.beta(),
            _ => self.jobs[j].spec.beta,
        }
    }

    /// Number of runnable work items for a job right now (validated lazily
    /// at launch).
    fn runnable(&self, j: usize) -> usize {
        self.pending_orig[j] + self.candidates[j].len()
    }

    /// Assign free slots according to the policy. Called after every event.
    fn dispatch(&mut self, now: SimTime) {
        match self.policy {
            Policy::Hopper(h) => self.dispatch_hopper(now, h),
            Policy::Fifo => {
                // `active` is maintained in ascending id order already.
                let order = self.active.clone();
                self.dispatch_priority(now, &order, None);
            }
            Policy::Srpt => {
                let mut order = self.active.clone();
                order.sort_by_key(|&j| (self.jobs[j].total_remaining(), j));
                self.dispatch_priority(now, &order, None);
            }
            Policy::BudgetedSrpt { budget_fraction } => {
                let mut order = self.active.clone();
                order.sort_by_key(|&j| (self.jobs[j].total_remaining(), j));
                let budget =
                    (self.cfg.cluster.total_slots() as f64 * budget_fraction).ceil() as usize;
                let orig_cap = self.cfg.cluster.total_slots().saturating_sub(budget);
                self.dispatch_priority(now, &order, Some(orig_cap));
            }
            Policy::Fair => self.dispatch_fair(now),
        }
    }

    /// Launch loop for priority-ordered policies (FIFO, SRPT, budgeted):
    /// each job in order exhausts its runnable work — originals first,
    /// then speculation best-effort. `orig_cap` bounds cluster-wide
    /// original copies (the §3 budgeted strawman).
    fn dispatch_priority(&mut self, now: SimTime, order: &[usize], orig_cap: Option<usize>) {
        for &j in order {
            loop {
                if self.machines.total_free() == 0 {
                    return;
                }
                let can_orig = orig_cap.is_none_or(|cap| self.orig_running < cap);
                let launched = if can_orig && self.pending_orig[j] > 0 {
                    self.launch_original(j, now)
                } else {
                    // Originals exhausted (or capped): best-effort
                    // speculation with whatever slots this job can win.
                    self.try_speculative(j, now)
                };
                if !launched {
                    break; // move on to the next job in priority order
                }
            }
        }
    }

    /// Fair sharing: each job is entitled to S/N; grant slots to the most
    /// deficient jobs first (best-effort speculation within the share).
    fn dispatch_fair(&mut self, now: SimTime) {
        loop {
            if self.machines.total_free() == 0 || self.active.is_empty() {
                return;
            }
            let n = self.active.len();
            let share = (self.cfg.cluster.total_slots() / n).max(1);
            // Most-deficient job with runnable work and usage below share.
            let mut best: Option<(usize, usize)> = None; // (usage, job)
            for &j in &self.active {
                if self.usage[j] < share && self.runnable(j) > 0 {
                    let key = (self.usage[j], j);
                    if best.is_none_or(|b| key < b) {
                        best = Some(key);
                    }
                }
            }
            // If everyone hit their share but slots remain, spill over to
            // any runnable job (work conservation, like Hadoop Fair).
            if best.is_none() {
                for &j in &self.active {
                    if self.runnable(j) > 0 {
                        let key = (self.usage[j], j);
                        if best.is_none_or(|b| key < b) {
                            best = Some(key);
                        }
                    }
                }
            }
            let Some((_, j)) = best else { return };
            if self.pending_orig[j] > 0 {
                if !self.launch_original(j, now) {
                    return;
                }
            } else if !self.try_speculative(j, now) {
                return;
            }
        }
    }

    /// Hopper dispatch: targets from Pseudocode 1 (incrementally
    /// maintained — see `hopper_core::incremental`), slot-holding, and
    /// the k% locality relaxation.
    fn dispatch_hopper(&mut self, now: SimTime, hcfg: &HopperConfig) {
        if self.active.is_empty() || self.machines.total_free() == 0 {
            return;
        }
        let capacity = self.cfg.cluster.total_slots();
        // Reuse the previous allocation outright when no input changed
        // (exact, not an approximation — `allocate` is a pure function of
        // the demands). With `realloc_drift > 0`, additionally keep a
        // *stale* allocation while the approximate total virtual size
        // stays within the drift budget; arrivals and completions always
        // force a fresh pass (the job set itself changed).
        let stale = if !self.alloc.is_dirty() {
            if !self.force_realloc {
                self.alloc.note_reuse();
            }
            !self.force_realloc
        } else if hcfg.realloc_drift > 0.0 && !self.force_realloc {
            let base = self.v_at_last_alloc;
            let within =
                (self.alloc.approx_total_virtual() - base).abs() <= hcfg.realloc_drift * base.abs();
            if within {
                self.alloc.note_stale_skip();
            }
            within
        } else {
            false
        };
        if !stale {
            self.realloc(capacity, hcfg);
        }
        let launched = self.hopper_launch_loop(now, hcfg);
        // Work conservation under staleness: if a stale pass stranded
        // free slots that runnable work could use, pay for one fresh
        // allocation instead of idling capacity until the next forced
        // reallocation.
        if stale
            && !launched
            && self.alloc.is_dirty()
            && self.machines.total_free() > 0
            && self.active.iter().any(|&j| self.runnable(j) > 0)
        {
            self.realloc(capacity, hcfg);
            self.hopper_launch_loop(now, hcfg);
        }
    }

    /// One fresh (full or sorted-suffix) allocation pass; refreshes the
    /// bounded-staleness drift base and the first-allocation regime
    /// counters.
    fn realloc(&mut self, capacity: usize, hcfg: &HopperConfig) {
        // Allocation is over *all* slots; a job's target includes its
        // currently running copies.
        let regime = self.alloc.allocate(capacity, &hcfg.alloc);
        self.v_at_last_alloc = self.alloc.approx_total_virtual();
        self.force_realloc = false;
        // Jobs first included in this allocation get their regime
        // recorded — exactly when the eager path first saw them (a job
        // cannot run, hence cannot complete, before its first fresh
        // allocation: its own arrival forces one).
        for j in self.uncounted.drain(..) {
            if !self.regime_counted[j] {
                self.regime_counted[j] = true;
                match regime {
                    Regime::Constrained => self.stats.constrained_jobs += 1,
                    Regime::Proportional => self.stats.proportional_jobs += 1,
                }
            }
        }
        #[cfg(debug_assertions)]
        self.assert_alloc_matches_eager(capacity, hcfg, regime);
    }

    /// Debug-only shadow check: the incremental allocation must be
    /// bit-identical to eager [`hopper_core::allocate`] over the same
    /// demands (the exactness contract of `hopper_core::incremental`).
    #[cfg(debug_assertions)]
    fn assert_alloc_matches_eager(&self, capacity: usize, hcfg: &HopperConfig, regime: Regime) {
        use hopper_core::{allocate, JobDemand};
        let demands: Vec<JobDemand> = self
            .active
            .iter()
            .map(|&j| JobDemand {
                job: j,
                remaining_tasks: self.jobs[j].current_remaining() as f64,
                downstream_tasks: (self.jobs[j].total_remaining()
                    - self.jobs[j].current_remaining()) as f64,
                alpha: if hcfg.use_alpha {
                    self.alpha_cache[j].max(1.0)
                } else {
                    1.0
                },
                beta: self.beta_for(j),
                weight: self.jobs[j].spec.weight,
            })
            .collect();
        for a in allocate(&demands, capacity, &hcfg.alloc) {
            assert_eq!(
                self.alloc.granted(a.job),
                a.slots,
                "incremental grant for job {} drifted from eager",
                a.job
            );
            assert_eq!(a.regime, regime, "regime drifted from eager");
        }
    }

    /// The launch loop over the current allocation: priority-ordered
    /// launches with slot-holding and the k% locality relaxation.
    ///
    /// Equivalent to the historical rebuild-everything-per-iteration
    /// loop, but the held total and the eligibility list are maintained
    /// incrementally: one launch attempt moves usage/runnable state for
    /// exactly the chosen job (a failed speculative attempt still prunes
    /// its candidates), so only that row is refreshed. Eligibility is
    /// monotone within one pass — usage only grows and runnable work
    /// only shrinks — so rows that drop out are skipped permanently and
    /// none ever re-enters. Returns whether any copy launched.
    fn hopper_launch_loop(&mut self, now: SimTime, hcfg: &HopperConfig) -> bool {
        let mut rows = std::mem::take(&mut self.rows_scratch);
        let mut elig = std::mem::take(&mut self.elig_scratch);
        rows.clear();
        elig.clear();
        // Under a learned β every job shares one speculation multiplier;
        // hoist it so the per-row quota below is pure integer work.
        let shared_mult = if hcfg.learn_beta {
            Some(hopper_core::speculation_multiplier(self.beta_est.beta()))
        } else {
            None
        };
        // One pass in ascending max(V, V') order — the allocator's fill
        // order — building the row table (job, target, hold), the held
        // total, and the eligibility list together. Holds are slots kept
        // idle for jobs whose allocation exceeds both their usage and
        // their immediately runnable work (anticipated speculation —
        // Figure 2's "budgeted slot 5 until time 2"); eligible rows have
        // headroom and runnable work.
        let mut held = 0usize;
        for &(_, j) in self.alloc.order() {
            let target = self.alloc.granted(j);
            let hold = self.hold_quota(j, target, shared_mult);
            held += hold;
            if self.usage[j] < target && self.runnable(j) > 0 {
                elig.push(rows.len() as u32);
            }
            rows.push((j, target, hold));
        }
        let bracket =
            ((hcfg.locality_relax_pct / 100.0 * rows.len() as f64).ceil() as usize).min(rows.len());
        let mut start = 0usize;
        let mut launched_any = false;
        loop {
            let free = self.machines.total_free();
            if free == 0 || free <= held {
                break;
            }
            // Head: first still-eligible row. Entries the loop already
            // filled (or drained of work) are skipped for good.
            let head = loop {
                let Some(&ri) = elig.get(start) else {
                    break None;
                };
                let (j, t, _) = rows[ri as usize];
                if self.usage[j] < t && self.runnable(j) > 0 {
                    break Some(ri as usize);
                }
                start += 1;
            };
            let Some(head) = head else { break };
            let mut chosen = head;
            // k% locality relaxation (§4.4): if the head job's next launch
            // would be non-local, any of the smallest k% of eligible jobs
            // with a data-local task on a free machine may take the slot.
            if bracket > 0 && !self.would_launch_local(rows[head].0) {
                let mut seen = 0usize;
                for &ri in &elig[start..] {
                    if seen == bracket {
                        break;
                    }
                    let (j, t, _) = rows[ri as usize];
                    if self.usage[j] >= t || self.runnable(j) == 0 {
                        continue; // went ineligible mid-pass: not counted
                    }
                    seen += 1;
                    if self.would_launch_local(j) {
                        chosen = ri as usize;
                        break;
                    }
                }
            }
            let j = rows[chosen].0;
            let launched = if self.pending_orig[j] > 0 {
                self.launch_original(j, now)
            } else {
                self.try_speculative(j, now)
            };
            // Refresh the chosen row's hold (even on failure: pruned
            // candidates shrink runnable work) so the held total and the
            // bind phase below see current values.
            held -= rows[chosen].2;
            rows[chosen].2 = self.hold_quota(j, rows[chosen].1, shared_mult);
            held += rows[chosen].2;
            if !launched {
                break;
            }
            launched_any = true;
        }
        // Pre-warm held slots: bind idle slots to their holders now so the
        // anticipated speculative copy starts without the hand-off cost —
        // the physical payoff of reservation (Figure 2).
        for &(j, _, hold) in &rows {
            let have = self.machines.warm_total(j);
            if hold > have {
                self.machines.bind_idle(j, hold - have);
            }
        }
        self.rows_scratch = rows;
        self.elig_scratch = elig;
        launched_any
    }

    /// Slots job `j` may hold idle in anticipation of speculation: the
    /// allocation headroom beyond usage and immediately-runnable work,
    /// capped at `(2/β − 1) ×` its running copies — the share of the
    /// virtual size that exists *for* speculation (in Figure 2 job A holds
    /// exactly ⌈0.25 × 4⌉ = 1 slot). Unbounded holding would idle capacity
    /// other jobs could use, costing more than prompt speculation saves.
    /// `shared_mult` is the hoisted learned-β multiplier (identical for
    /// every job when β is learned); `None` falls back to the job's own
    /// spec β.
    fn hold_quota(&self, j: usize, target: usize, shared_mult: Option<f64>) -> usize {
        let headroom = target
            .saturating_sub(self.usage[j])
            .saturating_sub(self.runnable(j));
        if headroom == 0 {
            return 0;
        }
        let mult = shared_mult
            .unwrap_or_else(|| hopper_core::speculation_multiplier(self.jobs[j].spec.beta));
        let anticipation = ((mult - 1.0) * self.usage[j] as f64).ceil() as usize;
        headroom.min(anticipation)
    }

    /// Whether `j`'s next original launch would be data-local on some
    /// currently free machine. O(replica machines with pending work), via
    /// the job's inverted replica index, instead of O(free machines ×
    /// tasks).
    fn would_launch_local(&self, j: usize) -> bool {
        if self.pending_orig[j] == 0 {
            return false; // speculative copies have no locality preference
        }
        let indexed = self.jobs[j]
            .machines_with_local_pending()
            .any(|m| self.machines.free_on(m) > 0);
        debug_assert_eq!(
            indexed,
            self.machines
                .machines_with_free()
                .any(|m| self.jobs[j].has_local_task_for(m)),
            "locality index disagrees with the free-machine scan"
        );
        indexed
    }

    /// Hand-off delay for a cold slot.
    fn handoff_delay(&self, temp: hopper_cluster::machine::SlotTemp) -> SimTime {
        match temp {
            hopper_cluster::machine::SlotTemp::Warm => SimTime::ZERO,
            hopper_cluster::machine::SlotTemp::Cold => {
                SimTime::from_millis(self.cfg.cluster.handoff_ms)
            }
        }
    }

    /// Launch the next pending original of job `j`, preferring a machine
    /// that makes it data-local. Returns false when nothing could launch.
    ///
    /// The locality probe replaces the old "every free machine ×
    /// `next_task_for`" sweep: when the job has a replica-free pending
    /// task the first free machine already wins (the old scan returned
    /// `local = true` there), otherwise the smallest-id machine that is
    /// both free and in the job's replica index is exactly the machine the
    /// ascending free-machine scan would have stopped at.
    fn launch_original(&mut self, j: usize, now: SimTime) -> bool {
        let mut pick: Option<(TaskRef, MachineId)> = None;
        if self.jobs[j].has_pending_no_replica() {
            if let Some(m) = self.machines.machines_with_free().next() {
                if let Some((task, true)) = self.jobs[j].next_task_for(Some(m)) {
                    pick = Some((task, m));
                }
            }
        } else if let Some(m) = self.jobs[j]
            .machines_with_local_pending()
            .find(|&m| self.machines.free_on(m) > 0)
        {
            let task = self.jobs[j]
                .first_local_pending(m)
                .expect("indexed machine has pending local work");
            pick = Some((task, m));
        }
        #[cfg(debug_assertions)]
        {
            let mut scanned: Option<(TaskRef, MachineId)> = None;
            for m in self.machines.machines_with_free() {
                if let Some((task, true)) = self.jobs[j].next_task_for(Some(m)) {
                    scanned = Some((task, m));
                    break;
                }
            }
            assert_eq!(pick, scanned, "local launch pick drifted from scan");
        }
        if pick.is_none() {
            if let Some(m) = self.machines.preferred_free_machine(j, &[]) {
                if let Some((task, _)) = self.jobs[j].next_task_for(Some(m)) {
                    pick = Some((task, m));
                }
            }
        }
        let Some((task, m)) = pick else { return false };
        let temp = self.machines.occupy_for(m, j);
        let delay = self.handoff_delay(temp);
        let speed = self.machine_speed(m);
        let (copy, dur) = self.jobs[j].launch_copy_at_speed(
            task,
            m,
            false,
            now,
            delay,
            &self.cfg.cluster,
            &mut self.rng,
            speed,
        );
        self.queue
            .push(now + delay + dur, Event::Finish { job: j, copy });
        self.usage[j] += 1;
        self.pending_orig[j] -= 1;
        self.orig_running += 1;
        self.stats.orig_launched += 1;
        true
    }

    /// Launch the best valid speculation candidate of job `j`.
    /// Returns false when no valid candidate (stale entries are pruned —
    /// `pop_front` on the deque, not a `Vec::remove(0)` shift).
    fn try_speculative(&mut self, j: usize, now: SimTime) -> bool {
        while let Some(cand) = self.candidates[j].front().copied() {
            let t = &self.jobs[j].phases()[cand.task.phase].tasks[cand.task.task];
            if t.is_finished() || t.running_copies() == 0 || t.running_copies() >= 2 {
                self.candidates[j].pop_front();
                continue;
            }
            // Prefer a machine not already running a copy of this task.
            let busy: Vec<MachineId> = t
                .copies
                .iter()
                .filter(|c| c.status == hopper_cluster::CopyStatus::Running)
                .map(|c| c.machine)
                .collect();
            let Some(m) = self.machines.preferred_free_machine(j, &busy) else {
                return false;
            };
            let temp = self.machines.occupy_for(m, j);
            let delay = self.handoff_delay(temp);
            let speed = self.machine_speed(m);
            let (copy, dur) = self.jobs[j].launch_copy_at_speed(
                cand.task,
                m,
                true,
                now,
                delay,
                &self.cfg.cluster,
                &mut self.rng,
                speed,
            );
            if delay == SimTime::ZERO {
                self.stats.spec_warm += 1;
            }
            self.stats.spec_handoff_ms += delay.as_millis();
            self.queue
                .push(now + delay + dur, Event::Finish { job: j, copy });
            self.usage[j] += 1;
            self.stats.spec_launched += 1;
            self.candidates[j].pop_front();
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::HopperConfig;
    use crate::scenario::{motivating_sim_config, motivating_trace};
    use hopper_workload::{TraceGenerator, WorkloadProfile};

    fn dur(out: &RunOutput, job: usize) -> u64 {
        out.jobs
            .iter()
            .find(|r| r.job == job)
            .unwrap()
            .duration_ms()
    }

    /// Figure 1a: SRPT + best-effort speculation → A = 20 s, B = 30 s.
    #[test]
    fn motivating_example_best_effort_srpt() {
        let (trace, _) = motivating_trace();
        let out = run(&trace, &Policy::Srpt, &motivating_sim_config());
        assert_eq!(dur(&out, 0), 20_000, "job A (Figure 1a)");
        assert_eq!(dur(&out, 1), 30_000, "job B (Figure 1a)");
    }

    /// Figure 1b: SRPT + a 3-slot speculation budget → A = 12 s, B = 32 s.
    #[test]
    fn motivating_example_budgeted() {
        let (trace, _) = motivating_trace();
        let out = run(
            &trace,
            &Policy::BudgetedSrpt {
                budget_fraction: 3.0 / 7.0,
            },
            &motivating_sim_config(),
        );
        assert_eq!(dur(&out, 0), 12_000, "job A (Figure 1b)");
        assert_eq!(dur(&out, 1), 32_000, "job B (Figure 1b)");
    }

    /// Figure 2: Hopper's coordinated allocation → A = 12 s, B = 22 s.
    #[test]
    fn motivating_example_hopper() {
        let (trace, _) = motivating_trace();
        let out = run(
            &trace,
            &Policy::Hopper(HopperConfig::pure()),
            &motivating_sim_config(),
        );
        assert_eq!(dur(&out, 0), 12_000, "job A (Figure 2)");
        assert_eq!(dur(&out, 1), 22_000, "job B (Figure 2)");
    }

    /// Hopper's average beats both strawmen on the example (25 and 22 vs 17).
    #[test]
    fn motivating_example_hopper_wins_on_average() {
        let (trace, _) = motivating_trace();
        let cfg = motivating_sim_config();
        let srpt = run(&trace, &Policy::Srpt, &cfg).mean_duration_ms();
        let budgeted = run(
            &trace,
            &Policy::BudgetedSrpt {
                budget_fraction: 3.0 / 7.0,
            },
            &cfg,
        )
        .mean_duration_ms();
        let hopper = run(&trace, &Policy::Hopper(HopperConfig::pure()), &cfg).mean_duration_ms();
        assert!(hopper < srpt && hopper < budgeted);
        assert_eq!(hopper, 17_000.0);
    }

    fn small_trace(seed: u64, n: usize, util: f64, slots: usize) -> Trace {
        let profile = WorkloadProfile::facebook().single_phase();
        TraceGenerator::new(profile, n, seed).generate_with_utilization(slots, util)
    }

    fn small_cfg(seed: u64) -> SimConfig {
        SimConfig {
            cluster: ClusterConfig {
                machines: 25,
                slots_per_machine: 4,
                ..Default::default()
            },
            scan_interval: SimTime::from_millis(2_000),
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn stochastic_run_is_deterministic() {
        let trace = small_trace(3, 40, 0.7, 100);
        let cfg = small_cfg(9);
        let a = run(&trace, &Policy::Hopper(HopperConfig::default()), &cfg);
        let b = run(&trace, &Policy::Hopper(HopperConfig::default()), &cfg);
        assert_eq!(a.jobs.len(), b.jobs.len());
        for (x, y) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(x.completed, y.completed);
        }
        assert_eq!(a.stats.spec_launched, b.stats.spec_launched);
        assert_eq!(a.stats.events, b.stats.events);
    }

    #[test]
    fn all_jobs_complete_under_every_policy() {
        let trace = small_trace(5, 30, 0.8, 100);
        let cfg = small_cfg(5);
        for policy in [
            Policy::Fifo,
            Policy::Fair,
            Policy::Srpt,
            Policy::BudgetedSrpt {
                budget_fraction: 0.2,
            },
            Policy::Hopper(HopperConfig::default()),
        ] {
            let out = run(&trace, &policy, &cfg);
            assert_eq!(out.jobs.len(), trace.len(), "policy {}", policy.name());
            assert!(out.stats.makespan > SimTime::ZERO);
        }
    }

    #[test]
    fn hopper_beats_srpt_on_heavy_tailed_load() {
        // The paper's headline: coordinating speculation with scheduling
        // beats SRPT + best-effort LATE. High utilization, heavy tails,
        // averaged over seeds (single runs are noisy on small clusters).
        let mut srpt = 0.0;
        let mut hopper = 0.0;
        for seed in 0..3u64 {
            let mut profile = WorkloadProfile::facebook().single_phase();
            profile.beta_range = (1.2, 1.4);
            let trace = TraceGenerator::new(profile, 200, seed).generate_with_utilization(200, 0.8);
            let cfg = SimConfig {
                cluster: ClusterConfig {
                    machines: 50,
                    slots_per_machine: 4,
                    ..Default::default()
                },
                scan_interval: SimTime::from_millis(500),
                seed,
                ..Default::default()
            };
            srpt += run(&trace, &Policy::Srpt, &cfg).mean_duration_ms();
            hopper +=
                run(&trace, &Policy::Hopper(HopperConfig::default()), &cfg).mean_duration_ms();
        }
        assert!(
            hopper < srpt,
            "hopper {hopper:.0} should beat srpt {srpt:.0} on average"
        );
    }

    #[test]
    fn speculation_actually_happens_and_wins_sometimes() {
        let trace = small_trace(13, 40, 0.6, 100);
        let cfg = small_cfg(13);
        let out = run(&trace, &Policy::Hopper(HopperConfig::default()), &cfg);
        assert!(out.stats.spec_launched > 0, "no speculation at all");
        assert!(out.stats.spec_won > 0, "speculation never won a race");
        assert!(out.stats.spec_won <= out.stats.spec_launched);
    }

    #[test]
    fn regime_accounting_covers_all_jobs_once() {
        let trace = small_trace(17, 50, 0.8, 100);
        let cfg = small_cfg(17);
        let out = run(&trace, &Policy::Hopper(HopperConfig::default()), &cfg);
        assert_eq!(
            out.stats.constrained_jobs + out.stats.proportional_jobs,
            trace.len() as u64
        );
    }

    #[test]
    fn learning_stats_populated() {
        let trace = small_trace(19, 40, 0.7, 100);
        let cfg = small_cfg(19);
        let out = run(&trace, &Policy::Hopper(HopperConfig::default()), &cfg);
        let beta = out.stats.final_beta.expect("beta learned");
        assert!(beta > 1.0 && beta < 2.5, "beta {beta}");
        assert!(out.stats.locality_fraction.is_some());
    }

    #[test]
    fn fair_policy_is_fair_between_identical_jobs() {
        // Two identical jobs arriving together under Fair should finish
        // within a small factor of each other.
        use hopper_workload::single_phase_job;
        let works: Vec<SimTime> = vec![SimTime::from_millis(5_000); 40];
        let trace = Trace::new(vec![
            single_phase_job(0, SimTime::ZERO, works.clone(), 1.5),
            single_phase_job(1, SimTime::ZERO, works, 1.5),
        ]);
        let cfg = small_cfg(23);
        let out = run(&trace, &Policy::Fair, &cfg);
        let d0 = dur(&out, 0) as f64;
        let d1 = dur(&out, 1) as f64;
        assert!((d0 / d1 - 1.0).abs() < 0.35, "unfair: {d0} vs {d1}");
    }

    #[test]
    fn fifo_strictly_prefers_earlier_jobs() {
        use hopper_workload::single_phase_job;
        // Big job arrives first and hogs the cluster; FIFO must finish it
        // no later than the later small job would allow under SRPT.
        let trace = Trace::new(vec![
            single_phase_job(
                0,
                SimTime::ZERO,
                vec![SimTime::from_millis(20_000); 200],
                1.5,
            ),
            single_phase_job(
                1,
                SimTime::from_millis(1),
                vec![SimTime::from_millis(20_000); 4],
                1.5,
            ),
        ]);
        let cfg = small_cfg(29);
        let fifo = run(&trace, &Policy::Fifo, &cfg);
        let srpt = run(&trace, &Policy::Srpt, &cfg);
        // Under SRPT the small job preempts the queue and finishes earlier
        // than under FIFO.
        assert!(dur(&srpt, 1) <= dur(&fifo, 1));
    }

    #[test]
    fn empty_trace_runs() {
        let out = run(&Trace::default(), &Policy::Srpt, &small_cfg(1));
        assert!(out.jobs.is_empty());
        assert_eq!(out.stats.events, 0);
    }

    #[test]
    fn epsilon_fairness_bounds_slowdowns() {
        // Versus a perfectly fair Hopper (ε = 0), ε = 0.1 should slow only
        // a small fraction of jobs (Figure 10b: ≤ ~4%); we allow slack for
        // the small sample.
        let trace = small_trace(31, 60, 0.7, 100);
        let cfg = small_cfg(31);
        let fair = run(
            &trace,
            &Policy::Hopper(HopperConfig {
                alloc: hopper_core::AllocConfig {
                    fairness_eps: 0.0,
                    ..Default::default()
                },
                ..Default::default()
            }),
            &cfg,
        );
        let eps10 = run(&trace, &Policy::Hopper(HopperConfig::default()), &cfg);
        let cdf = hopper_metrics::GainCdf::between(&fair.jobs, &eps10.jobs);
        // Divergent event interleavings make small per-job deltas noisy;
        // the meaningful claim is that *severe* slowdowns stay rare and
        // the average does not regress.
        let severely_slowed =
            cdf.gains.iter().filter(|&&g| g < -30.0).count() as f64 / cdf.gains.len() as f64;
        assert!(
            severely_slowed < 0.25,
            "too many severely slowed jobs: {severely_slowed}"
        );
        assert!(
            eps10.mean_duration_ms() < fair.mean_duration_ms() * 1.15,
            "ε=10% should not regress the mean materially"
        );
    }
}
