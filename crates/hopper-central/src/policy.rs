//! Centralized scheduling policies.
//!
//! The baselines mirror §3 and §7.4 of the paper:
//!
//! - [`Policy::Fifo`] — jobs served in arrival order;
//! - [`Policy::Fair`] — equal instantaneous shares (the "perfectly fair"
//!   reference of Figure 10);
//! - [`Policy::Srpt`] — fewest-remaining-tasks first, the paper's
//!   aggressive centralized baseline ("centralized SRPT + LATE");
//! - [`Policy::BudgetedSrpt`] — the §3 "budgeted speculation" strawman: a
//!   fixed pool of slots is reserved exclusively for speculative copies;
//! - [`Policy::Hopper`] — the paper's contribution: allocation by virtual
//!   sizes with the two-regime rule, slot-holding for anticipated
//!   speculation, ε-fairness, DAG weighting, and the k% locality
//!   relaxation.
//!
//! All policies run *best-effort speculation* (§3): a job uses a granted
//! slot for a pending original first and only then for a speculative copy
//! — except Hopper, whose virtual-size allocation is precisely what makes
//! room for prompt speculation, and BudgetedSrpt, whose reserved pool only
//! accepts speculative copies.

use hopper_core::AllocConfig;

/// Configuration of the centralized Hopper policy.
#[derive(Debug, Clone)]
pub struct HopperConfig {
    /// Allocation knobs (fairness ε, useful-slot cap).
    pub alloc: AllocConfig,
    /// Locality relaxation `k` in percent (§4.4): when the highest-priority
    /// job would launch non-locally, any of the smallest `k%` of jobs with
    /// a data-local task may take the slot instead. 0 disables.
    pub locality_relax_pct: f64,
    /// Use the online Pareto-MLE β estimate instead of per-job trace β.
    pub learn_beta: bool,
    /// Use the recurring-job α prediction instead of ground-truth
    /// intermediate data sizes.
    pub learn_alpha: bool,
    /// Apply the √α DAG weighting at all (ablation knob; §4.2).
    pub use_alpha: bool,
    /// Bounded-staleness reallocation threshold. `0.0` (the default) is
    /// the exact eager schedule: every demand change reallocates before
    /// the next dispatch. A positive value keeps the previous allocation
    /// while the approximate total virtual size stays within
    /// `realloc_drift` (relative) of its value at the last reallocation;
    /// arrivals and removals always force a fresh allocation, and
    /// same-instant events batch into one allocation pass. Dodoor-style
    /// stale load views: cheaper decisions, slightly stale targets.
    pub realloc_drift: f64,
}

impl Default for HopperConfig {
    fn default() -> Self {
        HopperConfig {
            alloc: AllocConfig::default(),
            locality_relax_pct: 3.0,
            learn_beta: true,
            learn_alpha: true,
            use_alpha: true,
            realloc_drift: 0.0,
        }
    }
}

impl HopperConfig {
    /// The paper's pure-guidelines configuration (no fairness floor),
    /// used by the §3 motivating example.
    pub fn pure() -> Self {
        HopperConfig {
            alloc: AllocConfig::no_fairness(),
            locality_relax_pct: 0.0,
            learn_beta: false,
            learn_alpha: false,
            use_alpha: true,
            realloc_drift: 0.0,
        }
    }
}

/// A centralized scheduling policy.
#[derive(Debug, Clone)]
pub enum Policy {
    /// Arrival order.
    Fifo,
    /// Equal instantaneous sharing.
    Fair,
    /// Shortest Remaining Processing Time (by remaining task count).
    Srpt,
    /// SRPT plus a fixed reserved pool for speculative copies (§3
    /// strawman). `budget_fraction` of total slots is speculation-only.
    BudgetedSrpt {
        /// Fraction of cluster slots reserved for speculation.
        budget_fraction: f64,
    },
    /// Speculation-aware scheduling (the paper's contribution).
    Hopper(HopperConfig),
}

impl Policy {
    /// Display name for experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::Fifo => "FIFO",
            Policy::Fair => "Fair",
            Policy::Srpt => "SRPT",
            Policy::BudgetedSrpt { .. } => "Budgeted-SRPT",
            Policy::Hopper(_) => "Hopper",
        }
    }

    /// Whether this policy reserves ("holds") allocated-but-idle slots for
    /// anticipated speculation.
    pub fn holds_slots(&self) -> bool {
        matches!(self, Policy::Hopper(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_holding() {
        assert_eq!(Policy::Fifo.name(), "FIFO");
        assert_eq!(Policy::Srpt.name(), "SRPT");
        assert_eq!(
            Policy::BudgetedSrpt {
                budget_fraction: 0.3
            }
            .name(),
            "Budgeted-SRPT"
        );
        assert!(Policy::Hopper(HopperConfig::default()).holds_slots());
        assert!(!Policy::Srpt.holds_slots());
    }

    #[test]
    fn pure_config_disables_fairness_and_learning() {
        let c = HopperConfig::pure();
        assert_eq!(c.alloc.fairness_eps, 1.0);
        assert!(!c.learn_beta && !c.learn_alpha);
        assert_eq!(c.locality_relax_pct, 0.0);
    }
}
