//! Centralized scheduling simulator for the Hopper reproduction.
//!
//! Implements the paper's centralized prototypes (§6.2) and baselines
//! (§3, §7.4) over the shared cluster substrate: FIFO, Fair, SRPT,
//! budgeted-speculation SRPT, and centralized Hopper (virtual-size
//! allocation with slot-holding, ε-fairness, DAG α-weighting, online β/α
//! learning, and the k% locality relaxation).
//!
//! The entry point is [`run`]; see [`scenario`] for canned setups,
//! including the §3 motivating example that Figures 1–2 and Table 1 are
//! built on.

pub mod driver;
pub mod policy;
pub mod scenario;

pub use driver::{run, run_source, run_stream, RunOutput, RunStats, SimConfig};
pub use policy::{HopperConfig, Policy};
