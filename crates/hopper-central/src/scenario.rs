//! Canned scenarios from the paper, shared by tests, benches, and examples.

use hopper_cluster::ClusterConfig;
use hopper_sim::SimTime;
use hopper_spec::Speculator;
use hopper_workload::{single_phase_job, Trace};

use crate::driver::SimConfig;

/// The §3 motivating example (Table 1): two jobs on a 7-slot cluster.
///
/// Job A has 4 tasks with original durations 10/10/10/30 s and speculative
/// duration 10 s; job B has 5 tasks with originals 20/20/20/40/10 s and
/// speculative 10 s. Stragglers are detectable after a copy has run 2 s.
/// β is set to 1.6 so that `2/β = 1.25` gives Hopper's virtual sizes
/// V_A = 5 and V_B = 6.25 — the allocation drawn in Figure 2.
pub fn motivating_trace() -> (Trace, Vec<Vec<(u64, u64)>>) {
    const S: u64 = 1000; // the paper's "time units" are seconds here
    let a: Vec<(u64, u64)> = vec![
        (10 * S, 10 * S),
        (10 * S, 10 * S),
        (10 * S, 10 * S),
        (30 * S, 10 * S),
    ];
    let b: Vec<(u64, u64)> = vec![
        (20 * S, 10 * S),
        (20 * S, 10 * S),
        (20 * S, 10 * S),
        (40 * S, 10 * S),
        (10 * S, 10 * S),
    ];
    let jobs = vec![
        single_phase_job(
            0,
            SimTime::ZERO,
            a.iter().map(|&(o, _)| SimTime::from_millis(o)).collect(),
            1.6,
        ),
        single_phase_job(
            1,
            SimTime::ZERO,
            b.iter().map(|&(o, _)| SimTime::from_millis(o)).collect(),
            1.6,
        ),
    ];
    (Trace::new(jobs), vec![a, b])
}

/// Simulation config for the motivating example: 7 machines × 1 slot,
/// the simple `t_rem > t_new` rule with 2 s detection, 1 s scan period.
pub fn motivating_sim_config() -> SimConfig {
    let (_, scripted) = motivating_trace();
    SimConfig {
        cluster: ClusterConfig {
            machines: 7,
            slots_per_machine: 1,
            dfs_replicas: 0,
            handoff_ms: 0, // the paper's example has no container set-up cost
            ..Default::default()
        },
        speculator: Speculator::SimpleThreshold {
            detect_after: SimTime::from_millis(2_000),
        },
        scan_interval: SimTime::from_millis(1_000),
        seed: 42,
        max_events: 10_000,
        scripted: Some(scripted),
        dynamics: hopper_cluster::DynamicsConfig::off(),
        telemetry_window_ms: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_matches_table_1() {
        let (trace, scripted) = motivating_trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.jobs[0].num_tasks(), 4);
        assert_eq!(trace.jobs[1].num_tasks(), 5);
        assert_eq!(scripted[0][3], (30_000, 10_000));
        assert_eq!(scripted[1][3], (40_000, 10_000));
        // All speculative copies take 10 s (Table 1's t_new row).
        for job in &scripted {
            for &(_, tnew) in job {
                assert_eq!(tnew, 10_000);
            }
        }
    }

    #[test]
    fn config_is_seven_singleslot_machines() {
        let cfg = motivating_sim_config();
        assert_eq!(cfg.cluster.total_slots(), 7);
        assert!(cfg.scripted.is_some());
    }
}
