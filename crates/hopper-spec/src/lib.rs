//! Straggler-mitigation (speculation) policies.
//!
//! The paper evaluates Hopper paired with three published speculation
//! algorithms (§7.2, Figure 9) and stresses that its gains come from
//! *coordinating* scheduling with speculation, not from improving the
//! algorithms themselves. This crate implements the decision rules of all
//! three, plus the simple threshold rule of the §3 motivating example:
//!
//! - [`Speculator::Late`] — LATE (Zaharia et al., OSDI '08): speculate the
//!   task with the Longest Approximate Time to End, among tasks whose
//!   progress rate falls below a slow-task percentile, subject to a cap on
//!   concurrent speculative copies.
//! - [`Speculator::Mantri`] — Mantri (Ananthanarayanan et al., OSDI '10):
//!   resource-aware restarts — clone only when the remaining time is large
//!   against *two* new-copy durations (`t_rem > 2·t_new`), so a copy saves
//!   both time and resources.
//! - [`Speculator::Grass`] — GRASS (NSDI '14): adaptively switches between
//!   resource-aware (Mantri-like) speculation early in a job and greedy
//!   (`t_rem > t_new`) speculation near the end, where trimming the last
//!   stragglers dominates completion time.
//! - [`Speculator::SimpleThreshold`] — the §3 example rule: after a copy
//!   has run `detect_after`, speculate iff `t_rem > t_new`.
//! - [`Speculator::None`] — never speculates (pure-scheduling baselines).
//!
//! Policies are *advisory*: they return a prioritized candidate list; the
//! job scheduler decides whether slots exist to act on it. That split is
//! exactly the paper's architecture (speculation proposes, scheduling
//! disposes).

use hopper_cluster::{CopyObservation, JobRun, TaskRef};
use hopper_sim::SimTime;

/// Shared knobs for the speculation policies.
#[derive(Debug, Clone)]
pub struct SpecConfig {
    /// Minimum elapsed time before a copy's progress is judged (LATE's
    /// warm-up; the §3 example uses 2 time units).
    pub min_elapsed: SimTime,
    /// Maximum concurrent copies per task (original + speculative).
    pub max_copies_per_task: usize,
    /// LATE's slow-task threshold: a task is "slow" if its best running
    /// copy's progress rate is below this percentile of the job's running
    /// copies' rates.
    pub slow_percentile: f64,
    /// Cap on concurrently running speculative copies, as a fraction of
    /// the job's total tasks (LATE's speculativeCap).
    pub spec_cap_fraction: f64,
    /// GRASS: switch from resource-aware to greedy speculation when the
    /// remaining fraction of job tasks drops below this value.
    pub grass_switch_fraction: f64,
}

impl Default for SpecConfig {
    fn default() -> Self {
        SpecConfig {
            min_elapsed: SimTime::from_millis(500),
            max_copies_per_task: 2,
            slow_percentile: 0.25,
            spec_cap_fraction: 0.15,
            grass_switch_fraction: 0.2,
        }
    }
}

/// A task the policy wants to speculate, with its urgency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// The straggling task.
    pub task: TaskRef,
    /// Estimated remaining time of its best current copy (priority:
    /// longest first).
    pub est_remaining: SimTime,
}

/// A speculation policy instance.
#[derive(Debug, Clone)]
pub enum Speculator {
    /// LATE: slow-percentile gate + longest-time-to-end priority.
    Late(SpecConfig),
    /// Mantri: resource-aware `t_rem > 2·t_new`.
    Mantri(SpecConfig),
    /// GRASS: Mantri-like early, LATE-greedy near job completion.
    Grass(SpecConfig),
    /// Fixed-threshold rule of the §3 example (`detect_after` warm-up,
    /// speculate iff `t_rem > t_new`).
    SimpleThreshold {
        /// Warm-up before judging a copy.
        detect_after: SimTime,
    },
    /// Never speculate.
    None,
}

impl Speculator {
    /// Human-readable policy name (appears in experiment tables).
    pub fn name(&self) -> &'static str {
        match self {
            Speculator::Late(_) => "LATE",
            Speculator::Mantri(_) => "Mantri",
            Speculator::Grass(_) => "GRASS",
            Speculator::SimpleThreshold { .. } => "SimpleThreshold",
            Speculator::None => "None",
        }
    }

    /// Prioritized speculation candidates for `job` at `now` (best first).
    ///
    /// A task qualifies only if it has fewer running copies than the
    /// per-task cap and its estimated benefit satisfies the policy's rule;
    /// the returned order is descending estimated remaining time.
    pub fn candidates(&self, job: &JobRun, now: SimTime) -> Vec<Candidate> {
        match self {
            Speculator::None => Vec::new(),
            Speculator::SimpleThreshold { detect_after } => {
                let mut out = base_candidates(job, now, *detect_after, 2, |rem, new| rem > new);
                sort_desc(&mut out);
                out
            }
            Speculator::Mantri(cfg) => {
                let mut out = base_candidates(
                    job,
                    now,
                    cfg.min_elapsed,
                    cfg.max_copies_per_task,
                    |rem, new| rem.as_millis() > 2 * new.as_millis(),
                );
                sort_desc(&mut out);
                cap(out, job, cfg)
            }
            Speculator::Grass(cfg) => {
                let total = job.spec.num_tasks().max(1);
                let remaining_frac = job.total_remaining() as f64 / total as f64;
                let greedy = remaining_frac <= cfg.grass_switch_fraction;
                let mut out = base_candidates(
                    job,
                    now,
                    cfg.min_elapsed,
                    cfg.max_copies_per_task,
                    |rem, new| {
                        if greedy {
                            rem > new
                        } else {
                            rem.as_millis() > 2 * new.as_millis()
                        }
                    },
                );
                sort_desc(&mut out);
                cap(out, job, cfg)
            }
            Speculator::Late(cfg) => {
                let running = job.observe_running(now);
                // Progress rates (1/est-total-duration) of every running
                // original copy, for the slow-task percentile.
                let mut rates: Vec<f64> = running
                    .iter()
                    .flat_map(|(_, obs)| obs.iter())
                    .filter(|o| !o.speculative && o.elapsed >= cfg.min_elapsed)
                    .map(rate_of)
                    .collect();
                rates.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                let slow_threshold = if rates.len() >= 4 {
                    Some(
                        rates[((rates.len() as f64 * cfg.slow_percentile) as usize)
                            .min(rates.len() - 1)],
                    )
                } else {
                    Option::None // too few samples: rely on the benefit test
                };

                let mut out = Vec::new();
                for (task, obs) in &running {
                    if obs.len() >= cfg.max_copies_per_task {
                        continue;
                    }
                    let best = best_observation(obs);
                    if best.elapsed < cfg.min_elapsed {
                        continue;
                    }
                    if let Some(thr) = slow_threshold {
                        // Strictly-below keeps ties (uniform durations) out.
                        if rate_of(best) >= thr * (1.0 + 1e-12) {
                            continue;
                        }
                    }
                    let t_new = job.estimated_new_copy_duration(*task);
                    if best.est_remaining > t_new {
                        out.push(Candidate {
                            task: *task,
                            est_remaining: best.est_remaining,
                        });
                    }
                }
                sort_desc(&mut out);
                cap(out, job, cfg)
            }
        }
    }

    /// Convenience: the single best candidate, if any.
    pub fn best_candidate(&self, job: &JobRun, now: SimTime) -> Option<Candidate> {
        self.candidates(job, now).into_iter().next()
    }
}

/// Progress rate of a copy observation (fraction per ms).
fn rate_of(o: &CopyObservation) -> f64 {
    let total = o.elapsed.as_millis() + o.est_remaining.as_millis();
    if total == 0 {
        f64::INFINITY
    } else {
        1.0 / total as f64
    }
}

/// The copy that will finish soonest (the task's best hope).
fn best_observation(obs: &[CopyObservation]) -> &CopyObservation {
    obs.iter()
        .min_by_key(|o| o.est_remaining)
        .expect("observe_running never yields empty copy lists")
}

/// Candidates satisfying `benefit(t_rem, t_new)` after `min_elapsed`.
fn base_candidates(
    job: &JobRun,
    now: SimTime,
    min_elapsed: SimTime,
    max_copies: usize,
    benefit: impl Fn(SimTime, SimTime) -> bool,
) -> Vec<Candidate> {
    let mut out = Vec::new();
    for (task, obs) in job.observe_running(now) {
        if obs.len() >= max_copies {
            continue;
        }
        let best = best_observation(&obs);
        if best.elapsed < min_elapsed {
            continue;
        }
        let t_new = job.estimated_new_copy_duration(task);
        if benefit(best.est_remaining, t_new) {
            out.push(Candidate {
                task,
                est_remaining: best.est_remaining,
            });
        }
    }
    out
}

/// Sort candidates by descending estimated remaining time (ties by task id
/// for determinism).
fn sort_desc(out: &mut [Candidate]) {
    out.sort_by(|a, b| {
        b.est_remaining
            .cmp(&a.est_remaining)
            .then(a.task.cmp(&b.task))
    });
}

/// Apply the concurrent-speculation cap: at most
/// `ceil(spec_cap_fraction × job tasks)` speculative copies in flight.
fn cap(out: Vec<Candidate>, job: &JobRun, cfg: &SpecConfig) -> Vec<Candidate> {
    let cap = ((job.spec.num_tasks() as f64 * cfg.spec_cap_fraction).ceil() as usize).max(1);
    let in_flight: usize = job
        .phases()
        .iter()
        .flat_map(|p| &p.tasks)
        .flat_map(|t| &t.copies)
        .filter(|c| c.speculative && c.status == hopper_cluster::CopyStatus::Running)
        .count();
    let budget = cap.saturating_sub(in_flight);
    out.into_iter().take(budget).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopper_cluster::{ClusterConfig, MachineId};
    use hopper_sim::rng_from_seed;
    use hopper_workload::single_phase_job;

    fn cluster_cfg() -> ClusterConfig {
        ClusterConfig {
            machines: 20,
            slots_per_machine: 4,
            ..Default::default()
        }
    }

    /// Job with scripted tasks: durations (orig, new) per task.
    fn scripted(tasks: &[(u64, u64)]) -> JobRun {
        JobRun::scripted(0, SimTime::ZERO, tasks)
    }

    /// Launch originals for every task at t=0 on distinct machines.
    fn launch_all(job: &mut JobRun) {
        let cfg = cluster_cfg();
        let mut rng = rng_from_seed(1);
        for ti in 0..job.phases()[0].tasks.len() {
            job.launch_copy(
                TaskRef::new(0, ti),
                MachineId(ti % cfg.machines),
                false,
                SimTime::ZERO,
                SimTime::ZERO,
                &cfg,
                &mut rng,
            );
        }
    }

    #[test]
    fn none_policy_never_speculates() {
        let mut job = scripted(&[(10_000, 1_000); 4]);
        launch_all(&mut job);
        assert!(Speculator::None
            .candidates(&job, SimTime::from_millis(9_000))
            .is_empty());
    }

    #[test]
    fn simple_threshold_matches_motivating_example() {
        // Job A of §3: tasks (10,10), (10,10), (10,10), (30,10) — time
        // units are seconds there, ms here. At t=2s, A4 has
        // t_rem = 28 > t_new = 10 → candidate; A1–A3 have t_rem = 8 < 10.
        let mut job = scripted(&[
            (10_000, 10_000),
            (10_000, 10_000),
            (10_000, 10_000),
            (30_000, 10_000),
        ]);
        launch_all(&mut job);
        let pol = Speculator::SimpleThreshold {
            detect_after: SimTime::from_millis(2_000),
        };
        // Before the detection delay: nothing.
        assert!(pol.candidates(&job, SimTime::from_millis(1_000)).is_empty());
        let cands = pol.candidates(&job, SimTime::from_millis(2_000));
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].task, TaskRef::new(0, 3));
        assert_eq!(cands[0].est_remaining, SimTime::from_millis(28_000));
    }

    #[test]
    fn mantri_requires_double_benefit() {
        // t_new = 10s. At t = 10s: task 0 has t_rem 15s (< 2×10 → no),
        // task 1 has 25s (yes), task 2 already finished.
        let mut job = scripted(&[(25_000, 10_000), (35_000, 10_000), (10_000, 10_000)]);
        launch_all(&mut job);
        let pol = Speculator::Mantri(SpecConfig::default());
        let cands = pol.candidates(&job, SimTime::from_millis(10_000));
        assert_eq!(cands.len(), 1, "{cands:?}");
        assert_eq!(cands[0].task, TaskRef::new(0, 1));
    }

    #[test]
    fn grass_switches_to_greedy_near_the_end() {
        let cfg = SpecConfig {
            grass_switch_fraction: 0.5,
            ..Default::default()
        };
        // 2 tasks: both unfinished → remaining fraction 1.0 > 0.5 →
        // resource-aware mode → t_rem 15s < 2×10s: no candidates.
        let mut job = scripted(&[(25_000, 10_000), (11_000, 10_000)]);
        launch_all(&mut job);
        let pol = Speculator::Grass(cfg);
        let t = SimTime::from_millis(10_000);
        assert!(pol.candidates(&job, t).is_empty());

        // Finish task 1 → remaining fraction 0.5 ≤ 0.5 → greedy mode →
        // task 0's t_rem 14s > 10s: candidate.
        let out = job.finish_copy(
            hopper_cluster::CopyRef::new(0, 1, 0),
            SimTime::from_millis(11_000),
        );
        assert!(out.is_some());
        let cands = pol.candidates(&job, SimTime::from_millis(11_000));
        assert_eq!(cands.len(), 1, "{cands:?}");
        assert_eq!(cands[0].task, TaskRef::new(0, 0));
    }

    #[test]
    fn late_gates_on_slow_percentile_and_orders_by_time_left() {
        // 8 tasks of 10s and two stragglers (60s, 40s). At t=5s the
        // stragglers' rates are far below the 25th percentile.
        let mut tasks = vec![(10_000u64, 10_000u64); 8];
        tasks.push((60_000, 10_000));
        tasks.push((40_000, 10_000));
        let mut job = scripted(&tasks);
        launch_all(&mut job);
        let pol = Speculator::Late(SpecConfig {
            min_elapsed: SimTime::from_millis(1_000),
            ..Default::default()
        });
        let cands = pol.candidates(&job, SimTime::from_millis(5_000));
        assert_eq!(cands.len(), 2, "{cands:?}");
        // Longest time-to-end first.
        assert_eq!(cands[0].task, TaskRef::new(0, 8));
        assert_eq!(cands[1].task, TaskRef::new(0, 9));
    }

    #[test]
    fn late_respects_spec_cap() {
        let mut tasks = vec![(10_000u64, 10_000u64); 10];
        tasks.extend([(90_000, 10_000); 10]);
        let mut job = scripted(&tasks);
        launch_all(&mut job);
        let pol = Speculator::Late(SpecConfig {
            spec_cap_fraction: 0.1, // cap = ceil(20×0.1) = 2
            min_elapsed: SimTime::from_millis(1_000),
            ..Default::default()
        });
        let cands = pol.candidates(&job, SimTime::from_millis(5_000));
        assert_eq!(cands.len(), 2);
    }

    #[test]
    fn max_copies_per_task_blocks_respeculation() {
        let mut job = scripted(&[
            (60_000, 10_000),
            (10_000, 10_000),
            (10_000, 10_000),
            (10_000, 10_000),
            (10_000, 10_000),
        ]);
        launch_all(&mut job);
        let mut rng = rng_from_seed(3);
        let ccfg = cluster_cfg();
        // Speculate task 0 once.
        job.launch_copy(
            TaskRef::new(0, 0),
            MachineId(11),
            true,
            SimTime::from_millis(3_000),
            SimTime::ZERO,
            &ccfg,
            &mut rng,
        );
        let pol = Speculator::SimpleThreshold {
            detect_after: SimTime::from_millis(1_000),
        };
        let cands = pol.candidates(&job, SimTime::from_millis(5_000));
        assert!(
            cands.iter().all(|c| c.task != TaskRef::new(0, 0)),
            "task with 2 running copies must not be re-speculated: {cands:?}"
        );
    }

    #[test]
    fn warmup_prevents_judging_fresh_copies() {
        let mut job = scripted(&[(60_000, 1_000); 3]);
        launch_all(&mut job);
        for pol in [
            Speculator::Late(SpecConfig::default()),
            Speculator::Mantri(SpecConfig::default()),
            Speculator::Grass(SpecConfig::default()),
        ] {
            assert!(
                pol.candidates(&job, SimTime::from_millis(100)).is_empty(),
                "{} speculated before warm-up",
                pol.name()
            );
        }
    }

    #[test]
    fn best_candidate_is_first() {
        let mut job = scripted(&[
            (30_000, 10_000),
            (50_000, 10_000),
            (10_000, 10_000),
            (10_000, 10_000),
        ]);
        launch_all(&mut job);
        let pol = Speculator::SimpleThreshold {
            detect_after: SimTime::from_millis(1_000),
        };
        let best = pol
            .best_candidate(&job, SimTime::from_millis(2_000))
            .unwrap();
        assert_eq!(best.task, TaskRef::new(0, 1));
    }

    #[test]
    fn names() {
        assert_eq!(Speculator::Late(SpecConfig::default()).name(), "LATE");
        assert_eq!(Speculator::Mantri(SpecConfig::default()).name(), "Mantri");
        assert_eq!(Speculator::Grass(SpecConfig::default()).name(), "GRASS");
        assert_eq!(Speculator::None.name(), "None");
    }

    #[test]
    fn stochastic_job_straggler_is_eventually_flagged() {
        // With real Pareto durations, run long enough and the slowest task
        // should become a LATE candidate.
        let spec = single_phase_job(0, SimTime::ZERO, vec![SimTime::from_millis(1_000); 50], 1.3);
        let ccfg = cluster_cfg();
        let mut job = JobRun::new(spec, &ccfg, &mut rng_from_seed(11));
        let mut rng = rng_from_seed(16);
        for ti in 0..50 {
            job.launch_copy(
                TaskRef::new(0, ti),
                MachineId(ti % ccfg.machines),
                false,
                SimTime::ZERO,
                SimTime::ZERO,
                &ccfg,
                &mut rng,
            );
        }
        let pol = Speculator::Late(SpecConfig::default());
        // Observe at 3× the mean duration: the heavy tail guarantees some
        // task is still running way behind (with this seed).
        let cands = pol.candidates(&job, SimTime::from_millis(3_000));
        assert!(!cands.is_empty(), "no stragglers flagged");
    }
}
