//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset of the criterion 0.5 API the workspace's bench
//! targets use — [`Criterion`], [`BenchmarkGroup`], [`Bencher`],
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — backed by a simple wall-clock timer:
//! warm up briefly, then run batches until ~`measurement_time` elapses and
//! report the mean per-iteration time. No statistics, plots, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque benchmark label (mirror of `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `name/parameter` id.
    pub fn new<N: Display, P: Display>(name: N, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter (group name supplies the rest).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher<'a> {
    budget: Duration,
    /// Mean ns/iter of the measured routine, written back for reporting.
    result_ns: &'a mut f64,
    iters: &'a mut u64,
}

impl Bencher<'_> {
    /// Time `routine` repeatedly and record its mean per-iteration cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until ~10% of the budget or at least once.
        let warm_until = Instant::now() + self.budget / 10;
        let mut batch = 1u64;
        loop {
            black_box(routine());
            if Instant::now() >= warm_until {
                break;
            }
            batch += 1;
            if batch > 1_000_000 {
                break;
            }
        }
        // Measure in growing batches until the budget is spent.
        let mut total_iters = 0u64;
        let mut total_time = Duration::ZERO;
        let mut batch = 1u64;
        while total_time < self.budget {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total_time += start.elapsed();
            total_iters += batch;
            batch = batch.saturating_mul(2).min(1 << 20);
        }
        *self.result_ns = total_time.as_nanos() as f64 / total_iters as f64;
        *self.iters = total_iters;
    }
}

/// Top-level harness handle (mirror of `criterion::Criterion`).
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // Far shorter than upstream's 5 s: these benches are smoke
            // timers, not statistics. Override with HOPPER_CRIT_MS.
            measurement_time: Duration::from_millis(
                std::env::var("HOPPER_CRIT_MS")
                    .ok()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(300),
            ),
        }
    }
}

impl Criterion {
    /// Set the per-benchmark measurement budget.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Upstream parses CLI args here; the shim accepts and ignores them.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.measurement_time, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            measurement_time: self.measurement_time,
            _parent: self,
        }
    }

    /// Upstream prints the summary here; the shim prints per-bench lines
    /// as it goes, so this is a no-op kept for API compatibility.
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the measurement budget for benches in this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Accepted and ignored (shim does not do sample statistics).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<I: Into<BenchmarkId>, F>(&mut self, id: I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.id),
            self.measurement_time,
            f,
        );
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.measurement_time, |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, budget: Duration, mut f: F) {
    let mut ns = f64::NAN;
    let mut iters = 0u64;
    {
        let mut b = Bencher {
            budget,
            result_ns: &mut ns,
            iters: &mut iters,
        };
        f(&mut b);
    }
    if iters == 0 {
        println!("bench {label:<40} (no iterations recorded)");
    } else {
        println!(
            "bench {label:<40} {:>12} ns/iter  ({iters} iters)",
            human(ns)
        );
    }
}

fn human(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2e}", ns)
    } else if ns >= 100.0 {
        format!("{ns:.0}")
    } else {
        format!("{ns:.2}")
    }
}

/// Identity function opaque to the optimizer (re-export surface parity
/// with `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundle bench functions into a runnable group (mirror of upstream).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` from bench groups (mirror of upstream).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_time() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(5),
        };
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_with_input() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(5),
        };
        let mut g = c.benchmark_group("g");
        let data = vec![1u64, 2, 3];
        g.bench_with_input(BenchmarkId::from_parameter(3), &data, |b, d| {
            b.iter(|| d.iter().sum::<u64>());
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("n", 5).id, "n/5");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
