//! Event-driven decentralized (Sparrow-style) scheduling simulator.
//!
//! Architecture per the paper's §5 / Figure 4: multiple autonomous
//! schedulers each own a subset of jobs; every scheduler pushes
//! *reservation requests* ("probes") for its tasks to randomly chosen
//! workers; a worker with a free slot runs a *late-binding* exchange —
//! it asks a chosen reservation's scheduler for a task, and the scheduler
//! answers with a concrete task (original or speculative) or a refusal.
//! Every message pays [`DecConfig::msg_latency`].
//!
//! Three policies share the machinery:
//!
//! - **Sparrow** (baseline): probe ratio 2, FCFS worker queues, and
//!   task-or-no-task responses (a no-task consumes the reservation);
//! - **Sparrow-SRPT** (the paper's aggressive baseline, §7.1): worker
//!   picks the queued job with the fewest remaining tasks, plus
//!   best-effort speculation;
//! - **Hopper**: worker picks by smallest *virtual size*, schedulers may
//!   *refuse* when a job is already at its desired speculation level
//!   (Pseudocode 2), refusals advertise the smallest unsatisfied job, and
//!   after `refusal_threshold` refusals the worker concludes the system is
//!   not slot-constrained and switches to Guideline 3 — a virtual-size-
//!   weighted random pick served with a non-refusable response
//!   (Pseudocode 3). Virtual-size updates are piggybacked on every
//!   scheduler→worker message (§5.3).

use std::collections::{HashMap, VecDeque};

use crate::audit::{Auditor, MsgKind};
use crate::faults::{FaultConfig, MsgFaults, SchedEv, SchedulerChain};
use hopper_cluster::{
    ClusterConfig, CopyRef, DynEvent, DynamicsConfig, JobRun, JobSlab, MachineDynamics, MachineId,
    Machines, TaskRef,
};
use hopper_core::protocol::{
    pick_fcfs, pick_srpt, scheduler_accepts, BackoffPolicy, FreeSlotEpisode, Reservation,
    ResponseKind, UnsatisfiedJob, WorkerAction,
};
use hopper_core::{virtual_size, BetaEstimator};
use hopper_metrics::{JobDigest, JobResult, RunReport, SeriesCollector, TelemetrySnapshot};
use hopper_sim::{EventQueue, SeedSequence, SimTime};
use hopper_spec::{Candidate, Speculator};
use hopper_workload::{ArrivalSource, Trace, TraceJob, TraceStream};
use rand::rngs::StdRng;
use rand::Rng;

/// Which decentralized scheduler to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecPolicy {
    /// Stock Sparrow: FCFS queues, batched power-of-two probes.
    Sparrow,
    /// Sparrow + SRPT worker queues + best-effort speculation (§7.1's
    /// aggressive baseline).
    SparrowSrpt,
    /// Decentralized Hopper (Pseudocodes 2 & 3).
    Hopper,
}

impl DecPolicy {
    /// Display name for experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            DecPolicy::Sparrow => "Sparrow",
            DecPolicy::SparrowSrpt => "Sparrow-SRPT",
            DecPolicy::Hopper => "Hopper(dec)",
        }
    }
}

/// Decentralized simulation configuration.
#[derive(Debug, Clone)]
pub struct DecConfig {
    /// Cluster shape. `handoff_ms` should be 0: Sparrow talks to
    /// long-lived executors shared across jobs (§6.1).
    pub cluster: ClusterConfig,
    /// Number of autonomous schedulers (10 in the paper's deployment, 50
    /// in its scaling simulations).
    pub num_schedulers: usize,
    /// Reservations per task (the probe ratio; 2 for Sparrow, 4 for
    /// Hopper, swept in Figures 5a and 11).
    pub probe_ratio: f64,
    /// One-way message latency between schedulers and workers.
    pub msg_latency: SimTime,
    /// Refusals before a worker concludes the system is not capacity
    /// constrained (Figure 5b; 2–3 suffice).
    pub refusal_threshold: usize,
    /// Straggler-scan period at each scheduler.
    pub scan_interval: SimTime,
    /// Speculation policy (shared by all jobs).
    pub speculator: Speculator,
    /// ε-fairness knob (§4.3): `Some(0.1)` guarantees every job at least
    /// `(1−ε)·S/N` slots via the unsatisfied-job channel; `None` disables.
    pub fairness_eps: Option<f64>,
    /// Root seed.
    pub seed: u64,
    /// Safety valve on total processed events.
    pub max_events: u64,
    /// Cluster-dynamics plane: machine speed heterogeneity, transient
    /// slowdowns, failures. The default ([`DynamicsConfig::off`]) is
    /// bit-identical to a dynamics-free build.
    pub dynamics: DynamicsConfig,
    /// Message-fault plane: RPC loss/jitter/duplication, scheduler
    /// crash/recover chains, and the timeout/lease hardening knobs. The
    /// default ([`FaultConfig::off`]) is bit-identical to a fault-free
    /// build.
    pub faults: FaultConfig,
    /// Execution shards for the conservative-PDES engine
    /// (`crates/hopper-decentral/src/shard.rs`). `0` (the default) runs
    /// the serial driver in this file; any value `>= 1` partitions
    /// schedulers and workers across that many shards and runs them on
    /// threads in lockstep conservative windows. Sharded results are
    /// bit-identical across *all* shard counts `>= 1` for a fixed
    /// config, but are a distinct (documented) equivalence family from
    /// the serial driver — see DESIGN.md, "Sharded execution".
    pub shards: usize,
    /// Telemetry window width (simulation ms). `0` (the default)
    /// disables the windowed time-series entirely; any value `> 0`
    /// records per-window series as a pure observer — simulation
    /// results are bit-identical either way (see DESIGN.md,
    /// "Telemetry plane").
    pub telemetry_window_ms: u64,
}

impl Default for DecConfig {
    fn default() -> Self {
        DecConfig {
            cluster: ClusterConfig {
                machines: 500,
                slots_per_machine: 2,
                handoff_ms: 0,
                ..Default::default()
            },
            num_schedulers: 10,
            probe_ratio: 4.0,
            msg_latency: SimTime::from_millis(1),
            refusal_threshold: 2,
            scan_interval: SimTime::from_millis(200),
            speculator: Speculator::Late(hopper_spec::SpecConfig {
                min_elapsed: SimTime::from_millis(300),
                ..Default::default()
            }),
            fairness_eps: Some(0.1),
            seed: 1,
            max_events: 500_000_000,
            dynamics: DynamicsConfig::off(),
            faults: FaultConfig::off(),
            shards: 0,
            telemetry_window_ms: 0,
        }
    }
}

/// Aggregate counters of one decentralized run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DecStats {
    /// Original copies launched.
    pub orig_launched: u64,
    /// Speculative copies launched.
    pub spec_launched: u64,
    /// Tasks won by a speculative copy.
    pub spec_won: u64,
    /// Reservation messages sent.
    pub reservations: u64,
    /// Worker→scheduler responses sent.
    pub responses: u64,
    /// Scheduler refusals sent.
    pub refusals: u64,
    /// Episodes that switched to Guideline 3 (refusal threshold reached).
    pub guideline3_switches: u64,
    /// Messages dropped by the fault plane (always 0 faults-off).
    pub msgs_lost: u64,
    /// Duplicate deliveries generated by the fault plane.
    pub msgs_duplicated: u64,
    /// Probe messages re-sent by watchdog retries and scheduler
    /// recoveries.
    pub msgs_retried: u64,
    /// Per-job watchdog timeouts that fired on a stalled job.
    pub timeouts_fired: u64,
    /// Promised slots reclaimed by the response lease after a lost or
    /// stale-dropped reply.
    pub orphan_reclaimed: u64,
    /// Scheduler crash incidents applied.
    pub sched_failovers: u64,
    /// Events processed.
    pub events: u64,
    /// Completion time of the last job.
    pub makespan: SimTime,
}

impl DecStats {
    /// Flatten into the driver-agnostic stats core shared with the
    /// centralized driver. `messages` sums the *protocol* messages —
    /// reservations, worker responses, and refusals (the counters the
    /// paper's overhead discussion is about). Kill notifications to
    /// losing sibling copies also cross the wire but are not counted
    /// anywhere in `DecStats`, so they are not included here.
    pub fn core(&self) -> hopper_metrics::CoreStats {
        hopper_metrics::CoreStats {
            orig_launched: self.orig_launched,
            spec_launched: self.spec_launched,
            spec_won: self.spec_won,
            events: self.events,
            messages: self.reservations + self.responses + self.refusals,
            makespan: self.makespan,
        }
    }
}

/// Result of a decentralized run.
#[derive(Debug, Clone)]
pub struct DecOutput {
    /// Per-job outcomes (sorted by job id). Empty for streaming runs
    /// ([`run_stream`]); their per-job statistics live in the report's
    /// digest.
    pub jobs: Vec<JobResult>,
    /// Aggregate counters.
    pub stats: DecStats,
    /// The unified run-output surface: driver-agnostic core counters,
    /// streaming JCT digest, live-jobs high-water mark (for sharded
    /// runs, the sum of per-scheduler slab high-waters — an upper
    /// bound on the serial driver's global high-water), and (when
    /// `telemetry_window_ms > 0`) the windowed time-series.
    pub report: RunReport,
    /// Sharded-engine counters (`None` for the serial driver). These
    /// are observability only — never part of the determinism contract
    /// beyond `ShardStats`'s own documented fields.
    pub shard: Option<crate::shard::ShardStats>,
}

impl DecOutput {
    /// Mean job duration in milliseconds (exact in both modes).
    pub fn mean_duration_ms(&self) -> f64 {
        if self.jobs.is_empty() {
            self.report.digest.mean_ms()
        } else {
            hopper_metrics::mean_duration(&self.jobs)
        }
    }
}

/// Run `trace` under decentralized `policy`, retaining per-job results.
pub fn run(trace: &Trace, policy: DecPolicy, cfg: &DecConfig) -> DecOutput {
    run_source(ArrivalSource::from_trace(trace), policy, cfg, true)
}

/// Run a lazy arrival stream with O(active jobs) job state: arrivals are
/// injected as simulation time advances, completed jobs retire their
/// task/copy state, and per-job results fold into the output's digest
/// (`DecOutput::jobs` is empty). Simulation decisions are bit-identical
/// to [`run`] on the materialized form of the same stream.
pub fn run_stream(stream: TraceStream, policy: DecPolicy, cfg: &DecConfig) -> DecOutput {
    run_source(ArrivalSource::from_stream(stream), policy, cfg, false)
}

/// Run any [`ArrivalSource`] under `policy` — the seam replayed CSV
/// traces come through (`ArrivalSource::from_shared`), and the common
/// generalization of [`run`] / [`run_stream`]: `retain_jobs` selects
/// between per-job results and the streaming retirement pipeline;
/// `cfg.shards >= 1` selects the sharded conservative-PDES engine
/// (which clones the source per shard).
pub fn run_source(
    source: ArrivalSource<'_>,
    policy: DecPolicy,
    cfg: &DecConfig,
    retain_jobs: bool,
) -> DecOutput {
    if cfg.shards >= 1 {
        return crate::shard::run_sharded(source, policy, cfg, retain_jobs);
    }
    Decentral::new(source, policy, cfg, retain_jobs).run()
}

#[derive(Debug, Clone)]
enum Ev {
    /// Reservation lands in a worker queue.
    Reservation { worker: usize, res: Reservation },
    /// Worker offers its free slot to `job`'s scheduler. `inc` is the
    /// worker's incarnation at offer time: a machine failure bumps it, so
    /// replies referencing a slot that died with the machine are
    /// recognizably stale (always 0 while dynamics are off). `ep` is the
    /// worker's episode epoch at offer time (dedup key for the reply: a
    /// duplicated or lease-superseded reply echoes a dead epoch). `sinc`
    /// is the owning scheduler's incarnation at offer time — a scheduler
    /// crash bumps it, so offers addressed to the pre-crash scheduler
    /// are recognizably stale (always 0 while scheduler faults are off).
    Response {
        worker: usize,
        job: usize,
        kind: ResponseKind,
        inc: u64,
        ep: u64,
        sinc: u64,
    },
    /// Scheduler assigns a task to the worker's promised slot (echoes the
    /// offer's incarnation and episode epoch).
    Assign {
        worker: usize,
        job: usize,
        task: TaskRef,
        speculative: bool,
        inc: u64,
        ep: u64,
    },
    /// Scheduler declines the offer (with optional unsatisfied-job info;
    /// echoes the offer's incarnation and episode epoch).
    Refusal {
        worker: usize,
        job: usize,
        unsatisfied: Option<UnsatisfiedJob>,
        inc: u64,
        ep: u64,
    },
    /// A copy finished on `worker`.
    Finish {
        job: usize,
        copy: CopyRef,
        worker: usize,
    },
    /// Kill notification reaches the worker running a lost sibling
    /// (stamped with the worker's incarnation at race-resolution time —
    /// the slot return is dropped if the machine failed in flight).
    /// `copy` identifies the doomed copy: with faults on it keys the
    /// pending-kill ledger, making duplicated kills idempotent and lost
    /// kills recoverable at the copy's natural finish.
    Kill {
        worker: usize,
        job: usize,
        copy: CopyRef,
        inc: u64,
    },
    /// Periodic straggler scan (all schedulers).
    Scan,
    /// Machine-dynamics incident (slowdown / failure / recovery). Only
    /// ever queued when `DecConfig::dynamics` is enabled.
    Dyn(DynEvent),
    /// Scheduler crash/recover incident. Only ever queued when the
    /// fault plane's scheduler chains are enabled.
    SchedDyn(SchedEv),
    /// Response lease: fires `rpc_timeout_ms` after a worker's offer; if
    /// the worker's RPC sequence has not moved since (no reply of any
    /// kind was processed), the promised slot is reclaimed. Only ever
    /// queued when faults are enabled.
    Lease { worker: usize, seq: u64 },
    /// Per-job watchdog: fires on a backoff schedule; a job with no
    /// launch/finish progress since the last check is reconciled against
    /// ground truth and re-probed. Only ever queued when faults are
    /// enabled.
    JobTimeout { job: usize },
}

/// Conservation-ledger kind of a scheduler↔worker RPC — the five
/// message kinds the fault plane applies to. `None` for local events:
/// finishes (the executing worker observes its own copy), scans, and
/// dynamics/timer events never cross the simulated network.
fn msg_kind(ev: &Ev) -> Option<MsgKind> {
    match ev {
        Ev::Reservation { .. } => Some(MsgKind::Reservation),
        Ev::Response { .. } => Some(MsgKind::Response),
        Ev::Assign { .. } => Some(MsgKind::Assign),
        Ev::Refusal { .. } => Some(MsgKind::Refusal),
        Ev::Kill { .. } => Some(MsgKind::Kill),
        Ev::Finish { .. }
        | Ev::Scan
        | Ev::Dyn(_)
        | Ev::SchedDyn(_)
        | Ev::Lease { .. }
        | Ev::JobTimeout { .. } => None,
    }
}

struct WorkerState {
    queue: Vec<Reservation>,
    /// Slots neither running a copy nor promised to an in-flight episode.
    free: usize,
    /// Active late-binding episode (at most one in flight per worker).
    episode: Option<FreeSlotEpisode>,
    /// Value of the driver's completed-job counter when this queue last
    /// purged finished jobs' reservations. While no further job has
    /// completed, the queue provably holds only live reservations and the
    /// per-touch O(queue) purge scan is skipped.
    purged_at: u64,
}

struct Decentral<'a> {
    policy: DecPolicy,
    cfg: &'a DecConfig,
    queue: EventQueue<Ev>,
    machines: Machines,
    workers: Vec<WorkerState>,
    /// Undelivered arrivals, merged with `queue` by the run loop (an
    /// arrival precedes any queued event at the same instant — the
    /// order the historical pre-loaded arrival events produced).
    arrivals: ArrivalSource<'a>,
    /// Live jobs' runtime state; completed jobs are retired (their
    /// task/copy state dropped, stats folded into accumulators).
    jobs: JobSlab,
    /// Total jobs of the run (`jobs` only holds the live ones).
    num_jobs: usize,
    /// Placement randomness for lazily constructed `JobRun`s; consumed
    /// in arrival (= id) order, exactly as the eager constructor did.
    placement_rng: StdRng,
    /// Whether per-job `JobResult`s are retained (false for streaming).
    retain_jobs: bool,
    done: Vec<bool>,
    /// Whether the job's arrival has been processed; jobs are invisible
    /// to the scan rescue path until then.
    arrived: Vec<bool>,
    /// Live job ids in ascending order (arrivals come in id order, so a
    /// push maintains it; completion removes by binary search). Scans
    /// and dynamics walk this instead of every job id ever issued —
    /// identical iteration to the old `0..n` loops with their
    /// done/arrived guards, but O(live), and structurally incapable of
    /// touching a retired job.
    live: Vec<usize>,
    active_count: usize,
    arrivals_pending: usize,
    /// Scheduler-side occupancy (running + in-flight assignments) per job.
    occupied: Vec<usize>,
    pending_orig: Vec<usize>,
    /// Originals with an assignment in flight (guards against two
    /// concurrent slot offers claiming the same task).
    claimed: Vec<std::collections::HashSet<TaskRef>>,
    /// Live (unconsumed) reservations per job; when a job still has
    /// launchable work but its probes were all consumed (e.g. by stale
    /// speculative assignments), the scheduler re-probes at the next scan.
    live_res: Vec<usize>,
    /// Speculation candidates per job, consumed front-first (deque — the
    /// old `Vec::remove(0)` shifted the whole list per pop).
    candidates: Vec<VecDeque<Candidate>>,
    /// job → owning scheduler (round-robin).
    owner: Vec<usize>,
    /// scheduler → its *live* jobs in ascending id order (round-robin
    /// partition; insert at arrival, remove at retirement). The refusal
    /// path walks this instead of every job — and, per the retirement
    /// invariant, can never advertise a retired job.
    sched_jobs: Vec<Vec<usize>>,
    /// Jobs completed so far (the epoch for worker-queue purges).
    done_count: u64,
    /// Per-scheduler β estimator (learned from its own jobs' completions).
    beta_est: Vec<BetaEstimator>,
    scan_armed: bool,
    /// Machine speed/availability state; `None` when dynamics are off.
    dynamics: Option<MachineDynamics>,
    /// Per-worker incarnation, bumped on machine failure. In-flight
    /// messages that reference a worker slot carry the incarnation they
    /// were stamped with; a mismatch on delivery means the slot died with
    /// the machine.
    dyn_inc: Vec<u64>,
    /// Per-message fault sampler; `None` when faults are off (in which
    /// case `send_msg` degenerates to the historical exactly-once push).
    faults: Option<MsgFaults>,
    /// Scheduler crash chains; `None` unless faults with a nonzero
    /// scheduler crash rate are enabled.
    sched_chain: Option<SchedulerChain>,
    /// Per-scheduler liveness (all true while scheduler faults are off).
    sched_up: Vec<bool>,
    /// Per-scheduler incarnation, bumped on crash — the scheduler-side
    /// mirror of `dyn_inc` (always 0 while scheduler faults are off).
    sched_inc: Vec<u64>,
    /// Per-worker episode epoch, bumped at every episode termination
    /// (assignment consumed, idle teardown, lease reclaim, machine
    /// failure). Replies echo the epoch of the offer they answer; a
    /// mismatch means the episode they belong to is already over —
    /// the dedup key that makes duplicated assigns/refusals no-ops.
    ep_epoch: Vec<u64>,
    /// Per-worker RPC sequence, bumped on every offer sent and every
    /// reply processed (and at episode teardown). A response lease
    /// snapshots it at send; if it has not moved when the lease fires,
    /// the reply was lost and the promised slot is reclaimed.
    rpc_seq: Vec<u64>,
    /// Watchdog pacing (from `faults.rpc_timeout_ms`/`rpc_retries`).
    backoff: BackoffPolicy,
    /// Per-job progress clock: bumped on every launch and finish. The
    /// watchdog compares it against `wd_seen` to detect stalls.
    wd_progress: Vec<u64>,
    wd_seen: Vec<u64>,
    wd_attempt: Vec<u32>,
    /// Kill messages in flight, keyed by the doomed copy and stamped
    /// with the worker incarnation at send. Maintained only when faults
    /// are enabled: a duplicate kill finds no entry (idempotent), and a
    /// lost kill's entry lets the copy's natural finish return the slot
    /// instead of leaking it.
    pending_kill: HashMap<(usize, CopyRef), u64>,
    /// Dev-profile conservation auditor (`None` in release/bench — the
    /// whole dev test suite re-proves the protocol invariants).
    audit: Option<Box<Auditor>>,
    rng: StdRng,
    results: Vec<JobResult>,
    stats: DecStats,
    /// Online duration statistics, folded at each retirement.
    digest: JobDigest,
    /// Event-type counters (diagnostics): arrive, reservation, response,
    /// assign, refusal, finish, kill, scan, dyn, sched-dyn, lease,
    /// job-timeout.
    ev_counts: [u64; 12],
    /// Windowed time-series observer (inert when
    /// `telemetry_window_ms == 0`). Never feeds back into the
    /// simulation — see DESIGN.md, "Telemetry plane".
    tele: SeriesCollector,
    /// Cumulative kill RPCs sent (telemetry only; deliberately not a
    /// `DecStats` field — goldens pin that struct's `Debug` output).
    tele_kills: u64,
}

impl<'a> Decentral<'a> {
    fn new(
        arrivals: ArrivalSource<'a>,
        policy: DecPolicy,
        cfg: &'a DecConfig,
        retain_jobs: bool,
    ) -> Self {
        let seq = SeedSequence::new(cfg.seed);
        let n = arrivals.total_jobs();
        let mut queue = EventQueue::new();
        let mut dynamics = cfg
            .dynamics
            .enabled()
            .then(|| MachineDynamics::new(cfg.dynamics.clone(), cfg.cluster.machines, &seq));
        if let Some(d) = dynamics.as_mut() {
            for (at, ev) in d.initial_incidents() {
                queue.push(at, Ev::Dyn(ev));
            }
        }
        // Faults-off nothing below constructs: no RNG child is drawn and
        // no event is queued, keeping runs bit-identical to a fault-free
        // build (the same contract the dynamics plane honors).
        let faults_on = cfg.faults.enabled();
        let mut sched_chain = (faults_on && cfg.faults.sched_fail_rate_per_hour > 0.0)
            .then(|| SchedulerChain::new(&cfg.faults, cfg.num_schedulers.max(1), &seq));
        if let Some(c) = sched_chain.as_mut() {
            for (at, ev) in c.initial_incidents() {
                queue.push(at, Ev::SchedDyn(ev));
            }
        }
        Decentral {
            policy,
            cfg,
            queue,
            machines: Machines::new(&cfg.cluster),
            workers: (0..cfg.cluster.machines)
                .map(|_| WorkerState {
                    queue: Vec::new(),
                    free: cfg.cluster.slots_per_machine,
                    episode: None,
                    purged_at: 0,
                })
                .collect(),
            arrivals,
            num_jobs: n,
            placement_rng: seq.child_rng(0xB10C),
            retain_jobs,
            done: vec![false; n],
            arrived: vec![false; n],
            live: Vec::new(),
            active_count: 0,
            arrivals_pending: n,
            occupied: vec![0; n],
            pending_orig: vec![0; n],
            claimed: vec![std::collections::HashSet::new(); n],
            live_res: vec![0; n],
            candidates: vec![VecDeque::new(); n],
            owner: (0..n).map(|j| j % cfg.num_schedulers.max(1)).collect(),
            sched_jobs: vec![Vec::new(); cfg.num_schedulers.max(1)],
            done_count: 0,
            beta_est: (0..cfg.num_schedulers.max(1))
                .map(|_| BetaEstimator::with_prior(1.5))
                .collect(),
            scan_armed: false,
            dynamics,
            dyn_inc: vec![0; cfg.cluster.machines],
            faults: faults_on.then(|| MsgFaults::new(cfg.faults, &seq)),
            sched_chain,
            sched_up: vec![true; cfg.num_schedulers.max(1)],
            sched_inc: vec![0; cfg.num_schedulers.max(1)],
            ep_epoch: vec![0; cfg.cluster.machines],
            rpc_seq: vec![0; cfg.cluster.machines],
            backoff: BackoffPolicy::new(cfg.faults.rpc_timeout_ms, cfg.faults.rpc_retries),
            wd_progress: vec![0; n],
            wd_seen: vec![0; n],
            wd_attempt: vec![0; n],
            pending_kill: HashMap::new(),
            audit: cfg!(debug_assertions).then(|| Auditor::new(cfg.cluster.machines)),
            rng: seq.child_rng(0xDEC),
            results: Vec::with_capacity(if retain_jobs { n } else { 0 }),
            stats: DecStats::default(),
            digest: JobDigest::new(),
            ev_counts: [0; 12],
            tele: SeriesCollector::new(cfg.telemetry_window_ms, cfg.cluster.total_slots() as u64),
            tele_kills: 0,
            jobs: JobSlab::new(n),
        }
    }

    /// Effective speed of worker `w`'s machine (1.0 when dynamics are off).
    fn machine_speed(&self, w: usize) -> f64 {
        self.dynamics
            .as_ref()
            .map_or(1.0, |d| d.speed(MachineId(w)))
    }

    /// Whether worker `w`'s machine is currently up.
    fn worker_up(&self, w: usize) -> bool {
        self.dynamics.as_ref().is_none_or(|d| d.is_up(MachineId(w)))
    }

    /// The scheduler's current view of a job's virtual size (Pseudocode 1
    /// inputs, computed locally from the scheduler's own state).
    fn vsize(&self, j: usize) -> f64 {
        let beta = {
            let est = &self.beta_est[self.owner[j]];
            if est.observations() >= 20 {
                est.beta()
            } else {
                self.jobs[j].spec.beta
            }
        };
        virtual_size(
            self.jobs[j].current_remaining() as f64,
            beta,
            self.jobs[j].alpha().max(1.0),
        )
    }

    /// Send one scheduler↔worker RPC through the message plane. Faults
    /// off this is *exactly* the historical send — one push after the
    /// fixed message latency, no RNG consumed. Faults on, the message
    /// may be lost, jittered (so deliveries reorder), or duplicated.
    fn send_msg(&mut self, ev: Ev) {
        let faults_off = self.faults.is_none();
        if let Some(a) = self.audit.as_mut() {
            let k = msg_kind(&ev).expect("send_msg only carries scheduler↔worker RPCs");
            a.note_sent(k);
            if faults_off {
                match &ev {
                    Ev::Assign { job, .. } | Ev::Kill { job, .. } => a.note_occ_sent(*job),
                    _ => {}
                }
            }
        }
        let Some(f) = self.faults.as_mut() else {
            self.queue.push_after(self.cfg.msg_latency, ev);
            return;
        };
        let out = f.send();
        if out.lost {
            self.stats.msgs_lost += 1;
            if let Some(a) = self.audit.as_mut() {
                a.note_lost(msg_kind(&ev).expect("rpc"));
            }
            return;
        }
        if out.duplicated {
            self.stats.msgs_duplicated += 1;
            if let Some(a) = self.audit.as_mut() {
                a.note_dup(msg_kind(&ev).expect("rpc"));
            }
        }
        let latency = self.cfg.msg_latency;
        let mut deliveries = out.deliveries.into_iter();
        let first = deliveries.next().expect("surviving message delivers");
        for d in deliveries {
            self.queue.push_after(latency + d.extra, ev.clone());
        }
        self.queue.push_after(latency + first.extra, ev);
    }

    /// Terminate worker `w`'s episode bookkeeping: the episode slot is
    /// gone (consumed, reclaimed, or dead), replies echoing the old
    /// epoch are stale, and any armed lease is void. Callers settle the
    /// `free` count themselves (a consumed promise frees nothing; a
    /// reclaimed one returns to the pool).
    fn end_episode(&mut self, w: usize) {
        self.workers[w].episode = None;
        self.ep_epoch[w] += 1;
        self.rpc_seq[w] += 1;
    }

    /// Dev-profile invariant re-check after an event touched a worker
    /// and/or a job (see `crate::audit`).
    fn audit_event(&self, ev: &Ev) {
        let Some(a) = self.audit.as_ref() else { return };
        let check_w = |w: usize| {
            a.check_worker(
                w,
                self.worker_up(w),
                self.workers[w].free as u64,
                self.workers[w].episode.is_some(),
                self.cfg.cluster.slots_per_machine as u64,
            );
        };
        // Per-job occupancy only reconciles exactly while faults are off
        // (see `Auditor::check_job`), and a retired job has no ground
        // truth left to compare.
        let check_j = |j: usize| {
            if self.faults.is_none() && !self.done[j] {
                a.check_job(
                    j,
                    self.occupied[j] as u64,
                    self.jobs[j].occupied_slots() as u64,
                );
            }
        };
        match *ev {
            Ev::Reservation { worker, ref res } => {
                check_w(worker);
                check_j(res.job as usize);
            }
            Ev::Response { worker, job, .. }
            | Ev::Assign { worker, job, .. }
            | Ev::Refusal { worker, job, .. }
            | Ev::Kill { worker, job, .. }
            | Ev::Finish { worker, job, .. } => {
                check_w(worker);
                check_j(job);
            }
            Ev::Lease { worker, .. } => check_w(worker),
            Ev::Dyn(d) => check_w(d.machine().0),
            Ev::Scan | Ev::SchedDyn(_) | Ev::JobTimeout { .. } => {}
        }
    }

    fn run(mut self) -> DecOutput {
        loop {
            // Merge the arrival source with the event queue; at equal
            // instants the arrival is delivered first (see
            // `ArrivalSource`'s ordering contract).
            let arrival_due = match self.arrivals.peek_arrival() {
                Some(at) => match self.queue.peek_time() {
                    Some(qt) => at <= qt,
                    None => true,
                },
                None => false,
            };
            if arrival_due {
                let spec = self.arrivals.pop().expect("peeked arrival exists");
                let now = spec.arrival;
                self.queue.advance_to(now);
                self.tele_tick(now);
                self.stats.events += 1;
                self.ev_counts[0] += 1;
                self.on_job_arrive(spec, now);
                continue;
            }
            let Some((now, ev)) = self.queue.pop() else {
                break;
            };
            self.tele_tick(now);
            self.stats.events += 1;
            if self.stats.events > self.cfg.max_events {
                let stuck: Vec<String> = self
                    .live
                    .iter()
                    .copied()
                    .take(5)
                    .map(|j| {
                        format!(
                            "job {j}: pending={} claimed={} occupied={} live_res={} cands={} running={} total_rem={} current_rem={} vsize={:.1}",
                            self.pending_orig[j],
                            self.claimed[j].len(),
                            self.occupied[j],
                            self.live_res[j],
                            self.candidates[j].len(),
                            self.jobs[j].occupied_slots(),
                            self.jobs[j].total_remaining(),
                            self.jobs[j].current_remaining(),
                            self.vsize(j),
                        )
                    })
                    .collect();
                let active_eps = self.workers.iter().filter(|w| w.episode.is_some()).count();
                let queued_res: usize = self.workers.iter().map(|w| w.queue.len()).sum();
                panic!(
                    "event budget exceeded ({}) at t={now}; active_count={} pending_events={} worker_episodes={} queued_reservations={} ev_counts(arr/res/resp/asgn/ref/fin/kill/scan/dyn/sdyn/lease/wd)={:?} unfinished: {stuck:#?}",
                    self.policy.name(),
                    self.active_count,
                    self.queue.len(),
                    active_eps,
                    queued_res,
                    self.ev_counts,
                );
            }
            self.ev_counts[match &ev {
                Ev::Reservation { .. } => 1,
                Ev::Response { .. } => 2,
                Ev::Assign { .. } => 3,
                Ev::Refusal { .. } => 4,
                Ev::Finish { .. } => 5,
                Ev::Kill { .. } => 6,
                Ev::Scan => 7,
                Ev::Dyn(_) => 8,
                Ev::SchedDyn(_) => 9,
                Ev::Lease { .. } => 10,
                Ev::JobTimeout { .. } => 11,
            }] += 1;
            // Dev-profile auditing: conserve every RPC delivery, then —
            // after the handler runs — re-check the touched worker/job
            // invariants (the clone is auditor-gated, so release pays
            // nothing).
            let audit_ev = self.audit.is_some().then(|| ev.clone());
            if let Some(a) = self.audit.as_mut() {
                if let Some(k) = msg_kind(&ev) {
                    a.note_delivered(k);
                    if self.faults.is_none() {
                        match &ev {
                            Ev::Assign { job, .. } | Ev::Kill { job, .. } => {
                                a.note_occ_delivered(*job)
                            }
                            _ => {}
                        }
                    }
                }
            }
            match ev {
                Ev::Reservation { worker, res } => {
                    // A job can complete while its reservation is still in
                    // flight. The pre-epoch code parked it and purged it in
                    // the very next statement (the unconditional queue
                    // purge); dropping it on delivery is the same behavior,
                    // and keeps the epoch-gated purge skip sound — a parked
                    // reservation is always live at park time.
                    //
                    // A reservation reaching a down machine is lost with
                    // it (the scheduler re-probes at the next scan).
                    if !self.worker_up(worker) {
                        self.live_res[res.job as usize] =
                            self.live_res[res.job as usize].saturating_sub(1);
                    } else if !self.done[res.job as usize] {
                        self.workers[worker].queue.push(res);
                    }
                    self.maybe_start_episode(worker, now);
                }
                Ev::Response {
                    worker,
                    job,
                    kind,
                    inc,
                    ep,
                    sinc,
                } => self.on_response(worker, job, kind, inc, ep, sinc, now),
                Ev::Assign {
                    worker,
                    job,
                    task,
                    speculative,
                    inc,
                    ep,
                } => self.on_assign(worker, job, task, speculative, inc, ep, now),
                Ev::Refusal {
                    worker,
                    job,
                    unsatisfied,
                    inc,
                    ep,
                } => self.on_refusal(worker, job, unsatisfied, inc, ep, now),
                Ev::Finish { job, copy, worker } => self.on_finish(job, copy, worker, now),
                Ev::Kill {
                    worker,
                    job,
                    copy,
                    inc,
                } => self.on_kill(worker, job, copy, inc, now),
                Ev::SchedDyn(sev) => {
                    // Same drain rule as machine dynamics: the crash
                    // chain dies with the workload.
                    if self.active_count == 0 && self.arrivals_pending == 0 {
                        continue;
                    }
                    self.on_sched_dyn(sev, now);
                }
                Ev::Lease { worker, seq } => self.on_lease(worker, seq, now),
                Ev::JobTimeout { job } => self.on_job_timeout(job, now),
                Ev::Dyn(ev) => {
                    // The incident chain dies with the workload (see the
                    // centralized driver): drop unapplied once all jobs
                    // completed so the queue drains.
                    if self.active_count == 0 && self.arrivals_pending == 0 {
                        continue;
                    }
                    self.on_dyn(ev, now);
                }
                Ev::Scan => {
                    self.scan_armed = false;
                    // Both scan passes walk the live list (ascending id —
                    // the order the old `0..n` loops visited live jobs
                    // in), so scan cost is O(live jobs), not O(all jobs
                    // ever arrived).
                    for idx in 0..self.live.len() {
                        let j = self.live[idx];
                        // A crashed scheduler scans nothing (its scratch
                        // is rebuilt at recovery); never taken while
                        // scheduler faults are off.
                        if !self.sched_up[self.owner[j]] {
                            continue;
                        }
                        if self.jobs[j].occupied_slots() > 0 {
                            self.candidates[j] =
                                self.cfg.speculator.candidates(&self.jobs[j], now).into();
                        }
                    }
                    // Re-probe jobs whose reservations were all consumed
                    // while launchable work remains (otherwise they starve).
                    for idx in 0..self.live.len() {
                        let j = self.live[idx];
                        if !self.sched_up[self.owner[j]] || self.live_res[j] > 0 {
                            continue;
                        }
                        let launchable = self.pending_orig[j] > 0 || !self.candidates[j].is_empty();
                        if launchable {
                            let want = ((self.jobs[j].current_remaining() as f64
                                * self.cfg.probe_ratio)
                                .ceil() as usize)
                                .max(1);
                            self.send_probes(j, want);
                        }
                    }
                    self.arm_scan();
                    // Re-poll dormant workers: new candidates may make
                    // previously-refusing jobs worth offering again.
                    for w in 0..self.workers.len() {
                        self.maybe_start_episode(w, now);
                    }
                }
            }
            if let Some(ev) = audit_ev {
                self.audit_event(&ev);
            }
        }
        assert!(
            self.done_count as usize == self.num_jobs && self.arrivals_pending == 0,
            "decentralized run drained with {} of {} jobs finished",
            self.done_count,
            self.num_jobs
        );
        if let Some(a) = self.audit.as_ref() {
            for w in 0..self.workers.len() {
                a.check_worker(
                    w,
                    self.worker_up(w),
                    self.workers[w].free as u64,
                    self.workers[w].episode.is_some(),
                    self.cfg.cluster.slots_per_machine as u64,
                );
            }
            a.check_end(self.pending_kill.len());
        }
        let telemetry = {
            let snap = self.tele_snapshot();
            self.tele.finish(snap)
        };
        let mut jobs = self.results;
        jobs.sort_by_key(|r| r.job);
        let report = RunReport {
            core: self.stats.core(),
            digest: self.digest,
            live_high_water: self.jobs.high_water(),
            telemetry,
        };
        DecOutput {
            jobs,
            stats: self.stats,
            report,
            shard: None,
        }
    }

    /// Close any telemetry windows that end before the event about to
    /// be processed at `now` (pre-event state is exactly the state at
    /// the crossed boundary). One branch when disabled.
    #[inline]
    fn tele_tick(&mut self, now: SimTime) {
        let now_ms = now.as_millis();
        if self.tele.boundary_due(now_ms) {
            let snap = self.tele_snapshot();
            self.tele.close_to(now_ms, snap);
        }
    }

    /// Gauges + cumulative counters for the telemetry plane: running
    /// copies across live jobs, parked worker-queue reservations, and
    /// the protocol counters. O(live jobs + workers), and only ever
    /// evaluated at window boundaries and at the end of the run.
    fn tele_snapshot(&self) -> TelemetrySnapshot {
        let busy_slots = self
            .live
            .iter()
            .map(|&j| self.jobs[j].occupied_slots() as u64)
            .sum();
        let queue_depth = self.workers.iter().map(|w| w.queue.len() as u64).sum();
        TelemetrySnapshot {
            busy_slots,
            queue_depth,
            live_jobs: self.live.len() as u64,
            completed: self.done_count,
            orig_launched: self.stats.orig_launched,
            spec_launched: self.stats.spec_launched,
            spec_won: self.stats.spec_won,
            killed: self.tele_kills,
            messages: self.stats.reservations + self.stats.responses + self.stats.refusals,
            events: self.stats.events,
        }
    }

    fn arm_scan(&mut self) {
        if !self.scan_armed && (self.active_count > 0 || self.arrivals_pending > 0) {
            self.queue.push_after(self.cfg.scan_interval, Ev::Scan);
            self.scan_armed = true;
        }
    }

    /// Build job `j`'s runtime state and probe for its tasks. Lazy
    /// construction consumes `placement_rng` in arrival (= id) order —
    /// the same draw sequence the historical build-everything-up-front
    /// constructor used, so results are bit-identical.
    fn on_job_arrive(&mut self, spec: TraceJob, now: SimTime) {
        let j = spec.id;
        debug_assert_eq!(spec.arrival, now);
        let _ = now;
        let job = JobRun::new(spec, &self.cfg.cluster, &mut self.placement_rng);
        self.pending_orig[j] = job
            .phases()
            .iter()
            .filter(|p| p.eligible)
            .map(|p| p.num_tasks())
            .sum();
        self.jobs.insert(j, job);
        self.arrivals_pending -= 1;
        self.active_count += 1;
        self.arrived[j] = true;
        debug_assert!(self.live.last().is_none_or(|&last| last < j));
        self.live.push(j);
        self.sched_jobs[self.owner[j]].push(j);
        self.arm_scan();
        // A job arriving at a crashed scheduler places no probes — the
        // scheduler's recovery (and the job's watchdog) re-probe from
        // ground truth. Never taken while scheduler faults are off.
        if self.sched_up[self.owner[j]] {
            // Place probe_ratio × tasks reservations. Input tasks probe
            // their replica machines first (§6.1), the remainder go to
            // random workers.
            let tasks = self.jobs[j].spec.size_tasks().max(1);
            let probes = ((tasks as f64 * self.cfg.probe_ratio).ceil() as usize).max(1);
            let vsize = self.vsize(j);
            let remaining = self.jobs[j].current_remaining() as f64;
            let mut targets: Vec<usize> = Vec::with_capacity(probes);
            for t in &self.jobs[j].phases()[0].tasks {
                for r in &t.replicas {
                    if targets.len() < probes {
                        targets.push(r.0);
                    }
                }
            }
            while targets.len() < probes {
                targets.push(self.rng.gen_range(0..self.workers.len()));
            }
            for w in targets {
                self.stats.reservations += 1;
                self.live_res[j] += 1;
                self.send_msg(Ev::Reservation {
                    worker: w,
                    res: Reservation {
                        scheduler: self.owner[j],
                        job: j as u64,
                        virtual_size: vsize,
                        remaining_tasks: remaining,
                    },
                });
            }
        }
        // Watchdog (faults only): first check one timeout out; resets
        // whenever the job makes progress, backs off while it does not.
        if self.faults.is_some() {
            self.queue.push_after(
                SimTime::from_millis(self.backoff.delay_ms(0)),
                Ev::JobTimeout { job: j },
            );
        }
    }

    /// Send `count` fresh reservations for `job` to random workers.
    fn send_probes(&mut self, job: usize, count: usize) {
        // A crashed scheduler sends nothing (its recovery re-probes);
        // never taken while scheduler faults are off.
        if !self.sched_up[self.owner[job]] {
            return;
        }
        let vsize = self.vsize(job);
        let rem = self.jobs[job].current_remaining() as f64;
        for _ in 0..count {
            let w = self.rng.gen_range(0..self.workers.len());
            self.stats.reservations += 1;
            self.live_res[job] += 1;
            self.send_msg(Ev::Reservation {
                worker: w,
                res: Reservation {
                    scheduler: self.owner[job],
                    job: job as u64,
                    virtual_size: vsize,
                    remaining_tasks: rem,
                },
            });
        }
    }

    /// Start a late-binding episode if the worker is up and has a free
    /// slot, no episode in flight, and a non-empty queue.
    fn maybe_start_episode(&mut self, w: usize, now: SimTime) {
        if !self.worker_up(w) {
            return;
        }
        // Purge reservations of finished jobs first (piggybacked
        // completion notifications). Skipped while no job has completed
        // since this worker's last purge — every queued reservation was
        // live then and only live jobs enqueue new ones, so the scan would
        // remove nothing.
        if self.workers[w].purged_at != self.done_count {
            let done = &self.done;
            self.workers[w].queue.retain(|r| !done[r.job as usize]);
            self.workers[w].purged_at = self.done_count;
        }
        #[cfg(debug_assertions)]
        assert!(
            !self.workers[w]
                .queue
                .iter()
                .any(|r| self.done[r.job as usize]),
            "stale reservation survived the epoch-gated purge"
        );
        if self.workers[w].free == 0
            || self.workers[w].episode.is_some()
            || self.workers[w].queue.is_empty()
        {
            return;
        }
        self.workers[w].free -= 1; // promise the slot to this episode
        self.workers[w].episode = Some(FreeSlotEpisode::new(self.cfg.refusal_threshold));
        self.episode_step(w, now);
    }

    /// Advance the worker's episode by one protocol step.
    fn episode_step(&mut self, w: usize, _now: SimTime) {
        if self.workers[w].episode.is_none() {
            return; // defensive: stray refusal after the episode resolved
        }
        let action = match self.policy {
            DecPolicy::Sparrow => match pick_fcfs(&self.workers[w].queue) {
                Some(r) => WorkerAction::Respond {
                    scheduler: r.scheduler,
                    job: r.job,
                    kind: ResponseKind::NonRefusable,
                },
                None => WorkerAction::Idle,
            },
            DecPolicy::SparrowSrpt => match pick_srpt(&self.workers[w].queue) {
                Some(r) => WorkerAction::Respond {
                    scheduler: r.scheduler,
                    job: r.job,
                    kind: ResponseKind::NonRefusable,
                },
                None => WorkerAction::Idle,
            },
            DecPolicy::Hopper => {
                let mut ep = self.workers[w].episode.take().expect("episode in flight");
                if ep.refusals() >= self.cfg.refusal_threshold {
                    self.stats.guideline3_switches += 1;
                }
                let action = ep.next_action(&self.workers[w].queue, &mut self.rng);
                self.workers[w].episode = Some(ep);
                action
            }
        };
        match action {
            WorkerAction::Respond {
                scheduler,
                job,
                kind,
            } => {
                if let Some(ep) = self.workers[w].episode.as_mut() {
                    ep.mark_probed(scheduler);
                }
                self.stats.responses += 1;
                self.rpc_seq[w] += 1;
                self.send_msg(Ev::Response {
                    worker: w,
                    job: job as usize,
                    kind,
                    inc: self.dyn_inc[w],
                    ep: self.ep_epoch[w],
                    sinc: self.sched_inc[scheduler],
                });
                // Lease the promised slot (faults only): if no reply of
                // any kind is processed within the RPC timeout, the
                // episode is reclaimed instead of hanging forever.
                if self.faults.is_some() {
                    self.queue.push_after(
                        SimTime::from_millis(self.cfg.faults.rpc_timeout_ms),
                        Ev::Lease {
                            worker: w,
                            seq: self.rpc_seq[w],
                        },
                    );
                }
            }
            WorkerAction::Idle => {
                // Episode dies; slot returns to the free pool.
                self.end_episode(w);
                self.workers[w].free += 1;
            }
        }
    }

    /// Scheduler-side handling of a worker's slot offer (Pseudocode 2).
    /// `inc`/`ep` are the offer's worker incarnation and episode epoch,
    /// echoed into the reply; `sinc` is the scheduler incarnation the
    /// offer was addressed to.
    #[allow(clippy::too_many_arguments)]
    fn on_response(
        &mut self,
        worker: usize,
        job: usize,
        kind: ResponseKind,
        inc: u64,
        ep: u64,
        sinc: u64,
        now: SimTime,
    ) {
        // Offer addressed to a crashed scheduler (down, or a pre-crash
        // incarnation): the reply is effectively lost — the worker's
        // lease reclaims the promised slot. `owner` is indexed by a
        // message-carried id, but reservations are only ever created for
        // real jobs, so `job < owner.len()` holds by construction; the
        // `get` is belt-and-braces for the degenerate 0-scheduler cap.
        // Never taken while scheduler faults are off (all up, all inc 0).
        let sched = self.owner.get(job).copied().unwrap_or(0);
        if !self.sched_up[sched] || sinc != self.sched_inc[sched] {
            return;
        }
        if self.done[job] {
            self.send_refusal(worker, job, inc, ep, now);
            return;
        }
        let accepts = match self.policy {
            // Sparrow variants never refuse; they answer task-or-no-task.
            DecPolicy::Sparrow | DecPolicy::SparrowSrpt => true,
            DecPolicy::Hopper => {
                let below_fair_floor = self.below_fair_floor(job);
                scheduler_accepts(kind, self.occupied[job] as f64, self.vsize(job))
                    || below_fair_floor
            }
        };
        // Under Hopper an accepted offer always places work: the virtual
        // size *is* the speculation budget, so when no pending original or
        // flagged candidate exists the scheduler sends an extra speculative
        // copy of its longest-remaining running task ("faster clearing of
        // tasks is overall beneficial", §4.1 footnote; non-refusable offers
        // are Guideline-3 extra slots beyond the virtual size).
        let allow_extra_spec = matches!(self.policy, DecPolicy::Hopper);
        let launch = if accepts {
            self.pick_work(job, worker, allow_extra_spec, now)
        } else {
            None
        };
        match launch {
            Some((task, speculative)) => {
                self.occupied[job] += 1;
                if speculative {
                    // Consume the candidate so the next offer goes to the
                    // next straggler.
                    self.candidates[job].retain(|c| c.task != task);
                } else {
                    self.pending_orig[job] -= 1;
                }
                self.send_msg(Ev::Assign {
                    worker,
                    job,
                    task,
                    speculative,
                    inc,
                    ep,
                });
            }
            None => self.send_refusal(worker, job, inc, ep, now),
        }
    }

    /// Whether `job` is below its ε-fair share `(1−ε)·S/N` (§4.3). The
    /// active-job count is piggybacked on scheduler↔worker traffic, so
    /// every scheduler tracks it without extra messages.
    fn below_fair_floor(&self, job: usize) -> bool {
        let Some(eps) = self.cfg.fairness_eps else {
            return false;
        };
        if self.active_count == 0 {
            return false;
        }
        let fair = self.cfg.cluster.total_slots() as f64 / self.active_count as f64;
        // Capped at the job's virtual size, exactly like the centralized
        // projection: fairness never forces slots a job cannot use.
        let floor = ((1.0 - eps) * fair).floor().min(self.vsize(job));
        (self.occupied[job] as f64) < floor
    }

    /// Choose the next work item for `job` on `worker`: pending original
    /// (preferring data-local, skipping tasks already claimed by an
    /// in-flight assignment) first, then the best speculation candidate.
    fn pick_work(
        &mut self,
        job: usize,
        worker: usize,
        allow_extra_spec: bool,
        now: SimTime,
    ) -> Option<(TaskRef, bool)> {
        if self.pending_orig[job] > 0 {
            if let Some(task) = self.next_unclaimed_original(job, MachineId(worker)) {
                self.claimed[job].insert(task);
                return Some((task, false));
            }
        }
        while let Some(cand) = self.candidates[job].front().copied() {
            let t = &self.jobs[job].phases()[cand.task.phase].tasks[cand.task.task];
            if t.is_finished() || t.running_copies() == 0 || t.running_copies() >= 2 {
                self.candidates[job].pop_front();
                continue;
            }
            return Some((cand.task, true));
        }
        if allow_extra_spec {
            // Longest-estimated-remaining running task with copy headroom,
            // but only where a fresh copy could plausibly finish first
            // (t_rem > t_new — the same benefit rule the §3 example uses).
            // O(log) off the job's solo-running index instead of a full
            // `observe_running` sweep.
            if let Some(task) = self.jobs[job].best_extra_speculation(now) {
                return Some((task, true));
            }
        }
        None
    }

    /// First unlaunched, unclaimed original in eligible phases, preferring
    /// one whose input is local to `m`.
    ///
    /// Walks the job's pending-task indices instead of every task: the
    /// preferred pick is the minimum of the first unclaimed replica-free
    /// task and the first unclaimed task local to `m` (the old scan
    /// returned whichever came first in `(phase, task)` order), and the
    /// fallback is the first unclaimed pending task overall. The claimed
    /// set only holds in-flight assignments, so the skip is a handful of
    /// probes, not a rescan.
    fn next_unclaimed_original(&self, job: usize, m: MachineId) -> Option<TaskRef> {
        let jr = &self.jobs[job];
        let claimed = &self.claimed[job];
        let no_pref = jr.pending_no_replica_tasks().find(|t| !claimed.contains(t));
        let local = jr.pending_local_tasks(m).find(|t| !claimed.contains(t));
        let picked = match (no_pref, local) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        }
        .or_else(|| jr.pending_tasks().find(|t| !claimed.contains(t)));
        #[cfg(debug_assertions)]
        assert_eq!(
            picked,
            self.scan_next_unclaimed_original(job, m),
            "pending index disagrees with the task scan"
        );
        picked
    }

    /// The pre-index O(tasks) implementation, kept as the debug oracle.
    /// "Pending" is `needs_original` (no running copy, unfinished) rather
    /// than "never launched", so tasks requeued by a machine failure are
    /// assignable again.
    #[cfg(debug_assertions)]
    fn scan_next_unclaimed_original(&self, job: usize, m: MachineId) -> Option<TaskRef> {
        let mut fallback = None;
        for (pi, p) in self.jobs[job].phases().iter().enumerate() {
            if !p.eligible || p.is_complete() {
                continue;
            }
            for (ti, t) in p.tasks.iter().enumerate() {
                let tr = TaskRef::new(pi, ti);
                if !t.needs_original() || self.claimed[job].contains(&tr) {
                    continue;
                }
                if t.replicas.is_empty() || t.replicas.contains(&m) {
                    return Some(tr);
                }
                if fallback.is_none() {
                    fallback = Some(tr);
                }
            }
        }
        fallback
    }

    fn send_refusal(&mut self, worker: usize, job: usize, inc: u64, ep: u64, now: SimTime) {
        let _ = now;
        self.stats.refusals += 1;
        // Advertise this scheduler's smallest unsatisfied job (Pseudocode
        // 3's refusal payload): below its virtual size with launchable
        // work.
        let sched = self.owner.get(job).copied().unwrap_or(0);
        let mut best: Option<UnsatisfiedJob> = None;
        // Only this scheduler's own *live* jobs are candidates — walk its
        // live partition (ascending id, the order the old all-jobs scan
        // visited them in; membership = arrived ∧ not retired) instead of
        // the whole cluster.
        for &j in &self.sched_jobs[sched] {
            debug_assert_eq!(self.owner[j], sched);
            debug_assert!(self.arrived[j] && !self.done[j]);
            if j == job {
                continue;
            }
            let v = self.vsize(j);
            let launchable = self.pending_orig[j] > 0 || !self.candidates[j].is_empty();
            if !launchable {
                continue;
            }
            // ε-fairness (§4.3), decentralized approximation: a job below
            // its (1−ε) fair-share floor is advertised as unsatisfied even
            // when it is at its virtual size, so the refusal channel tops
            // it up. Deficient jobs keep their virtual-size order — the
            // serial refusal channel delivers one slot per round, and a
            // hard priority inversion (large deficient jobs pre-empting
            // every small job) costs far more than the guarantee is worth
            // (see DESIGN.md, deviations).
            // Fairness floors are capped at the job's own virtual size
            // (exactly like the centralized projection), so the advertised
            // set is simply the unsatisfied jobs; ε's remaining effect is
            // the acceptance forcing in `on_response`. See DESIGN.md —
            // the decentralized ε enforcement is deliberately conservative.
            let advertised = ((self.occupied[j] as f64) < v).then_some(v);
            if let Some(adv) = advertised {
                let better = best.is_none_or(|b| adv < b.virtual_size);
                if better {
                    best = Some(UnsatisfiedJob {
                        scheduler: sched,
                        job: j as u64,
                        virtual_size: adv,
                    });
                }
            }
        }
        self.send_msg(Ev::Refusal {
            worker,
            job,
            unsatisfied: best,
            inc,
            ep,
        });
    }

    fn on_refusal(
        &mut self,
        worker: usize,
        job: usize,
        unsatisfied: Option<UnsatisfiedJob>,
        inc: u64,
        ep: u64,
        now: SimTime,
    ) {
        // The offer this refusal answers referenced a slot that died with
        // the machine (incarnation mismatch: everything about the episode
        // is already torn down), or an episode that already ended (epoch
        // mismatch: a duplicated or lease-superseded reply). Faults-off
        // the two conditions coincide — a machine failure is the only
        // mid-flight teardown — so behavior is unchanged.
        if inc != self.dyn_inc[worker] || ep != self.ep_epoch[worker] {
            return;
        }
        // A reply reached the episode: any armed lease is void.
        self.rpc_seq[worker] += 1;
        match self.policy {
            DecPolicy::Sparrow | DecPolicy::SparrowSrpt => {
                // Sparrow consumes the reservation on no-task and moves on.
                if let Some(pos) = self.workers[worker]
                    .queue
                    .iter()
                    .position(|r| r.job as usize == job)
                {
                    self.workers[worker].queue.remove(pos);
                    self.live_res[job] = self.live_res[job].saturating_sub(1);
                }
                self.episode_step(worker, now);
            }
            DecPolicy::Hopper => {
                // Reservations stay (the job may want Guideline-3 extras
                // later); the episode just records the refusal.
                let sched = self.owner.get(job).copied().unwrap_or(0);
                if let Some(ep) = self.workers[worker].episode.as_mut() {
                    ep.record_refusal(sched, job as u64, unsatisfied);
                }
                self.episode_step(worker, now);
            }
        }
    }

    /// A task assignment arrives at the worker: consume a reservation and
    /// start executing.
    #[allow(clippy::too_many_arguments)]
    fn on_assign(
        &mut self,
        worker: usize,
        job: usize,
        task: TaskRef,
        speculative: bool,
        inc: u64,
        ep: u64,
        now: SimTime,
    ) {
        if !speculative {
            self.claimed[job].remove(&task);
        }
        // The promised slot is gone: the machine failed while the
        // assignment was in flight (incarnation mismatch), or the episode
        // already ended (epoch mismatch — a duplicated assign whose first
        // delivery consumed the episode, or a lease reclaim after this
        // reply was presumed lost). Undo the scheduler-side accounting
        // and return the original to the pending pool if it still needs
        // one — but touch no worker state, the episode and slot are gone.
        // Faults-off the two mismatches coincide (a machine failure is
        // the only mid-flight teardown), so behavior is unchanged. A
        // completed (retired) job's tasks are all finished, so the
        // done-guard preserves the old `needs_original()` answer without
        // dereferencing retired state.
        if inc != self.dyn_inc[worker] || ep != self.ep_epoch[worker] {
            self.occupied[job] = self.occupied[job].saturating_sub(1);
            if !speculative
                && !self.done[job]
                && self.jobs[job].phases()[task.phase].tasks[task.task].needs_original()
            {
                self.pending_orig[job] += 1;
            }
            return;
        }
        // Episode resolved successfully; the promised slot is consumed
        // (and later replies echoing this epoch are stale).
        self.end_episode(worker);
        // Consume one reservation of this job at this worker (if present).
        if let Some(pos) = self.workers[worker]
            .queue
            .iter()
            .position(|r| r.job as usize == job)
        {
            self.workers[worker].queue.remove(pos);
            self.live_res[job] = self.live_res[job].saturating_sub(1);
        }
        // Validate against races: the job may have completed — and been
        // retired — or the task may have finished while the assignment
        // was in flight. (An original is live exactly when the task still
        // needs one — `needs_original` also covers tasks a machine
        // failure requeued, whose earlier copies were all killed.) A
        // retired job is never dereferenced: done ⇒ every task finished ⇒
        // stale, and the old needs_original() re-check answered false.
        let stale = self.done[job] || {
            let t = &self.jobs[job].phases()[task.phase].tasks[task.task];
            t.is_finished()
                || (speculative && t.running_copies() == 0)
                || (!speculative && !t.needs_original())
        };
        if stale {
            self.occupied[job] = self.occupied[job].saturating_sub(1);
            if !speculative && !self.done[job] {
                // Return the unlaunched original to the pending pool only
                // if it truly is still pending.
                let t = &self.jobs[job].phases()[task.phase].tasks[task.task];
                if t.needs_original() {
                    self.pending_orig[job] += 1;
                }
            }
            self.workers[worker].free += 1;
            self.maybe_start_episode(worker, now);
            return;
        }
        if let Some(a) = self.audit.as_mut() {
            let t = &self.jobs[job].phases()[task.phase].tasks[task.task];
            a.note_launch(
                worker,
                !speculative,
                t.running_copies() as u64,
                t.is_finished(),
            );
        }
        self.wd_progress[job] += 1;
        self.machines.occupy_for(MachineId(worker), job);
        let speed = self.machine_speed(worker);
        let (copy, dur) = self.jobs[job].launch_copy_at_speed(
            task,
            MachineId(worker),
            speculative,
            now,
            SimTime::ZERO,
            &self.cfg.cluster,
            &mut self.rng,
            speed,
        );
        if speculative {
            self.stats.spec_launched += 1;
        } else {
            self.stats.orig_launched += 1;
        }
        self.queue.push(now + dur, Ev::Finish { job, copy, worker });
        // Piggyback a virtual-size update on this assignment for all of
        // the job's reservations parked at this worker (§5.3).
        let v = self.vsize(job);
        let rem = self.jobs[job].current_remaining() as f64;
        for r in self.workers[worker].queue.iter_mut() {
            if r.job as usize == job {
                r.virtual_size = v;
                r.remaining_tasks = rem;
            }
        }
        self.maybe_start_episode(worker, now);
    }

    /// Apply one machine-dynamics incident.
    fn on_dyn(&mut self, ev: DynEvent, now: SimTime) {
        let out = self
            .dynamics
            .as_mut()
            .expect("dyn event without dynamics plane")
            .apply(ev);
        for (delay, next) in out.next {
            self.queue.push(now + delay, Ev::Dyn(next));
        }
        let m = ev.machine();
        let w = m.0;
        match ev {
            DynEvent::SlowdownStart(_) | DynEvent::SlowdownEnd(_) => {
                let ratio = out.rescale_ratio.expect("speed change carries a ratio");
                // Only live jobs can have running copies; the live list
                // keeps the per-incident cost proportional to the live
                // workload, not the whole stream.
                for idx in 0..self.live.len() {
                    let j = self.live[idx];
                    for (copy, finish) in self.jobs[j].rescale_machine(m, now, ratio) {
                        self.queue.push(
                            finish,
                            Ev::Finish {
                                job: j,
                                copy,
                                worker: w,
                            },
                        );
                    }
                }
            }
            DynEvent::Fail(_) => {
                // Worker-side teardown: parked reservations, the in-flight
                // episode, and every slot die with the machine. Replies to
                // messages already in flight are invalidated by the
                // incarnation bump.
                self.dyn_inc[w] += 1;
                for r in std::mem::take(&mut self.workers[w].queue) {
                    self.live_res[r.job as usize] = self.live_res[r.job as usize].saturating_sub(1);
                }
                self.end_episode(w);
                self.workers[w].free = 0;
                if let Some(a) = self.audit.as_mut() {
                    a.note_machine_failed(w);
                }
                // Scheduler-side: killed copies leave the occupancy
                // accounting; requeued tasks get fresh probes immediately
                // (their old reservations may be anywhere, but the pending
                // original needs the re-dispatch advertised).
                for idx in 0..self.live.len() {
                    let j = self.live[idx];
                    let fo = self.jobs[j].fail_machine(m);
                    if fo.killed == 0 {
                        continue;
                    }
                    self.occupied[j] = self.occupied[j].saturating_sub(fo.killed);
                    if !fo.requeued.is_empty() {
                        self.pending_orig[j] += fo.requeued.len();
                        let probes = ((fo.requeued.len() as f64 * self.cfg.probe_ratio).ceil()
                            as usize)
                            .max(1);
                        self.send_probes(j, probes);
                    }
                }
                self.machines.set_down(m);
            }
            DynEvent::Recover(_) => {
                // The machine rejoins with every slot free and an empty
                // queue; probes find it again through random placement.
                self.machines.set_up(m);
                self.workers[w].free = self.cfg.cluster.slots_per_machine;
            }
        }
    }

    fn on_finish(&mut self, job: usize, copy: CopyRef, worker: usize, now: SimTime) {
        // Lost or still-in-flight kill (faults only): the kill ledger
        // still holds this copy, so the worker never heard the race was
        // lost and ran the copy to this scheduled finish — it discovers
        // the result is moot and returns the slot itself (lease-style
        // orphan reclamation at task granularity). If the machine failed
        // since the kill was stamped, the slot died with it. The job may
        // already be retired; nothing here dereferences `jobs[job]`.
        if self.faults.is_some() {
            if let Some(kill_inc) = self.pending_kill.remove(&(job, copy)) {
                self.occupied[job] = self.occupied[job].saturating_sub(1);
                if kill_inc == self.dyn_inc[worker] {
                    if let Some(a) = self.audit.as_mut() {
                        a.note_copy_stopped(worker);
                    }
                    self.workers[worker].free += 1;
                    self.machines.release_to(MachineId(worker), job);
                    self.maybe_start_episode(worker, now);
                }
                return;
            }
        }
        // Completions queued for copies that lost their race pop after
        // the job completed and retired; they are stale by definition
        // and must not touch its (gone) state.
        if self.done[job] {
            return;
        }
        // A machine-speed change rescheduled this copy: its superseded
        // completion event pops at a time that no longer matches the
        // copy's finish instant. A no-op without dynamics.
        {
            let c =
                &self.jobs[job].phases()[copy.task.phase].tasks[copy.task.task].copies[copy.copy];
            if c.status == hopper_cluster::CopyStatus::Running && c.finish_time() != now {
                return;
            }
        }
        // Collect running siblings *before* resolving the race: their
        // kill notifications travel over the network (keyed by copy so
        // the kill ledger can recognize each one individually).
        let siblings: Vec<(CopyRef, MachineId)> = self.jobs[job].phases()[copy.task.phase].tasks
            [copy.task.task]
            .copies
            .iter()
            .enumerate()
            .filter(|(i, c)| *i != copy.copy && c.status == hopper_cluster::CopyStatus::Running)
            .map(|(i, c)| (CopyRef::new(copy.task.phase, copy.task.task, i), c.machine))
            .collect();
        let Some(out) = self.jobs[job].finish_copy(copy, now) else {
            return; // stale (copy killed earlier)
        };
        let was_spec = self.jobs[job].phases()[copy.task.phase].tasks[copy.task.task].copies
            [copy.copy]
            .speculative;
        if was_spec {
            self.stats.spec_won += 1;
        }
        // The winner's slot frees immediately.
        if let Some(a) = self.audit.as_mut() {
            a.note_copy_stopped(worker);
        }
        self.wd_progress[job] += 1;
        self.workers[worker].free += 1;
        self.machines.release_to(MachineId(worker), job);
        self.occupied[job] = self.occupied[job].saturating_sub(1);
        // β learning at the owning scheduler (skipped while it is down —
        // a crash loses the estimator; never taken faults-off).
        if out.nominal.as_millis() > 0 && self.sched_up[self.owner[job]] {
            self.beta_est[self.owner[job]]
                .observe(out.duration.as_millis() as f64 / out.nominal.as_millis() as f64);
        }
        // Kill messages to losing siblings, stamped with the sibling
        // machine's current incarnation. With faults on, each kill is
        // also entered into the pending ledger so duplicates are
        // idempotent and losses are recovered at the copy's scheduled
        // finish.
        for (c, m) in siblings {
            if self.faults.is_some() {
                self.pending_kill.insert((job, c), self.dyn_inc[m.0]);
            }
            self.tele_kills += 1;
            self.send_msg(Ev::Kill {
                worker: m.0,
                job,
                copy: c,
                inc: self.dyn_inc[m.0],
            });
        }
        // New phases: their tasks need reservations too.
        for &pi in &out.newly_eligible {
            let tasks = self.jobs[job].phases()[pi].num_tasks();
            self.pending_orig[job] += tasks;
            let probes = ((tasks as f64 * self.cfg.probe_ratio).ceil() as usize).max(1);
            self.send_probes(job, probes);
        }
        if out.job_done {
            self.complete_job(job, now);
        }
        self.maybe_start_episode(worker, now);
    }

    /// Kill notification reaches the worker running a lost sibling.
    fn on_kill(&mut self, worker: usize, job: usize, copy: CopyRef, inc: u64, now: SimTime) {
        // Idempotence (faults only): only the kill still present in the
        // pending ledger settles accounting — a duplicate, or a kill
        // whose copy already returned its slot at its scheduled finish,
        // is a complete no-op. The job may be retired; nothing here
        // dereferences `jobs[job]` (the copy was marked killed in job
        // state at race-resolution time, before any retirement).
        if self.faults.is_some() && self.pending_kill.remove(&(job, copy)).is_none() {
            return;
        }
        // The lost sibling's copy is accounted gone either way; its slot
        // only returns if the machine has not failed since the kill was
        // sent (incarnation match).
        self.occupied[job] = self.occupied[job].saturating_sub(1);
        if inc == self.dyn_inc[worker] {
            if let Some(a) = self.audit.as_mut() {
                a.note_copy_stopped(worker);
            }
            self.workers[worker].free += 1;
            self.machines.release_to(MachineId(worker), job);
            self.maybe_start_episode(worker, now);
        }
    }

    /// Apply one scheduler crash/recover incident (never reached while
    /// scheduler faults are off).
    fn on_sched_dyn(&mut self, ev: SchedEv, now: SimTime) {
        if let Some((delay, next)) = self
            .sched_chain
            .as_mut()
            .expect("scheduler event without a crash chain")
            .apply(ev)
        {
            self.queue.push(now + delay, Ev::SchedDyn(next));
        }
        match ev {
            SchedEv::Fail(s) => {
                // The crash loses every piece of scheduler-side scratch:
                // claims, candidate lists, the learned β prior. Ground
                // truth (running copies) lives on the workers and
                // survives; in-flight replies to this scheduler are
                // invalidated by the incarnation bump, and in-flight
                // assigns it already sent stay valid — their delivery-
                // time re-validation makes re-dispatch after recovery
                // safe.
                self.sched_up[s] = false;
                self.sched_inc[s] += 1;
                self.stats.sched_failovers += 1;
                for idx in 0..self.sched_jobs[s].len() {
                    let j = self.sched_jobs[s][idx];
                    self.candidates[j] = VecDeque::new();
                    self.claimed[j] = std::collections::HashSet::new();
                }
                self.beta_est[s] = BetaEstimator::with_prior(1.5);
            }
            SchedEv::Recover(s) => {
                // Recovery rebuilds the counters from ground truth (the
                // workers' running copies) and re-probes every owned job
                // with launchable work. Candidates regrow at the next
                // scan; β re-learns from scratch.
                self.sched_up[s] = true;
                let owned: Vec<usize> = self.sched_jobs[s].clone();
                for j in owned {
                    self.occupied[j] = self.jobs[j].occupied_slots();
                    self.pending_orig[j] = self.jobs[j].pending_tasks().count();
                    if self.pending_orig[j] > 0 {
                        let probes = ((self.pending_orig[j] as f64 * self.cfg.probe_ratio).ceil()
                            as usize)
                            .max(1);
                        self.stats.msgs_retried += probes as u64;
                        self.send_probes(j, probes);
                    }
                }
            }
        }
    }

    /// A response lease fired (faults only): if the worker processed any
    /// reply since the lease was armed its RPC sequence moved on and the
    /// lease is void; otherwise the reply was lost (or stale-dropped)
    /// and the promised slot is reclaimed instead of leaking.
    fn on_lease(&mut self, worker: usize, seq: u64, now: SimTime) {
        if seq != self.rpc_seq[worker] || self.workers[worker].episode.is_none() {
            return;
        }
        self.stats.orphan_reclaimed += 1;
        self.end_episode(worker);
        self.workers[worker].free += 1;
        self.maybe_start_episode(worker, now);
    }

    /// The per-job watchdog fired (faults only). Progress resets the
    /// backoff; a genuine stall reconciles the scheduler's counters
    /// against ground truth and sends a fresh probe round, with capped
    /// exponential backoff and a retry budget that wraps around — after
    /// exhaustion the job simply gets another fresh round at base pace,
    /// so a job can degrade but never deadlock.
    fn on_job_timeout(&mut self, job: usize, now: SimTime) {
        if self.done[job] {
            return; // no re-arm: the watchdog dies with the job
        }
        let delay_ms = if self.wd_progress[job] != self.wd_seen[job] {
            // Progress since the last check: reset and keep watching.
            self.wd_seen[job] = self.wd_progress[job];
            self.wd_attempt[job] = 0;
            self.backoff.delay_ms(0)
        } else if !self.sched_up[self.owner[job]] {
            // Owner down: its recovery will reconcile and re-probe; the
            // watchdog only keeps the clock running.
            self.backoff.delay_ms(0)
        } else {
            // Stalled: every probe/reply chain for this job died (lost
            // messages, reclaimed episodes, crashed schedulers). Drop
            // any claims stuck on lost assigns, resync the counters to
            // ground truth, and re-probe. In-flight assigns briefly
            // de-sync `occupied` again — delivery-time re-validation
            // keeps that safe (no task double-launches).
            self.stats.timeouts_fired += 1;
            self.claimed[job] = std::collections::HashSet::new();
            self.occupied[job] = self.jobs[job].occupied_slots();
            self.pending_orig[job] = self.jobs[job].pending_tasks().count();
            if self.pending_orig[job] > 0 || !self.candidates[job].is_empty() {
                let probes = ((self.jobs[job].current_remaining() as f64 * self.cfg.probe_ratio)
                    .ceil() as usize)
                    .max(1);
                self.stats.msgs_retried += probes as u64;
                self.send_probes(job, probes);
            }
            let attempt = self.wd_attempt[job];
            self.wd_attempt[job] = self.backoff.next_attempt(attempt);
            self.backoff.delay_ms(attempt)
        };
        let _ = now;
        self.queue
            .push_after(SimTime::from_millis(delay_ms), Ev::JobTimeout { job });
    }

    /// Complete and **retire** `job`: fold its outcome into the digest
    /// and accumulators (plus a `JobResult` in materialized mode), drop
    /// its task/copy state and scheduler-side scratch, and remove it from
    /// every live index. From this instant the job is observationally
    /// gone — any path touching `jobs[job]` panics (the retirement
    /// invariant, DESIGN.md).
    fn complete_job(&mut self, job: usize, now: SimTime) {
        self.done[job] = true;
        self.done_count += 1;
        self.active_count -= 1;
        // Replace (not clear): `clear` keeps capacity alive forever.
        self.candidates[job] = VecDeque::new();
        self.claimed[job] = std::collections::HashSet::new();
        let pos = self
            .live
            .binary_search(&job)
            .expect("completed job is live");
        self.live.remove(pos);
        let part = &mut self.sched_jobs[self.owner[job]];
        let pos = part
            .binary_search(&job)
            .expect("completed job is in its partition");
        part.remove(pos);
        let retired = self.jobs.retire(job);
        let result = JobResult {
            job: retired.id,
            size_tasks: retired.spec.size_tasks(),
            dag_len: retired.spec.dag_len(),
            arrival: retired.spec.arrival,
            completed: now,
        };
        self.digest.observe_ms(result.duration_ms());
        self.tele.observe_jct(result.duration_ms());
        if self.retain_jobs {
            self.results.push(result);
        }
        self.stats.makespan = self.stats.makespan.max(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopper_workload::{TraceGenerator, WorkloadProfile};

    fn small_cfg(seed: u64) -> DecConfig {
        DecConfig {
            cluster: ClusterConfig {
                machines: 100,
                slots_per_machine: 2,
                handoff_ms: 0,
                ..Default::default()
            },
            num_schedulers: 5,
            seed,
            ..Default::default()
        }
    }

    fn trace(seed: u64, n: usize, util: f64) -> Trace {
        let profile = WorkloadProfile::facebook()
            .interactive()
            .single_phase()
            .fixed_beta(1.5);
        TraceGenerator::new(profile, n, seed).generate_with_utilization(200, util)
    }

    #[test]
    fn all_jobs_complete_under_every_policy() {
        let t = trace(1, 40, 0.7);
        for policy in [
            DecPolicy::Sparrow,
            DecPolicy::SparrowSrpt,
            DecPolicy::Hopper,
        ] {
            let out = run(&t, policy, &small_cfg(1));
            assert_eq!(out.jobs.len(), t.len(), "{}", policy.name());
            assert!(out.stats.makespan > SimTime::ZERO);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let t = trace(2, 30, 0.7);
        let a = run(&t, DecPolicy::Hopper, &small_cfg(7));
        let b = run(&t, DecPolicy::Hopper, &small_cfg(7));
        for (x, y) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(x.completed, y.completed);
        }
        assert_eq!(a.stats.events, b.stats.events);
        assert_eq!(a.stats.responses, b.stats.responses);
    }

    #[test]
    fn hopper_beats_sparrow_baselines() {
        // The paper's headline (Figure 6): decentralized Hopper reduces
        // average job duration versus both Sparrow and Sparrow-SRPT.
        // Uses the calibrated operating point (600 slots, 75% util,
        // heterogeneous β) — see EXPERIMENTS.md for the full sweep.
        let mut sparrow = 0.0;
        let mut srpt = 0.0;
        let mut hopper = 0.0;
        for seed in 0..3 {
            let profile = WorkloadProfile::facebook().interactive().single_phase();
            let t = TraceGenerator::new(profile, 150, seed).generate_with_utilization(600, 0.75);
            let cfg = DecConfig {
                cluster: ClusterConfig {
                    machines: 300,
                    slots_per_machine: 2,
                    handoff_ms: 0,
                    ..Default::default()
                },
                seed,
                ..Default::default()
            };
            sparrow += run(&t, DecPolicy::Sparrow, &cfg).mean_duration_ms();
            srpt += run(&t, DecPolicy::SparrowSrpt, &cfg).mean_duration_ms();
            hopper += run(&t, DecPolicy::Hopper, &cfg).mean_duration_ms();
        }
        assert!(
            hopper < srpt && hopper < sparrow,
            "hopper {hopper:.0} vs sparrow-srpt {srpt:.0} vs sparrow {sparrow:.0}"
        );
    }

    #[test]
    fn speculation_happens_and_wins() {
        let t = trace(5, 60, 0.7);
        let out = run(&t, DecPolicy::Hopper, &small_cfg(5));
        assert!(out.stats.spec_launched > 0);
        assert!(out.stats.spec_won > 0);
        assert!(out.stats.spec_won <= out.stats.spec_launched);
    }

    #[test]
    fn protocol_counters_are_consistent() {
        let t = trace(6, 50, 0.7);
        let out = run(&t, DecPolicy::Hopper, &small_cfg(6));
        let total_tasks: u64 = t.jobs.iter().map(|j| j.num_tasks() as u64).sum();
        assert_eq!(
            out.stats.orig_launched, total_tasks,
            "every original ran once"
        );
        assert!(out.stats.reservations >= total_tasks * 2);
        assert!(out.stats.responses > 0);
    }

    #[test]
    fn more_probes_help_hopper_under_load() {
        let mut d2 = 0.0;
        let mut d4 = 0.0;
        for seed in 0..3 {
            let t = trace(seed + 20, 120, 0.85);
            let mut cfg = small_cfg(seed);
            cfg.probe_ratio = 2.0;
            d2 += run(&t, DecPolicy::Hopper, &cfg).mean_duration_ms();
            cfg.probe_ratio = 4.0;
            d4 += run(&t, DecPolicy::Hopper, &cfg).mean_duration_ms();
        }
        // The power of many choices (§5.1): d=4 should not be worse by
        // more than noise, and typically clearly better.
        assert!(d4 < d2 * 1.05, "d=4 {d4:.0} vs d=2 {d2:.0}");
    }

    #[test]
    fn empty_trace() {
        let out = run(&Trace::default(), DecPolicy::Hopper, &small_cfg(1));
        assert!(out.jobs.is_empty());
    }

    /// Reservations delivered after their job completed (the message was
    /// in flight when the last task finished) must be dropped on arrival,
    /// exactly as the old unconditional queue purge did. The race needs a
    /// scan-rescue probe followed by the job's last straggler finishing
    /// inside the message latency, so this test stresses the widest
    /// window (long latency, fast scans, high load) and leans on the
    /// purge-invariant assert in `maybe_start_episode` — live across the
    /// whole dev-profile suite — as the oracle.
    #[test]
    fn stale_inflight_reservations_are_dropped() {
        for seed in [3u64, 7] {
            for policy in [DecPolicy::Sparrow, DecPolicy::Hopper] {
                let t = trace(seed, 60, 0.9);
                let mut cfg = small_cfg(seed);
                cfg.msg_latency = SimTime::from_millis(400);
                cfg.scan_interval = SimTime::from_millis(50);
                let out = run(&t, policy, &cfg);
                assert_eq!(out.jobs.len(), t.len(), "{} seed {seed}", policy.name());
            }
        }
    }

    #[test]
    fn dag_jobs_complete() {
        let profile = WorkloadProfile::facebook().interactive().fixed_dag_len(3);
        let t = TraceGenerator::new(profile, 25, 9).generate_with_utilization(200, 0.6);
        let out = run(&t, DecPolicy::Hopper, &small_cfg(9));
        assert_eq!(out.jobs.len(), t.len());
        assert!(out.jobs.iter().all(|r| r.dag_len == 3));
    }
}
