//! Event-driven decentralized (Sparrow-style) scheduling simulator.
//!
//! Architecture per the paper's §5 / Figure 4: multiple autonomous
//! schedulers each own a subset of jobs; every scheduler pushes
//! *reservation requests* ("probes") for its tasks to randomly chosen
//! workers; a worker with a free slot runs a *late-binding* exchange —
//! it asks a chosen reservation's scheduler for a task, and the scheduler
//! answers with a concrete task (original or speculative) or a refusal.
//! Every message pays [`DecConfig::msg_latency`].
//!
//! Three policies share the machinery:
//!
//! - **Sparrow** (baseline): probe ratio 2, FCFS worker queues, and
//!   task-or-no-task responses (a no-task consumes the reservation);
//! - **Sparrow-SRPT** (the paper's aggressive baseline, §7.1): worker
//!   picks the queued job with the fewest remaining tasks, plus
//!   best-effort speculation;
//! - **Hopper**: worker picks by smallest *virtual size*, schedulers may
//!   *refuse* when a job is already at its desired speculation level
//!   (Pseudocode 2), refusals advertise the smallest unsatisfied job, and
//!   after `refusal_threshold` refusals the worker concludes the system is
//!   not slot-constrained and switches to Guideline 3 — a virtual-size-
//!   weighted random pick served with a non-refusable response
//!   (Pseudocode 3). Virtual-size updates are piggybacked on every
//!   scheduler→worker message (§5.3).

use std::collections::VecDeque;

use hopper_cluster::{
    ClusterConfig, CopyRef, DynEvent, DynamicsConfig, JobRun, JobSlab, MachineDynamics, MachineId,
    Machines, TaskRef,
};
use hopper_core::protocol::{
    pick_fcfs, pick_srpt, scheduler_accepts, FreeSlotEpisode, Reservation, ResponseKind,
    UnsatisfiedJob, WorkerAction,
};
use hopper_core::{virtual_size, BetaEstimator};
use hopper_metrics::{JobDigest, JobResult};
use hopper_sim::{EventQueue, SeedSequence, SimTime};
use hopper_spec::{Candidate, Speculator};
use hopper_workload::{ArrivalSource, Trace, TraceJob, TraceStream};
use rand::rngs::StdRng;
use rand::Rng;

/// Which decentralized scheduler to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecPolicy {
    /// Stock Sparrow: FCFS queues, batched power-of-two probes.
    Sparrow,
    /// Sparrow + SRPT worker queues + best-effort speculation (§7.1's
    /// aggressive baseline).
    SparrowSrpt,
    /// Decentralized Hopper (Pseudocodes 2 & 3).
    Hopper,
}

impl DecPolicy {
    /// Display name for experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            DecPolicy::Sparrow => "Sparrow",
            DecPolicy::SparrowSrpt => "Sparrow-SRPT",
            DecPolicy::Hopper => "Hopper(dec)",
        }
    }
}

/// Decentralized simulation configuration.
#[derive(Debug, Clone)]
pub struct DecConfig {
    /// Cluster shape. `handoff_ms` should be 0: Sparrow talks to
    /// long-lived executors shared across jobs (§6.1).
    pub cluster: ClusterConfig,
    /// Number of autonomous schedulers (10 in the paper's deployment, 50
    /// in its scaling simulations).
    pub num_schedulers: usize,
    /// Reservations per task (the probe ratio; 2 for Sparrow, 4 for
    /// Hopper, swept in Figures 5a and 11).
    pub probe_ratio: f64,
    /// One-way message latency between schedulers and workers.
    pub msg_latency: SimTime,
    /// Refusals before a worker concludes the system is not capacity
    /// constrained (Figure 5b; 2–3 suffice).
    pub refusal_threshold: usize,
    /// Straggler-scan period at each scheduler.
    pub scan_interval: SimTime,
    /// Speculation policy (shared by all jobs).
    pub speculator: Speculator,
    /// ε-fairness knob (§4.3): `Some(0.1)` guarantees every job at least
    /// `(1−ε)·S/N` slots via the unsatisfied-job channel; `None` disables.
    pub fairness_eps: Option<f64>,
    /// Root seed.
    pub seed: u64,
    /// Safety valve on total processed events.
    pub max_events: u64,
    /// Cluster-dynamics plane: machine speed heterogeneity, transient
    /// slowdowns, failures. The default ([`DynamicsConfig::off`]) is
    /// bit-identical to a dynamics-free build.
    pub dynamics: DynamicsConfig,
}

impl Default for DecConfig {
    fn default() -> Self {
        DecConfig {
            cluster: ClusterConfig {
                machines: 500,
                slots_per_machine: 2,
                handoff_ms: 0,
                ..Default::default()
            },
            num_schedulers: 10,
            probe_ratio: 4.0,
            msg_latency: SimTime::from_millis(1),
            refusal_threshold: 2,
            scan_interval: SimTime::from_millis(200),
            speculator: Speculator::Late(hopper_spec::SpecConfig {
                min_elapsed: SimTime::from_millis(300),
                ..Default::default()
            }),
            fairness_eps: Some(0.1),
            seed: 1,
            max_events: 500_000_000,
            dynamics: DynamicsConfig::off(),
        }
    }
}

/// Aggregate counters of one decentralized run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DecStats {
    /// Original copies launched.
    pub orig_launched: u64,
    /// Speculative copies launched.
    pub spec_launched: u64,
    /// Tasks won by a speculative copy.
    pub spec_won: u64,
    /// Reservation messages sent.
    pub reservations: u64,
    /// Worker→scheduler responses sent.
    pub responses: u64,
    /// Scheduler refusals sent.
    pub refusals: u64,
    /// Episodes that switched to Guideline 3 (refusal threshold reached).
    pub guideline3_switches: u64,
    /// Events processed.
    pub events: u64,
    /// Completion time of the last job.
    pub makespan: SimTime,
}

impl DecStats {
    /// Flatten into the driver-agnostic stats core shared with the
    /// centralized driver. `messages` sums the *protocol* messages —
    /// reservations, worker responses, and refusals (the counters the
    /// paper's overhead discussion is about). Kill notifications to
    /// losing sibling copies also cross the wire but are not counted
    /// anywhere in `DecStats`, so they are not included here.
    pub fn core(&self) -> hopper_metrics::CoreStats {
        hopper_metrics::CoreStats {
            orig_launched: self.orig_launched,
            spec_launched: self.spec_launched,
            spec_won: self.spec_won,
            events: self.events,
            messages: self.reservations + self.responses + self.refusals,
            makespan: self.makespan,
        }
    }
}

/// Result of a decentralized run.
#[derive(Debug, Clone)]
pub struct DecOutput {
    /// Per-job outcomes (sorted by job id). Empty for streaming runs
    /// ([`run_stream`]); their per-job statistics live in `digest`.
    pub jobs: Vec<JobResult>,
    /// Aggregate counters.
    pub stats: DecStats,
    /// Constant-memory duration statistics, folded at each completion
    /// (identical between materialized and streaming runs of a seed).
    pub digest: JobDigest,
    /// Maximum simultaneously live jobs — the streaming pipeline's
    /// memory yardstick (completed jobs retire their task/copy state).
    pub live_high_water: usize,
}

impl DecOutput {
    /// Mean job duration in milliseconds (exact in both modes).
    pub fn mean_duration_ms(&self) -> f64 {
        if self.jobs.is_empty() {
            self.digest.mean_ms()
        } else {
            hopper_metrics::mean_duration(&self.jobs)
        }
    }
}

/// Run `trace` under decentralized `policy`, retaining per-job results.
pub fn run(trace: &Trace, policy: DecPolicy, cfg: &DecConfig) -> DecOutput {
    Decentral::new(ArrivalSource::from_trace(trace), policy, cfg, true).run()
}

/// Run a lazy arrival stream with O(active jobs) job state: arrivals are
/// injected as simulation time advances, completed jobs retire their
/// task/copy state, and per-job results fold into the output's digest
/// (`DecOutput::jobs` is empty). Simulation decisions are bit-identical
/// to [`run`] on the materialized form of the same stream.
pub fn run_stream(stream: TraceStream, policy: DecPolicy, cfg: &DecConfig) -> DecOutput {
    Decentral::new(ArrivalSource::from_stream(stream), policy, cfg, false).run()
}

#[derive(Debug, Clone)]
enum Ev {
    /// Reservation lands in a worker queue.
    Reservation { worker: usize, res: Reservation },
    /// Worker offers its free slot to `job`'s scheduler. `inc` is the
    /// worker's incarnation at offer time: a machine failure bumps it, so
    /// replies referencing a slot that died with the machine are
    /// recognizably stale (always 0 while dynamics are off).
    Response {
        worker: usize,
        job: usize,
        kind: ResponseKind,
        inc: u64,
    },
    /// Scheduler assigns a task to the worker's promised slot (echoes the
    /// offer's incarnation).
    Assign {
        worker: usize,
        job: usize,
        task: TaskRef,
        speculative: bool,
        inc: u64,
    },
    /// Scheduler declines the offer (with optional unsatisfied-job info;
    /// echoes the offer's incarnation).
    Refusal {
        worker: usize,
        job: usize,
        unsatisfied: Option<UnsatisfiedJob>,
        inc: u64,
    },
    /// A copy finished on `worker`.
    Finish {
        job: usize,
        copy: CopyRef,
        worker: usize,
    },
    /// Kill notification reaches the worker running a lost sibling
    /// (stamped with the worker's incarnation at race-resolution time —
    /// the slot return is dropped if the machine failed in flight).
    Kill { worker: usize, job: usize, inc: u64 },
    /// Periodic straggler scan (all schedulers).
    Scan,
    /// Machine-dynamics incident (slowdown / failure / recovery). Only
    /// ever queued when `DecConfig::dynamics` is enabled.
    Dyn(DynEvent),
}

struct WorkerState {
    queue: Vec<Reservation>,
    /// Slots neither running a copy nor promised to an in-flight episode.
    free: usize,
    /// Active late-binding episode (at most one in flight per worker).
    episode: Option<FreeSlotEpisode>,
    /// Value of the driver's completed-job counter when this queue last
    /// purged finished jobs' reservations. While no further job has
    /// completed, the queue provably holds only live reservations and the
    /// per-touch O(queue) purge scan is skipped.
    purged_at: u64,
}

struct Decentral<'a> {
    policy: DecPolicy,
    cfg: &'a DecConfig,
    queue: EventQueue<Ev>,
    machines: Machines,
    workers: Vec<WorkerState>,
    /// Undelivered arrivals, merged with `queue` by the run loop (an
    /// arrival precedes any queued event at the same instant — the
    /// order the historical pre-loaded arrival events produced).
    arrivals: ArrivalSource<'a>,
    /// Live jobs' runtime state; completed jobs are retired (their
    /// task/copy state dropped, stats folded into accumulators).
    jobs: JobSlab,
    /// Total jobs of the run (`jobs` only holds the live ones).
    num_jobs: usize,
    /// Placement randomness for lazily constructed `JobRun`s; consumed
    /// in arrival (= id) order, exactly as the eager constructor did.
    placement_rng: StdRng,
    /// Whether per-job `JobResult`s are retained (false for streaming).
    retain_jobs: bool,
    done: Vec<bool>,
    /// Whether the job's arrival has been processed; jobs are invisible
    /// to the scan rescue path until then.
    arrived: Vec<bool>,
    /// Live job ids in ascending order (arrivals come in id order, so a
    /// push maintains it; completion removes by binary search). Scans
    /// and dynamics walk this instead of every job id ever issued —
    /// identical iteration to the old `0..n` loops with their
    /// done/arrived guards, but O(live), and structurally incapable of
    /// touching a retired job.
    live: Vec<usize>,
    active_count: usize,
    arrivals_pending: usize,
    /// Scheduler-side occupancy (running + in-flight assignments) per job.
    occupied: Vec<usize>,
    pending_orig: Vec<usize>,
    /// Originals with an assignment in flight (guards against two
    /// concurrent slot offers claiming the same task).
    claimed: Vec<std::collections::HashSet<TaskRef>>,
    /// Live (unconsumed) reservations per job; when a job still has
    /// launchable work but its probes were all consumed (e.g. by stale
    /// speculative assignments), the scheduler re-probes at the next scan.
    live_res: Vec<usize>,
    /// Speculation candidates per job, consumed front-first (deque — the
    /// old `Vec::remove(0)` shifted the whole list per pop).
    candidates: Vec<VecDeque<Candidate>>,
    /// job → owning scheduler (round-robin).
    owner: Vec<usize>,
    /// scheduler → its *live* jobs in ascending id order (round-robin
    /// partition; insert at arrival, remove at retirement). The refusal
    /// path walks this instead of every job — and, per the retirement
    /// invariant, can never advertise a retired job.
    sched_jobs: Vec<Vec<usize>>,
    /// Jobs completed so far (the epoch for worker-queue purges).
    done_count: u64,
    /// Per-scheduler β estimator (learned from its own jobs' completions).
    beta_est: Vec<BetaEstimator>,
    scan_armed: bool,
    /// Machine speed/availability state; `None` when dynamics are off.
    dynamics: Option<MachineDynamics>,
    /// Per-worker incarnation, bumped on machine failure. In-flight
    /// messages that reference a worker slot carry the incarnation they
    /// were stamped with; a mismatch on delivery means the slot died with
    /// the machine.
    dyn_inc: Vec<u64>,
    rng: StdRng,
    results: Vec<JobResult>,
    stats: DecStats,
    /// Online duration statistics, folded at each retirement.
    digest: JobDigest,
    /// Event-type counters (diagnostics): arrive, reservation, response,
    /// assign, refusal, finish, kill, scan, dyn.
    ev_counts: [u64; 9],
}

impl<'a> Decentral<'a> {
    fn new(
        arrivals: ArrivalSource<'a>,
        policy: DecPolicy,
        cfg: &'a DecConfig,
        retain_jobs: bool,
    ) -> Self {
        let seq = SeedSequence::new(cfg.seed);
        let n = arrivals.total_jobs();
        let mut queue = EventQueue::new();
        let mut dynamics = cfg
            .dynamics
            .enabled()
            .then(|| MachineDynamics::new(cfg.dynamics.clone(), cfg.cluster.machines, &seq));
        if let Some(d) = dynamics.as_mut() {
            for (at, ev) in d.initial_incidents() {
                queue.push(at, Ev::Dyn(ev));
            }
        }
        Decentral {
            policy,
            cfg,
            queue,
            machines: Machines::new(&cfg.cluster),
            workers: (0..cfg.cluster.machines)
                .map(|_| WorkerState {
                    queue: Vec::new(),
                    free: cfg.cluster.slots_per_machine,
                    episode: None,
                    purged_at: 0,
                })
                .collect(),
            arrivals,
            num_jobs: n,
            placement_rng: seq.child_rng(0xB10C),
            retain_jobs,
            done: vec![false; n],
            arrived: vec![false; n],
            live: Vec::new(),
            active_count: 0,
            arrivals_pending: n,
            occupied: vec![0; n],
            pending_orig: vec![0; n],
            claimed: vec![std::collections::HashSet::new(); n],
            live_res: vec![0; n],
            candidates: vec![VecDeque::new(); n],
            owner: (0..n).map(|j| j % cfg.num_schedulers.max(1)).collect(),
            sched_jobs: vec![Vec::new(); cfg.num_schedulers.max(1)],
            done_count: 0,
            beta_est: (0..cfg.num_schedulers.max(1))
                .map(|_| BetaEstimator::with_prior(1.5))
                .collect(),
            scan_armed: false,
            dynamics,
            dyn_inc: vec![0; cfg.cluster.machines],
            rng: seq.child_rng(0xDEC),
            results: Vec::with_capacity(if retain_jobs { n } else { 0 }),
            stats: DecStats::default(),
            digest: JobDigest::new(),
            ev_counts: [0; 9],
            jobs: JobSlab::new(n),
        }
    }

    /// Effective speed of worker `w`'s machine (1.0 when dynamics are off).
    fn machine_speed(&self, w: usize) -> f64 {
        self.dynamics
            .as_ref()
            .map_or(1.0, |d| d.speed(MachineId(w)))
    }

    /// Whether worker `w`'s machine is currently up.
    fn worker_up(&self, w: usize) -> bool {
        self.dynamics.as_ref().is_none_or(|d| d.is_up(MachineId(w)))
    }

    /// The scheduler's current view of a job's virtual size (Pseudocode 1
    /// inputs, computed locally from the scheduler's own state).
    fn vsize(&self, j: usize) -> f64 {
        let beta = {
            let est = &self.beta_est[self.owner[j]];
            if est.observations() >= 20 {
                est.beta()
            } else {
                self.jobs[j].spec.beta
            }
        };
        virtual_size(
            self.jobs[j].current_remaining() as f64,
            beta,
            self.jobs[j].alpha().max(1.0),
        )
    }

    fn run(mut self) -> DecOutput {
        loop {
            // Merge the arrival source with the event queue; at equal
            // instants the arrival is delivered first (see
            // `ArrivalSource`'s ordering contract).
            let arrival_due = match self.arrivals.peek_arrival() {
                Some(at) => match self.queue.peek_time() {
                    Some(qt) => at <= qt,
                    None => true,
                },
                None => false,
            };
            if arrival_due {
                let spec = self.arrivals.pop().expect("peeked arrival exists");
                let now = spec.arrival;
                self.queue.advance_to(now);
                self.stats.events += 1;
                self.ev_counts[0] += 1;
                self.on_job_arrive(spec, now);
                continue;
            }
            let Some((now, ev)) = self.queue.pop() else {
                break;
            };
            self.stats.events += 1;
            if self.stats.events > self.cfg.max_events {
                let stuck: Vec<String> = self
                    .live
                    .iter()
                    .copied()
                    .take(5)
                    .map(|j| {
                        format!(
                            "job {j}: pending={} claimed={} occupied={} live_res={} cands={} running={} total_rem={} current_rem={} vsize={:.1}",
                            self.pending_orig[j],
                            self.claimed[j].len(),
                            self.occupied[j],
                            self.live_res[j],
                            self.candidates[j].len(),
                            self.jobs[j].occupied_slots(),
                            self.jobs[j].total_remaining(),
                            self.jobs[j].current_remaining(),
                            self.vsize(j),
                        )
                    })
                    .collect();
                let active_eps = self.workers.iter().filter(|w| w.episode.is_some()).count();
                let queued_res: usize = self.workers.iter().map(|w| w.queue.len()).sum();
                panic!(
                    "event budget exceeded ({}) at t={now}; active_count={} pending_events={} worker_episodes={} queued_reservations={} ev_counts(arr/res/resp/asgn/ref/fin/kill/scan)={:?} unfinished: {stuck:#?}",
                    self.policy.name(),
                    self.active_count,
                    self.queue.len(),
                    active_eps,
                    queued_res,
                    self.ev_counts,
                );
            }
            self.ev_counts[match &ev {
                Ev::Reservation { .. } => 1,
                Ev::Response { .. } => 2,
                Ev::Assign { .. } => 3,
                Ev::Refusal { .. } => 4,
                Ev::Finish { .. } => 5,
                Ev::Kill { .. } => 6,
                Ev::Scan => 7,
                Ev::Dyn(_) => 8,
            }] += 1;
            match ev {
                Ev::Reservation { worker, res } => {
                    // A job can complete while its reservation is still in
                    // flight. The pre-epoch code parked it and purged it in
                    // the very next statement (the unconditional queue
                    // purge); dropping it on delivery is the same behavior,
                    // and keeps the epoch-gated purge skip sound — a parked
                    // reservation is always live at park time.
                    //
                    // A reservation reaching a down machine is lost with
                    // it (the scheduler re-probes at the next scan).
                    if !self.worker_up(worker) {
                        self.live_res[res.job as usize] =
                            self.live_res[res.job as usize].saturating_sub(1);
                    } else if !self.done[res.job as usize] {
                        self.workers[worker].queue.push(res);
                    }
                    self.maybe_start_episode(worker, now);
                }
                Ev::Response {
                    worker,
                    job,
                    kind,
                    inc,
                } => self.on_response(worker, job, kind, inc, now),
                Ev::Assign {
                    worker,
                    job,
                    task,
                    speculative,
                    inc,
                } => self.on_assign(worker, job, task, speculative, inc, now),
                Ev::Refusal {
                    worker,
                    job,
                    unsatisfied,
                    inc,
                } => self.on_refusal(worker, job, unsatisfied, inc, now),
                Ev::Finish { job, copy, worker } => self.on_finish(job, copy, worker, now),
                Ev::Kill { worker, job, inc } => {
                    // The lost sibling's copy is accounted gone either way;
                    // its slot only returns if the machine has not failed
                    // since the kill was sent (incarnation match).
                    self.occupied[job] = self.occupied[job].saturating_sub(1);
                    if inc == self.dyn_inc[worker] {
                        self.workers[worker].free += 1;
                        self.machines.release_to(MachineId(worker), job);
                        self.maybe_start_episode(worker, now);
                    }
                }
                Ev::Dyn(ev) => {
                    // The incident chain dies with the workload (see the
                    // centralized driver): drop unapplied once all jobs
                    // completed so the queue drains.
                    if self.active_count == 0 && self.arrivals_pending == 0 {
                        continue;
                    }
                    self.on_dyn(ev, now);
                }
                Ev::Scan => {
                    self.scan_armed = false;
                    // Both scan passes walk the live list (ascending id —
                    // the order the old `0..n` loops visited live jobs
                    // in), so scan cost is O(live jobs), not O(all jobs
                    // ever arrived).
                    for idx in 0..self.live.len() {
                        let j = self.live[idx];
                        if self.jobs[j].occupied_slots() > 0 {
                            self.candidates[j] =
                                self.cfg.speculator.candidates(&self.jobs[j], now).into();
                        }
                    }
                    // Re-probe jobs whose reservations were all consumed
                    // while launchable work remains (otherwise they starve).
                    for idx in 0..self.live.len() {
                        let j = self.live[idx];
                        if self.live_res[j] > 0 {
                            continue;
                        }
                        let launchable = self.pending_orig[j] > 0 || !self.candidates[j].is_empty();
                        if launchable {
                            let want = ((self.jobs[j].current_remaining() as f64
                                * self.cfg.probe_ratio)
                                .ceil() as usize)
                                .max(1);
                            self.send_probes(j, want);
                        }
                    }
                    self.arm_scan();
                    // Re-poll dormant workers: new candidates may make
                    // previously-refusing jobs worth offering again.
                    for w in 0..self.workers.len() {
                        self.maybe_start_episode(w, now);
                    }
                }
            }
        }
        assert!(
            self.done_count as usize == self.num_jobs && self.arrivals_pending == 0,
            "decentralized run drained with {} of {} jobs finished",
            self.done_count,
            self.num_jobs
        );
        let mut jobs = self.results;
        jobs.sort_by_key(|r| r.job);
        DecOutput {
            jobs,
            stats: self.stats,
            digest: self.digest,
            live_high_water: self.jobs.high_water(),
        }
    }

    fn arm_scan(&mut self) {
        if !self.scan_armed && (self.active_count > 0 || self.arrivals_pending > 0) {
            self.queue.push_after(self.cfg.scan_interval, Ev::Scan);
            self.scan_armed = true;
        }
    }

    /// Build job `j`'s runtime state and probe for its tasks. Lazy
    /// construction consumes `placement_rng` in arrival (= id) order —
    /// the same draw sequence the historical build-everything-up-front
    /// constructor used, so results are bit-identical.
    fn on_job_arrive(&mut self, spec: TraceJob, now: SimTime) {
        let j = spec.id;
        debug_assert_eq!(spec.arrival, now);
        let _ = now;
        let job = JobRun::new(spec, &self.cfg.cluster, &mut self.placement_rng);
        self.pending_orig[j] = job
            .phases()
            .iter()
            .filter(|p| p.eligible)
            .map(|p| p.num_tasks())
            .sum();
        self.jobs.insert(j, job);
        self.arrivals_pending -= 1;
        self.active_count += 1;
        self.arrived[j] = true;
        debug_assert!(self.live.last().is_none_or(|&last| last < j));
        self.live.push(j);
        self.sched_jobs[self.owner[j]].push(j);
        self.arm_scan();
        // Place probe_ratio × tasks reservations. Input tasks probe their
        // replica machines first (§6.1), the remainder go to random
        // workers.
        let tasks = self.jobs[j].spec.size_tasks().max(1);
        let probes = ((tasks as f64 * self.cfg.probe_ratio).ceil() as usize).max(1);
        let vsize = self.vsize(j);
        let remaining = self.jobs[j].current_remaining() as f64;
        let mut targets: Vec<usize> = Vec::with_capacity(probes);
        for t in &self.jobs[j].phases()[0].tasks {
            for r in &t.replicas {
                if targets.len() < probes {
                    targets.push(r.0);
                }
            }
        }
        while targets.len() < probes {
            targets.push(self.rng.gen_range(0..self.workers.len()));
        }
        for w in targets {
            self.stats.reservations += 1;
            self.live_res[j] += 1;
            self.queue.push_after(
                self.cfg.msg_latency,
                Ev::Reservation {
                    worker: w,
                    res: Reservation {
                        scheduler: self.owner[j],
                        job: j as u64,
                        virtual_size: vsize,
                        remaining_tasks: remaining,
                    },
                },
            );
        }
    }

    /// Send `count` fresh reservations for `job` to random workers.
    fn send_probes(&mut self, job: usize, count: usize) {
        let vsize = self.vsize(job);
        let rem = self.jobs[job].current_remaining() as f64;
        for _ in 0..count {
            let w = self.rng.gen_range(0..self.workers.len());
            self.stats.reservations += 1;
            self.live_res[job] += 1;
            self.queue.push_after(
                self.cfg.msg_latency,
                Ev::Reservation {
                    worker: w,
                    res: Reservation {
                        scheduler: self.owner[job],
                        job: job as u64,
                        virtual_size: vsize,
                        remaining_tasks: rem,
                    },
                },
            );
        }
    }

    /// Start a late-binding episode if the worker is up and has a free
    /// slot, no episode in flight, and a non-empty queue.
    fn maybe_start_episode(&mut self, w: usize, now: SimTime) {
        if !self.worker_up(w) {
            return;
        }
        // Purge reservations of finished jobs first (piggybacked
        // completion notifications). Skipped while no job has completed
        // since this worker's last purge — every queued reservation was
        // live then and only live jobs enqueue new ones, so the scan would
        // remove nothing.
        if self.workers[w].purged_at != self.done_count {
            let done = &self.done;
            self.workers[w].queue.retain(|r| !done[r.job as usize]);
            self.workers[w].purged_at = self.done_count;
        }
        #[cfg(debug_assertions)]
        assert!(
            !self.workers[w]
                .queue
                .iter()
                .any(|r| self.done[r.job as usize]),
            "stale reservation survived the epoch-gated purge"
        );
        if self.workers[w].free == 0
            || self.workers[w].episode.is_some()
            || self.workers[w].queue.is_empty()
        {
            return;
        }
        self.workers[w].free -= 1; // promise the slot to this episode
        self.workers[w].episode = Some(FreeSlotEpisode::new(self.cfg.refusal_threshold));
        self.episode_step(w, now);
    }

    /// Advance the worker's episode by one protocol step.
    fn episode_step(&mut self, w: usize, _now: SimTime) {
        if self.workers[w].episode.is_none() {
            return; // defensive: stray refusal after the episode resolved
        }
        let action = match self.policy {
            DecPolicy::Sparrow => match pick_fcfs(&self.workers[w].queue) {
                Some(r) => WorkerAction::Respond {
                    scheduler: r.scheduler,
                    job: r.job,
                    kind: ResponseKind::NonRefusable,
                },
                None => WorkerAction::Idle,
            },
            DecPolicy::SparrowSrpt => match pick_srpt(&self.workers[w].queue) {
                Some(r) => WorkerAction::Respond {
                    scheduler: r.scheduler,
                    job: r.job,
                    kind: ResponseKind::NonRefusable,
                },
                None => WorkerAction::Idle,
            },
            DecPolicy::Hopper => {
                let mut ep = self.workers[w].episode.take().expect("episode in flight");
                if ep.refusals() >= self.cfg.refusal_threshold {
                    self.stats.guideline3_switches += 1;
                }
                let action = ep.next_action(&self.workers[w].queue, &mut self.rng);
                self.workers[w].episode = Some(ep);
                action
            }
        };
        match action {
            WorkerAction::Respond {
                scheduler,
                job,
                kind,
            } => {
                let _ = scheduler;
                if let Some(ep) = self.workers[w].episode.as_mut() {
                    ep.mark_probed(scheduler);
                }
                self.stats.responses += 1;
                self.queue.push_after(
                    self.cfg.msg_latency,
                    Ev::Response {
                        worker: w,
                        job: job as usize,
                        kind,
                        inc: self.dyn_inc[w],
                    },
                );
            }
            WorkerAction::Idle => {
                // Episode dies; slot returns to the free pool.
                self.workers[w].episode = None;
                self.workers[w].free += 1;
            }
        }
    }

    /// Scheduler-side handling of a worker's slot offer (Pseudocode 2).
    /// `inc` is the offer's worker incarnation, echoed into the reply.
    fn on_response(
        &mut self,
        worker: usize,
        job: usize,
        kind: ResponseKind,
        inc: u64,
        now: SimTime,
    ) {
        if self.done[job] {
            self.send_refusal(worker, job, inc, now);
            return;
        }
        let accepts = match self.policy {
            // Sparrow variants never refuse; they answer task-or-no-task.
            DecPolicy::Sparrow | DecPolicy::SparrowSrpt => true,
            DecPolicy::Hopper => {
                let below_fair_floor = self.below_fair_floor(job);
                scheduler_accepts(kind, self.occupied[job] as f64, self.vsize(job))
                    || below_fair_floor
            }
        };
        // Under Hopper an accepted offer always places work: the virtual
        // size *is* the speculation budget, so when no pending original or
        // flagged candidate exists the scheduler sends an extra speculative
        // copy of its longest-remaining running task ("faster clearing of
        // tasks is overall beneficial", §4.1 footnote; non-refusable offers
        // are Guideline-3 extra slots beyond the virtual size).
        let allow_extra_spec = matches!(self.policy, DecPolicy::Hopper);
        let launch = if accepts {
            self.pick_work(job, worker, allow_extra_spec, now)
        } else {
            None
        };
        match launch {
            Some((task, speculative)) => {
                self.occupied[job] += 1;
                if speculative {
                    // Consume the candidate so the next offer goes to the
                    // next straggler.
                    self.candidates[job].retain(|c| c.task != task);
                } else {
                    self.pending_orig[job] -= 1;
                }
                self.queue.push_after(
                    self.cfg.msg_latency,
                    Ev::Assign {
                        worker,
                        job,
                        task,
                        speculative,
                        inc,
                    },
                );
            }
            None => self.send_refusal(worker, job, inc, now),
        }
    }

    /// Whether `job` is below its ε-fair share `(1−ε)·S/N` (§4.3). The
    /// active-job count is piggybacked on scheduler↔worker traffic, so
    /// every scheduler tracks it without extra messages.
    fn below_fair_floor(&self, job: usize) -> bool {
        let Some(eps) = self.cfg.fairness_eps else {
            return false;
        };
        if self.active_count == 0 {
            return false;
        }
        let fair = self.cfg.cluster.total_slots() as f64 / self.active_count as f64;
        // Capped at the job's virtual size, exactly like the centralized
        // projection: fairness never forces slots a job cannot use.
        let floor = ((1.0 - eps) * fair).floor().min(self.vsize(job));
        (self.occupied[job] as f64) < floor
    }

    /// Choose the next work item for `job` on `worker`: pending original
    /// (preferring data-local, skipping tasks already claimed by an
    /// in-flight assignment) first, then the best speculation candidate.
    fn pick_work(
        &mut self,
        job: usize,
        worker: usize,
        allow_extra_spec: bool,
        now: SimTime,
    ) -> Option<(TaskRef, bool)> {
        if self.pending_orig[job] > 0 {
            if let Some(task) = self.next_unclaimed_original(job, MachineId(worker)) {
                self.claimed[job].insert(task);
                return Some((task, false));
            }
        }
        while let Some(cand) = self.candidates[job].front().copied() {
            let t = &self.jobs[job].phases()[cand.task.phase].tasks[cand.task.task];
            if t.is_finished() || t.running_copies() == 0 || t.running_copies() >= 2 {
                self.candidates[job].pop_front();
                continue;
            }
            return Some((cand.task, true));
        }
        if allow_extra_spec {
            // Longest-estimated-remaining running task with copy headroom,
            // but only where a fresh copy could plausibly finish first
            // (t_rem > t_new — the same benefit rule the §3 example uses).
            // O(log) off the job's solo-running index instead of a full
            // `observe_running` sweep.
            if let Some(task) = self.jobs[job].best_extra_speculation(now) {
                return Some((task, true));
            }
        }
        None
    }

    /// First unlaunched, unclaimed original in eligible phases, preferring
    /// one whose input is local to `m`.
    ///
    /// Walks the job's pending-task indices instead of every task: the
    /// preferred pick is the minimum of the first unclaimed replica-free
    /// task and the first unclaimed task local to `m` (the old scan
    /// returned whichever came first in `(phase, task)` order), and the
    /// fallback is the first unclaimed pending task overall. The claimed
    /// set only holds in-flight assignments, so the skip is a handful of
    /// probes, not a rescan.
    fn next_unclaimed_original(&self, job: usize, m: MachineId) -> Option<TaskRef> {
        let jr = &self.jobs[job];
        let claimed = &self.claimed[job];
        let no_pref = jr.pending_no_replica_tasks().find(|t| !claimed.contains(t));
        let local = jr.pending_local_tasks(m).find(|t| !claimed.contains(t));
        let picked = match (no_pref, local) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        }
        .or_else(|| jr.pending_tasks().find(|t| !claimed.contains(t)));
        #[cfg(debug_assertions)]
        assert_eq!(
            picked,
            self.scan_next_unclaimed_original(job, m),
            "pending index disagrees with the task scan"
        );
        picked
    }

    /// The pre-index O(tasks) implementation, kept as the debug oracle.
    /// "Pending" is `needs_original` (no running copy, unfinished) rather
    /// than "never launched", so tasks requeued by a machine failure are
    /// assignable again.
    #[cfg(debug_assertions)]
    fn scan_next_unclaimed_original(&self, job: usize, m: MachineId) -> Option<TaskRef> {
        let mut fallback = None;
        for (pi, p) in self.jobs[job].phases().iter().enumerate() {
            if !p.eligible || p.is_complete() {
                continue;
            }
            for (ti, t) in p.tasks.iter().enumerate() {
                let tr = TaskRef::new(pi, ti);
                if !t.needs_original() || self.claimed[job].contains(&tr) {
                    continue;
                }
                if t.replicas.is_empty() || t.replicas.contains(&m) {
                    return Some(tr);
                }
                if fallback.is_none() {
                    fallback = Some(tr);
                }
            }
        }
        fallback
    }

    fn send_refusal(&mut self, worker: usize, job: usize, inc: u64, now: SimTime) {
        let _ = now;
        self.stats.refusals += 1;
        // Advertise this scheduler's smallest unsatisfied job (Pseudocode
        // 3's refusal payload): below its virtual size with launchable
        // work.
        let sched = self.owner.get(job).copied().unwrap_or(0);
        let mut best: Option<UnsatisfiedJob> = None;
        // Only this scheduler's own *live* jobs are candidates — walk its
        // live partition (ascending id, the order the old all-jobs scan
        // visited them in; membership = arrived ∧ not retired) instead of
        // the whole cluster.
        for &j in &self.sched_jobs[sched] {
            debug_assert_eq!(self.owner[j], sched);
            debug_assert!(self.arrived[j] && !self.done[j]);
            if j == job {
                continue;
            }
            let v = self.vsize(j);
            let launchable = self.pending_orig[j] > 0 || !self.candidates[j].is_empty();
            if !launchable {
                continue;
            }
            // ε-fairness (§4.3), decentralized approximation: a job below
            // its (1−ε) fair-share floor is advertised as unsatisfied even
            // when it is at its virtual size, so the refusal channel tops
            // it up. Deficient jobs keep their virtual-size order — the
            // serial refusal channel delivers one slot per round, and a
            // hard priority inversion (large deficient jobs pre-empting
            // every small job) costs far more than the guarantee is worth
            // (see DESIGN.md, deviations).
            // Fairness floors are capped at the job's own virtual size
            // (exactly like the centralized projection), so the advertised
            // set is simply the unsatisfied jobs; ε's remaining effect is
            // the acceptance forcing in `on_response`. See DESIGN.md —
            // the decentralized ε enforcement is deliberately conservative.
            let advertised = ((self.occupied[j] as f64) < v).then_some(v);
            if let Some(adv) = advertised {
                let better = best.is_none_or(|b| adv < b.virtual_size);
                if better {
                    best = Some(UnsatisfiedJob {
                        scheduler: sched,
                        job: j as u64,
                        virtual_size: adv,
                    });
                }
            }
        }
        self.queue.push_after(
            self.cfg.msg_latency,
            Ev::Refusal {
                worker,
                job,
                unsatisfied: best,
                inc,
            },
        );
    }

    fn on_refusal(
        &mut self,
        worker: usize,
        job: usize,
        unsatisfied: Option<UnsatisfiedJob>,
        inc: u64,
        now: SimTime,
    ) {
        // The offer this refusal answers referenced a slot that died with
        // the machine: everything about the episode is already torn down.
        if inc != self.dyn_inc[worker] {
            return;
        }
        match self.policy {
            DecPolicy::Sparrow | DecPolicy::SparrowSrpt => {
                // Sparrow consumes the reservation on no-task and moves on.
                if let Some(pos) = self.workers[worker]
                    .queue
                    .iter()
                    .position(|r| r.job as usize == job)
                {
                    self.workers[worker].queue.remove(pos);
                    self.live_res[job] = self.live_res[job].saturating_sub(1);
                }
                self.episode_step(worker, now);
            }
            DecPolicy::Hopper => {
                // Reservations stay (the job may want Guideline-3 extras
                // later); the episode just records the refusal.
                let sched = self.owner.get(job).copied().unwrap_or(0);
                if let Some(ep) = self.workers[worker].episode.as_mut() {
                    ep.record_refusal(sched, job as u64, unsatisfied);
                }
                self.episode_step(worker, now);
            }
        }
    }

    /// A task assignment arrives at the worker: consume a reservation and
    /// start executing.
    fn on_assign(
        &mut self,
        worker: usize,
        job: usize,
        task: TaskRef,
        speculative: bool,
        inc: u64,
        now: SimTime,
    ) {
        if !speculative {
            self.claimed[job].remove(&task);
        }
        // The promised slot died with the machine (failure while the
        // assignment was in flight): undo the scheduler-side accounting
        // and return the original to the pending pool if it still needs
        // one — but touch no worker state, the episode and slot are gone.
        // A completed (retired) job's tasks are all finished, so the
        // done-guard preserves the old `needs_original()` answer without
        // dereferencing retired state.
        if inc != self.dyn_inc[worker] {
            self.occupied[job] = self.occupied[job].saturating_sub(1);
            if !speculative
                && !self.done[job]
                && self.jobs[job].phases()[task.phase].tasks[task.task].needs_original()
            {
                self.pending_orig[job] += 1;
            }
            return;
        }
        // Episode resolved successfully; the promised slot is consumed.
        self.workers[worker].episode = None;
        // Consume one reservation of this job at this worker (if present).
        if let Some(pos) = self.workers[worker]
            .queue
            .iter()
            .position(|r| r.job as usize == job)
        {
            self.workers[worker].queue.remove(pos);
            self.live_res[job] = self.live_res[job].saturating_sub(1);
        }
        // Validate against races: the job may have completed — and been
        // retired — or the task may have finished while the assignment
        // was in flight. (An original is live exactly when the task still
        // needs one — `needs_original` also covers tasks a machine
        // failure requeued, whose earlier copies were all killed.) A
        // retired job is never dereferenced: done ⇒ every task finished ⇒
        // stale, and the old needs_original() re-check answered false.
        let stale = self.done[job] || {
            let t = &self.jobs[job].phases()[task.phase].tasks[task.task];
            t.is_finished()
                || (speculative && t.running_copies() == 0)
                || (!speculative && !t.needs_original())
        };
        if stale {
            self.occupied[job] = self.occupied[job].saturating_sub(1);
            if !speculative && !self.done[job] {
                // Return the unlaunched original to the pending pool only
                // if it truly is still pending.
                let t = &self.jobs[job].phases()[task.phase].tasks[task.task];
                if t.needs_original() {
                    self.pending_orig[job] += 1;
                }
            }
            self.workers[worker].free += 1;
            self.maybe_start_episode(worker, now);
            return;
        }
        self.machines.occupy_for(MachineId(worker), job);
        let speed = self.machine_speed(worker);
        let (copy, dur) = self.jobs[job].launch_copy_at_speed(
            task,
            MachineId(worker),
            speculative,
            now,
            SimTime::ZERO,
            &self.cfg.cluster,
            &mut self.rng,
            speed,
        );
        if speculative {
            self.stats.spec_launched += 1;
        } else {
            self.stats.orig_launched += 1;
        }
        self.queue.push(now + dur, Ev::Finish { job, copy, worker });
        // Piggyback a virtual-size update on this assignment for all of
        // the job's reservations parked at this worker (§5.3).
        let v = self.vsize(job);
        let rem = self.jobs[job].current_remaining() as f64;
        for r in self.workers[worker].queue.iter_mut() {
            if r.job as usize == job {
                r.virtual_size = v;
                r.remaining_tasks = rem;
            }
        }
        self.maybe_start_episode(worker, now);
    }

    /// Apply one machine-dynamics incident.
    fn on_dyn(&mut self, ev: DynEvent, now: SimTime) {
        let out = self
            .dynamics
            .as_mut()
            .expect("dyn event without dynamics plane")
            .apply(ev);
        for (delay, next) in out.next {
            self.queue.push(now + delay, Ev::Dyn(next));
        }
        let m = ev.machine();
        let w = m.0;
        match ev {
            DynEvent::SlowdownStart(_) | DynEvent::SlowdownEnd(_) => {
                let ratio = out.rescale_ratio.expect("speed change carries a ratio");
                // Only live jobs can have running copies; the live list
                // keeps the per-incident cost proportional to the live
                // workload, not the whole stream.
                for idx in 0..self.live.len() {
                    let j = self.live[idx];
                    for (copy, finish) in self.jobs[j].rescale_machine(m, now, ratio) {
                        self.queue.push(
                            finish,
                            Ev::Finish {
                                job: j,
                                copy,
                                worker: w,
                            },
                        );
                    }
                }
            }
            DynEvent::Fail(_) => {
                // Worker-side teardown: parked reservations, the in-flight
                // episode, and every slot die with the machine. Replies to
                // messages already in flight are invalidated by the
                // incarnation bump.
                self.dyn_inc[w] += 1;
                for r in std::mem::take(&mut self.workers[w].queue) {
                    self.live_res[r.job as usize] = self.live_res[r.job as usize].saturating_sub(1);
                }
                self.workers[w].episode = None;
                self.workers[w].free = 0;
                // Scheduler-side: killed copies leave the occupancy
                // accounting; requeued tasks get fresh probes immediately
                // (their old reservations may be anywhere, but the pending
                // original needs the re-dispatch advertised).
                for idx in 0..self.live.len() {
                    let j = self.live[idx];
                    let fo = self.jobs[j].fail_machine(m);
                    if fo.killed == 0 {
                        continue;
                    }
                    self.occupied[j] = self.occupied[j].saturating_sub(fo.killed);
                    if !fo.requeued.is_empty() {
                        self.pending_orig[j] += fo.requeued.len();
                        let probes = ((fo.requeued.len() as f64 * self.cfg.probe_ratio).ceil()
                            as usize)
                            .max(1);
                        self.send_probes(j, probes);
                    }
                }
                self.machines.set_down(m);
            }
            DynEvent::Recover(_) => {
                // The machine rejoins with every slot free and an empty
                // queue; probes find it again through random placement.
                self.machines.set_up(m);
                self.workers[w].free = self.cfg.cluster.slots_per_machine;
            }
        }
    }

    fn on_finish(&mut self, job: usize, copy: CopyRef, worker: usize, now: SimTime) {
        // Completions queued for copies that lost their race pop after
        // the job completed and retired; they are stale by definition
        // and must not touch its (gone) state.
        if self.done[job] {
            return;
        }
        // A machine-speed change rescheduled this copy: its superseded
        // completion event pops at a time that no longer matches the
        // copy's finish instant. A no-op without dynamics.
        {
            let c =
                &self.jobs[job].phases()[copy.task.phase].tasks[copy.task.task].copies[copy.copy];
            if c.status == hopper_cluster::CopyStatus::Running && c.finish_time() != now {
                return;
            }
        }
        // Collect running siblings *before* resolving the race: their
        // kill notifications travel over the network.
        let siblings: Vec<MachineId> = self.jobs[job].phases()[copy.task.phase].tasks
            [copy.task.task]
            .copies
            .iter()
            .enumerate()
            .filter(|(i, c)| *i != copy.copy && c.status == hopper_cluster::CopyStatus::Running)
            .map(|(_, c)| c.machine)
            .collect();
        let Some(out) = self.jobs[job].finish_copy(copy, now) else {
            return; // stale (copy killed earlier)
        };
        let was_spec = self.jobs[job].phases()[copy.task.phase].tasks[copy.task.task].copies
            [copy.copy]
            .speculative;
        if was_spec {
            self.stats.spec_won += 1;
        }
        // The winner's slot frees immediately.
        self.workers[worker].free += 1;
        self.machines.release_to(MachineId(worker), job);
        self.occupied[job] = self.occupied[job].saturating_sub(1);
        // β learning at the owning scheduler.
        if out.nominal.as_millis() > 0 {
            self.beta_est[self.owner[job]]
                .observe(out.duration.as_millis() as f64 / out.nominal.as_millis() as f64);
        }
        // Kill messages to losing siblings, stamped with the sibling
        // machine's current incarnation.
        for m in siblings {
            self.queue.push_after(
                self.cfg.msg_latency,
                Ev::Kill {
                    worker: m.0,
                    job,
                    inc: self.dyn_inc[m.0],
                },
            );
        }
        // New phases: their tasks need reservations too.
        for &pi in &out.newly_eligible {
            let tasks = self.jobs[job].phases()[pi].num_tasks();
            self.pending_orig[job] += tasks;
            let probes = ((tasks as f64 * self.cfg.probe_ratio).ceil() as usize).max(1);
            self.send_probes(job, probes);
        }
        if out.job_done {
            self.complete_job(job, now);
        }
        self.maybe_start_episode(worker, now);
    }

    /// Complete and **retire** `job`: fold its outcome into the digest
    /// and accumulators (plus a `JobResult` in materialized mode), drop
    /// its task/copy state and scheduler-side scratch, and remove it from
    /// every live index. From this instant the job is observationally
    /// gone — any path touching `jobs[job]` panics (the retirement
    /// invariant, DESIGN.md).
    fn complete_job(&mut self, job: usize, now: SimTime) {
        self.done[job] = true;
        self.done_count += 1;
        self.active_count -= 1;
        // Replace (not clear): `clear` keeps capacity alive forever.
        self.candidates[job] = VecDeque::new();
        self.claimed[job] = std::collections::HashSet::new();
        let pos = self
            .live
            .binary_search(&job)
            .expect("completed job is live");
        self.live.remove(pos);
        let part = &mut self.sched_jobs[self.owner[job]];
        let pos = part
            .binary_search(&job)
            .expect("completed job is in its partition");
        part.remove(pos);
        let retired = self.jobs.retire(job);
        let result = JobResult {
            job: retired.id,
            size_tasks: retired.spec.size_tasks(),
            dag_len: retired.spec.dag_len(),
            arrival: retired.spec.arrival,
            completed: now,
        };
        self.digest.observe_ms(result.duration_ms());
        if self.retain_jobs {
            self.results.push(result);
        }
        self.stats.makespan = self.stats.makespan.max(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopper_workload::{TraceGenerator, WorkloadProfile};

    fn small_cfg(seed: u64) -> DecConfig {
        DecConfig {
            cluster: ClusterConfig {
                machines: 100,
                slots_per_machine: 2,
                handoff_ms: 0,
                ..Default::default()
            },
            num_schedulers: 5,
            seed,
            ..Default::default()
        }
    }

    fn trace(seed: u64, n: usize, util: f64) -> Trace {
        let profile = WorkloadProfile::facebook()
            .interactive()
            .single_phase()
            .fixed_beta(1.5);
        TraceGenerator::new(profile, n, seed).generate_with_utilization(200, util)
    }

    #[test]
    fn all_jobs_complete_under_every_policy() {
        let t = trace(1, 40, 0.7);
        for policy in [
            DecPolicy::Sparrow,
            DecPolicy::SparrowSrpt,
            DecPolicy::Hopper,
        ] {
            let out = run(&t, policy, &small_cfg(1));
            assert_eq!(out.jobs.len(), t.len(), "{}", policy.name());
            assert!(out.stats.makespan > SimTime::ZERO);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let t = trace(2, 30, 0.7);
        let a = run(&t, DecPolicy::Hopper, &small_cfg(7));
        let b = run(&t, DecPolicy::Hopper, &small_cfg(7));
        for (x, y) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(x.completed, y.completed);
        }
        assert_eq!(a.stats.events, b.stats.events);
        assert_eq!(a.stats.responses, b.stats.responses);
    }

    #[test]
    fn hopper_beats_sparrow_baselines() {
        // The paper's headline (Figure 6): decentralized Hopper reduces
        // average job duration versus both Sparrow and Sparrow-SRPT.
        // Uses the calibrated operating point (600 slots, 75% util,
        // heterogeneous β) — see EXPERIMENTS.md for the full sweep.
        let mut sparrow = 0.0;
        let mut srpt = 0.0;
        let mut hopper = 0.0;
        for seed in 0..3 {
            let profile = WorkloadProfile::facebook().interactive().single_phase();
            let t = TraceGenerator::new(profile, 150, seed).generate_with_utilization(600, 0.75);
            let cfg = DecConfig {
                cluster: ClusterConfig {
                    machines: 300,
                    slots_per_machine: 2,
                    handoff_ms: 0,
                    ..Default::default()
                },
                seed,
                ..Default::default()
            };
            sparrow += run(&t, DecPolicy::Sparrow, &cfg).mean_duration_ms();
            srpt += run(&t, DecPolicy::SparrowSrpt, &cfg).mean_duration_ms();
            hopper += run(&t, DecPolicy::Hopper, &cfg).mean_duration_ms();
        }
        assert!(
            hopper < srpt && hopper < sparrow,
            "hopper {hopper:.0} vs sparrow-srpt {srpt:.0} vs sparrow {sparrow:.0}"
        );
    }

    #[test]
    fn speculation_happens_and_wins() {
        let t = trace(5, 60, 0.7);
        let out = run(&t, DecPolicy::Hopper, &small_cfg(5));
        assert!(out.stats.spec_launched > 0);
        assert!(out.stats.spec_won > 0);
        assert!(out.stats.spec_won <= out.stats.spec_launched);
    }

    #[test]
    fn protocol_counters_are_consistent() {
        let t = trace(6, 50, 0.7);
        let out = run(&t, DecPolicy::Hopper, &small_cfg(6));
        let total_tasks: u64 = t.jobs.iter().map(|j| j.num_tasks() as u64).sum();
        assert_eq!(
            out.stats.orig_launched, total_tasks,
            "every original ran once"
        );
        assert!(out.stats.reservations >= total_tasks * 2);
        assert!(out.stats.responses > 0);
    }

    #[test]
    fn more_probes_help_hopper_under_load() {
        let mut d2 = 0.0;
        let mut d4 = 0.0;
        for seed in 0..3 {
            let t = trace(seed + 20, 120, 0.85);
            let mut cfg = small_cfg(seed);
            cfg.probe_ratio = 2.0;
            d2 += run(&t, DecPolicy::Hopper, &cfg).mean_duration_ms();
            cfg.probe_ratio = 4.0;
            d4 += run(&t, DecPolicy::Hopper, &cfg).mean_duration_ms();
        }
        // The power of many choices (§5.1): d=4 should not be worse by
        // more than noise, and typically clearly better.
        assert!(d4 < d2 * 1.05, "d=4 {d4:.0} vs d=2 {d2:.0}");
    }

    #[test]
    fn empty_trace() {
        let out = run(&Trace::default(), DecPolicy::Hopper, &small_cfg(1));
        assert!(out.jobs.is_empty());
    }

    /// Reservations delivered after their job completed (the message was
    /// in flight when the last task finished) must be dropped on arrival,
    /// exactly as the old unconditional queue purge did. The race needs a
    /// scan-rescue probe followed by the job's last straggler finishing
    /// inside the message latency, so this test stresses the widest
    /// window (long latency, fast scans, high load) and leans on the
    /// purge-invariant assert in `maybe_start_episode` — live across the
    /// whole dev-profile suite — as the oracle.
    #[test]
    fn stale_inflight_reservations_are_dropped() {
        for seed in [3u64, 7] {
            for policy in [DecPolicy::Sparrow, DecPolicy::Hopper] {
                let t = trace(seed, 60, 0.9);
                let mut cfg = small_cfg(seed);
                cfg.msg_latency = SimTime::from_millis(400);
                cfg.scan_interval = SimTime::from_millis(50);
                let out = run(&t, policy, &cfg);
                assert_eq!(out.jobs.len(), t.len(), "{} seed {seed}", policy.name());
            }
        }
    }

    #[test]
    fn dag_jobs_complete() {
        let profile = WorkloadProfile::facebook().interactive().fixed_dag_len(3);
        let t = TraceGenerator::new(profile, 25, 9).generate_with_utilization(200, 0.6);
        let out = run(&t, DecPolicy::Hopper, &small_cfg(9));
        assert_eq!(out.jobs.len(), t.len());
        assert!(out.jobs.iter().all(|r| r.dag_len == 3));
    }
}
