//! Decentralized (Sparrow-style) scheduling simulator for the Hopper
//! reproduction.
//!
//! Implements the paper's §5–§6.1: autonomous schedulers placing
//! reservation probes at workers, late binding with per-message network
//! latency, and three worker/scheduler policies — stock Sparrow,
//! Sparrow-SRPT (+ best-effort speculation, the paper's aggressive
//! baseline), and decentralized Hopper with the refusal protocol
//! (Pseudocodes 2 & 3) and piggybacked virtual-size updates.

pub mod audit;
pub mod driver;
pub mod faults;
pub mod shard;

pub use driver::{run, run_source, run_stream, DecConfig, DecOutput, DecPolicy, DecStats};
pub use faults::FaultConfig;
pub use shard::ShardStats;
