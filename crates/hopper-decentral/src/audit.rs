//! Conservation auditor for the decentralized protocol.
//!
//! A dev-profile shadow bookkeeper in the style of the placement
//! oracle: the driver narrates every launch, slot release, message
//! send/delivery, and in-flight assign to an [`Auditor`] that keeps its
//! own minimal mirror and asserts the protocol's conservation laws —
//! after every event (per-worker slot equation, per-job occupancy
//! reconciliation) and at end-of-run (no running copies, no leaked
//! slots, message counts conserve, no pending kills). Because the
//! auditor is active across the whole dev test suite, every existing
//! test plus the chaos storms re-prove the protocol under every event
//! sequence they generate; release and bench profiles compile it out.
//!
//! The auditor deliberately knows nothing about policy: it cannot tell
//! a good schedule from a bad one, only a *possible* execution from an
//! *impossible* one (a double-launched original, a slot that was freed
//! twice, a message delivered more often than it was sent).

use std::collections::HashMap;

/// The five scheduler↔worker RPC kinds subject to message faults.
/// `Finish`/`Scan`/timer events are local and reliable, so they are
/// outside the conservation ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgKind {
    Reservation,
    Response,
    Assign,
    Refusal,
    Kill,
}

const NUM_KINDS: usize = 5;

impl MsgKind {
    fn idx(self) -> usize {
        match self {
            MsgKind::Reservation => 0,
            MsgKind::Response => 1,
            MsgKind::Assign => 2,
            MsgKind::Refusal => 3,
            MsgKind::Kill => 4,
        }
    }

    fn name(i: usize) -> &'static str {
        ["reservation", "response", "assign", "refusal", "kill"][i]
    }
}

/// Shadow bookkeeper; see the module docs. Construct one per run (dev
/// profile only) and feed it every protocol action.
#[derive(Debug, Default)]
pub struct Auditor {
    /// Copies currently executing per worker, mirrored from launch /
    /// stop notifications — never trusted from the driver's own
    /// counters.
    running: Vec<u64>,
    /// Occupancy-carrying messages (assigns and kills) sent minus
    /// delivered, per job. The driver's `occupied` counter moves at
    /// *send* time while ground truth moves at *delivery* time; this
    /// mirror is the difference, maintained only while faults are off
    /// (under faults a lost assign legitimately de-syncs the counter
    /// until the watchdog reconciles, so there is nothing to assert).
    in_flight_occ: HashMap<usize, i64>,
    sent: [u64; NUM_KINDS],
    dup: [u64; NUM_KINDS],
    lost: [u64; NUM_KINDS],
    delivered: [u64; NUM_KINDS],
}

impl Auditor {
    pub fn new(workers: usize) -> Box<Self> {
        Box::new(Auditor {
            running: vec![0; workers],
            ..Auditor::default()
        })
    }

    /// A copy launched on worker `w`. `running_before`/`finished` are
    /// the job's ground-truth state for the task *before* this launch:
    /// an original may only ever launch on a task with no running copy
    /// and no finished copy — anything else is a double launch.
    pub fn note_launch(&mut self, w: usize, original: bool, running_before: u64, finished: bool) {
        if original {
            assert!(
                running_before == 0 && !finished,
                "audit: original double-launch on worker {w} \
                 (running_before={running_before}, finished={finished})"
            );
        }
        self.running[w] += 1;
    }

    /// A copy started running on worker `w` — the sharded engine's
    /// launch note. Under the ack'd launch protocol the worker commits
    /// the copy before the owning scheduler can check ground truth, so
    /// the double-launch precondition is asserted scheduler-side (the
    /// stale-assignment predicate) rather than here; this only grows
    /// the running mirror for the slot equation.
    pub fn note_copy_started(&mut self, w: usize) {
        self.running[w] += 1;
    }

    /// Fold another auditor's ledgers into this one — used at the end
    /// of a sharded run to combine per-shard auditors before the global
    /// end-of-run laws. Shards own disjoint worker ranges, so summing
    /// the running mirrors elementwise is exact.
    pub fn merge(&mut self, other: &Auditor) {
        assert_eq!(self.running.len(), other.running.len());
        for (r, o) in self.running.iter_mut().zip(&other.running) {
            *r += o;
        }
        for (&job, &n) in &other.in_flight_occ {
            *self.in_flight_occ.entry(job).or_insert(0) += n;
        }
        for i in 0..NUM_KINDS {
            self.sent[i] += other.sent[i];
            self.dup[i] += other.dup[i];
            self.lost[i] += other.lost[i];
            self.delivered[i] += other.delivered[i];
        }
    }

    /// A copy on worker `w` stopped occupying its slot (finished, was
    /// killed, or its kill was lost and the finish reclaimed the slot).
    pub fn note_copy_stopped(&mut self, w: usize) {
        assert!(
            self.running[w] > 0,
            "audit: slot freed twice on worker {w} (no running copy)"
        );
        self.running[w] -= 1;
    }

    /// Worker `w`'s machine failed: every copy on it is gone at once.
    pub fn note_machine_failed(&mut self, w: usize) {
        self.running[w] = 0;
    }

    pub fn note_sent(&mut self, k: MsgKind) {
        self.sent[k.idx()] += 1;
    }

    pub fn note_dup(&mut self, k: MsgKind) {
        self.dup[k.idx()] += 1;
    }

    pub fn note_lost(&mut self, k: MsgKind) {
        self.lost[k.idx()] += 1;
    }

    pub fn note_delivered(&mut self, k: MsgKind) {
        self.delivered[k.idx()] += 1;
    }

    /// An occupancy-carrying message (assign or kill) for `job` left
    /// for a worker. Call only while faults are off.
    pub fn note_occ_sent(&mut self, job: usize) {
        *self.in_flight_occ.entry(job).or_insert(0) += 1;
    }

    /// An occupancy-carrying message for `job` reached its worker.
    pub fn note_occ_delivered(&mut self, job: usize) {
        *self.in_flight_occ.entry(job).or_insert(0) -= 1;
    }

    /// In-flight occupancy messages for `job` as mirrored here.
    pub fn in_flight(&self, job: usize) -> i64 {
        self.in_flight_occ.get(&job).copied().unwrap_or(0)
    }

    /// Per-worker slot equation, checked after any event that touched
    /// worker `w`: up ⇒ free + promised(episode) + running = slots;
    /// down ⇒ everything zero.
    pub fn check_worker(&self, w: usize, up: bool, free: u64, has_episode: bool, slots: u64) {
        let promised = has_episode as u64;
        if up {
            assert_eq!(
                free + promised + self.running[w],
                slots,
                "audit: slot leak on worker {w}: free={free} promised={promised} \
                 running={} slots={slots}",
                self.running[w]
            );
        } else {
            assert!(
                free == 0 && !has_episode && self.running[w] == 0,
                "audit: down worker {w} holds state: free={free} episode={has_episode} \
                 running={}",
                self.running[w]
            );
        }
    }

    /// Per-job occupancy reconciliation (faults-off only): the driver's
    /// `occupied` counter must equal ground-truth occupied slots plus
    /// occupancy messages still on the wire (a sent assign is counted
    /// before it launches; a killed sibling leaves ground truth at race
    /// resolution but leaves the counter only when its kill lands).
    pub fn check_job(&self, job: usize, counter: u64, ground_truth: u64) {
        assert_eq!(
            counter as i64,
            ground_truth as i64 + self.in_flight(job),
            "audit: job {job} occupancy counter {counter} != ground truth {ground_truth} \
             + in-flight {}",
            self.in_flight(job)
        );
    }

    /// End-of-run laws: no copy still running anywhere, every job's
    /// in-flight occupancy messages drained, every message accounted for
    /// (sent + duplicated = delivered + lost, per kind), and no kill
    /// still pending.
    pub fn check_end(&self, pending_kills: usize) {
        for (w, &r) in self.running.iter().enumerate() {
            assert_eq!(r, 0, "audit: worker {w} ends with {r} running copies");
        }
        for (&job, &n) in &self.in_flight_occ {
            assert_eq!(n, 0, "audit: job {job} ends with {n} in-flight messages");
        }
        for i in 0..NUM_KINDS {
            assert_eq!(
                self.sent[i] + self.dup[i],
                self.delivered[i] + self.lost[i],
                "audit: {} messages do not conserve: sent={} dup={} delivered={} lost={}",
                MsgKind::name(i),
                self.sent[i],
                self.dup[i],
                self.delivered[i],
                self.lost[i]
            );
        }
        assert_eq!(
            pending_kills, 0,
            "audit: {pending_kills} kills still pending at end"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_equation_tracks_launch_and_stop() {
        let mut a = Auditor::new(2);
        a.note_launch(0, true, 0, false);
        a.check_worker(0, true, 3, false, 4);
        a.note_launch(0, false, 1, false); // speculative alongside the original
        a.check_worker(0, true, 2, false, 4);
        a.note_copy_stopped(0);
        a.note_copy_stopped(0);
        a.check_worker(0, true, 4, false, 4);
        a.check_worker(1, true, 1, true, 2); // promised slot counts
    }

    #[test]
    #[should_panic(expected = "original double-launch")]
    fn original_double_launch_is_caught() {
        let mut a = Auditor::new(1);
        a.note_launch(0, true, 1, false);
    }

    #[test]
    #[should_panic(expected = "slot freed twice")]
    fn double_free_is_caught() {
        let mut a = Auditor::new(1);
        a.note_copy_stopped(0);
    }

    #[test]
    #[should_panic(expected = "slot leak")]
    fn leaked_slot_is_caught() {
        let mut a = Auditor::new(1);
        a.note_launch(0, false, 1, false);
        a.note_machine_failed(0);
        // Machine failed: a later check claiming a running copy + full
        // free count can't balance.
        a.note_launch(0, false, 1, false);
        a.check_worker(0, true, 4, false, 4);
    }

    #[test]
    fn occupancy_mirror_reconciles_faults_off() {
        let mut a = Auditor::new(1);
        a.note_occ_sent(7);
        a.check_job(7, 1, 0); // counter bumped at send, nothing occupied yet
        a.note_occ_delivered(7);
        a.check_job(7, 1, 1); // delivered and launched
                              // Race resolution: ground truth drops winner + sibling at once,
                              // the sibling's counter decrement rides on its in-flight kill.
        a.note_occ_sent(7);
        a.check_job(7, 1, 0);
        a.note_occ_delivered(7);
        a.check_job(7, 0, 0);
    }

    #[test]
    #[should_panic(expected = "occupancy counter")]
    fn desynced_occupancy_is_caught() {
        let mut a = Auditor::new(1);
        a.note_occ_sent(3);
        a.check_job(3, 5, 1);
    }

    #[test]
    #[should_panic(expected = "in-flight messages")]
    fn undrained_inflight_message_is_caught_at_end() {
        let mut a = Auditor::new(1);
        a.note_occ_sent(2);
        a.note_sent(MsgKind::Assign);
        a.note_delivered(MsgKind::Assign);
        a.check_end(0);
    }

    #[test]
    fn message_conservation_holds_and_fails() {
        let mut a = Auditor::new(1);
        a.note_sent(MsgKind::Response);
        a.note_dup(MsgKind::Response);
        a.note_delivered(MsgKind::Response);
        a.note_delivered(MsgKind::Response);
        a.note_sent(MsgKind::Kill);
        a.note_lost(MsgKind::Kill);
        a.check_end(0);
    }

    #[test]
    #[should_panic(expected = "do not conserve")]
    fn unaccounted_message_is_caught() {
        let mut a = Auditor::new(1);
        a.note_sent(MsgKind::Assign);
        a.check_end(0);
    }

    #[test]
    #[should_panic(expected = "kills still pending")]
    fn pending_kill_at_end_is_caught() {
        let a = Auditor::new(1);
        a.check_end(1);
    }
}
