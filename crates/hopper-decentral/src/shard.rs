//! Sharded decentralized engine: one run, many cores, bit-identical
//! results for every shard count.
//!
//! `run_sharded` (crate-internal; reached through [`crate::run`] when
//! `DecConfig::shards >= 1`) partitions the decentralized simulation's
//! *entities*
//! — schedulers and workers — across `DecConfig::shards` shards.
//! Scheduler `s` lives on shard `s % S`; worker `w` on `w % S`; job `j`
//! belongs to scheduler `j % K` and therefore to its shard. Each shard
//! owns a private event heap, per-entity RNG children, and the complete
//! runtime state of its entities (worker queues and running-copy
//! records; scheduler job slabs, counters, and estimators). Shards
//! advance in lockstep *conservative windows* (classic conservative
//! PDES): at each window barrier every shard publishes its earliest
//! pending event; the next window executes everything strictly before
//! `min(next event) + lookahead`, where the lookahead is the one-way
//! message latency (asserted ≥ 1 ms). Every cross-entity interaction is
//! a message paying at least that latency, so nothing a peer shard has
//! not yet executed can land inside the current window — no rollbacks,
//! no speculation, no locks on simulation state.
//!
//! **Why the result is independent of the shard count.** Three facts
//! compose (pinned by `tests/shard.rs`, spelled out in DESIGN.md,
//! "Sharded execution"):
//!
//! 1. every entity's state is touched only by its own handler, and all
//!    inter-entity interaction rides on messages with ≥ lookahead
//!    latency;
//! 2. every event carries an [`EventKey`] `(time, origin, seq)` whose
//!    per-origin sequence is assigned by the *emitting* entity in its
//!    own deterministic order, so each shard's heap pops in a total
//!    order that restricts the same global order regardless of the
//!    partition;
//! 3. every stream of randomness is owned by a single entity
//!    (per-scheduler decision/placement/fault children, per-worker
//!    Guideline-3/fault children, the per-machine and per-scheduler
//!    incident chains), so draws depend only on that entity's own
//!    event history.
//!
//! Global quantities a handler reads — the ε-fairness active-job count,
//! the drain flag that retires idle incident chains, the event-budget
//! check — are computed from the window-start barrier snapshot, which
//! is itself shard-count-independent because window boundaries are.
//!
//! **Relation to the serial driver.** `shards = 0` (the default) is the
//! untouched legacy [`crate::driver`] path, byte-identical to every
//! pinned golden. `shards ≥ 1` selects this engine — a slightly
//! different *protocol embedding* of the same scheduler logic (launch
//! durations are pre-drawn by the owning scheduler and committed at the
//! worker with an explicit ack; kill/loss notifications are per-copy
//! messages; workers self-poll instead of being poked by a global
//! scan), so its trajectories differ from `shards = 0` by a few
//! milliseconds of extra acknowledgment latency, but are identical to
//! *each other* for every shard count ≥ 1. The deliberate deviations
//! are cataloged in DESIGN.md.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap, HashSet, VecDeque};
use std::sync::Mutex;

use crate::audit::{Auditor, MsgKind};
use crate::driver::{DecConfig, DecOutput, DecPolicy, DecStats};
use crate::faults::{MsgFaults, SchedEv, SchedulerChain};
use hopper_cluster::{
    CopyRef, DynEvent, JobRun, JobSlab, MachineDynamics, MachineId, Machines, TaskRef,
};
use hopper_core::protocol::{
    pick_fcfs, pick_srpt, scheduler_accepts, BackoffPolicy, FreeSlotEpisode, Reservation,
    ResponseKind, UnsatisfiedJob, WorkerAction,
};
use hopper_core::{safe_horizon, virtual_size, BetaEstimator, EventKey, Mailbox, SyncBarrier};
use hopper_metrics::{
    JobDigest, JobResult, RunReport, SeriesCollector, TelemetrySeries, TelemetrySnapshot,
};
use hopper_sim::{SeedSequence, SimTime};
use hopper_spec::Candidate;
use hopper_workload::{ArrivalSource, TraceJob};
use rand::rngs::StdRng;
use rand::Rng;

/// Child-seed namespaces for the sharded engine's per-entity RNGs.
/// Disjoint from every legacy child: placement `0xB10C`, decisions
/// `0xDEC`, message faults `0xFA_0175`, scheduler chains
/// `0x5C_4ED0_0000 + s`, machine dynamics `0xD1_CE00_0000 + m`.
const SHARD_SCHED_RNG: u64 = 0xDEC0_0000;
const SHARD_SCHED_PLACE: u64 = 0xB10C_0000;
const SHARD_WORKER_RNG: u64 = 0xE9_0000_0000;
const SHARD_SCHED_FAULT: u64 = 0xFA_1000_0000;
const SHARD_WORKER_FAULT: u64 = 0xFA_2000_0000;

/// Non-golden observability counters of one sharded run. These describe
/// the *engine* (how the conservative windows behaved), not the
/// simulation: every field except `shards` may vary with the shard
/// count even though the simulation results do not, so none of them
/// belong in goldens or equivalence checks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard count the run executed with.
    pub shards: usize,
    /// Conservative windows advanced (identical on every shard).
    pub windows: u64,
    /// Window slots in which a shard had nothing to execute — it
    /// advanced only because the safe horizon was bounded by a peer
    /// (summed over shards; the load-imbalance signal).
    pub horizon_stalls: u64,
    /// Messages that crossed a shard boundary (through a mailbox).
    pub cross_msgs: u64,
    /// Messages whose sender and receiver shared a shard (heap-local).
    pub local_msgs: u64,
}

/// One simulation event of the sharded engine. Worker-addressed events
/// carry a global worker id; scheduler-addressed events are routed by
/// the job's owner (`job % K`) or an explicit scheduler id.
///
/// Five kinds are scheduler↔worker RPCs subject to the message-fault
/// plane (`Reservation`, `Response`, `Assign`, `Refusal`, `Kill` — the
/// same five the conservation auditor ledgers). The launch-protocol
/// acks (`Launched`, `AssignFailed`, `TaskDone`, `CopyLost`, `ResGone`)
/// are *reliable* internal messages at fixed latency: they replace
/// state the serial driver mutated directly across the scheduler/worker
/// boundary, so faulting them would invent failure modes the modeled
/// system does not have.
#[derive(Debug, Clone)]
enum SEv {
    /// Reservation lands in a worker queue.
    Reservation { worker: usize, res: Reservation },
    /// Scheduler assigns a task to the worker's promised slot. Carries
    /// the scheduler-pre-drawn unit-speed duration (the worker scales
    /// it by its local machine speed and commits), plus the job's
    /// virtual-size/remaining snapshot for the §5.3 piggyback.
    Assign {
        worker: usize,
        job: usize,
        task: TaskRef,
        speculative: bool,
        unit_dur: SimTime,
        vsize: f64,
        remaining: f64,
        inc: u64,
        ep: u64,
    },
    /// Scheduler declines the offer. `job_done` doubles as the
    /// completion notification that purges the job's parked
    /// reservations from the worker's queue.
    Refusal {
        worker: usize,
        job: usize,
        job_done: bool,
        unsatisfied: Option<UnsatisfiedJob>,
        inc: u64,
        ep: u64,
    },
    /// Kill the copy behind `wtoken` (race lost). Idempotent at the
    /// worker: no record, no effect.
    Kill { worker: usize, wtoken: u64 },
    /// Local copy-completion timer at the executing worker.
    Finish { worker: usize, wtoken: u64 },
    /// Worker self-poll: re-examine the queue for a startable episode
    /// (replaces the serial driver's global-scan worker poke).
    Poll { worker: usize },
    /// Response lease (faults only), as in the serial driver.
    Lease { worker: usize, seq: u64 },
    /// Machine-dynamics incident for the owning worker's machine.
    Dyn(DynEvent),
    /// Worker offers its free slot to `job`'s scheduler.
    Response {
        worker: usize,
        job: usize,
        kind: ResponseKind,
        inc: u64,
        ep: u64,
    },
    /// Worker committed an assigned copy: the launch ack. `consumed`
    /// reports whether a parked reservation was eaten by the assign.
    Launched {
        job: usize,
        worker: usize,
        wtoken: u64,
        task: TaskRef,
        speculative: bool,
        start: SimTime,
        dur: SimTime,
        consumed: bool,
    },
    /// The assign reached a dead episode (machine failed or episode
    /// ended first): nothing was committed, undo the send-side books.
    AssignFailed {
        job: usize,
        task: TaskRef,
        speculative: bool,
    },
    /// A committed copy ran to completion on `worker`.
    TaskDone {
        job: usize,
        worker: usize,
        wtoken: u64,
        dur: SimTime,
    },
    /// A committed copy died with its machine.
    CopyLost {
        job: usize,
        worker: usize,
        wtoken: u64,
    },
    /// `count` of the job's reservations evaporated at a worker (down
    /// machine, failure wipe, or a Sparrow no-task consume).
    ResGone { job: usize, count: usize },
    /// Per-scheduler straggler scan.
    Scan { sched: usize },
    /// Scheduler crash/recover incident for an owned scheduler.
    SchedDyn(SchedEv),
    /// Per-job watchdog (faults only), armed by the owning scheduler.
    JobTimeout { job: usize },
}

/// Conservation-ledger kind of a scheduler↔worker RPC (`None` for the
/// reliable internal messages and local timers).
fn rpc_kind(ev: &SEv) -> Option<MsgKind> {
    match ev {
        SEv::Reservation { .. } => Some(MsgKind::Reservation),
        SEv::Response { .. } => Some(MsgKind::Response),
        SEv::Assign { .. } => Some(MsgKind::Assign),
        SEv::Refusal { .. } => Some(MsgKind::Refusal),
        SEv::Kill { .. } => Some(MsgKind::Kill),
        _ => None,
    }
}

/// Heap entry ordered by [`EventKey`] alone — the payload never
/// participates, so the pop order is the deterministic global order
/// restricted to this shard.
#[derive(Debug)]
struct HeapEv {
    key: EventKey,
    ev: SEv,
}

impl PartialEq for HeapEv {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for HeapEv {}
impl PartialOrd for HeapEv {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEv {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// What a shard publishes at each window barrier.
#[derive(Debug, Default)]
struct SlotPub {
    /// Earliest pending event (heap min or next owned arrival).
    next: Option<SimTime>,
    /// Live (arrived, unfinished) jobs owned by this shard.
    live: usize,
    /// Arrivals this shard still owes the simulation.
    arrivals: usize,
    /// Events executed so far (for the global budget check).
    events: u64,
}

/// Shared coordination state: the window barrier, one publish slot and
/// one inter-shard mailbox per shard. Slots are written by their owner
/// before barrier A and read by everyone between barriers A and B, so
/// the lock is never contended across a write.
struct Coord {
    barrier: SyncBarrier,
    slots: Vec<Mutex<SlotPub>>,
    mailboxes: Vec<Mailbox<SEv>>,
}

/// Poisons the window barrier if its shard unwinds, so peers blocked at
/// the barrier panic instead of deadlocking (see [`SyncBarrier`]).
struct PoisonGuard<'b> {
    barrier: &'b SyncBarrier,
}

impl Drop for PoisonGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.barrier.poison();
        }
    }
}

/// A committed running copy as the executing worker sees it: which job
/// it serves and when it started / will finish (rescaled in place by
/// machine-speed changes).
#[derive(Debug, Clone, Copy)]
struct CopyRec {
    job: usize,
    start: SimTime,
    finish: SimTime,
}

/// One scheduler's complete runtime state. Job-indexed vectors use the
/// scheduler-local dense index `lj = j / K` (the scheduler owns exactly
/// the jobs with `j % K == s`).
struct SchedSt {
    /// Global scheduler id.
    s: usize,
    up: bool,
    /// Event-emission counter (the `seq` of every key this scheduler
    /// stamps).
    seq: u64,
    jobs: JobSlab,
    done: Vec<bool>,
    arrived: Vec<bool>,
    occupied: Vec<usize>,
    pending_orig: Vec<usize>,
    claimed: Vec<HashSet<TaskRef>>,
    live_res: Vec<usize>,
    candidates: Vec<VecDeque<Candidate>>,
    wd_progress: Vec<u64>,
    wd_seen: Vec<u64>,
    wd_attempt: Vec<u32>,
    /// Live owned jobs, ascending global id.
    live: Vec<usize>,
    arrivals_pending: usize,
    beta: BetaEstimator,
    scan_armed: bool,
    rng: StdRng,
    placement_rng: StdRng,
    faults: Option<MsgFaults>,
    /// (job, copy) → (worker, wtoken): the scheduler's handle on every
    /// committed copy, for kill addressing. Lookup/remove only — never
    /// iterated, so HashMap nondeterminism cannot leak into events.
    copy_tok: HashMap<(usize, CopyRef), (usize, u64)>,
    /// (worker, wtoken) → (job, copy): resolves acks from workers.
    tok_copy: HashMap<(usize, u64), (usize, CopyRef)>,
    digest: JobDigest,
    done_count: u64,
}

/// One worker's complete runtime state.
struct WorkSt {
    /// Global worker id (= machine id).
    w: usize,
    /// Event-emission counter.
    seq: u64,
    queue: Vec<Reservation>,
    free: usize,
    episode: Option<FreeSlotEpisode>,
    /// Committed running copies by worker-local token. A BTreeMap
    /// because machine failure *iterates* it to emit loss
    /// notifications — iteration order must be deterministic.
    records: BTreeMap<u64, CopyRec>,
    next_wtoken: u64,
    /// Machine incarnation (bumped on failure).
    inc: u64,
    /// Episode epoch (bumped at every episode end).
    ep: u64,
    /// RPC sequence (lease dedup), as in the serial driver.
    rpc: u64,
    poll_armed: bool,
    rng: StdRng,
    faults: Option<MsgFaults>,
}

/// Event-type diagnostic counters (for the budget-exceeded panic):
/// arrive, reservation, response, assign, refusal, kill, finish, poll,
/// lease, dyn, launched, assign-failed, task-done, copy-lost, res-gone,
/// scan, sched-dyn, job-timeout.
const EV_KINDS: usize = 18;

struct Shard<'a> {
    id: usize,
    nshards: usize,
    /// Scheduler count (the job→owner modulus).
    k: usize,
    policy: DecPolicy,
    cfg: &'a DecConfig,
    faults_on: bool,
    retain_jobs: bool,
    lookahead: SimTime,
    backoff: BackoffPolicy,
    heap: BinaryHeap<Reverse<HeapEv>>,
    /// Cross-shard sends buffered during a window, flushed to the
    /// destination mailboxes once at the barrier.
    outboxes: Vec<Vec<(EventKey, SEv)>>,
    arrivals: ArrivalSource<'a>,
    /// Next owned arrival, buffered because foreign arrivals must be
    /// popped-and-discarded to see past them.
    pending_arrival: Option<TraceJob>,
    scheds: Vec<SchedSt>,
    workers: Vec<WorkSt>,
    machines: Machines,
    dynamics: Option<MachineDynamics>,
    sched_chain: Option<SchedulerChain>,
    audit: Option<Box<Auditor>>,
    /// Live jobs owned by this shard (Σ over its schedulers).
    live_count: usize,
    /// Arrivals this shard still owes.
    arrivals_pending: usize,
    /// Window-start snapshot of the global live-job count (ε-fairness
    /// input; shard-count-independent because window boundaries are).
    active_global: usize,
    /// Window-start flag: the workload is globally complete, idle
    /// incident chains stop re-arming (monotone once set).
    drained: bool,
    stats: DecStats,
    results: Vec<JobResult>,
    ev_counts: [u64; EV_KINDS],
    windows: u64,
    stalls: u64,
    cross_msgs: u64,
    local_msgs: u64,
    /// Windowed time-series observer over this shard's own entities
    /// (inert when `telemetry_window_ms == 0`). Per-shard series merge
    /// commutatively in [`merge`] — see DESIGN.md, "Telemetry plane".
    tele: SeriesCollector,
    /// Cumulative kill RPCs sent (telemetry only; deliberately not a
    /// `DecStats` field — goldens pin that struct's `Debug` output).
    tele_kills: u64,
}

/// Run one decentralized simulation sharded across
/// `cfg.shards.max(1)` shards. Private engine behind
/// [`crate::driver::run`] / [`crate::driver::run_stream`]
/// (`cfg.shards ≥ 1` selects it).
pub(crate) fn run_sharded(
    source: ArrivalSource<'_>,
    policy: DecPolicy,
    cfg: &DecConfig,
    retain_jobs: bool,
) -> DecOutput {
    assert!(
        cfg.msg_latency >= SimTime::from_millis(1),
        "sharded engine needs msg_latency >= 1ms (it is the conservative lookahead)"
    );
    let nshards = cfg.shards.max(1);
    let mut shards: Vec<Shard<'_>> = (0..nshards)
        // Every shard replays the whole source from the start (a clone
        // of the undelivered source — borrowed trace, generator stream,
        // or shared replay — is position zero) and keeps only its own
        // entities' jobs.
        .map(|id| Shard::new(id, nshards, source.clone(), policy, cfg, retain_jobs))
        .collect();
    let n: usize = shards.iter().map(|sh| sh.arrivals_pending).sum();
    let coord = Coord {
        barrier: SyncBarrier::new(nshards),
        slots: (0..nshards)
            .map(|_| Mutex::new(SlotPub::default()))
            .collect(),
        mailboxes: (0..nshards).map(|_| Mailbox::new()).collect(),
    };
    if nshards == 1 {
        shards[0].run_loop(&coord);
    } else {
        std::thread::scope(|scope| {
            let coord = &coord;
            let handles: Vec<_> = shards
                .iter_mut()
                .map(|sh| scope.spawn(move || sh.run_loop(coord)))
                .collect();
            for h in handles {
                if let Err(e) = h.join() {
                    std::panic::resume_unwind(e);
                }
            }
        });
    }
    merge(shards, n, nshards)
}

/// Fold per-shard state into one [`DecOutput`], exactly as the serial
/// driver would have reported it: counters sum, makespan maxes, the
/// digest merges in scheduler order, per-job results sort by id, and
/// the merged conservation auditor proves the end-of-run laws globally.
fn merge(mut shards: Vec<Shard<'_>>, n: usize, nshards: usize) -> DecOutput {
    let k = shards.first().map(|sh| sh.k).expect("at least one shard");
    // Per-shard telemetry series merge window-by-window: counters and
    // gauges sum (disjoint entities), digests union exactly, shorter
    // series pad with frozen last gauges — commutative, so the result
    // is bit-identical across shard counts.
    let mut telemetry: Option<TelemetrySeries> = None;
    for sh in shards.iter_mut() {
        let snap = sh.tele_snapshot();
        if let Some(series) = sh.tele.finish(snap) {
            match telemetry.as_mut() {
                None => telemetry = Some(series),
                Some(t) => t.merge(&series),
            }
        }
    }
    let mut stats = DecStats::default();
    let mut digest = JobDigest::new();
    let mut results: Vec<JobResult> = Vec::new();
    let mut live_high_water = 0usize;
    let mut done_total = 0u64;
    let mut audit: Option<Box<Auditor>> = None;
    let mut shard_stats = ShardStats {
        shards: nshards,
        windows: shards.first().map_or(0, |sh| sh.windows),
        ..ShardStats::default()
    };
    // Per-scheduler digests merge in global scheduler order so the
    // merged sketch is the same regardless of the partition.
    for s in 0..k {
        let sh = &shards[s % nshards];
        digest.merge(&sh.scheds[s / nshards].digest);
    }
    for sh in shards {
        let st = sh.stats;
        stats.orig_launched += st.orig_launched;
        stats.spec_launched += st.spec_launched;
        stats.spec_won += st.spec_won;
        stats.reservations += st.reservations;
        stats.responses += st.responses;
        stats.refusals += st.refusals;
        stats.guideline3_switches += st.guideline3_switches;
        stats.msgs_lost += st.msgs_lost;
        stats.msgs_duplicated += st.msgs_duplicated;
        stats.msgs_retried += st.msgs_retried;
        stats.timeouts_fired += st.timeouts_fired;
        stats.orphan_reclaimed += st.orphan_reclaimed;
        stats.sched_failovers += st.sched_failovers;
        stats.events += st.events;
        stats.makespan = stats.makespan.max(st.makespan);
        shard_stats.horizon_stalls += sh.stalls;
        shard_stats.cross_msgs += sh.cross_msgs;
        shard_stats.local_msgs += sh.local_msgs;
        results.extend(sh.results);
        for sched in &sh.scheds {
            live_high_water += sched.jobs.high_water();
            done_total += sched.done_count;
        }
        match audit.as_mut() {
            None => audit = sh.audit,
            Some(a) => {
                if let Some(b) = sh.audit.as_ref() {
                    a.merge(b);
                }
            }
        }
    }
    assert!(
        done_total as usize == n,
        "sharded run drained with {done_total} of {n} jobs finished"
    );
    if let Some(a) = audit.as_ref() {
        a.check_end(0);
    }
    results.sort_by_key(|r| r.job);
    let report = RunReport {
        core: stats.core(),
        digest,
        live_high_water,
        telemetry,
    };
    DecOutput {
        jobs: results,
        stats,
        report,
        shard: Some(shard_stats),
    }
}

/// Global scheduler id of a [`SchedEv`].
fn sched_of(ev: &SchedEv) -> usize {
    match *ev {
        SchedEv::Fail(s) | SchedEv::Recover(s) => s,
    }
}

/// Diagnostic counter slot of an event (see [`EV_KINDS`]).
fn ev_idx(ev: &SEv) -> usize {
    match ev {
        SEv::Reservation { .. } => 1,
        SEv::Response { .. } => 2,
        SEv::Assign { .. } => 3,
        SEv::Refusal { .. } => 4,
        SEv::Kill { .. } => 5,
        SEv::Finish { .. } => 6,
        SEv::Poll { .. } => 7,
        SEv::Lease { .. } => 8,
        SEv::Dyn(_) => 9,
        SEv::Launched { .. } => 10,
        SEv::AssignFailed { .. } => 11,
        SEv::TaskDone { .. } => 12,
        SEv::CopyLost { .. } => 13,
        SEv::ResGone { .. } => 14,
        SEv::Scan { .. } => 15,
        SEv::SchedDyn(_) => 16,
        SEv::JobTimeout { .. } => 17,
    }
}

impl<'a> Shard<'a> {
    fn new(
        id: usize,
        nshards: usize,
        arrivals: ArrivalSource<'a>,
        policy: DecPolicy,
        cfg: &'a DecConfig,
        retain_jobs: bool,
    ) -> Self {
        let seq = SeedSequence::new(cfg.seed);
        let k = cfg.num_schedulers.max(1);
        let n = arrivals.total_jobs();
        let nworkers = cfg.cluster.machines;
        let faults_on = cfg.faults.enabled();
        let scheds: Vec<SchedSt> = (id..k)
            .step_by(nshards)
            .map(|s| {
                // Jobs owned by scheduler s: {j : j % K == s}, densely
                // indexed as lj = j / K.
                let n_s = if n > s { (n - s).div_ceil(k) } else { 0 };
                SchedSt {
                    s,
                    up: true,
                    seq: 0,
                    jobs: JobSlab::new(n_s),
                    done: vec![false; n_s],
                    arrived: vec![false; n_s],
                    occupied: vec![0; n_s],
                    pending_orig: vec![0; n_s],
                    claimed: vec![HashSet::new(); n_s],
                    live_res: vec![0; n_s],
                    candidates: vec![VecDeque::new(); n_s],
                    wd_progress: vec![0; n_s],
                    wd_seen: vec![0; n_s],
                    wd_attempt: vec![0; n_s],
                    live: Vec::new(),
                    arrivals_pending: n_s,
                    beta: BetaEstimator::with_prior(1.5),
                    scan_armed: false,
                    rng: seq.child_rng(SHARD_SCHED_RNG + s as u64),
                    placement_rng: seq.child_rng(SHARD_SCHED_PLACE + s as u64),
                    faults: faults_on.then(|| {
                        MsgFaults::with_seed(cfg.faults, &seq, SHARD_SCHED_FAULT + s as u64)
                    }),
                    copy_tok: HashMap::new(),
                    tok_copy: HashMap::new(),
                    digest: JobDigest::new(),
                    done_count: 0,
                }
            })
            .collect();
        let mut workers: Vec<WorkSt> = (id..nworkers)
            .step_by(nshards)
            .map(|w| WorkSt {
                w,
                seq: 0,
                queue: Vec::new(),
                free: cfg.cluster.slots_per_machine,
                episode: None,
                records: BTreeMap::new(),
                next_wtoken: 0,
                inc: 0,
                ep: 0,
                rpc: 0,
                poll_armed: false,
                rng: seq.child_rng(SHARD_WORKER_RNG + w as u64),
                faults: faults_on
                    .then(|| MsgFaults::with_seed(cfg.faults, &seq, SHARD_WORKER_FAULT + w as u64)),
            })
            .collect();
        let mut heap: BinaryHeap<Reverse<HeapEv>> = BinaryHeap::new();
        // Every shard constructs the *full* dynamics plane and scheduler
        // chain — identical RNG draws everywhere, because both keep
        // strictly per-entity generators — then seeds its heap with only
        // its own entities' incidents. Applying an incident consumes only
        // the owning entity's generator, so the replicas never diverge.
        let mut dynamics = cfg
            .dynamics
            .enabled()
            .then(|| MachineDynamics::new(cfg.dynamics.clone(), nworkers, &seq));
        if let Some(d) = dynamics.as_mut() {
            for (at, ev) in d.initial_incidents() {
                let m = ev.machine().0;
                if m % nshards != id {
                    continue;
                }
                let wk = &mut workers[m / nshards];
                let key = EventKey {
                    time: at,
                    origin: (k + m) as u64,
                    seq: wk.seq,
                };
                wk.seq += 1;
                heap.push(Reverse(HeapEv {
                    key,
                    ev: SEv::Dyn(ev),
                }));
            }
        }
        let mut sched_chain = (faults_on && cfg.faults.sched_fail_rate_per_hour > 0.0)
            .then(|| SchedulerChain::new(&cfg.faults, k, &seq));
        let mut sched_seqs: Vec<u64> = vec![0; scheds.len()];
        if let Some(c) = sched_chain.as_mut() {
            for (at, ev) in c.initial_incidents() {
                let s = sched_of(&ev);
                if s % nshards != id {
                    continue;
                }
                let si = s / nshards;
                let key = EventKey {
                    time: at,
                    origin: s as u64,
                    seq: sched_seqs[si],
                };
                sched_seqs[si] += 1;
                heap.push(Reverse(HeapEv {
                    key,
                    ev: SEv::SchedDyn(ev),
                }));
            }
        }
        let mut scheds = scheds;
        for (st, sq) in scheds.iter_mut().zip(sched_seqs) {
            st.seq = sq;
        }
        let arrivals_pending: usize = scheds.iter().map(|st| st.arrivals_pending).sum();
        // This shard's slice of the slot capacity: owned workers only,
        // so merged per-window capacities sum to the global cluster.
        let owned_slots = workers.len() as u64 * cfg.cluster.slots_per_machine as u64;
        Shard {
            id,
            nshards,
            k,
            policy,
            cfg,
            faults_on,
            retain_jobs,
            lookahead: cfg.msg_latency,
            backoff: BackoffPolicy::new(cfg.faults.rpc_timeout_ms, cfg.faults.rpc_retries),
            heap,
            outboxes: (0..nshards).map(|_| Vec::new()).collect(),
            arrivals,
            pending_arrival: None,
            scheds,
            workers,
            machines: Machines::new(&cfg.cluster),
            dynamics,
            sched_chain,
            audit: cfg!(debug_assertions).then(|| Auditor::new(nworkers)),
            live_count: 0,
            arrivals_pending,
            active_global: 0,
            drained: false,
            stats: DecStats::default(),
            results: Vec::new(),
            ev_counts: [0; EV_KINDS],
            windows: 0,
            stalls: 0,
            cross_msgs: 0,
            local_msgs: 0,
            tele: SeriesCollector::new(cfg.telemetry_window_ms, owned_slots),
            tele_kills: 0,
        }
    }

    /// Drive this shard through conservative windows until global
    /// termination (no shard has a pending event or arrival).
    fn run_loop(&mut self, coord: &Coord) {
        let _guard = PoisonGuard {
            barrier: &coord.barrier,
        };
        loop {
            for (key, ev) in coord.mailboxes[self.id].drain() {
                self.heap.push(Reverse(HeapEv { key, ev }));
            }
            let next_local = {
                let arrival = self.peek_own_arrival();
                let heap = self.heap.peek().map(|Reverse(h)| h.key.time);
                match (arrival, heap) {
                    (Some(a), Some(h)) => Some(a.min(h)),
                    (a, h) => a.or(h),
                }
            };
            {
                let mut slot = coord.slots[self.id].lock().expect("slot lock poisoned");
                slot.next = next_local;
                slot.live = self.live_count;
                slot.arrivals = self.arrivals_pending;
                slot.events = self.stats.events;
            }
            coord.barrier.wait();
            // Between barriers A and B nobody writes slots: every shard
            // reads the same snapshot, so the horizon, the drain flag,
            // and the budget verdict agree everywhere — and are the same
            // for every shard count, because window boundaries are.
            let mut nexts: Vec<Option<SimTime>> = Vec::with_capacity(coord.slots.len());
            let mut live = 0usize;
            let mut arrivals = 0usize;
            let mut events = 0u64;
            for s in &coord.slots {
                let sl = s.lock().expect("slot lock poisoned");
                nexts.push(sl.next);
                live += sl.live;
                arrivals += sl.arrivals;
                events += sl.events;
            }
            let Some(window_end) = safe_horizon(nexts, self.lookahead) else {
                break;
            };
            if events > self.cfg.max_events {
                self.panic_event_budget(events);
            }
            self.active_global = live;
            if live == 0 && arrivals == 0 {
                self.drained = true;
            }
            self.windows += 1;
            let before = self.stats.events;
            self.exec_window(window_end);
            if self.stats.events == before {
                self.stalls += 1;
            }
            for d in 0..self.outboxes.len() {
                if d == self.id {
                    continue;
                }
                let buf = std::mem::take(&mut self.outboxes[d]);
                coord.mailboxes[d].post_many(buf);
            }
            coord.barrier.wait();
        }
        assert_eq!(
            self.arrivals_pending, 0,
            "shard {} terminated with arrivals pending",
            self.id
        );
        if let Some(a) = self.audit.as_ref() {
            for wk in &self.workers {
                a.check_worker(
                    wk.w,
                    self.dynamics
                        .as_ref()
                        .is_none_or(|d| d.is_up(MachineId(wk.w))),
                    wk.free as u64,
                    wk.episode.is_some(),
                    self.cfg.cluster.slots_per_machine as u64,
                );
            }
        }
    }

    /// Execute everything this shard owns strictly before `end` —
    /// arrivals win ties against queued events at the same instant, as
    /// in the serial driver.
    fn exec_window(&mut self, end: SimTime) {
        loop {
            let arrival_at = self.peek_own_arrival();
            let heap_at = self.heap.peek().map(|Reverse(h)| h.key.time);
            let take_arrival = match (arrival_at, heap_at) {
                (Some(a), Some(h)) => a < end && a <= h,
                (Some(a), None) => a < end,
                _ => false,
            };
            if take_arrival {
                let spec = self.pending_arrival.take().expect("peeked arrival");
                let now = arrival_at.expect("arrival time");
                self.tele_tick(now);
                self.stats.events += 1;
                self.ev_counts[0] += 1;
                self.on_job_arrive(spec, now);
                continue;
            }
            if heap_at.is_none_or(|t| t >= end) {
                return;
            }
            let Reverse(HeapEv { key, ev }) = self.heap.pop().expect("peeked event");
            let now = key.time;
            self.tele_tick(now);
            self.stats.events += 1;
            self.ev_counts[ev_idx(&ev)] += 1;
            if let Some(a) = self.audit.as_mut() {
                if let Some(kind) = rpc_kind(&ev) {
                    a.note_delivered(kind);
                }
            }
            let audit_ev = self.audit.is_some().then(|| ev.clone());
            self.handle(ev, now);
            if let Some(ev) = audit_ev {
                self.audit_after(&ev);
            }
        }
    }

    fn handle(&mut self, ev: SEv, now: SimTime) {
        match ev {
            SEv::Reservation { worker, res } => self.on_reservation(worker, res, now),
            SEv::Assign {
                worker,
                job,
                task,
                speculative,
                unit_dur,
                vsize,
                remaining,
                inc,
                ep,
            } => self.on_assign(
                worker,
                job,
                task,
                speculative,
                unit_dur,
                vsize,
                remaining,
                inc,
                ep,
                now,
            ),
            SEv::Refusal {
                worker,
                job,
                job_done,
                unsatisfied,
                inc,
                ep,
            } => self.on_refusal(worker, job, job_done, unsatisfied, inc, ep, now),
            SEv::Kill { worker, wtoken } => self.on_kill(worker, wtoken, now),
            SEv::Finish { worker, wtoken } => self.on_finish(worker, wtoken, now),
            SEv::Poll { worker } => self.on_poll(worker, now),
            SEv::Lease { worker, seq } => self.on_lease(worker, seq, now),
            SEv::Dyn(ev) => self.on_dyn(ev, now),
            SEv::Response {
                worker,
                job,
                kind,
                inc,
                ep,
            } => self.on_response(worker, job, kind, inc, ep, now),
            SEv::Launched {
                job,
                worker,
                wtoken,
                task,
                speculative,
                start,
                dur,
                consumed,
            } => self.on_launched(
                job,
                worker,
                wtoken,
                task,
                speculative,
                start,
                dur,
                consumed,
                now,
            ),
            SEv::AssignFailed {
                job,
                task,
                speculative,
            } => self.on_assign_failed(job, task, speculative, now),
            SEv::TaskDone {
                job,
                worker,
                wtoken,
                dur,
            } => self.on_task_done(job, worker, wtoken, dur, now),
            SEv::CopyLost {
                job,
                worker,
                wtoken,
            } => self.on_copy_lost(job, worker, wtoken, now),
            SEv::ResGone { job, count } => self.on_res_gone(job, count, now),
            SEv::Scan { sched } => self.on_scan(sched, now),
            SEv::SchedDyn(ev) => self.on_sched_dyn(ev, now),
            SEv::JobTimeout { job } => self.on_job_timeout(job, now),
        }
    }

    /// Next arrival owned by this shard, skipping (and discarding)
    /// foreign jobs. The skipped job's full state lives on its owner
    /// shard, which performs the identical skip dance from its own
    /// arrival-source replica.
    fn peek_own_arrival(&mut self) -> Option<SimTime> {
        loop {
            if let Some(j) = &self.pending_arrival {
                return Some(j.arrival);
            }
            match self.arrivals.pop() {
                Some(j) => {
                    if (j.id % self.k) % self.nshards == self.id {
                        self.pending_arrival = Some(j);
                    }
                }
                None => return None,
            }
        }
    }

    // ---- entity lookups and routing ----

    /// Shard-local index of global scheduler `s` (must be owned here).
    fn si_of(&self, s: usize) -> usize {
        debug_assert_eq!(
            s % self.nshards,
            self.id,
            "scheduler {s} not on shard {}",
            self.id
        );
        s / self.nshards
    }

    /// Shard-local index of global worker `w` (must be owned here).
    fn wi_of(&self, w: usize) -> usize {
        debug_assert_eq!(
            w % self.nshards,
            self.id,
            "worker {w} not on shard {}",
            self.id
        );
        w / self.nshards
    }

    /// Owner scheduler of job `j` and its scheduler-local dense index.
    fn owner_of(&self, j: usize) -> (usize, usize) {
        (j % self.k, j / self.k)
    }

    fn machine_speed(&self, w: usize) -> f64 {
        self.dynamics
            .as_ref()
            .map_or(1.0, |d| d.speed(MachineId(w)))
    }

    fn worker_up(&self, w: usize) -> bool {
        self.dynamics.as_ref().is_none_or(|d| d.is_up(MachineId(w)))
    }

    /// Shard that owns the destination entity of an event.
    fn dest_shard(&self, ev: &SEv) -> usize {
        match ev {
            SEv::Reservation { worker, .. }
            | SEv::Assign { worker, .. }
            | SEv::Refusal { worker, .. }
            | SEv::Kill { worker, .. }
            | SEv::Finish { worker, .. }
            | SEv::Poll { worker }
            | SEv::Lease { worker, .. } => worker % self.nshards,
            SEv::Dyn(ev) => ev.machine().0 % self.nshards,
            SEv::Response { job, .. }
            | SEv::Launched { job, .. }
            | SEv::AssignFailed { job, .. }
            | SEv::TaskDone { job, .. }
            | SEv::CopyLost { job, .. }
            | SEv::ResGone { job, .. }
            | SEv::JobTimeout { job } => (job % self.k) % self.nshards,
            SEv::Scan { sched } => sched % self.nshards,
            SEv::SchedDyn(ev) => sched_of(ev) % self.nshards,
        }
    }

    /// Deliver a keyed message: own heap if the destination entity lives
    /// here, else the destination shard's outbox (flushed at barrier B).
    fn route(&mut self, key: EventKey, ev: SEv) {
        let dest = self.dest_shard(&ev);
        if dest == self.id {
            self.local_msgs += 1;
            self.heap.push(Reverse(HeapEv { key, ev }));
        } else {
            self.cross_msgs += 1;
            self.outboxes[dest].push((key, ev));
        }
    }

    /// Queue a scheduler-local timer/self event (no latency floor
    /// needed — it never crosses an entity boundary).
    fn push_local_sched(&mut self, si: usize, at: SimTime, ev: SEv) {
        let st = &mut self.scheds[si];
        let key = EventKey {
            time: at,
            origin: st.s as u64,
            seq: st.seq,
        };
        st.seq += 1;
        self.heap.push(Reverse(HeapEv { key, ev }));
    }

    /// Queue a worker-local timer/self event.
    fn push_local_worker(&mut self, wi: usize, at: SimTime, ev: SEv) {
        let wk = &mut self.workers[wi];
        let key = EventKey {
            time: at,
            origin: (self.k + wk.w) as u64,
            seq: wk.seq,
        };
        wk.seq += 1;
        self.heap.push(Reverse(HeapEv { key, ev }));
    }

    /// Reliable internal message from worker `wi` at fixed latency.
    /// (Schedulers have no reliable channel: everything they send is
    /// one of the five faultable RPC kinds, via [`Shard::sched_rpc`].)
    fn worker_msg(&mut self, wi: usize, now: SimTime, ev: SEv) {
        let wk = &mut self.workers[wi];
        let key = EventKey {
            time: now + self.lookahead,
            origin: (self.k + wk.w) as u64,
            seq: wk.seq,
        };
        wk.seq += 1;
        self.route(key, ev);
    }

    /// Scheduler→worker RPC through scheduler `si`'s fault sampler.
    /// Faults off this is exactly one delivery after the fixed latency
    /// and no RNG is consumed.
    fn sched_rpc(&mut self, si: usize, now: SimTime, ev: SEv) {
        let kind = rpc_kind(&ev).expect("sched_rpc carries scheduler→worker RPCs");
        if let Some(a) = self.audit.as_mut() {
            a.note_sent(kind);
            if !self.faults_on {
                if let SEv::Assign { job, .. } = &ev {
                    a.note_occ_sent(*job);
                }
            }
        }
        let outcome = self.scheds[si].faults.as_mut().map(|f| f.send());
        let origin = self.scheds[si].s as u64;
        self.rpc_deliver(ev, kind, outcome, origin, now, |sh| {
            let st = &mut sh.scheds[si];
            let q = st.seq;
            st.seq += 1;
            q
        });
    }

    /// Worker→scheduler RPC through worker `wi`'s fault sampler.
    fn worker_rpc(&mut self, wi: usize, now: SimTime, ev: SEv) {
        let kind = rpc_kind(&ev).expect("worker_rpc carries worker→scheduler RPCs");
        if let Some(a) = self.audit.as_mut() {
            a.note_sent(kind);
        }
        let outcome = self.workers[wi].faults.as_mut().map(|f| f.send());
        let origin = (self.k + self.workers[wi].w) as u64;
        self.rpc_deliver(ev, kind, outcome, origin, now, |sh| {
            let wk = &mut sh.workers[wi];
            let q = wk.seq;
            wk.seq += 1;
            q
        });
    }

    /// Shared delivery tail of the two RPC directions: apply the fault
    /// outcome (loss, duplication, per-delivery jitter) and route every
    /// surviving delivery with a fresh emission key.
    fn rpc_deliver(
        &mut self,
        ev: SEv,
        kind: MsgKind,
        outcome: Option<crate::faults::SendOutcome>,
        origin: u64,
        now: SimTime,
        mut next_seq: impl FnMut(&mut Self) -> u64,
    ) {
        let latency = self.lookahead;
        let Some(out) = outcome else {
            let key = EventKey {
                time: now + latency,
                origin,
                seq: next_seq(self),
            };
            self.route(key, ev);
            return;
        };
        if out.lost {
            self.stats.msgs_lost += 1;
            if let Some(a) = self.audit.as_mut() {
                a.note_lost(kind);
            }
            return;
        }
        if out.duplicated {
            self.stats.msgs_duplicated += 1;
            if let Some(a) = self.audit.as_mut() {
                a.note_dup(kind);
            }
        }
        let keys: Vec<EventKey> = out
            .deliveries
            .iter()
            .map(|d| EventKey {
                time: now + latency + d.extra,
                origin,
                seq: 0,
            })
            .collect();
        let last = keys.len() - 1;
        for mut key in keys.into_iter().take(last) {
            key.seq = next_seq(self);
            self.route(key, ev.clone());
        }
        let mut key = EventKey {
            time: now + latency + out.deliveries[last].extra,
            origin,
            seq: 0,
        };
        key.seq = next_seq(self);
        self.route(key, ev);
    }

    fn panic_event_budget(&self, total: u64) -> ! {
        panic!(
            "decentralized sharded run exceeded event budget: policy={} events={total} \
             (budget {}) windows={} shard={}/{} live={} arrivals_pending={} ev_counts={:?}",
            self.policy.name(),
            self.cfg.max_events,
            self.windows,
            self.id,
            self.nshards,
            self.live_count,
            self.arrivals_pending,
            self.ev_counts
        );
    }

    /// Dev-profile invariant re-check after an event (see `crate::audit`).
    /// Worker-addressed events re-prove the slot equation for the worker
    /// they touched; scheduler-addressed events reconcile the job's
    /// occupancy counter against ground truth (faults off, job live).
    fn audit_after(&self, ev: &SEv) {
        let Some(a) = self.audit.as_ref() else { return };
        let check_w = |w: usize| {
            let wk = &self.workers[self.wi_of(w)];
            a.check_worker(
                w,
                self.worker_up(w),
                wk.free as u64,
                wk.episode.is_some(),
                self.cfg.cluster.slots_per_machine as u64,
            );
        };
        let check_j = |j: usize| {
            if self.faults_on {
                return;
            }
            let (s, lj) = self.owner_of(j);
            let st = &self.scheds[self.si_of(s)];
            if st.arrived[lj] && !st.done[lj] {
                a.check_job(
                    j,
                    st.occupied[lj] as u64,
                    st.jobs[lj].occupied_slots() as u64,
                );
            }
        };
        match ev {
            SEv::Reservation { worker, .. }
            | SEv::Assign { worker, .. }
            | SEv::Refusal { worker, .. }
            | SEv::Kill { worker, .. }
            | SEv::Finish { worker, .. }
            | SEv::Poll { worker }
            | SEv::Lease { worker, .. } => check_w(*worker),
            SEv::Dyn(ev) => check_w(ev.machine().0),
            SEv::Response { job, .. }
            | SEv::Launched { job, .. }
            | SEv::AssignFailed { job, .. }
            | SEv::TaskDone { job, .. }
            | SEv::CopyLost { job, .. }
            | SEv::ResGone { job, .. }
            | SEv::JobTimeout { job } => check_j(*job),
            SEv::Scan { .. } | SEv::SchedDyn(_) => {}
        }
    }
}

// ---- worker-side handlers ----
impl<'a> Shard<'a> {
    fn on_reservation(&mut self, worker: usize, res: Reservation, now: SimTime) {
        let wi = self.wi_of(worker);
        if !self.worker_up(worker) {
            // The machine is down: the reservation evaporates and the
            // owning scheduler's live-reservation count must learn it
            // by message (the serial driver decremented it in place).
            let job = res.job as usize;
            self.worker_msg(wi, now, SEv::ResGone { job, count: 1 });
            return;
        }
        // Parked unconditionally — the worker cannot see job completion
        // here; `job_done` refusals purge stale parks later.
        self.workers[wi].queue.push(res);
        self.maybe_start_episode(worker, now);
    }

    /// Start a late-binding episode if the worker is up and has a free
    /// slot, no episode in flight, and a non-empty queue; then arm the
    /// self-poll that replaces the serial driver's global-scan poke.
    fn maybe_start_episode(&mut self, worker: usize, now: SimTime) {
        if !self.worker_up(worker) {
            return;
        }
        let wi = self.wi_of(worker);
        let wk = &mut self.workers[wi];
        if wk.free > 0 && wk.episode.is_none() && !wk.queue.is_empty() {
            wk.free -= 1; // promise the slot to this episode
            wk.episode = Some(FreeSlotEpisode::new(self.cfg.refusal_threshold));
            self.episode_step(wi, now);
        }
        let wk = &mut self.workers[wi];
        if !wk.poll_armed && !wk.queue.is_empty() {
            wk.poll_armed = true;
            let at = now + self.cfg.scan_interval;
            self.push_local_worker(wi, at, SEv::Poll { worker });
        }
    }

    /// Advance the worker's episode by one protocol step. Guideline-3
    /// randomness draws from the *worker's own* RNG child — the draw
    /// sequence depends only on this worker's event history, never on
    /// how entities interleave globally.
    fn episode_step(&mut self, wi: usize, now: SimTime) {
        if self.workers[wi].episode.is_none() {
            return; // defensive: stray refusal after the episode resolved
        }
        let worker = self.workers[wi].w;
        let action = match self.policy {
            DecPolicy::Sparrow => match pick_fcfs(&self.workers[wi].queue) {
                Some(r) => WorkerAction::Respond {
                    scheduler: r.scheduler,
                    job: r.job,
                    kind: ResponseKind::NonRefusable,
                },
                None => WorkerAction::Idle,
            },
            DecPolicy::SparrowSrpt => match pick_srpt(&self.workers[wi].queue) {
                Some(r) => WorkerAction::Respond {
                    scheduler: r.scheduler,
                    job: r.job,
                    kind: ResponseKind::NonRefusable,
                },
                None => WorkerAction::Idle,
            },
            DecPolicy::Hopper => {
                let wk = &mut self.workers[wi];
                let mut ep = wk.episode.take().expect("episode in flight");
                let switched = ep.refusals() >= self.cfg.refusal_threshold;
                let action = ep.next_action(&wk.queue, &mut wk.rng);
                wk.episode = Some(ep);
                if switched {
                    self.stats.guideline3_switches += 1;
                }
                action
            }
        };
        match action {
            WorkerAction::Respond {
                scheduler,
                job,
                kind,
            } => {
                if let Some(ep) = self.workers[wi].episode.as_mut() {
                    ep.mark_probed(scheduler);
                }
                self.stats.responses += 1;
                let wk = &mut self.workers[wi];
                wk.rpc += 1;
                let inc = wk.inc;
                let epoch = wk.ep;
                let seq = wk.rpc;
                self.worker_rpc(
                    wi,
                    now,
                    SEv::Response {
                        worker,
                        job: job as usize,
                        kind,
                        inc,
                        ep: epoch,
                    },
                );
                // Lease the promised slot (faults only), as in the
                // serial driver.
                if self.faults_on {
                    let at = now + SimTime::from_millis(self.cfg.faults.rpc_timeout_ms);
                    self.push_local_worker(wi, at, SEv::Lease { worker, seq });
                }
            }
            WorkerAction::Idle => {
                self.end_episode(wi);
                self.workers[wi].free += 1;
            }
        }
    }

    /// Terminate worker `wi`'s episode bookkeeping (see the serial
    /// driver's `end_episode`): replies echoing the old epoch are stale
    /// and any armed lease is void. Callers settle `free` themselves.
    fn end_episode(&mut self, wi: usize) {
        let wk = &mut self.workers[wi];
        wk.episode = None;
        wk.ep += 1;
        wk.rpc += 1;
    }

    #[allow(clippy::too_many_arguments)]
    fn on_refusal(
        &mut self,
        worker: usize,
        job: usize,
        job_done: bool,
        unsatisfied: Option<UnsatisfiedJob>,
        inc: u64,
        ep: u64,
        now: SimTime,
    ) {
        let wi = self.wi_of(worker);
        // A done-job refusal doubles as the completion notification: it
        // purges every reservation the finished job still has parked
        // here — *before* the staleness check, because even a stale
        // refusal carries fresh completion news. (The serial driver
        // purged against a global done[] the worker could see directly.)
        if job_done {
            let wk = &mut self.workers[wi];
            let before = wk.queue.len();
            wk.queue.retain(|r| r.job as usize != job);
            let gone = before - wk.queue.len();
            if gone > 0 {
                self.worker_msg(wi, now, SEv::ResGone { job, count: gone });
            }
        }
        {
            let wk = &self.workers[wi];
            if inc != wk.inc || ep != wk.ep {
                return;
            }
        }
        // A reply reached the episode: any armed lease is void.
        self.workers[wi].rpc += 1;
        match self.policy {
            DecPolicy::Sparrow | DecPolicy::SparrowSrpt => {
                // Sparrow consumes the reservation on no-task and moves on.
                if !job_done {
                    let wk = &mut self.workers[wi];
                    if let Some(pos) = wk.queue.iter().position(|r| r.job as usize == job) {
                        wk.queue.remove(pos);
                        self.worker_msg(wi, now, SEv::ResGone { job, count: 1 });
                    }
                }
                self.episode_step(wi, now);
            }
            DecPolicy::Hopper => {
                // Reservations stay (the job may want Guideline-3 extras
                // later); the episode just records the refusal.
                if !job_done {
                    let sched = job % self.k;
                    if let Some(ep) = self.workers[wi].episode.as_mut() {
                        ep.record_refusal(sched, job as u64, unsatisfied);
                    }
                }
                self.episode_step(wi, now);
            }
        }
    }

    /// A task assignment arrives: commit the copy against local machine
    /// state (speed-scaling the scheduler-pre-drawn unit duration by the
    /// *current* local speed) and ack the launch. The scheduler's ground
    /// truth moves only when the `Launched` ack lands.
    #[allow(clippy::too_many_arguments)]
    fn on_assign(
        &mut self,
        worker: usize,
        job: usize,
        task: TaskRef,
        speculative: bool,
        unit_dur: SimTime,
        vsize: f64,
        remaining: f64,
        inc: u64,
        ep: u64,
        now: SimTime,
    ) {
        let wi = self.wi_of(worker);
        {
            let wk = &self.workers[wi];
            // The promised slot is gone (machine failed mid-flight, or
            // the episode ended first): nothing commits, and the sender
            // must undo its send-side accounting — by message here,
            // where the serial driver undid it in place.
            if inc != wk.inc || ep != wk.ep {
                self.worker_msg(
                    wi,
                    now,
                    SEv::AssignFailed {
                        job,
                        task,
                        speculative,
                    },
                );
                return;
            }
        }
        // Episode resolved successfully; the promised slot is consumed.
        self.end_episode(wi);
        let speed = self.machine_speed(worker);
        // Exactly `launch_copy_at_speed`'s scaling: nominal at speed 1,
        // stretched (floor 1ms) otherwise.
        let dur = if speed == 1.0 {
            unit_dur
        } else {
            unit_dur.scale(1.0 / speed).max(SimTime::from_millis(1))
        };
        let wk = &mut self.workers[wi];
        let consumed = if let Some(pos) = wk.queue.iter().position(|r| r.job as usize == job) {
            wk.queue.remove(pos);
            true
        } else {
            false
        };
        let wtoken = wk.next_wtoken;
        wk.next_wtoken += 1;
        wk.records.insert(
            wtoken,
            CopyRec {
                job,
                start: now,
                finish: now + dur,
            },
        );
        // Piggyback a virtual-size update on this assignment for the
        // job's reservations parked here (§5.3) — the Assign-time
        // snapshot, where the serial driver read the scheduler's
        // post-launch state directly.
        for r in wk.queue.iter_mut() {
            if r.job as usize == job {
                r.virtual_size = vsize;
                r.remaining_tasks = remaining;
            }
        }
        if let Some(a) = self.audit.as_mut() {
            a.note_copy_started(worker);
        }
        self.machines.occupy_for(MachineId(worker), job);
        self.push_local_worker(wi, now + dur, SEv::Finish { worker, wtoken });
        self.worker_msg(
            wi,
            now,
            SEv::Launched {
                job,
                worker,
                wtoken,
                task,
                speculative,
                start: now,
                dur,
                consumed,
            },
        );
        self.maybe_start_episode(worker, now);
    }

    /// A copy's local completion timer fired: free the slot and notify
    /// the owning scheduler. If a kill beat the timer the record is
    /// gone and this is a no-op; if a rescale moved the finish, the
    /// superseded timer misses the recorded instant and dies here.
    fn on_finish(&mut self, worker: usize, wtoken: u64, now: SimTime) {
        let wi = self.wi_of(worker);
        let Some(rec) = self.workers[wi].records.get(&wtoken).copied() else {
            return;
        };
        if rec.finish != now {
            return;
        }
        self.workers[wi].records.remove(&wtoken);
        if let Some(a) = self.audit.as_mut() {
            a.note_copy_stopped(worker);
        }
        self.workers[wi].free += 1;
        self.machines.release_to(MachineId(worker), rec.job);
        self.worker_msg(
            wi,
            now,
            SEv::TaskDone {
                job: rec.job,
                worker,
                wtoken,
                dur: now.saturating_sub(rec.start),
            },
        );
        self.maybe_start_episode(worker, now);
    }

    /// Kill notification for a lost race. Idempotent against every
    /// interleaving by construction: the record is the single source of
    /// truth, and whoever removes it first (kill, natural finish,
    /// machine failure) settles the slot exactly once.
    fn on_kill(&mut self, worker: usize, wtoken: u64, now: SimTime) {
        let wi = self.wi_of(worker);
        let Some(rec) = self.workers[wi].records.remove(&wtoken) else {
            return;
        };
        if let Some(a) = self.audit.as_mut() {
            a.note_copy_stopped(worker);
        }
        self.workers[wi].free += 1;
        self.machines.release_to(MachineId(worker), rec.job);
        self.maybe_start_episode(worker, now);
    }

    fn on_poll(&mut self, worker: usize, now: SimTime) {
        let wi = self.wi_of(worker);
        self.workers[wi].poll_armed = false;
        self.maybe_start_episode(worker, now);
    }

    /// A response lease fired (faults only), as in the serial driver.
    fn on_lease(&mut self, worker: usize, seq: u64, now: SimTime) {
        let wi = self.wi_of(worker);
        {
            let wk = &self.workers[wi];
            if seq != wk.rpc || wk.episode.is_none() {
                return;
            }
        }
        self.stats.orphan_reclaimed += 1;
        self.end_episode(wi);
        self.workers[wi].free += 1;
        self.maybe_start_episode(worker, now);
    }

    /// Apply one machine-dynamics incident to the owning worker. The
    /// speed-rescale mirrors `JobRun::rescale_machine` on the worker's
    /// own copy records (duration = finish − start is maintained by
    /// both); failure turns parked reservations and running copies into
    /// loss notifications toward their owning schedulers.
    fn on_dyn(&mut self, ev: DynEvent, now: SimTime) {
        if self.drained {
            // The workload is globally complete (window-start snapshot):
            // the chain retires by not applying, so no successor spawns.
            return;
        }
        let out = self
            .dynamics
            .as_mut()
            .expect("dyn event without dynamics plane")
            .apply(ev);
        let m = ev.machine();
        let w = m.0;
        let wi = self.wi_of(w);
        for (delay, next) in out.next {
            self.push_local_worker(wi, now + delay, SEv::Dyn(next));
        }
        match ev {
            DynEvent::SlowdownStart(_) | DynEvent::SlowdownEnd(_) => {
                let ratio = out.rescale_ratio.expect("speed change carries a ratio");
                let mut resched: Vec<(u64, SimTime)> = Vec::new();
                {
                    let wk = &mut self.workers[wi];
                    for (&tok, rec) in wk.records.iter_mut() {
                        let old_finish = rec.finish;
                        let new_finish = if rec.start >= now {
                            let full = (rec.finish - rec.start).as_millis();
                            rec.start
                                + SimTime::from_millis(
                                    ((full as f64 * ratio).round() as u64).max(1),
                                )
                        } else {
                            let rem = old_finish.saturating_sub(now).as_millis();
                            if rem == 0 {
                                continue; // due at this very instant; let it land
                            }
                            now + SimTime::from_millis(((rem as f64 * ratio).round() as u64).max(1))
                        };
                        if new_finish == old_finish {
                            continue;
                        }
                        rec.finish = new_finish;
                        resched.push((tok, new_finish));
                    }
                }
                for (tok, finish) in resched {
                    self.push_local_worker(
                        wi,
                        finish,
                        SEv::Finish {
                            worker: w,
                            wtoken: tok,
                        },
                    );
                }
            }
            DynEvent::Fail(_) => {
                // Worker-side teardown: parked reservations, the episode,
                // every slot, and every running copy die with the machine.
                // Each casualty becomes a message to its owning scheduler
                // (the serial driver swept scheduler state in place).
                let (queue, records) = {
                    let wk = &mut self.workers[wi];
                    wk.inc += 1;
                    (
                        std::mem::take(&mut wk.queue),
                        std::mem::take(&mut wk.records),
                    )
                };
                self.end_episode(wi);
                self.workers[wi].free = 0;
                if let Some(a) = self.audit.as_mut() {
                    a.note_machine_failed(w);
                }
                // Aggregate reservation losses per job; BTreeMap iteration
                // keeps the emission order deterministic.
                let mut gone: BTreeMap<usize, usize> = BTreeMap::new();
                for r in queue {
                    *gone.entry(r.job as usize).or_insert(0) += 1;
                }
                for (job, count) in gone {
                    self.worker_msg(wi, now, SEv::ResGone { job, count });
                }
                for (wtoken, rec) in records {
                    self.worker_msg(
                        wi,
                        now,
                        SEv::CopyLost {
                            job: rec.job,
                            worker: w,
                            wtoken,
                        },
                    );
                }
                self.machines.set_down(m);
            }
            DynEvent::Recover(_) => {
                self.machines.set_up(m);
                self.workers[wi].free = self.cfg.cluster.slots_per_machine;
            }
        }
    }
}

/// First unlaunched, unclaimed original in eligible phases, preferring
/// one whose input is local to `m` — the serial driver's
/// `next_unclaimed_original` over the job's pending-task indices.
fn next_unclaimed_original(
    jr: &JobRun,
    claimed: &HashSet<TaskRef>,
    m: MachineId,
) -> Option<TaskRef> {
    let no_pref = jr.pending_no_replica_tasks().find(|t| !claimed.contains(t));
    let local = jr.pending_local_tasks(m).find(|t| !claimed.contains(t));
    match (no_pref, local) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, None) => a,
        (None, b) => b,
    }
    .or_else(|| jr.pending_tasks().find(|t| !claimed.contains(t)))
}

// ---- scheduler-side handlers ----
impl<'a> Shard<'a> {
    /// Build job `j`'s runtime state and probe for its tasks. The
    /// owner's placement RNG is consumed in its own arrival order
    /// (ascending job id within the scheduler), so the draw sequence is
    /// partition-independent.
    fn on_job_arrive(&mut self, spec: TraceJob, now: SimTime) {
        let j = spec.id;
        debug_assert_eq!(spec.arrival, now);
        let (s, lj) = self.owner_of(j);
        let si = self.si_of(s);
        {
            let st = &mut self.scheds[si];
            let job = JobRun::new(spec, &self.cfg.cluster, &mut st.placement_rng);
            st.pending_orig[lj] = job
                .phases()
                .iter()
                .filter(|p| p.eligible)
                .map(|p| p.num_tasks())
                .sum();
            st.jobs.insert(lj, job);
            st.arrived[lj] = true;
            st.arrivals_pending -= 1;
            debug_assert!(st.live.last().is_none_or(|&last| last < j));
            st.live.push(j);
        }
        self.arrivals_pending -= 1;
        self.live_count += 1;
        self.arm_scan(si, now);
        // A job arriving at a crashed scheduler places no probes — the
        // scheduler's recovery (and the job's watchdog) re-probe from
        // ground truth. Never taken while scheduler faults are off.
        if self.scheds[si].up {
            // Place probe_ratio × tasks reservations; input tasks probe
            // their replica machines first (§6.1), the remainder go to
            // random workers drawn from the owner's own RNG.
            let tasks = self.scheds[si].jobs[lj].spec.size_tasks().max(1);
            let probes = ((tasks as f64 * self.cfg.probe_ratio).ceil() as usize).max(1);
            let vsize = self.vsize(si, lj);
            let remaining = self.scheds[si].jobs[lj].current_remaining() as f64;
            let mut targets: Vec<usize> = Vec::with_capacity(probes);
            for t in &self.scheds[si].jobs[lj].phases()[0].tasks {
                for r in &t.replicas {
                    if targets.len() < probes {
                        targets.push(r.0);
                    }
                }
            }
            while targets.len() < probes {
                let w = self.scheds[si].rng.gen_range(0..self.cfg.cluster.machines);
                targets.push(w);
            }
            for w in targets {
                self.stats.reservations += 1;
                self.scheds[si].live_res[lj] += 1;
                self.sched_rpc(
                    si,
                    now,
                    SEv::Reservation {
                        worker: w,
                        res: Reservation {
                            scheduler: s,
                            job: j as u64,
                            virtual_size: vsize,
                            remaining_tasks: remaining,
                        },
                    },
                );
            }
        }
        // Watchdog (faults only), as in the serial driver.
        if self.faults_on {
            let at = now + SimTime::from_millis(self.backoff.delay_ms(0));
            self.push_local_sched(si, at, SEv::JobTimeout { job: j });
        }
    }

    /// Send `count` fresh reservations for `job` to random workers.
    fn send_probes(&mut self, si: usize, job: usize, count: usize, now: SimTime) {
        if !self.scheds[si].up {
            return;
        }
        let lj = job / self.k;
        let vsize = self.vsize(si, lj);
        let rem = self.scheds[si].jobs[lj].current_remaining() as f64;
        let s = self.scheds[si].s;
        for _ in 0..count {
            let w = self.scheds[si].rng.gen_range(0..self.cfg.cluster.machines);
            self.stats.reservations += 1;
            self.scheds[si].live_res[lj] += 1;
            self.sched_rpc(
                si,
                now,
                SEv::Reservation {
                    worker: w,
                    res: Reservation {
                        scheduler: s,
                        job: job as u64,
                        virtual_size: vsize,
                        remaining_tasks: rem,
                    },
                },
            );
        }
    }

    /// The scheduler's current view of a job's virtual size.
    fn vsize(&self, si: usize, lj: usize) -> f64 {
        let st = &self.scheds[si];
        let beta = if st.beta.observations() >= 20 {
            st.beta.beta()
        } else {
            st.jobs[lj].spec.beta
        };
        virtual_size(
            st.jobs[lj].current_remaining() as f64,
            beta,
            st.jobs[lj].alpha().max(1.0),
        )
    }

    /// Whether the job is below its ε-fair share `(1−ε)·S/N` (§4.3),
    /// with N the *window-start snapshot* of the global live-job count —
    /// the barrier makes that snapshot identical on every shard and for
    /// every shard count.
    fn below_fair_floor(&self, si: usize, lj: usize) -> bool {
        let Some(eps) = self.cfg.fairness_eps else {
            return false;
        };
        if self.active_global == 0 {
            return false;
        }
        let fair = self.cfg.cluster.total_slots() as f64 / self.active_global as f64;
        let floor = ((1.0 - eps) * fair).floor().min(self.vsize(si, lj));
        (self.scheds[si].occupied[lj] as f64) < floor
    }

    /// Scheduler-side handling of a worker's slot offer (Pseudocode 2).
    fn on_response(
        &mut self,
        worker: usize,
        job: usize,
        kind: ResponseKind,
        inc: u64,
        ep: u64,
        now: SimTime,
    ) {
        let (s, lj) = self.owner_of(job);
        let si = self.si_of(s);
        // Offer addressed to a crashed scheduler: effectively lost — the
        // worker's lease reclaims the promised slot. (Faults only.)
        if !self.scheds[si].up {
            return;
        }
        if self.scheds[si].done[lj] {
            self.send_refusal(si, worker, job, true, inc, ep, now);
            return;
        }
        let accepts = match self.policy {
            DecPolicy::Sparrow | DecPolicy::SparrowSrpt => true,
            DecPolicy::Hopper => {
                let below = self.below_fair_floor(si, lj);
                scheduler_accepts(
                    kind,
                    self.scheds[si].occupied[lj] as f64,
                    self.vsize(si, lj),
                ) || below
            }
        };
        let allow_extra_spec = matches!(self.policy, DecPolicy::Hopper);
        let launch = if accepts {
            self.pick_work(si, lj, worker, allow_extra_spec, now)
        } else {
            None
        };
        match launch {
            Some((task, speculative)) => {
                let unit_dur = {
                    let st = &mut self.scheds[si];
                    st.occupied[lj] += 1;
                    if speculative {
                        st.candidates[lj].retain(|c| c.task != task);
                    } else {
                        st.pending_orig[lj] -= 1;
                    }
                    // Pre-draw the unit-speed duration from the owner's
                    // own RNG; the worker speed-scales and commits.
                    st.jobs[lj].sample_unit_duration(
                        task,
                        MachineId(worker),
                        speculative,
                        &self.cfg.cluster,
                        &mut st.rng,
                    )
                };
                let vsize = self.vsize(si, lj);
                let remaining = self.scheds[si].jobs[lj].current_remaining() as f64;
                self.sched_rpc(
                    si,
                    now,
                    SEv::Assign {
                        worker,
                        job,
                        task,
                        speculative,
                        unit_dur,
                        vsize,
                        remaining,
                        inc,
                        ep,
                    },
                );
            }
            None => self.send_refusal(si, worker, job, false, inc, ep, now),
        }
    }

    /// Choose the next work item for the job on `worker`, exactly as the
    /// serial driver's `pick_work`.
    fn pick_work(
        &mut self,
        si: usize,
        lj: usize,
        worker: usize,
        allow_extra_spec: bool,
        now: SimTime,
    ) -> Option<(TaskRef, bool)> {
        let st = &mut self.scheds[si];
        if st.pending_orig[lj] > 0 {
            if let Some(task) =
                next_unclaimed_original(&st.jobs[lj], &st.claimed[lj], MachineId(worker))
            {
                st.claimed[lj].insert(task);
                return Some((task, false));
            }
        }
        while let Some(cand) = st.candidates[lj].front().copied() {
            let t = &st.jobs[lj].phases()[cand.task.phase].tasks[cand.task.task];
            if t.is_finished() || t.running_copies() == 0 || t.running_copies() >= 2 {
                st.candidates[lj].pop_front();
                continue;
            }
            return Some((cand.task, true));
        }
        if allow_extra_spec {
            if let Some(task) = st.jobs[lj].best_extra_speculation(now) {
                return Some((task, true));
            }
        }
        None
    }

    /// Refuse an offer, advertising this scheduler's smallest
    /// unsatisfied job (Pseudocode 3). `job_done` makes the refusal
    /// double as the job's completion notification at the worker.
    #[allow(clippy::too_many_arguments)]
    fn send_refusal(
        &mut self,
        si: usize,
        worker: usize,
        job: usize,
        job_done: bool,
        inc: u64,
        ep: u64,
        now: SimTime,
    ) {
        self.stats.refusals += 1;
        let s = self.scheds[si].s;
        let mut best: Option<UnsatisfiedJob> = None;
        for idx in 0..self.scheds[si].live.len() {
            let j2 = self.scheds[si].live[idx];
            if j2 == job {
                continue;
            }
            let lj2 = j2 / self.k;
            let launchable = {
                let st = &self.scheds[si];
                st.pending_orig[lj2] > 0 || !st.candidates[lj2].is_empty()
            };
            if !launchable {
                continue;
            }
            let v = self.vsize(si, lj2);
            let advertised = ((self.scheds[si].occupied[lj2] as f64) < v).then_some(v);
            if let Some(adv) = advertised {
                let better = best.is_none_or(|b| adv < b.virtual_size);
                if better {
                    best = Some(UnsatisfiedJob {
                        scheduler: s,
                        job: j2 as u64,
                        virtual_size: adv,
                    });
                }
            }
        }
        self.sched_rpc(
            si,
            now,
            SEv::Refusal {
                worker,
                job,
                job_done,
                unsatisfied: best,
                inc,
                ep,
            },
        );
    }

    /// The worker's launch ack: commit the copy into scheduler ground
    /// truth, or detect that the assignment went stale in flight (task
    /// finished, race resolved, job completed) and reclaim the
    /// already-running copy with a kill.
    #[allow(clippy::too_many_arguments)]
    fn on_launched(
        &mut self,
        job: usize,
        worker: usize,
        wtoken: u64,
        task: TaskRef,
        speculative: bool,
        start: SimTime,
        dur: SimTime,
        consumed: bool,
        now: SimTime,
    ) {
        let (s, lj) = self.owner_of(job);
        let si = self.si_of(s);
        if !self.faults_on {
            if let Some(a) = self.audit.as_mut() {
                a.note_occ_delivered(job);
            }
        }
        {
            let st = &mut self.scheds[si];
            if !speculative {
                st.claimed[lj].remove(&task);
            }
            if consumed {
                st.live_res[lj] = st.live_res[lj].saturating_sub(1);
            }
        }
        // The serial driver's delivery-time re-validation, moved to ack
        // time: done ⇒ every task finished ⇒ stale, without
        // dereferencing retired state.
        let stale = {
            let st = &self.scheds[si];
            st.done[lj] || {
                let t = &st.jobs[lj].phases()[task.phase].tasks[task.task];
                t.is_finished()
                    || (speculative && t.running_copies() == 0)
                    || (!speculative && !t.needs_original())
            }
        };
        if stale {
            {
                let st = &mut self.scheds[si];
                st.occupied[lj] = st.occupied[lj].saturating_sub(1);
                if !speculative
                    && !st.done[lj]
                    && st.jobs[lj].phases()[task.phase].tasks[task.task].needs_original()
                {
                    st.pending_orig[lj] += 1;
                }
            }
            // Unlike the serial driver, the copy is already running at
            // the worker: reclaim it. (A lost kill is recovered by the
            // copy freeing itself at its natural finish.)
            self.tele_kills += 1;
            self.sched_rpc(si, now, SEv::Kill { worker, wtoken });
            return;
        }
        {
            let st = &mut self.scheds[si];
            st.wd_progress[lj] += 1;
            let copy =
                st.jobs[lj].launch_copy_prepared(task, MachineId(worker), speculative, start, dur);
            st.copy_tok.insert((job, copy), (worker, wtoken));
            st.tok_copy.insert((worker, wtoken), (job, copy));
        }
        if speculative {
            self.stats.spec_launched += 1;
        } else {
            self.stats.orig_launched += 1;
        }
    }

    /// The assign found no promised slot (machine failed or episode
    /// ended in flight): undo the send-side accounting, as the serial
    /// driver's delivery-time mismatch branch did in place.
    fn on_assign_failed(&mut self, job: usize, task: TaskRef, speculative: bool, now: SimTime) {
        let _ = now;
        let (s, lj) = self.owner_of(job);
        let si = self.si_of(s);
        if !self.faults_on {
            if let Some(a) = self.audit.as_mut() {
                a.note_occ_delivered(job);
            }
        }
        let st = &mut self.scheds[si];
        if !speculative {
            st.claimed[lj].remove(&task);
        }
        st.occupied[lj] = st.occupied[lj].saturating_sub(1);
        if !speculative
            && !st.done[lj]
            && st.jobs[lj].phases()[task.phase].tasks[task.task].needs_original()
        {
            st.pending_orig[lj] += 1;
        }
    }

    /// A committed copy ran to completion: resolve the race exactly as
    /// the serial driver's `on_finish` scheduler half — kill running
    /// siblings, learn β from the measured wall-clock duration, open
    /// newly eligible phases, complete the job.
    fn on_task_done(&mut self, job: usize, worker: usize, wtoken: u64, dur: SimTime, now: SimTime) {
        let (s, lj) = self.owner_of(job);
        let si = self.si_of(s);
        let _ = s;
        let Some(&(gjob, copy)) = self.scheds[si].tok_copy.get(&(worker, wtoken)) else {
            return; // lost its race (or machine) before this ack landed
        };
        debug_assert_eq!(gjob, job);
        {
            let st = &mut self.scheds[si];
            st.tok_copy.remove(&(worker, wtoken));
            st.copy_tok.remove(&(gjob, copy));
        }
        // Collect running siblings *before* resolving the race.
        let siblings: Vec<CopyRef> = self.scheds[si].jobs[lj].phases()[copy.task.phase].tasks
            [copy.task.task]
            .copies
            .iter()
            .enumerate()
            .filter(|(i, c)| *i != copy.copy && c.status == hopper_cluster::CopyStatus::Running)
            .map(|(i, _)| CopyRef::new(copy.task.phase, copy.task.task, i))
            .collect();
        let out = {
            let st = &mut self.scheds[si];
            let Some(out) = st.jobs[lj].finish_copy(copy, now) else {
                return; // stale (copy killed earlier)
            };
            out
        };
        let was_spec = self.scheds[si].jobs[lj].phases()[copy.task.phase].tasks[copy.task.task]
            .copies[copy.copy]
            .speculative;
        if was_spec {
            self.stats.spec_won += 1;
        }
        {
            let st = &mut self.scheds[si];
            st.wd_progress[lj] += 1;
            st.occupied[lj] = st.occupied[lj].saturating_sub(1);
            // β learns the measured wall-clock duration — equal to the
            // serial driver's rescale-adjusted copy duration.
            if out.nominal.as_millis() > 0 && st.up {
                st.beta
                    .observe(dur.as_millis() as f64 / out.nominal.as_millis() as f64);
            }
        }
        for c in siblings {
            // The sibling leaves the occupancy counter at its kill's
            // *send* (ground truth dropped it in `finish_copy` at this
            // same event), keeping counter and truth in lockstep.
            let kill = {
                let st = &mut self.scheds[si];
                st.occupied[lj] = st.occupied[lj].saturating_sub(1);
                st.copy_tok.remove(&(gjob, c)).inspect(|(w2, tok2)| {
                    st.tok_copy.remove(&(*w2, *tok2));
                })
            };
            if let Some((w2, tok2)) = kill {
                self.tele_kills += 1;
                self.sched_rpc(
                    si,
                    now,
                    SEv::Kill {
                        worker: w2,
                        wtoken: tok2,
                    },
                );
            }
        }
        for &pi in &out.newly_eligible {
            let tasks = self.scheds[si].jobs[lj].phases()[pi].num_tasks();
            self.scheds[si].pending_orig[lj] += tasks;
            let probes = ((tasks as f64 * self.cfg.probe_ratio).ceil() as usize).max(1);
            self.send_probes(si, job, probes, now);
        }
        if out.job_done {
            self.complete_job(si, lj, job, now);
        }
    }

    /// A committed copy died with its machine: the per-copy half of the
    /// serial driver's `fail_machine` sweep.
    fn on_copy_lost(&mut self, job: usize, worker: usize, wtoken: u64, now: SimTime) {
        let (s, lj) = self.owner_of(job);
        let si = self.si_of(s);
        let _ = s;
        let Some((gjob, copy)) = self.scheds[si].tok_copy.remove(&(worker, wtoken)) else {
            return;
        };
        self.scheds[si].copy_tok.remove(&(gjob, copy));
        let requeued = {
            let st = &mut self.scheds[si];
            st.occupied[lj] = st.occupied[lj].saturating_sub(1);
            st.jobs[lj].lose_copy(copy)
        };
        if requeued == Some(true) {
            self.scheds[si].pending_orig[lj] += 1;
            let probes = (self.cfg.probe_ratio.ceil() as usize).max(1);
            self.send_probes(si, job, probes, now);
        }
    }

    /// Reservations for the job evaporated at a worker.
    fn on_res_gone(&mut self, job: usize, count: usize, now: SimTime) {
        let _ = now;
        let (s, lj) = self.owner_of(job);
        let si = self.si_of(s);
        let _ = s;
        let st = &mut self.scheds[si];
        if !st.done[lj] {
            st.live_res[lj] = st.live_res[lj].saturating_sub(count);
        }
    }

    /// Per-scheduler straggler scan: refresh speculation candidates and
    /// re-probe jobs whose reservations all evaporated. Unlike the
    /// serial driver's global scan, there is no worker poke — workers
    /// self-poll (`SEv::Poll`).
    fn on_scan(&mut self, sched: usize, now: SimTime) {
        let si = self.si_of(sched);
        self.scheds[si].scan_armed = false;
        if self.scheds[si].up {
            for idx in 0..self.scheds[si].live.len() {
                let lj = self.scheds[si].live[idx] / self.k;
                let st = &mut self.scheds[si];
                if st.jobs[lj].occupied_slots() > 0 {
                    let cands = self.cfg.speculator.candidates(&st.jobs[lj], now);
                    st.candidates[lj] = cands.into();
                }
            }
            let mut reprobe: Vec<(usize, usize)> = Vec::new();
            for idx in 0..self.scheds[si].live.len() {
                let j = self.scheds[si].live[idx];
                let lj = j / self.k;
                let st = &self.scheds[si];
                if st.live_res[lj] > 0 {
                    continue;
                }
                let launchable = st.pending_orig[lj] > 0 || !st.candidates[lj].is_empty();
                if launchable {
                    let want = ((st.jobs[lj].current_remaining() as f64 * self.cfg.probe_ratio)
                        .ceil() as usize)
                        .max(1);
                    reprobe.push((j, want));
                }
            }
            for (j, want) in reprobe {
                self.send_probes(si, j, want, now);
            }
        }
        self.arm_scan(si, now);
    }

    /// Re-arm the scheduler's scan while it has live jobs or owed
    /// arrivals (the self-limiting equivalent of the serial driver's
    /// global-activity check).
    fn arm_scan(&mut self, si: usize, now: SimTime) {
        let st = &self.scheds[si];
        if !st.scan_armed && (!st.live.is_empty() || st.arrivals_pending > 0) {
            let s = st.s;
            let at = now + self.cfg.scan_interval;
            self.scheds[si].scan_armed = true;
            self.push_local_sched(si, at, SEv::Scan { sched: s });
        }
    }

    /// Apply one scheduler crash/recover incident (faults only).
    fn on_sched_dyn(&mut self, ev: SchedEv, now: SimTime) {
        if self.drained {
            return; // chain retires, as the dynamics chains do
        }
        let s = sched_of(&ev);
        let si = self.si_of(s);
        if let Some((delay, next)) = self
            .sched_chain
            .as_mut()
            .expect("scheduler event without a crash chain")
            .apply(ev)
        {
            self.push_local_sched(si, now + delay, SEv::SchedDyn(next));
        }
        match ev {
            SchedEv::Fail(_) => {
                self.stats.sched_failovers += 1;
                let st = &mut self.scheds[si];
                st.up = false;
                for idx in 0..st.live.len() {
                    let lj = st.live[idx] / self.k;
                    st.candidates[lj] = VecDeque::new();
                    st.claimed[lj] = HashSet::new();
                }
                st.beta = BetaEstimator::with_prior(1.5);
            }
            SchedEv::Recover(_) => {
                self.scheds[si].up = true;
                let owned: Vec<usize> = self.scheds[si].live.clone();
                for j in owned {
                    let lj = j / self.k;
                    {
                        let st = &mut self.scheds[si];
                        st.occupied[lj] = st.jobs[lj].occupied_slots();
                        st.pending_orig[lj] = st.jobs[lj].pending_tasks().count();
                    }
                    let pending = self.scheds[si].pending_orig[lj];
                    if pending > 0 {
                        let probes =
                            ((pending as f64 * self.cfg.probe_ratio).ceil() as usize).max(1);
                        self.stats.msgs_retried += probes as u64;
                        self.send_probes(si, j, probes, now);
                    }
                }
            }
        }
    }

    /// The per-job watchdog fired (faults only), as in the serial
    /// driver.
    fn on_job_timeout(&mut self, job: usize, now: SimTime) {
        let (s, lj) = self.owner_of(job);
        let si = self.si_of(s);
        let _ = s;
        if self.scheds[si].done[lj] {
            return; // no re-arm: the watchdog dies with the job
        }
        let delay_ms = if self.scheds[si].wd_progress[lj] != self.scheds[si].wd_seen[lj] {
            let st = &mut self.scheds[si];
            st.wd_seen[lj] = st.wd_progress[lj];
            st.wd_attempt[lj] = 0;
            self.backoff.delay_ms(0)
        } else if !self.scheds[si].up {
            self.backoff.delay_ms(0)
        } else {
            self.stats.timeouts_fired += 1;
            let launchable = {
                let st = &mut self.scheds[si];
                st.claimed[lj] = HashSet::new();
                st.occupied[lj] = st.jobs[lj].occupied_slots();
                st.pending_orig[lj] = st.jobs[lj].pending_tasks().count();
                st.pending_orig[lj] > 0 || !st.candidates[lj].is_empty()
            };
            if launchable {
                let probes = ((self.scheds[si].jobs[lj].current_remaining() as f64
                    * self.cfg.probe_ratio)
                    .ceil() as usize)
                    .max(1);
                self.stats.msgs_retried += probes as u64;
                self.send_probes(si, job, probes, now);
            }
            let st = &mut self.scheds[si];
            let attempt = st.wd_attempt[lj];
            st.wd_attempt[lj] = self.backoff.next_attempt(attempt);
            self.backoff.delay_ms(attempt)
        };
        let at = now + SimTime::from_millis(delay_ms);
        self.push_local_sched(si, at, SEv::JobTimeout { job });
    }

    /// Complete and **retire** the job, exactly as the serial driver's
    /// `complete_job` (the retirement invariant carries over verbatim).
    fn complete_job(&mut self, si: usize, lj: usize, job: usize, now: SimTime) {
        {
            let st = &mut self.scheds[si];
            st.done[lj] = true;
            st.done_count += 1;
            st.candidates[lj] = VecDeque::new();
            st.claimed[lj] = HashSet::new();
            let pos = st.live.binary_search(&job).expect("completed job is live");
            st.live.remove(pos);
        }
        self.live_count -= 1;
        let retired = self.scheds[si].jobs.retire(lj);
        let result = JobResult {
            job: retired.id,
            size_tasks: retired.spec.size_tasks(),
            dag_len: retired.spec.dag_len(),
            arrival: retired.spec.arrival,
            completed: now,
        };
        self.scheds[si].digest.observe_ms(result.duration_ms());
        self.tele.observe_jct(result.duration_ms());
        if self.retain_jobs {
            self.results.push(result);
        }
        self.stats.makespan = self.stats.makespan.max(now);
    }

    /// Close any telemetry windows that end before the event about to
    /// be processed at `now`. Boundaries are global simulation time, so
    /// every shard count closes the same windows — which is what makes
    /// the merged series bit-identical across shard counts.
    #[inline]
    fn tele_tick(&mut self, now: SimTime) {
        let now_ms = now.as_millis();
        if self.tele.boundary_due(now_ms) {
            let snap = self.tele_snapshot();
            self.tele.close_to(now_ms, snap);
        }
    }

    /// Gauges + cumulative counters over this shard's own entities
    /// (disjoint across shards, so merged values sum to the global
    /// state). O(owned workers + schedulers), only evaluated at window
    /// boundaries and at the end of the run.
    fn tele_snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            busy_slots: self.workers.iter().map(|wk| wk.records.len() as u64).sum(),
            queue_depth: self.workers.iter().map(|wk| wk.queue.len() as u64).sum(),
            live_jobs: self.live_count as u64,
            completed: self.scheds.iter().map(|st| st.done_count).sum(),
            orig_launched: self.stats.orig_launched,
            spec_launched: self.stats.spec_launched,
            spec_won: self.stats.spec_won,
            killed: self.tele_kills,
            messages: self.stats.reservations + self.stats.responses + self.stats.refusals,
            events: self.stats.events,
        }
    }
}
