//! The message-fault plane: seeded RPC loss / jitter / duplication and
//! scheduler crash/recover chains for the decentralized engine.
//!
//! Hopper's decentralized claim is that probe-based speculation-aware
//! scheduling survives *at scale* — which means surviving the network.
//! This module supplies the adversary: every scheduler↔worker RPC
//! (reservation, response, assign, refusal, kill) can be **lost** with a
//! per-message probability, **delayed** by a per-message jitter draw (so
//! deliveries reorder), or **duplicated**; and schedulers themselves
//! crash and recover on seeded incident chains exactly like the PR 4
//! machine chains (one chain per scheduler, each consuming only its own
//! seed-derived RNG, so parallel sweeps stay bit-identical).
//!
//! **Faults-off contract.** With [`FaultConfig::off`] (the default)
//! nothing here is constructed, no RNG is drawn, and no timer event is
//! scheduled: runs are bit-identical to a fault-free build, enforced the
//! same way dynamics-off is (golden suites + chaos tests).
//!
//! The protocol-hardening counterpart (timeout watchdogs, lease-based
//! orphan-slot reclamation, dedup stamps) lives in the driver; the
//! invariants it maintains are audited by [`crate::audit`].

use hopper_cluster::{exp_incident_delay_ms, uniform_duration_ms};
use hopper_sim::{SeedSequence, SimTime};
use rand::rngs::StdRng;
use rand::Rng;

/// Child-seed namespace of the per-message fault RNG. Disjoint from the
/// driver's placement (`0xB10C`), decision (`0xDEC`), and per-machine
/// dynamics (`0xD1_CE00_0000 + m`) children.
const MSG_FAULT_SEED: u64 = 0xFA_0175;

/// Child-seed namespace for per-scheduler crash chains (scheduler `s`
/// uses child `SCHED_SEED_BASE + s`). Far from the machine-dynamics
/// range so the two incident planes can never share a stream.
const SCHED_SEED_BASE: u64 = 0x5C_4ED0_0000;

/// Message-fault and RPC-hardening knobs for the decentralized engine.
///
/// The first four fields *inject* faults; the last two *harden* against
/// them (watchdog pacing). Hardening knobs alone do not enable the
/// plane: with no fault source the timers would only fire on stalls
/// that cannot happen, so they are not armed at all — see
/// [`FaultConfig::enabled`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Per-message loss probability, in `[0, 1]`.
    pub msg_loss: f64,
    /// Max extra per-message delivery delay, ms (uniform in `[0, j]`,
    /// drawn per message — deliveries can reorder).
    pub msg_jitter_ms: u64,
    /// Per-message duplication probability, in `[0, 1]` (the duplicate
    /// takes its own jitter draw).
    pub msg_dup: f64,
    /// Scheduler crashes per scheduler per hour (0 disables the chains).
    pub sched_fail_rate_per_hour: f64,
    /// Mean scheduler recovery time, ms (uniform in `[0.5, 1.5] × mttr`,
    /// mirroring the machine-failure convention).
    pub sched_mttr_ms: u64,
    /// RPC timeout: the per-job watchdog and per-response lease horizon,
    /// ms. Must be positive (spec validation rejects 0).
    pub rpc_timeout_ms: u64,
    /// Watchdog retries before the backoff wraps to a fresh probe round
    /// (capped exponential pacing via `hopper_core::protocol::BackoffPolicy`).
    pub rpc_retries: u32,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::off()
    }
}

impl FaultConfig {
    /// The neutral config: a perfect network, immortal schedulers —
    /// and, by contract, zero effect on any run.
    pub fn off() -> Self {
        FaultConfig {
            msg_loss: 0.0,
            msg_jitter_ms: 0,
            msg_dup: 0.0,
            sched_fail_rate_per_hour: 0.0,
            sched_mttr_ms: 10_000,
            rpc_timeout_ms: 2_000,
            rpc_retries: 3,
        }
    }

    /// Whether any fault *source* is active. The driver builds the whole
    /// plane (fault RNG, crash chains, watchdogs, leases) iff this is
    /// true; hardening knobs alone leave runs bit-identical to a
    /// fault-free build.
    pub fn enabled(&self) -> bool {
        self.msg_loss > 0.0
            || self.msg_jitter_ms > 0
            || self.msg_dup > 0.0
            || self.sched_fail_rate_per_hour > 0.0
    }
}

/// One delivery of a faulted message: the extra delay on top of the
/// configured message latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Extra delay beyond `msg_latency` (the jitter draw; zero without
    /// jitter).
    pub extra: SimTime,
}

/// Outcome of pushing one message through the fault plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendOutcome {
    /// Deliveries to schedule: empty (lost), one, or two (duplicated).
    pub deliveries: Vec<Delivery>,
    /// Whether the primary copy was dropped.
    pub lost: bool,
    /// Whether a duplicate delivery was generated.
    pub duplicated: bool,
}

/// The per-message fault sampler: one RNG, consumed in a fixed draw
/// order per send (loss, then jitter, then duplication, then the
/// duplicate's jitter), so a seed fully determines every network fate.
#[derive(Debug, Clone)]
pub struct MsgFaults {
    cfg: FaultConfig,
    rng: StdRng,
}

impl MsgFaults {
    /// Build the sampler from the run's root seed sequence.
    pub fn new(cfg: FaultConfig, seq: &SeedSequence) -> Self {
        MsgFaults {
            cfg,
            rng: seq.child_rng(MSG_FAULT_SEED),
        }
    }

    /// Build a sampler on an explicit seed label — the sharded engine
    /// gives every entity (scheduler, worker) its own sampler so each
    /// consumes fault randomness in its own send order, independent of
    /// how entities are partitioned across shards. Labels live in
    /// namespaces disjoint from every existing child (see the constants
    /// at the top of this module and `shard.rs`).
    pub fn with_seed(cfg: FaultConfig, seq: &SeedSequence, label: u64) -> Self {
        MsgFaults {
            cfg,
            rng: seq.child_rng(label),
        }
    }

    fn jitter(&mut self) -> SimTime {
        if self.cfg.msg_jitter_ms == 0 {
            return SimTime::ZERO;
        }
        SimTime::from_millis(self.rng.gen_range(0..=self.cfg.msg_jitter_ms))
    }

    /// Draw one message's fate. A lost message generates no deliveries
    /// (and no duplicate — the loss models the send never leaving the
    /// host); a surviving one is delivered once with its jitter, plus
    /// possibly a duplicate with an independent jitter draw.
    pub fn send(&mut self) -> SendOutcome {
        if self.cfg.msg_loss > 0.0 && self.rng.gen::<f64>() < self.cfg.msg_loss {
            return SendOutcome {
                deliveries: Vec::new(),
                lost: true,
                duplicated: false,
            };
        }
        let mut deliveries = vec![Delivery {
            extra: self.jitter(),
        }];
        let duplicated = self.cfg.msg_dup > 0.0 && self.rng.gen::<f64>() < self.cfg.msg_dup;
        if duplicated {
            deliveries.push(Delivery {
                extra: self.jitter(),
            });
        }
        SendOutcome {
            deliveries,
            lost: false,
            duplicated,
        }
    }
}

/// A scheduler crash/recover incident, scheduled through the driver's
/// event queue like a machine [`hopper_cluster::DynEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedEv {
    /// Scheduler `s` crashes: its queue state (candidates, claims,
    /// learned β) is lost and in-flight replies to it become stale.
    Fail(usize),
    /// Scheduler `s` recovers and rebuilds its view from ground truth.
    Recover(usize),
}

/// Per-scheduler seeded crash chains, mirroring the machine incident
/// chains: a live scheduler waits an exponential time, crashes, stays
/// down for a uniform `[0.5, 1.5] × mttr` interval, recovers, and only
/// then draws its next crash — never overlapping, one private RNG per
/// scheduler.
#[derive(Debug, Clone)]
pub struct SchedulerChain {
    rate_per_hour: f64,
    recovery_ms: (u64, u64),
    rngs: Vec<StdRng>,
}

impl SchedulerChain {
    /// Build chains for `schedulers` schedulers off the run's root seed.
    pub fn new(cfg: &FaultConfig, schedulers: usize, seq: &SeedSequence) -> Self {
        SchedulerChain {
            rate_per_hour: cfg.sched_fail_rate_per_hour,
            recovery_ms: (
                cfg.sched_mttr_ms / 2,
                cfg.sched_mttr_ms + cfg.sched_mttr_ms / 2,
            ),
            rngs: (0..schedulers)
                .map(|s| seq.child_rng(SCHED_SEED_BASE + s as u64))
                .collect(),
        }
    }

    /// First crash per scheduler, as delays from simulation start. Empty
    /// when the crash rate is zero.
    pub fn initial_incidents(&mut self) -> Vec<(SimTime, SchedEv)> {
        (0..self.rngs.len())
            .filter_map(|s| {
                exp_incident_delay_ms(&mut self.rngs[s], self.rate_per_hour)
                    .map(|d| (SimTime::from_millis(d), SchedEv::Fail(s)))
            })
            .collect()
    }

    /// Apply one incident, returning the follow-up to schedule (a crash
    /// brackets its recovery; a recovery draws the next crash).
    pub fn apply(&mut self, ev: SchedEv) -> Option<(SimTime, SchedEv)> {
        match ev {
            SchedEv::Fail(s) => {
                let rec = uniform_duration_ms(&mut self.rngs[s], self.recovery_ms);
                Some((SimTime::from_millis(rec), SchedEv::Recover(s)))
            }
            SchedEv::Recover(s) => exp_incident_delay_ms(&mut self.rngs[s], self.rate_per_hour)
                .map(|d| (SimTime::from_millis(d), SchedEv::Fail(s))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq() -> SeedSequence {
        SeedSequence::new(7)
    }

    #[test]
    fn off_is_disabled_and_hardening_knobs_alone_do_not_enable() {
        let cfg = FaultConfig::off();
        assert!(!cfg.enabled());
        let hardened = FaultConfig {
            rpc_timeout_ms: 500,
            rpc_retries: 9,
            sched_mttr_ms: 1,
            ..FaultConfig::off()
        };
        assert!(
            !hardened.enabled(),
            "hardening knobs are not a fault source"
        );
        for on in [
            FaultConfig {
                msg_loss: 0.01,
                ..FaultConfig::off()
            },
            FaultConfig {
                msg_jitter_ms: 1,
                ..FaultConfig::off()
            },
            FaultConfig {
                msg_dup: 0.01,
                ..FaultConfig::off()
            },
            FaultConfig {
                sched_fail_rate_per_hour: 0.5,
                ..FaultConfig::off()
            },
        ] {
            assert!(on.enabled(), "{on:?}");
        }
    }

    #[test]
    fn loss_rate_is_roughly_honored_and_deterministic() {
        let cfg = FaultConfig {
            msg_loss: 0.25,
            ..FaultConfig::off()
        };
        let mut f = MsgFaults::new(cfg, &seq());
        let lost = (0..4000).filter(|_| f.send().lost).count() as f64 / 4000.0;
        assert!((lost - 0.25).abs() < 0.03, "loss rate {lost}");
        // Same seed ⇒ same fates, message for message.
        let mut a = MsgFaults::new(cfg, &seq());
        let mut b = MsgFaults::new(cfg, &seq());
        for _ in 0..200 {
            assert_eq!(a.send(), b.send());
        }
    }

    #[test]
    fn lost_messages_produce_no_deliveries_and_no_duplicates() {
        let cfg = FaultConfig {
            msg_loss: 1.0,
            msg_dup: 1.0,
            msg_jitter_ms: 50,
            ..FaultConfig::off()
        };
        let mut f = MsgFaults::new(cfg, &seq());
        for _ in 0..50 {
            let out = f.send();
            assert!(out.lost && !out.duplicated && out.deliveries.is_empty());
        }
    }

    #[test]
    fn duplication_yields_two_deliveries_with_independent_jitter() {
        let cfg = FaultConfig {
            msg_dup: 1.0,
            msg_jitter_ms: 1000,
            ..FaultConfig::off()
        };
        let mut f = MsgFaults::new(cfg, &seq());
        let mut differed = false;
        for _ in 0..50 {
            let out = f.send();
            assert!(out.duplicated);
            assert_eq!(out.deliveries.len(), 2);
            if out.deliveries[0] != out.deliveries[1] {
                differed = true;
            }
        }
        assert!(differed, "duplicate jitter draws should be independent");
    }

    #[test]
    fn jitter_is_bounded_by_the_config() {
        let cfg = FaultConfig {
            msg_jitter_ms: 7,
            ..FaultConfig::off()
        };
        let mut f = MsgFaults::new(cfg, &seq());
        for _ in 0..500 {
            for d in f.send().deliveries {
                assert!(d.extra <= SimTime::from_millis(7));
            }
        }
    }

    #[test]
    fn scheduler_chain_brackets_and_continues() {
        let cfg = FaultConfig {
            sched_fail_rate_per_hour: 2.0,
            sched_mttr_ms: 10_000,
            ..FaultConfig::off()
        };
        let mut chain = SchedulerChain::new(&cfg, 3, &seq());
        let init = chain.initial_incidents();
        assert_eq!(init.len(), 3);
        assert!(init.iter().all(|(_, e)| matches!(e, SchedEv::Fail(_))));
        let (rec_delay, rec) = chain
            .apply(SchedEv::Fail(1))
            .expect("crash brackets recovery");
        assert_eq!(rec, SchedEv::Recover(1));
        assert!(
            rec_delay >= SimTime::from_millis(5_000) && rec_delay <= SimTime::from_millis(15_000),
            "recovery in [0.5, 1.5]×mttr, got {rec_delay}"
        );
        let next = chain.apply(rec).expect("recovery draws the next crash");
        assert!(matches!(next.1, SchedEv::Fail(1)));
    }

    #[test]
    fn scheduler_chains_are_per_scheduler_seed_children() {
        // Scheduler 2's chain must not depend on how many schedulers
        // exist — same independence the machine chains guarantee.
        let cfg = FaultConfig {
            sched_fail_rate_per_hour: 1.0,
            sched_mttr_ms: 5_000,
            ..FaultConfig::off()
        };
        let mut small = SchedulerChain::new(&cfg, 3, &seq());
        let mut big = SchedulerChain::new(&cfg, 12, &seq());
        assert_eq!(small.initial_incidents()[2], big.initial_incidents()[2]);
    }

    #[test]
    fn zero_rate_chain_never_fires() {
        let mut chain = SchedulerChain::new(&FaultConfig::off(), 4, &seq());
        assert!(chain.initial_incidents().is_empty());
        assert!(chain.apply(SchedEv::Recover(0)).is_none());
    }
}
