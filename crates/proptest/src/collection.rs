//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Strategy for `Vec<S::Value>` with a length drawn from `len`.
pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "vec strategy with empty length range");
    VecStrategy { element, len }
}

/// Strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: core::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.element.sample_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_length_in_range() {
        let s = vec(0usize..100, 2..7);
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let v = s.sample_value(&mut r);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn vec_can_be_empty_when_range_allows() {
        let s = vec(0usize..10, 0..3);
        let mut r = StdRng::seed_from_u64(2);
        let mut saw_empty = false;
        for _ in 0..200 {
            if s.sample_value(&mut r).is_empty() {
                saw_empty = true;
            }
        }
        assert!(saw_empty);
    }
}
