//! Value-generation strategies (sampling only; no shrinking).

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
///
/// Mirrors the upstream trait name and the `prop_map` combinator; the
/// generation model is plain random sampling from the test's RNG.
pub trait Strategy {
    /// Type of values this strategy produces.
    type Value;

    /// Draw one value.
    fn sample_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn sample_value(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.sample_value(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_strategy_for_inclusive_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_inclusive_int_ranges!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_for_inclusive_float_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy on empty range");
                // Upper bound inclusive: widen by one ulp-ish step by
                // sampling [0, 1) and scaling onto [lo, hi]; hitting hi
                // exactly is measure-zero but permitted.
                lo + (hi - lo) * rng.gen::<$t>()
            }
        }
    )*};
}

impl_strategy_for_inclusive_float_ranges!(f32, f64);

macro_rules! impl_strategy_for_tuples {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample_value(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuples! {
    (S0.0)
    (S0.0, S1.1)
    (S0.0, S1.1, S2.2)
    (S0.0, S1.1, S2.2, S3.3)
    (S0.0, S1.1, S2.2, S3.3, S4.4)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let x = (3usize..10).sample_value(&mut r);
            assert!((3..10).contains(&x));
            let y = (0.5f64..2.5).sample_value(&mut r);
            assert!((0.5..2.5).contains(&y));
            let z = (0.0f64..=1.0).sample_value(&mut r);
            assert!((0.0..=1.0).contains(&z));
        }
    }

    #[test]
    fn prop_map_applies() {
        let s = (1usize..5).prop_map(|x| x * 10);
        let mut r = rng();
        for _ in 0..100 {
            let v = s.sample_value(&mut r);
            assert!(v % 10 == 0 && (10..50).contains(&v));
        }
    }

    #[test]
    fn tuples_compose() {
        let s = (0usize..4, 0.0f64..1.0, 1u64..9);
        let mut r = rng();
        let (a, b, c) = s.sample_value(&mut r);
        assert!(a < 4 && (0.0..1.0).contains(&b) && (1..9).contains(&c));
    }

    #[test]
    fn just_clones() {
        let s = Just(vec![1, 2, 3]);
        assert_eq!(s.sample_value(&mut rng()), vec![1, 2, 3]);
    }
}
