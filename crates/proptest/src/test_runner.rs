//! Per-test RNG derivation and case-count configuration.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Number of cases to run: `PROPTEST_CASES` env var or [`crate::NUM_CASES`].
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(crate::NUM_CASES)
}

/// Deterministic RNG for one named test: FNV-1a over the fully qualified
/// test name, so every test gets a distinct but stable sample stream.
pub fn rng_for_test(name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn rng_is_stable_per_name() {
        let a = rng_for_test("x::y").next_u64();
        let b = rng_for_test("x::y").next_u64();
        assert_eq!(a, b);
        assert_ne!(a, rng_for_test("x::z").next_u64());
    }

    #[test]
    fn default_cases() {
        assert!(cases() >= 1);
    }
}
