//! Offline stand-in for the `proptest` crate.
//!
//! Provides the API surface this workspace's property tests use — the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`, range and tuple
//! strategies, `prop::collection::vec`, and the `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros — implemented as plain
//! random-sampling tests (no shrinking, no persisted failure files).
//!
//! Each `proptest!` test runs [`NUM_CASES`] sampled cases from an RNG
//! seeded by the test's module path and name, so failures are exactly
//! reproducible run-over-run. Set `PROPTEST_CASES` to override the case
//! count.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::Strategy;

/// Default number of sampled cases per property (override with the
/// `PROPTEST_CASES` environment variable).
pub const NUM_CASES: usize = 128;

/// The `proptest::prelude`, mirroring upstream's layout: the [`Strategy`]
/// trait, the macros, and a `prop` module namespace (`prop::collection`,
/// ...).
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace mirror of upstream `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests. Each function item becomes a `#[test]` that
/// samples its arguments [`NUM_CASES`] times and runs the body on each
/// sample. Attributes written inside the macro (including `#[test]` and
/// doc comments) are passed through.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(unused_imports)]
                use $crate::Strategy as _;
                let mut __pt_rng = $crate::test_runner::rng_for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __pt_case in 0..$crate::test_runner::cases() {
                    $(let $arg = ($strat).sample_value(&mut __pt_rng);)*
                    // The body runs in a closure so that `prop_assume!`
                    // can skip the rest of a case with `return`.
                    let __pt_body = move || -> () { $body };
                    __pt_body();
                    let _ = __pt_case;
                }
            }
        )*
    };
}

/// Assert within a property body (panics with the case's values in scope).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assert within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assert within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skip the current case when a sampled precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}
