//! Workload profiles: synthetic stand-ins for the Facebook-Hadoop and
//! Bing-Dryad production traces used in the paper's evaluation (§7.1).
//!
//! The real traces are proprietary; the paper publishes their relevant
//! statistics, which these profiles reproduce:
//!
//! - heavy-tailed job sizes (task counts), binned in the paper as
//!   `<50 / 51–150 / 151–500 / >500` tasks;
//! - Pareto task-duration tail with per-job shape `1 < β < 2`;
//! - DAG depths between 1 and 8 phases with pipelined shuffles;
//! - a large share of recurring jobs (the basis of α prediction, §6.3);
//! - Poisson arrivals whose rate is scaled to hit a target average cluster
//!   utilization (the x-axis of Figure 6), optionally modulated by a
//!   non-stationary [`RateProfile`](crate::RateProfile) with the same
//!   time-average.
//!
//! A profile never materializes jobs itself: the generator turns it into
//! a lazy, seeded [`TraceStream`](crate::TraceStream), and the drivers
//! consume that through the [`ArrivalSource`](crate::ArrivalSource)
//! peek/pop seam — arrivals are *delivered* as simulation time advances
//! (an arrival precedes any queued event at the same instant), not
//! pre-loaded into a FIFO of arrival events. Materialized traces are
//! just a `collect()` of the same stream.

use crate::dist::Dist;

/// Statistical description of a workload, sufficient to synthesize traces.
#[derive(Debug, Clone)]
pub struct WorkloadProfile {
    /// Human-readable name ("facebook", "bing", ...).
    pub name: &'static str,
    /// Distribution of job sizes = input-phase task counts (continuous,
    /// rounded to ≥ 1).
    pub job_size: Dist,
    /// Per-job Pareto tail index β drawn uniformly from this range.
    /// The paper's traces have 1 < β < 2.
    pub beta_range: (f64, f64),
    /// Distribution of each job's *mean* task duration in milliseconds
    /// (across jobs; within a job tasks are similar).
    pub mean_task_ms: Dist,
    /// Log-normal σ of within-job task-work variation (0 = identical
    /// nominal work for all tasks of a phase).
    pub task_work_sigma: f64,
    /// Probability mass over DAG lengths; index `i` is the weight of a job
    /// having `i + 1` phases.
    pub dag_len_weights: Vec<f64>,
    /// Downstream phase task count as a fraction of the upstream phase's.
    pub downstream_ratio: Dist,
    /// Downstream phase mean-task-work multiplier relative to the input
    /// phase (reduce tasks are usually shorter in aggregate).
    pub downstream_work_factor: Dist,
    /// Intermediate output per input-phase task, in MB. Drives α: larger
    /// outputs ⇒ heavier downstream network transfer.
    pub output_mb_per_task: Dist,
    /// Fraction of jobs that belong to a recurring template (the paper's
    /// clusters are dominated by recurring jobs).
    pub recurring_fraction: f64,
    /// Number of distinct recurring templates.
    pub num_templates: u32,
    /// Fraction of multi-phase jobs whose DAG is "bushy" (§4.2: two
    /// parallel input branches joining into the downstream phase) rather
    /// than a chain. 0 (the default) leaves generation byte-identical to
    /// chain-only profiles; enable with [`WorkloadProfile::with_bushy`].
    pub bushy_fraction: f64,
}

impl WorkloadProfile {
    /// Synthetic stand-in for the Facebook Hadoop trace: batch jobs, most
    /// DAGs short (1–3 phases), map-heavy (modest intermediate data), task
    /// durations tens of seconds.
    pub fn facebook() -> Self {
        WorkloadProfile {
            name: "facebook",
            job_size: Dist::BoundedPareto {
                shape: 1.1,
                min: 4.0,
                max: 2000.0,
            },
            beta_range: (1.3, 1.7),
            mean_task_ms: Dist::LogNormal {
                mu: (20_000.0f64).ln(), // ~20 s median task
                sigma: 0.55,
            },
            task_work_sigma: 0.25,
            // lengths 1..=8; mass concentrated at 1-3 but tail out to 8
            dag_len_weights: vec![0.30, 0.28, 0.18, 0.09, 0.06, 0.04, 0.03, 0.02],
            downstream_ratio: Dist::Uniform { lo: 0.15, hi: 0.7 },
            downstream_work_factor: Dist::Uniform { lo: 0.4, hi: 1.0 },
            // Hadoop jobs are less bottlenecked on intermediate transfer
            // (paper §7.4): α mostly < 1.
            output_mb_per_task: Dist::LogNormal {
                mu: (8.0f64).ln(),
                sigma: 0.8,
            },
            recurring_fraction: 0.7,
            num_templates: 40,
            bushy_fraction: 0.0,
        }
    }

    /// Synthetic stand-in for the Bing Dryad trace: wider spread between
    /// small and large jobs (the paper notes this gives Hopper slightly more
    /// room, Fig. 6b), deeper DAGs, shuffle-heavier.
    pub fn bing() -> Self {
        WorkloadProfile {
            name: "bing",
            job_size: Dist::BoundedPareto {
                shape: 0.95, // heavier tail: bigger big jobs
                min: 2.0,
                max: 4000.0,
            },
            beta_range: (1.2, 1.8),
            mean_task_ms: Dist::LogNormal {
                mu: (15_000.0f64).ln(),
                sigma: 0.6,
            },
            task_work_sigma: 0.3,
            dag_len_weights: vec![0.22, 0.24, 0.18, 0.12, 0.09, 0.07, 0.05, 0.03],
            downstream_ratio: Dist::Uniform { lo: 0.2, hi: 0.8 },
            downstream_work_factor: Dist::Uniform { lo: 0.4, hi: 1.1 },
            output_mb_per_task: Dist::LogNormal {
                mu: (20.0f64).ln(),
                sigma: 0.9,
            },
            recurring_fraction: 0.65,
            num_templates: 60,
            bushy_fraction: 0.0,
        }
    }

    /// Rescale task durations by `factor` (keeping everything else).
    ///
    /// Used to turn a batch profile into an interactive, Spark-like one
    /// ("tasks vary from sub-second durations to a few seconds", §7.1):
    /// `facebook().scaled_tasks(0.1)` gives ~2 s mean tasks.
    pub fn scaled_tasks(mut self, factor: f64) -> Self {
        assert!(factor > 0.0);
        self.mean_task_ms = match self.mean_task_ms {
            Dist::LogNormal { mu, sigma } => Dist::LogNormal {
                mu: mu + factor.ln(),
                sigma,
            },
            Dist::Constant(v) => Dist::Constant(v * factor),
            // Exhaustive on purpose: silently returning the distribution
            // unscaled (the old `other => other` arm) made this a no-op
            // for every other variant — a profile bug that surfaced as a
            // mysteriously wrong utilization target.
            other @ (Dist::Pareto { .. }
            | Dist::BoundedPareto { .. }
            | Dist::Exp { .. }
            | Dist::Uniform { .. }) => {
                panic!("scaled_tasks: unsupported mean-task-duration dist {other:?}")
            }
        };
        self
    }

    /// Spark-style interactive variant of this profile: sub-second to
    /// few-second tasks and shuffle-heavy DAGs (α ≥ 1 more common).
    pub fn interactive(mut self) -> Self {
        self = self.scaled_tasks(0.1);
        // In-memory map phases make the network transfer the bottleneck.
        // Exhaustive for the same reason as `scaled_tasks`: a silently
        // unscaled output distribution would understate α.
        self.output_mb_per_task = match self.output_mb_per_task {
            Dist::LogNormal { mu, sigma } => Dist::LogNormal {
                mu: mu + 2.0f64.ln(),
                sigma,
            },
            Dist::Constant(v) => Dist::Constant(v * 2.0),
            other @ (Dist::Pareto { .. }
            | Dist::BoundedPareto { .. }
            | Dist::Exp { .. }
            | Dist::Uniform { .. }) => {
                panic!("interactive: unsupported output-mb dist {other:?}")
            }
        };
        self
    }

    /// Force every job to a single phase (used in experiments isolating the
    /// non-DAG mechanisms, e.g. Figure 3 / Figure 5).
    pub fn single_phase(mut self) -> Self {
        self.dag_len_weights = vec![1.0];
        self
    }

    /// Force every job's DAG length to exactly `len` phases.
    pub fn fixed_dag_len(mut self, len: usize) -> Self {
        assert!(len >= 1);
        let mut w = vec![0.0; len];
        w[len - 1] = 1.0;
        self.dag_len_weights = w;
        self
    }

    /// Fix the β range to a point (used by Figure 3 / Figure 5 which state a
    /// specific β).
    pub fn fixed_beta(mut self, beta: f64) -> Self {
        self.beta_range = (beta, beta);
        self
    }

    /// Force every job to exactly `tasks` input-phase tasks, removing the
    /// heavy-tailed job-size dimension. With [`WorkloadProfile::single_phase`]
    /// and [`WorkloadProfile::fixed_beta`] this yields near-iid per-job work —
    /// the workload whose saturation point is analytically pinned at target
    /// utilization 1 (the stability-frontier reference case).
    pub fn fixed_job_size(mut self, tasks: usize) -> Self {
        assert!(tasks >= 1);
        self.job_size = Dist::Constant(tasks as f64);
        self
    }

    /// Enable bushy DAGs for the given fraction of multi-phase jobs
    /// (§4.2's "wide and bushy" DAGs: α then sums over all running
    /// branches).
    pub fn with_bushy(mut self, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction));
        self.bushy_fraction = fraction;
        self
    }

    /// Mean DAG length implied by the weights.
    pub fn mean_dag_len(&self) -> f64 {
        let total: f64 = self.dag_len_weights.iter().sum();
        self.dag_len_weights
            .iter()
            .enumerate()
            .map(|(i, w)| (i + 1) as f64 * w)
            .sum::<f64>()
            / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facebook_profile_is_sane() {
        let p = WorkloadProfile::facebook();
        assert_eq!(p.name, "facebook");
        assert!(p.beta_range.0 > 1.0 && p.beta_range.1 < 2.0);
        assert!(p.mean_dag_len() > 1.0 && p.mean_dag_len() < 4.0);
        assert!((0.0..=1.0).contains(&p.recurring_fraction));
    }

    #[test]
    fn bing_has_heavier_job_size_tail_than_facebook() {
        let fb = WorkloadProfile::facebook();
        let bing = WorkloadProfile::bing();
        let (Dist::BoundedPareto { shape: s_fb, .. }, Dist::BoundedPareto { shape: s_b, .. }) =
            (&fb.job_size, &bing.job_size)
        else {
            panic!("expected bounded pareto job sizes");
        };
        assert!(s_b < s_fb, "bing tail should be heavier");
    }

    #[test]
    fn scaled_tasks_scales_the_mean() {
        let p = WorkloadProfile::facebook();
        let scaled = p.clone().scaled_tasks(0.1);
        let m0 = p.mean_task_ms.mean().unwrap();
        let m1 = scaled.mean_task_ms.mean().unwrap();
        assert!((m1 / m0 - 0.1).abs() < 1e-9);
    }

    #[test]
    fn interactive_is_subsecond_to_seconds() {
        let p = WorkloadProfile::facebook().interactive();
        let m = p.mean_task_ms.mean().unwrap();
        assert!(m > 200.0 && m < 5000.0, "interactive mean task {m} ms");
    }

    #[test]
    fn fixed_dag_len_masses_one_length() {
        let p = WorkloadProfile::facebook().fixed_dag_len(5);
        assert_eq!(p.dag_len_weights.len(), 5);
        assert!((p.mean_dag_len() - 5.0).abs() < 1e-9);
        let q = WorkloadProfile::facebook().single_phase();
        assert!((q.mean_dag_len() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fixed_beta_pins_range() {
        let p = WorkloadProfile::facebook().fixed_beta(1.5);
        assert_eq!(p.beta_range, (1.5, 1.5));
    }

    #[test]
    fn scaled_tasks_scales_constant_means() {
        let mut p = WorkloadProfile::facebook();
        p.mean_task_ms = Dist::Constant(10_000.0);
        let scaled = p.scaled_tasks(0.5);
        assert_eq!(scaled.mean_task_ms, Dist::Constant(5_000.0));
    }

    #[test]
    #[should_panic(expected = "unsupported mean-task-duration dist")]
    fn scaled_tasks_rejects_unsupported_dists_loudly() {
        // Regression: this used to be a silent no-op (`other => other`),
        // leaving the profile unscaled.
        let mut p = WorkloadProfile::facebook();
        p.mean_task_ms = Dist::Uniform {
            lo: 1_000.0,
            hi: 2_000.0,
        };
        let _ = p.scaled_tasks(0.1);
    }

    #[test]
    #[should_panic(expected = "unsupported output-mb dist")]
    fn interactive_rejects_unsupported_output_dists_loudly() {
        let mut p = WorkloadProfile::facebook();
        p.output_mb_per_task = Dist::Exp { mean: 10.0 };
        let _ = p.interactive();
    }
}
