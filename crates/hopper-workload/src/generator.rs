//! Trace synthesis: turn a [`WorkloadProfile`] into a concrete [`Trace`].
//!
//! The generator is deterministic given a seed, and arrival times are
//! calibrated *after* the jobs are drawn so that the offered load matches a
//! requested average utilization (the paper's 60–90% sweep): with total
//! nominal work `W` over `n` jobs on `S` slots, the arrival window is
//! `W / (S · u)` and inter-arrivals are exponential with mean `window / n`.

use hopper_sim::{SeedSequence, SimTime};
use rand::rngs::StdRng;
use rand::Rng;

use crate::dist::Dist;
use crate::profile::WorkloadProfile;
use crate::rate::{RateClock, RateProfile};
use crate::trace::{CommPattern, Trace, TraceJob, TracePhase};

/// Deterministic trace generator.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    /// The workload statistics to draw from.
    pub profile: WorkloadProfile,
    /// Number of jobs to synthesize.
    pub num_jobs: usize,
    /// Root seed; child seeds are derived per concern so that e.g. changing
    /// DAG synthesis does not perturb job sizes.
    pub seed: u64,
}

impl TraceGenerator {
    /// Create a generator.
    pub fn new(profile: WorkloadProfile, num_jobs: usize, seed: u64) -> Self {
        Self {
            profile,
            num_jobs,
            seed,
        }
    }

    /// Generate the jobs *without* arrival times (all at t = 0).
    ///
    /// Useful for single-job or closed-system experiments (e.g. Figure 3).
    pub fn generate_jobs(&self) -> Vec<TraceJob> {
        let seq = SeedSequence::new(self.seed);
        (0..self.num_jobs)
            .map(|i| self.generate_job(i, &mut seq.child_rng(i as u64)))
            .collect()
    }

    /// Generate a full trace whose offered load against `total_slots` slots
    /// averages `target_util` (0 < u ≤ 1) over the arrival window.
    ///
    /// This is exactly a [`collect`](Iterator::collect) of
    /// [`TraceGenerator::stream_with_utilization`] — the lazy stream is
    /// the single source of truth, so the two paths cannot drift: any job
    /// the materialized trace contains, the stream yields bit-identically.
    /// The single-path guarantee costs the stream's calibration pre-pass
    /// (jobs are drawn twice); trace synthesis is a rounding error next
    /// to simulating the trace, so structural safety wins here.
    pub fn generate_with_utilization(&self, total_slots: usize, target_util: f64) -> Trace {
        Trace::new(
            self.stream_with_utilization(total_slots, target_util)
                .collect(),
        )
    }

    /// Lazy counterpart of [`TraceGenerator::generate_with_utilization`]:
    /// a seeded iterator that yields the *same jobs with the same arrival
    /// times in the same order*, one at a time, without materializing the
    /// trace — O(1) memory however long the stream is.
    ///
    /// Arrival calibration needs the workload's total nominal work, which
    /// is only known after drawing every job; the stream pays for laziness
    /// with a calibration pre-pass that generates and discards each job
    /// once (2× generation time, O(1) memory) before yielding begins.
    pub fn stream_with_utilization(&self, total_slots: usize, target_util: f64) -> TraceStream {
        self.stream_with_profile(total_slots, target_util, &RateProfile::Constant)
    }

    /// [`TraceGenerator::generate_with_utilization`] under a
    /// non-stationary [`RateProfile`] — a `collect()` of
    /// [`TraceGenerator::stream_with_profile`], same single-path
    /// guarantee.
    pub fn generate_with_profile(
        &self,
        total_slots: usize,
        target_util: f64,
        rate: &RateProfile,
    ) -> Trace {
        Trace::new(
            self.stream_with_profile(total_slots, target_util, rate)
                .collect(),
        )
    }

    /// [`TraceGenerator::stream_with_utilization`] with arrivals
    /// modulated by a [`RateProfile`].
    ///
    /// Calibration is unchanged — the arrival window is still
    /// `total_work / (slots · util)` — and every profile has
    /// time-average relative rate 1, so `target_util` stays the honest
    /// time-average of the modulated curve. Job bodies and the
    /// exponential gap draws are identical across profiles (one
    /// uniform per arrival from the same child RNG); only the mapping
    /// from gap to arrival time changes. With
    /// [`RateProfile::Constant`] the stream is byte-identical to the
    /// historical generator.
    pub fn stream_with_profile(
        &self,
        total_slots: usize,
        target_util: f64,
        rate: &RateProfile,
    ) -> TraceStream {
        assert!(
            target_util > 0.0 && target_util <= 1.5,
            "unreasonable utilization"
        );
        assert!(total_slots > 0);
        let seq = SeedSequence::new(self.seed);
        // Calibration pre-pass: total nominal work over the whole stream.
        let total_work: f64 = (0..self.num_jobs)
            .map(|i| {
                self.generate_job(i, &mut seq.child_rng(i as u64))
                    .total_work_ms() as f64
            })
            .sum();
        let window_ms = total_work / (total_slots as f64 * target_util);
        let mean_gap = window_ms / self.num_jobs.max(1) as f64;
        TraceStream {
            gen: self.clone(),
            total: self.num_jobs,
            next: 0,
            arr_rng: seq.child_rng(0xA11A),
            gap: Dist::Exp { mean: mean_gap },
            t: 0.0,
            clock: RateClock::new(rate, window_ms, self.seed),
        }
    }

    /// Generate one job (deterministic per `(seed, index)`).
    fn generate_job(&self, id: usize, rng: &mut StdRng) -> TraceJob {
        let p = &self.profile;

        let size = (p.job_size.sample(rng).round() as usize).max(1);
        let beta = if p.beta_range.0 == p.beta_range.1 {
            p.beta_range.0
        } else {
            rng.gen_range(p.beta_range.0..p.beta_range.1)
        };
        let mean_task = p.mean_task_ms.sample(rng).max(50.0);
        let dag_len = sample_weighted(&p.dag_len_weights, rng) + 1;

        // Recurring template: id-stable so the α estimator can learn.
        let template = if rng.gen::<f64>() < p.recurring_fraction {
            Some(rng.gen_range(0..p.num_templates))
        } else {
            None
        };

        // Template-consistent output volume: jobs of the same template
        // produce similar intermediate data (±10%), which is what makes the
        // paper's history-based α prediction ~92% accurate.
        let base_output = match template {
            Some(t) => {
                // Deterministic per-template center, independent of job rng.
                let mut trng = SeedSequence::new(self.seed ^ 0x7E3A_11CE).child_rng(t as u64);
                p.output_mb_per_task.sample(&mut trng)
            }
            None => p.output_mb_per_task.sample(rng),
        };
        let output_jitter = Dist::LogNormal {
            mu: 0.0,
            sigma: 0.08,
        };

        // Bushy DAGs: a second input branch is generated alongside the
        // first phase and the next phase joins both. Decided only when the
        // profile enables it, so chain-only generation stays byte-stable.
        let bushy = dag_len >= 2 && p.bushy_fraction > 0.0 && rng.gen::<f64>() < p.bushy_fraction;

        let mut phases = Vec::with_capacity(dag_len + usize::from(bushy));
        let mut phase_tasks = size;
        let mut phase_mean = mean_task;
        for d in 0..dag_len {
            let work_dist = Dist::LogNormal {
                mu: phase_mean.ln(),
                sigma: p.task_work_sigma,
            };
            let task_works = (0..phase_tasks)
                .map(|_| SimTime::from_millis(work_dist.sample(rng).max(20.0) as u64))
                .collect();
            let is_last = d + 1 == dag_len;
            let output = if is_last {
                0.0
            } else {
                (base_output * output_jitter.sample(rng)).max(0.1)
            };
            let comm = if d == 0 {
                CommPattern::OneToOne
            } else if phase_tasks == 1 {
                CommPattern::ManyToOne
            } else {
                CommPattern::AllToAll
            };
            // In a bushy job the branch phase is inserted at index 1, so
            // downstream indices shift by one and the join reads both roots.
            let idx_shift = usize::from(bushy && d >= 1);
            phases.push(TracePhase {
                task_works,
                upstream: if d == 0 {
                    vec![]
                } else if bushy && d == 1 {
                    vec![0, 1] // join of the two input branches
                } else {
                    vec![d - 1 + idx_shift]
                },
                output_mb_per_task: output,
                comm,
                reads_dfs_input: d == 0,
            });
            if bushy && d == 0 {
                // The second input branch: similar size, DFS-fed, its
                // output joins the same downstream phase.
                let branch_tasks = ((size as f64 * 0.5).ceil() as usize).max(1);
                let work_dist = Dist::LogNormal {
                    mu: phase_mean.ln(),
                    sigma: p.task_work_sigma,
                };
                phases.push(TracePhase {
                    task_works: (0..branch_tasks)
                        .map(|_| SimTime::from_millis(work_dist.sample(rng).max(20.0) as u64))
                        .collect(),
                    upstream: vec![],
                    output_mb_per_task: (base_output * output_jitter.sample(rng)).max(0.1),
                    comm: CommPattern::OneToOne,
                    reads_dfs_input: true,
                });
            }
            if !is_last {
                let ratio = p.downstream_ratio.sample(rng).clamp(0.02, 1.0);
                phase_tasks = ((phase_tasks as f64 * ratio).round() as usize).max(1);
                phase_mean = (phase_mean * p.downstream_work_factor.sample(rng)).max(50.0);
            }
        }

        let job = TraceJob {
            id,
            arrival: SimTime::ZERO,
            phases,
            beta,
            template,
            weight: 1.0,
        };
        job.assert_well_formed();
        job
    }
}

/// A lazy, seeded stream of trace jobs in arrival order.
///
/// Produced by [`TraceGenerator::stream_with_utilization`]; yields
/// exactly the jobs of the materialized trace (`Trace::jobs[i]` ==
/// the stream's `i`-th item, bit for bit — pinned by
/// `generate_with_utilization` being a `collect()` of this stream).
/// Arrivals are nondecreasing and ids equal stream positions, so a
/// driver can inject arrivals as simulation time advances and keep
/// memory proportional to the jobs currently *live*, not the stream
/// length.
#[derive(Debug, Clone)]
pub struct TraceStream {
    gen: TraceGenerator,
    total: usize,
    next: usize,
    arr_rng: StdRng,
    gap: Dist,
    t: f64,
    /// Non-stationary rate evaluator; `None` under
    /// [`RateProfile::Constant`], where time advances by the raw
    /// exponential gap exactly as it always has.
    clock: Option<RateClock>,
}

impl TraceStream {
    /// Jobs the stream will yield in total (after any truncation).
    pub fn total_jobs(&self) -> usize {
        self.total
    }

    /// Jobs not yet yielded.
    pub fn remaining(&self) -> usize {
        self.total - self.next
    }

    /// Cap the stream at `max_jobs` total jobs (the `max_jobs=` spec
    /// key): arrival calibration keeps the full-stream window — the
    /// yielded prefix is bit-identical to the untruncated stream's — but
    /// iteration stops early. A cap at or above the current total is a
    /// no-op.
    pub fn truncated(mut self, max_jobs: usize) -> Self {
        self.total = self.total.min(max_jobs.max(self.next));
        self
    }
}

impl Iterator for TraceStream {
    type Item = TraceJob;

    fn next(&mut self) -> Option<TraceJob> {
        if self.next >= self.total {
            return None;
        }
        let id = self.next;
        let seq = SeedSequence::new(self.gen.seed);
        let mut job = self.gen.generate_job(id, &mut seq.child_rng(id as u64));
        job.arrival = SimTime::from_millis(self.t as u64);
        let g = self.gap.sample(&mut self.arr_rng);
        self.t = match self.clock.as_mut() {
            // Stationary path: advance by the raw gap (byte-identical
            // to the pre-profile generator).
            None => self.t + g,
            // Non-stationary: the same draw, mapped through the exact
            // inverse of the relative-rate integral.
            Some(clock) => clock.advance(self.t, g),
        };
        self.next += 1;
        Some(job)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining(), Some(self.remaining()))
    }
}

impl ExactSizeIterator for TraceStream {}

/// Sample an index from unnormalized weights.
fn sample_weighted(weights: &[f64], rng: &mut StdRng) -> usize {
    let total: f64 = weights.iter().sum();
    debug_assert!(total > 0.0);
    let mut x = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::WorkloadProfile;

    fn generator(n: usize) -> TraceGenerator {
        TraceGenerator::new(WorkloadProfile::facebook(), n, 42)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generator(50).generate_with_utilization(400, 0.6);
        let b = generator(50).generate_with_utilization(400, 0.6);
        assert_eq!(a.len(), b.len());
        for (ja, jb) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(ja.arrival, jb.arrival);
            assert_eq!(ja.num_tasks(), jb.num_tasks());
            assert_eq!(ja.total_work_ms(), jb.total_work_ms());
            assert_eq!(ja.beta, jb.beta);
            assert_eq!(ja.template, jb.template);
        }
    }

    #[test]
    fn different_seeds_give_different_traces() {
        let a = TraceGenerator::new(WorkloadProfile::facebook(), 30, 1).generate_jobs();
        let b = TraceGenerator::new(WorkloadProfile::facebook(), 30, 2).generate_jobs();
        let sizes_a: Vec<usize> = a.iter().map(|j| j.num_tasks()).collect();
        let sizes_b: Vec<usize> = b.iter().map(|j| j.num_tasks()).collect();
        assert_ne!(sizes_a, sizes_b);
    }

    #[test]
    fn utilization_targeting_is_close() {
        for util in [0.6, 0.8, 0.9] {
            let t = generator(300).generate_with_utilization(400, util);
            let measured = t.offered_utilization(400);
            // Exponential gaps add noise; the *offered* load should be in
            // the right ballpark (final arrival time is itself random).
            assert!(
                (measured - util).abs() / util < 0.35,
                "target {util} measured {measured}"
            );
        }
    }

    #[test]
    fn job_sizes_are_heavy_tailed() {
        let jobs = generator(2000).generate_jobs();
        let small = jobs.iter().filter(|j| j.size_tasks() <= 50).count();
        let huge = jobs.iter().filter(|j| j.size_tasks() > 500).count();
        // Most jobs small, but a real tail of big ones (paper Figure 7 bins).
        assert!(small > jobs.len() / 2, "small jobs: {small}");
        assert!(huge > 0, "no huge jobs generated");
    }

    #[test]
    fn betas_are_in_declared_range() {
        let jobs = generator(200).generate_jobs();
        for j in &jobs {
            assert!(j.beta >= 1.3 && j.beta <= 1.7, "beta {}", j.beta);
        }
    }

    #[test]
    fn dag_structure_is_chain_with_shrinking_phases() {
        let jobs = TraceGenerator::new(WorkloadProfile::bing(), 300, 7).generate_jobs();
        let mut saw_multiphase = false;
        for j in &jobs {
            j.assert_well_formed();
            if j.dag_len() > 1 {
                saw_multiphase = true;
                for (i, ph) in j.phases.iter().enumerate().skip(1) {
                    assert_eq!(ph.upstream, vec![i - 1]);
                    assert!(!ph.reads_dfs_input);
                }
                // Non-terminal phases must produce output.
                for ph in &j.phases[..j.dag_len() - 1] {
                    assert!(ph.output_mb_per_task > 0.0);
                }
                assert_eq!(j.phases.last().unwrap().output_mb_per_task, 0.0);
            }
        }
        assert!(saw_multiphase);
    }

    #[test]
    fn recurring_templates_share_output_volumes() {
        let jobs = generator(2000).generate_jobs();
        let mut by_template: std::collections::HashMap<u32, Vec<f64>> = Default::default();
        for j in &jobs {
            if let (Some(t), true) = (j.template, j.dag_len() > 1) {
                by_template
                    .entry(t)
                    .or_default()
                    .push(j.phases[0].output_mb_per_task);
            }
        }
        let mut checked = 0;
        for (_, v) in by_template.iter().filter(|(_, v)| v.len() >= 5) {
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            let max_dev = v
                .iter()
                .map(|x| (x - mean).abs() / mean)
                .fold(0.0f64, f64::max);
            assert!(max_dev < 0.5, "template outputs too dispersed: {max_dev}");
            checked += 1;
        }
        assert!(checked > 3, "not enough recurring templates to check");
    }

    #[test]
    fn fixed_dag_profile_produces_fixed_lengths() {
        let p = WorkloadProfile::facebook().fixed_dag_len(4);
        let jobs = TraceGenerator::new(p, 50, 3).generate_jobs();
        assert!(jobs.iter().all(|j| j.dag_len() == 4));
    }

    #[test]
    fn arrivals_are_sorted_and_start_at_zero() {
        let t = generator(100).generate_with_utilization(200, 0.7);
        assert_eq!(t.jobs[0].arrival, SimTime::ZERO);
        for w in t.jobs.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
    }

    #[test]
    fn bushy_dags_join_two_branches() {
        let p = WorkloadProfile::facebook().fixed_dag_len(3).with_bushy(1.0);
        let jobs = TraceGenerator::new(p, 20, 5).generate_jobs();
        for j in &jobs {
            j.assert_well_formed();
            assert_eq!(j.dag_len(), 4, "3 logical phases + 1 branch");
            // Phase 1 is the extra input branch; phase 2 joins 0 and 1.
            assert!(j.phases[1].reads_dfs_input);
            assert!(j.phases[1].upstream.is_empty());
            assert_eq!(j.phases[2].upstream, vec![0, 1]);
        }
    }

    #[test]
    fn bushy_disabled_by_default_keeps_chains() {
        let jobs = TraceGenerator::new(WorkloadProfile::facebook(), 100, 5).generate_jobs();
        for j in &jobs {
            for (i, ph) in j.phases.iter().enumerate().skip(1) {
                assert_eq!(ph.upstream, vec![i - 1], "chain expected by default");
            }
        }
    }

    #[test]
    fn stream_is_bit_identical_to_materialized_trace() {
        let g = generator(120);
        let trace = g.generate_with_utilization(300, 0.75);
        let streamed: Vec<TraceJob> = g.stream_with_utilization(300, 0.75).collect();
        assert_eq!(trace.len(), streamed.len());
        for (a, b) in trace.jobs.iter().zip(&streamed) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.arrival, b.arrival);
            assert_eq!(a.beta.to_bits(), b.beta.to_bits());
            assert_eq!(a.template, b.template);
            assert_eq!(a.dag_len(), b.dag_len());
            for (pa, pb) in a.phases.iter().zip(&b.phases) {
                assert_eq!(pa.task_works, pb.task_works);
                assert_eq!(pa.upstream, pb.upstream);
                assert_eq!(
                    pa.output_mb_per_task.to_bits(),
                    pb.output_mb_per_task.to_bits()
                );
            }
        }
    }

    #[test]
    fn stream_is_lazy_and_resumable() {
        let g = generator(50);
        let mut s = g.stream_with_utilization(200, 0.7);
        assert_eq!(s.total_jobs(), 50);
        assert_eq!(s.len(), 50);
        let first = s.next().unwrap();
        assert_eq!(first.id, 0);
        assert_eq!(s.remaining(), 49);
        // Consuming the rest yields ids 1..50 with nondecreasing arrivals.
        let mut last_arrival = first.arrival;
        for (i, j) in s.enumerate() {
            assert_eq!(j.id, i + 1);
            assert!(j.arrival >= last_arrival);
            last_arrival = j.arrival;
        }
    }

    #[test]
    fn truncated_stream_is_a_prefix_of_the_full_stream() {
        let g = generator(80);
        let full: Vec<TraceJob> = g.stream_with_utilization(200, 0.7).collect();
        let cut: Vec<TraceJob> = g.stream_with_utilization(200, 0.7).truncated(25).collect();
        assert_eq!(cut.len(), 25);
        for (a, b) in full.iter().zip(&cut) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.arrival, b.arrival);
            assert_eq!(a.total_work_ms(), b.total_work_ms());
        }
        // Truncating above the total is a no-op.
        let same: Vec<TraceJob> = g
            .stream_with_utilization(200, 0.7)
            .truncated(10_000)
            .collect();
        assert_eq!(same.len(), 80);
    }

    #[test]
    fn weighted_sampling_respects_mass() {
        let mut rng = hopper_sim::rng_from_seed(5);
        let w = vec![0.0, 1.0, 0.0];
        for _ in 0..100 {
            assert_eq!(sample_weighted(&w, &mut rng), 1);
        }
    }
}
