//! Non-stationary arrival-rate profiles: diurnal curves and burst
//! injection over the generator's calibrated Poisson base rate.
//!
//! A [`RateProfile`] describes the *relative* arrival rate over time —
//! a dimensionless modulation `r(t)` applied to the stream's calibrated
//! base rate. Every profile is normalized so its time-average is 1:
//! the calibration pre-pass (`window = total_work / (slots · util)`)
//! keeps meaning "the target utilization is the time-average over the
//! arrival window", stationary or not. The diurnal curve averages 1 by
//! construction; burst injection divides by its expected inflation
//! factor `1 + (mult − 1) · f` where `f` is the expected fraction of
//! time spent inside a burst window.
//!
//! Sampling uses exact inversion of the inhomogeneous Poisson process:
//! the stream draws the same exponential gap `g` it would draw under
//! [`RateProfile::Constant`] (one uniform per arrival, so RNG streams
//! never diverge between profiles) and then advances time to the `t'`
//! with `∫_t^{t'} r(s) ds = g` via [`RateClock::advance`]. The relative
//! rate is piecewise linear (linear diurnal segments × piecewise-
//! constant burst multiplier), so each segment's integral is a
//! quadratic solved in closed form — no step-size error, fully
//! deterministic.

use hopper_sim::SeedSequence;
use rand::rngs::StdRng;

use crate::dist::Dist;

/// Child-seed tag for the burst-window process (disjoint from the
/// per-job and arrival tags, so adding bursts never perturbs job
/// bodies or the exponential gap draws).
const BURST_SEED_TAG: u64 = 0xB0057;

/// The built-in diurnal day: a piecewise-linear relative-rate curve
/// through (phase, rate) knots, one period long. Morning peak at 1.6×,
/// midday dip, evening peak at 1.4×, overnight trough at 0.4×. The
/// trapezoid time-average is exactly 1.0, which is what keeps the
/// calibrated utilization target honest.
const DIURNAL_KNOTS: [f64; 5] = [0.4, 1.6, 0.6, 1.4, 0.4];

/// A relative arrival-rate profile (time-average 1 by construction).
///
/// Built with [`RateProfile::constant`] / [`RateProfile::diurnal`] and
/// optionally layered with [`RateProfile::with_bursts`]; consumed by
/// `TraceGenerator::stream_with_profile`.
#[derive(Debug, Clone, PartialEq)]
pub enum RateProfile {
    /// Stationary arrivals — exactly the historical generator: the
    /// stream's time-advance is byte-identical to builds that predate
    /// rate profiles.
    Constant,
    /// The built-in piecewise-linear diurnal curve with the given
    /// period. `period_ms = 0` means "auto": a quarter of the
    /// calibrated arrival window, so every run sees four full days and
    /// the window average stays exactly 1.
    Diurnal {
        /// Curve period in simulated milliseconds (0 = auto).
        period_ms: u64,
    },
    /// Seeded burst injection layered on a base profile: Poisson-placed
    /// windows of `len_ms` during which the base rate is multiplied by
    /// `mult`, renormalized so the time-average stays 1.
    Bursty {
        /// The profile the bursts modulate (constant or diurnal — the
        /// burst layer does not nest).
        base: Box<RateProfile>,
        /// Expected burst windows per simulated hour (> 0).
        per_hour: f64,
        /// Rate multiplier inside a burst window (≥ 1).
        mult: f64,
        /// Burst window length in ms (> 0).
        len_ms: u64,
    },
}

impl RateProfile {
    /// The stationary profile (the default everywhere).
    ///
    /// ```
    /// use hopper_workload::RateProfile;
    /// let p = RateProfile::constant();
    /// assert!(p.is_constant());
    /// p.check().unwrap();
    /// ```
    pub fn constant() -> Self {
        RateProfile::Constant
    }

    /// The built-in diurnal curve with period `period_ms`
    /// (0 = auto: a quarter of the calibrated arrival window).
    ///
    /// ```
    /// use hopper_workload::RateProfile;
    /// let day = RateProfile::diurnal(3_600_000); // 1-hour "day"
    /// assert!(!day.is_constant());
    /// day.check().unwrap();
    /// ```
    pub fn diurnal(period_ms: u64) -> Self {
        RateProfile::Diurnal { period_ms }
    }

    /// Layer seeded burst windows on this profile: `per_hour` expected
    /// windows per simulated hour, each `len_ms` long, multiplying the
    /// rate by `mult` (the whole curve is renormalized to time-average
    /// 1, so the calibrated utilization target is unchanged).
    ///
    /// ```
    /// use hopper_workload::RateProfile;
    /// let p = RateProfile::constant().with_bursts(6.0, 4.0, 60_000);
    /// p.check().unwrap();
    /// // Expected burst fraction f = 6 * 60_000 / 3_600_000 = 10%.
    /// ```
    pub fn with_bursts(self, per_hour: f64, mult: f64, len_ms: u64) -> Self {
        RateProfile::Bursty {
            base: Box::new(self),
            per_hour,
            mult,
            len_ms,
        }
    }

    /// Whether this is the stationary profile (the byte-identical
    /// legacy path).
    pub fn is_constant(&self) -> bool {
        matches!(self, RateProfile::Constant)
    }

    /// Validate parameters. The burst layer needs `per_hour > 0`,
    /// `mult ≥ 1`, `len_ms > 0`, an expected in-burst time fraction
    /// below 1 (`per_hour · len_ms < 1 hour`), and a non-burst base.
    pub fn check(&self) -> Result<(), String> {
        match self {
            RateProfile::Constant | RateProfile::Diurnal { .. } => Ok(()),
            RateProfile::Bursty {
                base,
                per_hour,
                mult,
                len_ms,
            } => {
                if matches!(**base, RateProfile::Bursty { .. }) {
                    return Err("burst profiles do not nest".into());
                }
                base.check()?;
                if !(per_hour.is_finite() && *per_hour > 0.0) {
                    return Err(format!("burst per_hour must be > 0, got {per_hour}"));
                }
                if !(mult.is_finite() && *mult >= 1.0) {
                    return Err(format!("burst mult must be >= 1, got {mult}"));
                }
                if *len_ms == 0 {
                    return Err("burst len_ms must be positive".into());
                }
                if per_hour * *len_ms as f64 >= 3_600_000.0 {
                    return Err(format!(
                        "bursts would cover the whole timeline: per_hour ({per_hour}) x \
                         len_ms ({len_ms}) must stay under one hour"
                    ));
                }
                Ok(())
            }
        }
    }
}

/// Poisson-placed burst windows and their renormalized multiplier.
#[derive(Debug, Clone)]
struct BurstState {
    /// In-window rate multiplier (before the global renormalization).
    mult: f64,
    /// Window length, ms.
    len_ms: f64,
    /// Mean gap between a window's end and the next window's start,
    /// chosen so the expected window count matches `per_hour`.
    mean_gap_ms: f64,
    /// Dedicated child RNG — window placement is a function of the
    /// trace seed alone, independent of `mult` (so sweeping the
    /// multiplier moves *how hard* each burst hits, never *when*).
    rng: StdRng,
    /// Windows generated so far, disjoint and sorted by start.
    windows: Vec<(f64, f64)>,
}

impl BurstState {
    /// Extend the lazily generated window list until the last window
    /// starts strictly after `t` (every edge at or before `t`, and the
    /// next edge after it, is then known).
    fn ensure(&mut self, t: f64) {
        while self.windows.last().is_none_or(|w| w.0 <= t) {
            let cursor = self.windows.last().map_or(0.0, |w| w.1);
            let gap = Dist::Exp {
                mean: self.mean_gap_ms,
            }
            .sample(&mut self.rng);
            let start = cursor + gap;
            self.windows.push((start, start + self.len_ms));
        }
    }

    /// `(multiplier at t, first window edge strictly after t)`.
    fn at(&mut self, t: f64) -> (f64, f64) {
        self.ensure(t);
        let i = self.windows.partition_point(|w| w.1 <= t);
        let (start, end) = self.windows[i];
        if t >= start {
            (self.mult, end)
        } else {
            (1.0, start)
        }
    }
}

/// Runtime evaluator for a non-constant [`RateProfile`]: holds the
/// resolved diurnal period, the lazily generated burst windows, and the
/// normalization constant, and converts exponential gap draws into
/// arrival-time advances by exact inversion.
#[derive(Debug, Clone)]
pub struct RateClock {
    /// Resolved diurnal period in ms (`None` for a constant base).
    diurnal_period_ms: Option<f64>,
    /// Burst layer, if any.
    burst: Option<BurstState>,
    /// Divisor restoring time-average 1 (the burst layer's expected
    /// inflation factor; 1 without bursts).
    norm: f64,
}

impl RateClock {
    /// Build the evaluator for `profile`. `window_ms` is the calibrated
    /// arrival window (resolves `period_ms = 0`); `seed` is the trace
    /// seed the burst-window process derives its child RNG from.
    /// Returns `None` for [`RateProfile::Constant`] — the stream then
    /// takes the historical constant-rate path, byte for byte.
    pub fn new(profile: &RateProfile, window_ms: f64, seed: u64) -> Option<RateClock> {
        profile.check().expect("invalid rate profile");
        let resolve_period = |period_ms: u64| -> f64 {
            if period_ms > 0 {
                period_ms as f64
            } else {
                (window_ms / 4.0).max(1.0)
            }
        };
        let (diurnal_period_ms, burst_cfg) = match profile {
            RateProfile::Constant => return None,
            RateProfile::Diurnal { period_ms } => (Some(resolve_period(*period_ms)), None),
            RateProfile::Bursty {
                base,
                per_hour,
                mult,
                len_ms,
            } => {
                let base_period = match **base {
                    RateProfile::Diurnal { period_ms } => Some(resolve_period(period_ms)),
                    _ => None,
                };
                (base_period, Some((*per_hour, *mult, *len_ms as f64)))
            }
        };
        let (burst, norm) = match burst_cfg {
            None => (None, 1.0),
            Some((per_hour, mult, len_ms)) => {
                // Expected fraction of time inside a burst window.
                let f = per_hour * len_ms / 3_600_000.0;
                let burst = BurstState {
                    mult,
                    len_ms,
                    mean_gap_ms: 3_600_000.0 / per_hour - len_ms,
                    rng: SeedSequence::new(seed).child_rng(BURST_SEED_TAG),
                    windows: Vec::new(),
                };
                (Some(burst), 1.0 + (mult - 1.0) * f)
            }
        };
        Some(RateClock {
            diurnal_period_ms,
            burst,
            norm,
        })
    }

    /// Diurnal base value and slope (per ms) at `t`; `(1, 0)` for a
    /// constant base.
    fn base_at(&self, t: f64) -> (f64, f64) {
        let Some(p) = self.diurnal_period_ms else {
            return (1.0, 0.0);
        };
        let u = (t / p).rem_euclid(1.0);
        let k = ((u * 4.0).floor() as usize).min(3);
        let seg_u = (u * 4.0 - k as f64).clamp(0.0, 1.0);
        let (lo, hi) = (DIURNAL_KNOTS[k], DIURNAL_KNOTS[k + 1]);
        (lo + (hi - lo) * seg_u, (hi - lo) / (p / 4.0))
    }

    /// First diurnal knot time strictly after `t` (infinite for a
    /// constant base).
    fn next_base_break(&self, t: f64) -> f64 {
        let Some(p) = self.diurnal_period_ms else {
            return f64::INFINITY;
        };
        let q = p / 4.0;
        let mut k = (t / q).floor() + 1.0;
        while k * q <= t {
            k += 1.0;
        }
        k * q
    }

    /// Relative rate at `t` (time-average 1). Exposed for calibration
    /// tests and docs; arrival sampling goes through
    /// [`RateClock::advance`].
    pub fn rel_rate(&mut self, t: f64) -> f64 {
        let (mult, _) = match self.burst.as_mut() {
            Some(b) => b.at(t),
            None => (1.0, f64::INFINITY),
        };
        self.base_at(t).0 * mult / self.norm
    }

    /// Advance from `t` by an exponential gap `g` drawn at relative
    /// rate 1: returns the `t'` with `∫_t^{t'} rel(s) ds = g`. Walks
    /// the piecewise-linear segments (diurnal knots × burst edges) and
    /// solves the final quadratic segment in closed form.
    pub fn advance(&mut self, t0: f64, g: f64) -> f64 {
        let mut t = t0;
        let mut rem = g;
        loop {
            let (mult, burst_edge) = match self.burst.as_mut() {
                Some(b) => b.at(t),
                None => (1.0, f64::INFINITY),
            };
            let (base, base_slope) = self.base_at(t);
            let scale = mult / self.norm;
            let a = base * scale; // rel rate at t (always > 0)
            let b = base_slope * scale; // d rel / dt on this segment
            let seg_end = burst_edge.min(self.next_base_break(t));
            if seg_end.is_finite() {
                let w = seg_end - t;
                let area = w * (a + 0.5 * b * w);
                if area < rem {
                    rem -= area;
                    t = seg_end;
                    continue;
                }
            }
            // Solve a·x + (b/2)·x² = rem inside the segment. The
            // discriminant cannot go negative: the segment's full area
            // covers `rem` and the rate stays strictly positive.
            let x = if b.abs() < 1e-12 {
                rem / a
            } else {
                ((a * a + 2.0 * b * rem).max(0.0).sqrt() - a) / b
            };
            return t + x;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diurnal_knots_average_to_one() {
        // Trapezoid rule over the four equal-width segments.
        let avg: f64 = DIURNAL_KNOTS
            .windows(2)
            .map(|w| 0.25 * 0.5 * (w[0] + w[1]))
            .sum();
        assert!((avg - 1.0).abs() < 1e-12, "diurnal mean {avg}");
    }

    #[test]
    fn constant_profile_has_no_clock() {
        assert!(RateClock::new(&RateProfile::constant(), 1e6, 1).is_none());
    }

    #[test]
    fn check_rejects_bad_burst_parameters() {
        assert!(RateProfile::constant()
            .with_bursts(0.0, 2.0, 1000)
            .check()
            .is_err());
        assert!(RateProfile::constant()
            .with_bursts(2.0, 0.5, 1000)
            .check()
            .is_err());
        assert!(RateProfile::constant()
            .with_bursts(2.0, 2.0, 0)
            .check()
            .is_err());
        // Bursts covering the whole hour leave no off-burst time.
        assert!(RateProfile::constant()
            .with_bursts(60.0, 2.0, 60_000)
            .check()
            .is_err());
        // Nesting is rejected.
        assert!(RateProfile::constant()
            .with_bursts(2.0, 2.0, 1000)
            .with_bursts(2.0, 2.0, 1000)
            .check()
            .is_err());
    }

    #[test]
    fn diurnal_rel_rate_tracks_the_curve() {
        let day = 1_000_000.0;
        let mut c = RateClock::new(&RateProfile::diurnal(1_000_000), 4.0 * day, 7).unwrap();
        assert!((c.rel_rate(0.0) - 0.4).abs() < 1e-9);
        assert!((c.rel_rate(0.25 * day) - 1.6).abs() < 1e-9);
        assert!((c.rel_rate(0.5 * day) - 0.6).abs() < 1e-9);
        assert!((c.rel_rate(0.75 * day) - 1.4).abs() < 1e-9);
        // Periodic.
        assert!((c.rel_rate(2.25 * day) - 1.6).abs() < 1e-9);
        // Midpoint of the first ramp.
        assert!((c.rel_rate(0.125 * day) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn advance_inverts_the_rate_integral() {
        let profile = RateProfile::diurnal(800_000).with_bursts(4.0, 3.0, 120_000);
        let mut c = RateClock::new(&profile, 3_200_000.0, 11).unwrap();
        // ∫ rel over [t, advance(t, g)] must equal g: re-integrate
        // numerically with a fine grid and compare.
        let mut t = 0.0;
        for i in 0..200 {
            let g = 500.0 + (i as f64) * 37.0;
            let t2 = c.advance(t, g);
            assert!(t2 > t);
            let steps = 4000;
            let h = (t2 - t) / steps as f64;
            let mut area = 0.0;
            for s in 0..steps {
                let mid = t + (s as f64 + 0.5) * h;
                area += c.rel_rate(mid) * h;
            }
            assert!(
                (area - g).abs() / g < 1e-3,
                "step {i}: wanted area {g}, re-integrated {area}"
            );
            t = t2;
        }
    }

    #[test]
    fn diurnal_time_average_is_one_over_whole_periods() {
        let mut c = RateClock::new(&RateProfile::diurnal(400_000), 1_600_000.0, 3).unwrap();
        let steps = 40_000;
        let h = 400_000.0 / steps as f64;
        let avg: f64 = (0..steps)
            .map(|s| c.rel_rate((s as f64 + 0.5) * h) * h)
            .sum::<f64>()
            / 400_000.0;
        assert!((avg - 1.0).abs() < 1e-6, "period average {avg}");
    }

    #[test]
    fn burst_windows_depend_on_seed_not_mult() {
        let win = |mult: f64, seed: u64| -> Vec<(u64, u64)> {
            let p = RateProfile::constant().with_bursts(6.0, mult, 60_000);
            let mut c = RateClock::new(&p, 7_200_000.0, seed).unwrap();
            let b = c.burst.as_mut().unwrap();
            b.ensure(7_200_000.0);
            b.windows
                .iter()
                .map(|&(s, e)| (s as u64, e as u64))
                .collect()
        };
        assert_eq!(win(2.0, 5), win(8.0, 5), "mult must not move windows");
        assert_ne!(win(2.0, 5), win(2.0, 6), "seed must move windows");
    }

    #[test]
    fn bursty_long_run_average_stays_one() {
        // Time-average of the renormalized bursty curve over a long
        // horizon approaches 1 (law of large numbers over windows).
        let p = RateProfile::constant().with_bursts(12.0, 5.0, 30_000);
        let mut c = RateClock::new(&p, 1e8, 9).unwrap();
        let horizon = 2.0e8;
        let steps = 200_000;
        let h = horizon / steps as f64;
        let avg: f64 = (0..steps)
            .map(|s| c.rel_rate((s as f64 + 0.5) * h) * h)
            .sum::<f64>()
            / horizon;
        assert!((avg - 1.0).abs() < 0.05, "long-run average {avg}");
    }
}
