//! Trace data model: the jobs a simulation will replay.
//!
//! A [`Trace`] is an ordered list of [`TraceJob`]s, each with an arrival
//! time and a DAG of [`TracePhase`]s. The model mirrors what the paper
//! retains from the Facebook/Bing production traces (§7.1): "the
//! inter-arrival times of jobs, their input sizes and number of tasks,
//! resource demands, and job DAGs of tasks".

use hopper_sim::SimTime;

/// Identifier of a job within a trace (its index in [`Trace::jobs`]).
pub type JobId = usize;

/// How a downstream phase consumes its upstream outputs.
///
/// Only the aggregate volume matters to the scheduler (through α); the
/// pattern changes how transfer work is attributed to downstream tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommPattern {
    /// Every downstream task reads from every upstream task (shuffle).
    AllToAll,
    /// Each downstream task reads a disjoint slice of upstream outputs.
    OneToOne,
    /// A single downstream task gathers everything (e.g., final aggregate).
    ManyToOne,
}

/// One phase (stage) of a job: a set of parallel tasks plus how the phase
/// connects upstream.
#[derive(Debug, Clone)]
pub struct TracePhase {
    /// Nominal work (expected duration) of each task in this phase.
    pub task_works: Vec<SimTime>,
    /// Indices (into the job's `phases`) of the phases this one reads from.
    /// Empty for input phases. Phases must be topologically ordered: every
    /// upstream index is smaller than this phase's own index.
    pub upstream: Vec<usize>,
    /// Intermediate data produced per task, in MB, consumed by downstream
    /// phases (0 for leaf phases).
    pub output_mb_per_task: f64,
    /// Communication pattern toward this phase from its upstream phases.
    pub comm: CommPattern,
    /// Whether this phase's tasks read distributed-filesystem input and thus
    /// have placement (locality) preferences. Typically true only for phase
    /// 0 (map/input phases).
    pub reads_dfs_input: bool,
}

impl TracePhase {
    /// Number of tasks in the phase.
    pub fn num_tasks(&self) -> usize {
        self.task_works.len()
    }

    /// Total nominal work of the phase in milliseconds.
    pub fn total_work_ms(&self) -> u64 {
        self.task_works.iter().map(|w| w.as_millis()).sum()
    }
}

/// A job: arrival time plus a DAG of phases.
#[derive(Debug, Clone)]
pub struct TraceJob {
    /// Identifier (index within the trace).
    pub id: JobId,
    /// Arrival (submission) time.
    pub arrival: SimTime,
    /// Phases in topological order; `phases[0]` is the input phase.
    pub phases: Vec<TracePhase>,
    /// Pareto tail index of this job's task-duration multiplier. The paper
    /// notes jobs from different applications have heterogeneous β.
    pub beta: f64,
    /// Recurring-job template: jobs with the same template produce similar
    /// intermediate data volumes; the α estimator learns per template
    /// (paper §6.3). `None` for one-off jobs.
    pub template: Option<u32>,
    /// Scheduling weight (1.0 unless weighted fairness is being exercised).
    pub weight: f64,
}

impl TraceJob {
    /// Total number of tasks across all phases.
    pub fn num_tasks(&self) -> usize {
        self.phases.iter().map(|p| p.num_tasks()).sum()
    }

    /// Number of tasks in the input phase — the paper's "job size" used for
    /// binning (Figure 7).
    pub fn size_tasks(&self) -> usize {
        self.phases.first().map_or(0, |p| p.num_tasks())
    }

    /// Total nominal work in milliseconds (sum over all tasks).
    pub fn total_work_ms(&self) -> u64 {
        self.phases.iter().map(|p| p.total_work_ms()).sum()
    }

    /// Number of phases — the paper's "DAG length" (Figures 8b, 12b).
    pub fn dag_len(&self) -> usize {
        self.phases.len()
    }

    /// Validate topological ordering of phases; panics on violation.
    /// Used by generators and scripted-scenario builders in tests.
    pub fn assert_well_formed(&self) {
        assert!(!self.phases.is_empty(), "job {} has no phases", self.id);
        assert!(self.beta > 1.0, "job {} beta must be > 1", self.id);
        for (i, p) in self.phases.iter().enumerate() {
            assert!(!p.task_works.is_empty(), "job {} phase {i} empty", self.id);
            for &u in &p.upstream {
                assert!(
                    u < i,
                    "job {} phase {i} upstream {u} not topological",
                    self.id
                );
            }
        }
    }
}

/// An entire workload: jobs sorted by arrival time.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// The jobs, sorted by nondecreasing arrival time; `jobs[i].id == i`.
    pub jobs: Vec<TraceJob>,
}

impl Trace {
    /// Build a trace from jobs, sorting by arrival and re-assigning ids to
    /// match positions.
    pub fn new(mut jobs: Vec<TraceJob>) -> Self {
        jobs.sort_by_key(|j| j.arrival);
        for (i, j) in jobs.iter_mut().enumerate() {
            j.id = i;
        }
        Trace { jobs }
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Sum of nominal work across all jobs, in slot-milliseconds.
    pub fn total_work_ms(&self) -> u64 {
        self.jobs.iter().map(|j| j.total_work_ms()).sum()
    }

    /// Time of the last arrival.
    pub fn makespan_lower_bound(&self) -> SimTime {
        self.jobs.last().map_or(SimTime::ZERO, |j| j.arrival)
    }

    /// The average offered load against `total_slots` over the arrival
    /// window, i.e. `total work / (slots × window)`. This is the
    /// "utilization" knob of the paper's §7 (60–90%).
    pub fn offered_utilization(&self, total_slots: usize) -> f64 {
        let window = self.makespan_lower_bound().as_millis().max(1);
        self.total_work_ms() as f64 / (total_slots as f64 * window as f64)
    }
}

/// Convenience builder for single-phase jobs, used widely in tests and in
/// the motivating-example bench.
pub fn single_phase_job(
    id: JobId,
    arrival: SimTime,
    task_works: Vec<SimTime>,
    beta: f64,
) -> TraceJob {
    TraceJob {
        id,
        arrival,
        phases: vec![TracePhase {
            task_works,
            upstream: vec![],
            output_mb_per_task: 0.0,
            comm: CommPattern::OneToOne,
            reads_dfs_input: true,
        }],
        beta,
        template: None,
        weight: 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(arrival_ms: u64, works: &[u64]) -> TraceJob {
        single_phase_job(
            0,
            SimTime::from_millis(arrival_ms),
            works.iter().map(|&w| SimTime::from_millis(w)).collect(),
            1.5,
        )
    }

    #[test]
    fn trace_sorts_and_reassigns_ids() {
        let t = Trace::new(vec![job(50, &[10]), job(10, &[20]), job(30, &[5])]);
        let arrivals: Vec<u64> = t.jobs.iter().map(|j| j.arrival.as_millis()).collect();
        assert_eq!(arrivals, vec![10, 30, 50]);
        let ids: Vec<usize> = t.jobs.iter().map(|j| j.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn job_accessors() {
        let j = job(0, &[10, 20, 30]);
        assert_eq!(j.num_tasks(), 3);
        assert_eq!(j.size_tasks(), 3);
        assert_eq!(j.total_work_ms(), 60);
        assert_eq!(j.dag_len(), 1);
        j.assert_well_formed();
    }

    #[test]
    fn offered_utilization_math() {
        // 2 jobs, 100ms work each, arrivals at 0 and 100ms, 2 slots:
        // window = 100ms, work = 200 slot-ms, util = 200/(2*100) = 1.0.
        let t = Trace::new(vec![job(0, &[100]), job(100, &[100])]);
        assert!((t.offered_utilization(2) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "not topological")]
    fn bad_topology_panics() {
        let mut j = job(0, &[10]);
        j.phases.push(TracePhase {
            task_works: vec![SimTime::from_millis(5)],
            upstream: vec![5],
            output_mb_per_task: 0.0,
            comm: CommPattern::AllToAll,
            reads_dfs_input: false,
        });
        j.assert_well_formed();
    }

    #[test]
    fn multi_phase_totals() {
        let mut j = job(0, &[10, 10]);
        j.phases.push(TracePhase {
            task_works: vec![SimTime::from_millis(7); 4],
            upstream: vec![0],
            output_mb_per_task: 1.0,
            comm: CommPattern::AllToAll,
            reads_dfs_input: false,
        });
        assert_eq!(j.num_tasks(), 6);
        assert_eq!(j.size_tasks(), 2);
        assert_eq!(j.total_work_ms(), 48);
        assert_eq!(j.dag_len(), 2);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.makespan_lower_bound(), SimTime::ZERO);
    }
}
