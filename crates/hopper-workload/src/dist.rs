//! Probability distributions used by workload synthesis and the straggler
//! model.
//!
//! The paper's key distributional facts (its §4, citing the Facebook and
//! Bing traces) are:
//!
//! - task durations are heavy-tailed **Pareto** with shape `1 < β < 2`
//!   (smaller β ⇒ worse stragglers);
//! - job sizes (task counts) are heavy-tailed as well;
//! - job arrivals are well modelled as Poisson (exponential inter-arrivals).
//!
//! Everything is sampled by inverse-CDF from a caller-provided RNG so the
//! whole workspace stays deterministic under a fixed seed.

use rand::Rng;

/// A one-dimensional distribution, sampled by inverse transform.
///
/// Kept as an enum (not a trait object) so workload profiles stay `Clone +
/// Debug` and comparisons in tests are straightforward.
#[derive(Debug, Clone, PartialEq)]
pub enum Dist {
    /// Pareto with tail index `shape` (β) and minimum value `scale` (x_m):
    /// `P(X > x) = (scale/x)^shape` for `x ≥ scale`.
    Pareto {
        /// Tail index β; heavier tail for smaller values. Must be > 0.
        shape: f64,
        /// Minimum value x_m (> 0).
        scale: f64,
    },
    /// Pareto truncated to `[min, max]` (inclusive); avoids unbounded draws
    /// when sampling job sizes.
    BoundedPareto {
        /// Tail index.
        shape: f64,
        /// Lower bound (> 0).
        min: f64,
        /// Upper bound (> min).
        max: f64,
    },
    /// Exponential with the given mean (rate = 1/mean).
    Exp {
        /// Mean of the distribution (> 0).
        mean: f64,
    },
    /// Log-normal given the mean/σ of the underlying normal.
    LogNormal {
        /// Mean of `ln X`.
        mu: f64,
        /// Standard deviation of `ln X` (≥ 0).
        sigma: f64,
    },
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// A point mass.
    Constant(
        /// The constant value returned by every sample.
        f64,
    ),
}

impl Dist {
    /// A Pareto distribution with tail index `beta`, rescaled to unit mean.
    ///
    /// This is the canonical per-copy duration *multiplier* in the straggler
    /// model: a task of nominal work `w` takes `w · X` with `E[X] = 1`, so
    /// nominal work is directly the expected duration. Requires `beta > 1`
    /// (infinite mean otherwise).
    pub fn unit_mean_pareto(beta: f64) -> Dist {
        assert!(beta > 1.0, "unit-mean Pareto needs shape > 1, got {beta}");
        Dist::Pareto {
            shape: beta,
            scale: (beta - 1.0) / beta,
        }
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // `u` in (0, 1]: avoid u == 0 which maps to +inf for Pareto.
        let u: f64 = 1.0 - rng.gen::<f64>();
        match *self {
            Dist::Pareto { shape, scale } => scale / u.powf(1.0 / shape),
            Dist::BoundedPareto { shape, min, max } => {
                // Inverse CDF of the truncated Pareto.
                let ratio = (min / max).powf(shape);
                let x = min / (1.0 - (1.0 - u) * (1.0 - ratio)).powf(1.0 / shape);
                x.clamp(min, max)
            }
            Dist::Exp { mean } => -mean * u.ln(),
            Dist::LogNormal { mu, sigma } => {
                let z = standard_normal(rng);
                (mu + sigma * z).exp()
            }
            Dist::Uniform { lo, hi } => lo + (hi - lo) * rng.gen::<f64>(),
            Dist::Constant(v) => v,
        }
    }

    /// The analytic mean, where finite; `None` for a Pareto with shape ≤ 1.
    pub fn mean(&self) -> Option<f64> {
        match *self {
            Dist::Pareto { shape, scale } => (shape > 1.0).then(|| scale * shape / (shape - 1.0)),
            Dist::BoundedPareto { shape, min, max } => Some(bounded_pareto_mean(shape, min, max)),
            Dist::Exp { mean } => Some(mean),
            Dist::LogNormal { mu, sigma } => Some((mu + sigma * sigma / 2.0).exp()),
            Dist::Uniform { lo, hi } => Some((lo + hi) / 2.0),
            Dist::Constant(v) => Some(v),
        }
    }

    /// Complementary CDF `P(X > x)` (used in tests to validate samplers).
    pub fn ccdf(&self, x: f64) -> f64 {
        match *self {
            Dist::Pareto { shape, scale } => {
                if x < scale {
                    1.0
                } else {
                    (scale / x).powf(shape)
                }
            }
            Dist::BoundedPareto { shape, min, max } => {
                if x < min {
                    1.0
                } else if x >= max {
                    0.0
                } else {
                    let ratio = (min / max).powf(shape);
                    ((min / x).powf(shape) - ratio) / (1.0 - ratio)
                }
            }
            Dist::Exp { mean } => (-x / mean).exp(),
            Dist::Uniform { lo, hi } => {
                if x < lo {
                    1.0
                } else if x >= hi {
                    0.0
                } else {
                    (hi - x) / (hi - lo)
                }
            }
            Dist::Constant(v) => {
                if x < v {
                    1.0
                } else {
                    0.0
                }
            }
            Dist::LogNormal { .. } => unimplemented!("ccdf not needed for LogNormal"),
        }
    }
}

/// Mean of a Pareto truncated to `[min, max]`.
fn bounded_pareto_mean(shape: f64, min: f64, max: f64) -> f64 {
    let ratio = (min / max).powf(shape);
    if (shape - 1.0).abs() < 1e-9 {
        // shape == 1 limit: a·L/(1-(L/H)) · ln(H/L) with a = 1
        (min / (1.0 - ratio)) * (max / min).ln()
    } else {
        (shape * min.powf(shape) / (1.0 - ratio))
            * ((min.powf(1.0 - shape) - max.powf(1.0 - shape)) / (shape - 1.0))
    }
}

/// One draw from N(0, 1) via Box–Muller (only the cosine branch; simple and
/// deterministic given the RNG stream).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(12345)
    }

    fn sample_mean(d: &Dist, n: usize) -> f64 {
        let mut r = rng();
        (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64
    }

    #[test]
    fn pareto_respects_scale_floor() {
        let d = Dist::Pareto {
            shape: 1.5,
            scale: 2.0,
        };
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(d.sample(&mut r) >= 2.0);
        }
    }

    #[test]
    fn unit_mean_pareto_has_unit_mean() {
        // β = 1.5 has finite mean but infinite variance, so the empirical
        // mean converges slowly; use a generous tolerance and many samples.
        let d = Dist::unit_mean_pareto(1.8);
        let m = sample_mean(&d, 400_000);
        assert!((m - 1.0).abs() < 0.05, "mean was {m}");
        let a = d.mean().unwrap();
        assert!((a - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "shape > 1")]
    fn unit_mean_pareto_rejects_heavy_shape() {
        let _ = Dist::unit_mean_pareto(1.0);
    }

    #[test]
    fn pareto_tail_matches_ccdf() {
        let d = Dist::Pareto {
            shape: 1.5,
            scale: 1.0,
        };
        let mut r = rng();
        let n = 200_000;
        let x = 8.0;
        let hits = (0..n).filter(|_| d.sample(&mut r) > x).count() as f64 / n as f64;
        let expect = d.ccdf(x);
        assert!(
            (hits - expect).abs() < 0.01,
            "empirical {hits} vs analytic {expect}"
        );
    }

    #[test]
    fn bounded_pareto_stays_in_bounds() {
        let d = Dist::BoundedPareto {
            shape: 1.1,
            min: 1.0,
            max: 3000.0,
        };
        let mut r = rng();
        for _ in 0..50_000 {
            let x = d.sample(&mut r);
            assert!((1.0..=3000.0).contains(&x), "out of range: {x}");
        }
    }

    #[test]
    fn bounded_pareto_mean_matches_analytic() {
        let d = Dist::BoundedPareto {
            shape: 1.3,
            min: 1.0,
            max: 500.0,
        };
        let emp = sample_mean(&d, 300_000);
        let ana = d.mean().unwrap();
        assert!(
            (emp - ana).abs() / ana < 0.03,
            "empirical {emp} vs analytic {ana}"
        );
    }

    #[test]
    fn bounded_pareto_shape_one_mean_is_finite() {
        let d = Dist::BoundedPareto {
            shape: 1.0,
            min: 1.0,
            max: 100.0,
        };
        let ana = d.mean().unwrap();
        assert!(ana.is_finite() && ana > 1.0 && ana < 100.0);
        let emp = sample_mean(&d, 300_000);
        assert!(
            (emp - ana).abs() / ana < 0.03,
            "empirical {emp} vs analytic {ana}"
        );
    }

    #[test]
    fn exponential_mean() {
        let d = Dist::Exp { mean: 7.0 };
        let m = sample_mean(&d, 200_000);
        assert!((m - 7.0).abs() < 0.1, "mean was {m}");
    }

    #[test]
    fn lognormal_mean() {
        let d = Dist::LogNormal {
            mu: 0.0,
            sigma: 0.5,
        };
        let m = sample_mean(&d, 200_000);
        let ana = d.mean().unwrap();
        assert!((m - ana).abs() / ana < 0.02, "empirical {m} analytic {ana}");
    }

    #[test]
    fn uniform_and_constant() {
        let mut r = rng();
        let u = Dist::Uniform { lo: 2.0, hi: 4.0 };
        for _ in 0..10_000 {
            let x = u.sample(&mut r);
            assert!((2.0..4.0).contains(&x));
        }
        assert_eq!(Dist::Constant(3.5).sample(&mut r), 3.5);
        assert_eq!(Dist::Constant(3.5).mean(), Some(3.5));
    }

    #[test]
    fn pareto_infinite_mean_is_none() {
        let d = Dist::Pareto {
            shape: 0.9,
            scale: 1.0,
        };
        assert_eq!(d.mean(), None);
    }

    #[test]
    fn samples_are_deterministic_per_seed() {
        let d = Dist::Pareto {
            shape: 1.5,
            scale: 1.0,
        };
        let mut a = rng();
        let mut b = rng();
        for _ in 0..100 {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }
}
