//! CSV trace replay: ingest external job traces (Google/Alibaba-style
//! schemas reduced to their common columns) into a [`Trace`] both
//! engines consume through the [`ArrivalSource`](crate::ArrivalSource)
//! seam.
//!
//! ## Schema
//!
//! One job per row, comma-separated, with an optional header line and
//! `#` comments:
//!
//! ```csv
//! arrival_ms,tasks,work_ms,dag_len,beta
//! 0,20,5000,1,1.5
//! 1200,8,12000,3,1.4
//! ```
//!
//! - `arrival_ms` — job arrival time (u64 ms; rows may be unsorted,
//!   ingest sorts and re-ids exactly like generated traces);
//! - `tasks` — tasks **per phase** (≥ 1);
//! - `work_ms` — nominal work per task in ms (> 0; fractional values
//!   round to whole milliseconds, the simulator's clock resolution);
//! - `dag_len` — optional chain length (default 1): the job becomes
//!   `dag_len` equal phases, each feeding the next;
//! - `beta` — optional per-job Pareto tail index (default 1.5; must be
//!   > 1, the estimators' domain).
//!
//! Replayed phases carry no intermediate output volume (`α` has no
//! basis in the reduced schema, so transfers are free) and no recurring
//! template. Malformed rows are rejected with their 1-based line
//! number.
//!
//! [`export_replay_csv`] writes any trace back into the schema, one row
//! per job (mean work per task, tasks averaged per phase) — lossy for
//! general generated traces, exact for replay-shaped ones:
//! `export ∘ ingest` is the identity on exported text (pinned by
//! round-trip tests).

use hopper_sim::SimTime;

use crate::trace::{CommPattern, Trace, TraceJob, TracePhase};

/// The canonical header row [`export_replay_csv`] writes (ingest
/// accepts it, any prefix of it, or no header at all).
pub const REPLAY_HEADER: &str = "arrival_ms,tasks,work_ms,dag_len,beta";

/// A rejected replay row: 1-based line number plus what was wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayError {
    /// 1-based line number in the input text (0 for file-level errors).
    pub line: usize,
    /// What was wrong with the row.
    pub msg: String,
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "replay CSV: {}", self.msg)
        } else {
            write!(f, "replay CSV line {}: {}", self.line, self.msg)
        }
    }
}

impl std::error::Error for ReplayError {}

fn rerr(line: usize, msg: impl Into<String>) -> ReplayError {
    ReplayError {
        line,
        msg: msg.into(),
    }
}

/// Parse replay-schema CSV text into a [`Trace`] (sorted by arrival,
/// ids re-assigned to positions — the invariant every driver assumes).
///
/// Blank lines and `#` comments are skipped; a first row starting with
/// `arrival_ms` is treated as the header. Any malformed row fails the
/// whole parse with its 1-based line number.
pub fn parse_replay_csv(text: &str) -> Result<Trace, ReplayError> {
    let mut jobs: Vec<TraceJob> = Vec::new();
    let mut saw_row = false;
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if !saw_row && line.starts_with("arrival_ms") {
            continue; // header
        }
        saw_row = true;
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if !(3..=5).contains(&fields.len()) {
            return Err(rerr(
                line_no,
                format!(
                    "expected 3-5 fields ({REPLAY_HEADER}), got {}",
                    fields.len()
                ),
            ));
        }
        let arrival_ms: u64 = fields[0]
            .parse()
            .map_err(|_| rerr(line_no, format!("bad arrival_ms `{}`", fields[0])))?;
        let tasks: usize = fields[1]
            .parse()
            .map_err(|_| rerr(line_no, format!("bad tasks `{}`", fields[1])))?;
        if tasks == 0 {
            return Err(rerr(line_no, "tasks must be at least 1"));
        }
        let work_ms: f64 = fields[2]
            .parse()
            .map_err(|_| rerr(line_no, format!("bad work_ms `{}`", fields[2])))?;
        if !(work_ms.is_finite() && work_ms > 0.0) {
            return Err(rerr(line_no, format!("work_ms must be > 0, got {work_ms}")));
        }
        let dag_len: usize = match fields.get(3) {
            Some(s) => s
                .parse()
                .map_err(|_| rerr(line_no, format!("bad dag_len `{s}`")))?,
            None => 1,
        };
        if dag_len == 0 {
            return Err(rerr(line_no, "dag_len must be at least 1"));
        }
        let beta: f64 = match fields.get(4) {
            Some(s) => s
                .parse()
                .map_err(|_| rerr(line_no, format!("bad beta `{s}`")))?,
            None => 1.5,
        };
        if !(beta.is_finite() && beta > 1.0) {
            return Err(rerr(line_no, format!("beta must be > 1, got {beta}")));
        }
        let work = SimTime::from_millis((work_ms.round() as u64).max(1));
        let phases = (0..dag_len)
            .map(|d| TracePhase {
                task_works: vec![work; tasks],
                upstream: if d == 0 { vec![] } else { vec![d - 1] },
                output_mb_per_task: 0.0,
                comm: if d == 0 {
                    CommPattern::OneToOne
                } else if tasks == 1 {
                    CommPattern::ManyToOne
                } else {
                    CommPattern::AllToAll
                },
                reads_dfs_input: d == 0,
            })
            .collect();
        let job = TraceJob {
            id: jobs.len(),
            arrival: SimTime::from_millis(arrival_ms),
            phases,
            beta,
            template: None,
            weight: 1.0,
        };
        job.assert_well_formed();
        jobs.push(job);
    }
    if jobs.is_empty() {
        return Err(rerr(0, "no job rows"));
    }
    Ok(Trace::new(jobs))
}

/// Export any trace to the replay schema, one row per job: arrival,
/// tasks per phase (averaged, ≥ 1), mean work per task (rounded to
/// ms), DAG length, β. Exact for replay-shaped traces (equal phases,
/// uniform work), a uniform-work approximation otherwise.
pub fn export_replay_csv(trace: &Trace) -> String {
    let mut out = String::with_capacity(32 * (trace.len() + 1));
    out.push_str(REPLAY_HEADER);
    out.push('\n');
    for j in &trace.jobs {
        let tasks = j.num_tasks();
        let dag_len = j.dag_len();
        let per_phase = ((tasks as f64 / dag_len as f64).round() as usize).max(1);
        let mean_work = (j.total_work_ms() as f64 / tasks.max(1) as f64).round() as u64;
        out.push_str(&format!(
            "{},{},{},{},{}\n",
            j.arrival.as_millis(),
            per_phase,
            mean_work.max(1),
            dag_len,
            j.beta,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceGenerator, WorkloadProfile};

    #[test]
    fn parses_minimal_and_full_rows() {
        let t = parse_replay_csv("0,4,1000\n500,2,2000,3,1.4\n").unwrap();
        assert_eq!(t.len(), 2);
        let a = &t.jobs[0];
        assert_eq!(a.arrival, SimTime::ZERO);
        assert_eq!(a.dag_len(), 1);
        assert_eq!(a.num_tasks(), 4);
        assert_eq!(a.beta, 1.5, "default beta");
        let b = &t.jobs[1];
        assert_eq!(b.dag_len(), 3);
        assert_eq!(b.num_tasks(), 6, "2 tasks x 3 phases");
        assert_eq!(b.beta, 1.4);
        assert_eq!(b.phases[1].upstream, vec![0]);
        assert_eq!(b.phases[2].upstream, vec![1]);
        assert!(b.phases[0].reads_dfs_input && !b.phases[1].reads_dfs_input);
    }

    #[test]
    fn header_comments_and_blanks_are_skipped() {
        let t = parse_replay_csv(
            "arrival_ms,tasks,work_ms,dag_len,beta\n# a comment\n\n10,1,50 # trailing\n",
        )
        .unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.jobs[0].arrival.as_millis(), 10);
    }

    #[test]
    fn unsorted_rows_are_sorted_and_reidentified() {
        let t = parse_replay_csv("900,1,100\n0,2,100\n400,3,100\n").unwrap();
        let arrivals: Vec<u64> = t.jobs.iter().map(|j| j.arrival.as_millis()).collect();
        assert_eq!(arrivals, vec![0, 400, 900]);
        for (i, j) in t.jobs.iter().enumerate() {
            assert_eq!(j.id, i);
        }
    }

    #[test]
    fn malformed_rows_carry_line_numbers() {
        let cases = [
            ("0,4\n", 1, "expected 3-5"),
            ("0,4,100\nnope,1,100\n", 2, "arrival_ms"),
            ("0,0,100\n", 1, "tasks"),
            ("0,1,-5\n", 1, "work_ms"),
            ("0,1,100,0\n", 1, "dag_len"),
            ("0,1,100,1,0.9\n", 1, "beta"),
            ("# only comments\n", 0, "no job rows"),
        ];
        for (text, line, needle) in cases {
            let e = parse_replay_csv(text).unwrap_err();
            assert_eq!(e.line, line, "{text:?}: {e}");
            assert!(e.msg.contains(needle), "{text:?}: {e}");
        }
    }

    #[test]
    fn export_then_ingest_is_a_fixpoint() {
        // Export is lossy on arbitrary generated traces, but ingest
        // lands in the replay-shaped subspace where it is exact:
        // export(ingest(export(x))) == export(x) for any x, and
        // ingest(export(y)) == y for replay-shaped y.
        let g = TraceGenerator::new(WorkloadProfile::facebook(), 40, 17);
        let trace = g.generate_with_utilization(120, 0.7);
        let csv1 = export_replay_csv(&trace);
        let replayed = parse_replay_csv(&csv1).unwrap();
        let csv2 = export_replay_csv(&replayed);
        assert_eq!(csv1, csv2, "export/ingest must reach a fixpoint");
        let replayed2 = parse_replay_csv(&csv2).unwrap();
        assert_eq!(replayed.len(), replayed2.len());
        for (a, b) in replayed.jobs.iter().zip(&replayed2.jobs) {
            assert_eq!(a.arrival, b.arrival);
            assert_eq!(a.num_tasks(), b.num_tasks());
            assert_eq!(a.total_work_ms(), b.total_work_ms());
            assert_eq!(a.beta.to_bits(), b.beta.to_bits());
        }
    }

    #[test]
    fn export_preserves_totals_approximately() {
        let g = TraceGenerator::new(WorkloadProfile::facebook(), 30, 3);
        let trace = g.generate_with_utilization(100, 0.7);
        let replayed = parse_replay_csv(&export_replay_csv(&trace)).unwrap();
        assert_eq!(replayed.len(), trace.len());
        for (a, b) in trace.jobs.iter().zip(&replayed.jobs) {
            assert_eq!(a.arrival, b.arrival);
            assert_eq!(a.dag_len(), b.dag_len());
            // Mean-work uniformization keeps totals within rounding of
            // the per-phase task-count average.
            let rel = (a.total_work_ms() as f64 - b.total_work_ms() as f64).abs()
                / a.total_work_ms() as f64;
            assert!(rel < 0.6, "job {}: totals drifted {rel}", a.id);
        }
    }
}
