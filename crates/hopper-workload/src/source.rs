//! [`ArrivalSource`]: one peek/pop surface over materialized traces,
//! lazy streams, and replayed external traces.
//!
//! Both simulation drivers consume job arrivals through this type —
//! arrivals are *delivered* into the event flow as simulation time
//! advances, never pre-loaded into the event queues. The ordering
//! contract every variant upholds: arrivals are delivered in id order,
//! and a driver merging this source with its event queue must deliver
//! an arrival *before* any queued event of the same timestamp —
//! exactly the order the historical pre-loaded code produced, where
//! arrivals were pushed first and thus held the lowest FIFO sequence
//! numbers at every tied instant.
//!
//! The source is `Clone` because the sharded decentralized engine
//! replicates it per shard (each shard replays the whole source and
//! keeps only its own entities' jobs).

use std::sync::Arc;

use hopper_sim::SimTime;

use crate::generator::TraceStream;
use crate::trace::{Trace, TraceJob};

/// A source of job arrivals: a borrowed, fully materialized [`Trace`]
/// (jobs are cloned out one at a time), a lazy [`TraceStream`] (jobs
/// are generated on demand — O(1) memory however many jobs the run
/// has), or a shared replayed trace ingested from CSV (owned via `Arc`
/// so the source is `'static` and cheap to clone per shard).
#[derive(Debug, Clone)]
pub enum ArrivalSource<'a> {
    /// Jobs come from a materialized trace, in order.
    Materialized {
        /// The backing trace.
        trace: &'a Trace,
        /// Index of the next job to deliver.
        next: usize,
    },
    /// Jobs are generated lazily from a seeded stream.
    Streaming {
        /// The backing stream (boxed: a stream carries its generator and
        /// RNG state, many times the size of the borrowed variant).
        stream: Box<TraceStream>,
        /// One-job lookahead so arrival times can be peeked.
        peeked: Option<TraceJob>,
    },
    /// Jobs come from a shared (typically CSV-replayed) trace, in
    /// order. Like `Materialized` but owning: the trace outlives any
    /// driver borrow, so replay runs flow through the same streaming
    /// entry points (`run_source`) on both engines.
    Replay {
        /// The shared backing trace.
        trace: Arc<Trace>,
        /// Index of the next job to deliver.
        next: usize,
    },
}

impl<'a> ArrivalSource<'a> {
    /// Source over a materialized trace.
    pub fn from_trace(trace: &'a Trace) -> Self {
        ArrivalSource::Materialized { trace, next: 0 }
    }

    /// Source over a lazy stream.
    pub fn from_stream(stream: TraceStream) -> ArrivalSource<'static> {
        ArrivalSource::Streaming {
            stream: Box::new(stream),
            peeked: None,
        }
    }

    /// Source over a shared (replayed) trace.
    pub fn from_shared(trace: Arc<Trace>) -> ArrivalSource<'static> {
        ArrivalSource::Replay { trace, next: 0 }
    }

    /// Total jobs this source will deliver over its lifetime (delivered
    /// and undelivered) — what drivers size their per-job id maps by.
    pub fn total_jobs(&self) -> usize {
        match self {
            ArrivalSource::Materialized { trace, .. } => trace.len(),
            ArrivalSource::Streaming { stream, .. } => stream.total_jobs(),
            ArrivalSource::Replay { trace, .. } => trace.len(),
        }
    }

    /// Arrival time of the next undelivered job, if any.
    pub fn peek_arrival(&mut self) -> Option<SimTime> {
        match self {
            ArrivalSource::Materialized { trace, next } => trace.jobs.get(*next).map(|j| j.arrival),
            ArrivalSource::Streaming { stream, peeked } => {
                if peeked.is_none() {
                    *peeked = stream.next();
                }
                peeked.as_ref().map(|j| j.arrival)
            }
            ArrivalSource::Replay { trace, next } => trace.jobs.get(*next).map(|j| j.arrival),
        }
    }

    /// Deliver the next job (id order; arrivals nondecreasing).
    pub fn pop(&mut self) -> Option<TraceJob> {
        match self {
            ArrivalSource::Materialized { trace, next } => {
                let job = trace.jobs.get(*next)?.clone();
                *next += 1;
                Some(job)
            }
            ArrivalSource::Streaming { stream, peeked } => peeked.take().or_else(|| stream.next()),
            ArrivalSource::Replay { trace, next } => {
                let job = trace.jobs.get(*next)?.clone();
                *next += 1;
                Some(job)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceGenerator, WorkloadProfile};

    #[test]
    fn both_sources_deliver_the_same_jobs() {
        let g = TraceGenerator::new(WorkloadProfile::facebook(), 30, 9);
        let trace = g.generate_with_utilization(100, 0.7);
        let mut mat = ArrivalSource::from_trace(&trace);
        let mut str = ArrivalSource::from_stream(g.stream_with_utilization(100, 0.7));
        assert_eq!(mat.total_jobs(), 30);
        assert_eq!(str.total_jobs(), 30);
        loop {
            assert_eq!(mat.peek_arrival(), str.peek_arrival());
            let (a, b) = (mat.pop(), str.pop());
            match (&a, &b) {
                (None, None) => break,
                (Some(x), Some(y)) => {
                    assert_eq!(x.id, y.id);
                    assert_eq!(x.arrival, y.arrival);
                    assert_eq!(x.total_work_ms(), y.total_work_ms());
                }
                _ => panic!("sources disagree on length"),
            }
        }
    }

    #[test]
    fn replay_source_matches_materialized() {
        let g = TraceGenerator::new(WorkloadProfile::facebook(), 12, 4);
        let trace = g.generate_with_utilization(60, 0.7);
        let mut mat = ArrivalSource::from_trace(&trace);
        let mut rep = ArrivalSource::from_shared(Arc::new(trace.clone()));
        assert_eq!(rep.total_jobs(), 12);
        loop {
            assert_eq!(mat.peek_arrival(), rep.peek_arrival());
            match (mat.pop(), rep.pop()) {
                (None, None) => break,
                (Some(x), Some(y)) => {
                    assert_eq!(x.id, y.id);
                    assert_eq!(x.arrival, y.arrival);
                    assert_eq!(x.total_work_ms(), y.total_work_ms());
                }
                _ => panic!("sources disagree on length"),
            }
        }
        // Clones restart nothing: a clone taken mid-delivery resumes
        // from the same position (the sharded engine's contract is a
        // clone taken *before* delivery replays from the start).
        let mut a = ArrivalSource::from_shared(Arc::new(trace));
        a.pop();
        let mut b = a.clone();
        assert_eq!(a.peek_arrival(), b.peek_arrival());
        assert_eq!(a.pop().map(|j| j.id), b.pop().map(|j| j.id));
    }

    #[test]
    fn peek_does_not_consume() {
        let g = TraceGenerator::new(WorkloadProfile::facebook(), 5, 1);
        let mut s = ArrivalSource::from_stream(g.stream_with_utilization(50, 0.6));
        let t0 = s.peek_arrival();
        assert_eq!(s.peek_arrival(), t0);
        assert_eq!(s.pop().map(|j| j.arrival), t0);
        assert_eq!(s.total_jobs(), 5);
    }
}
