//! [`ArrivalSource`]: one peek/pop surface over materialized traces and
//! lazy streams.
//!
//! Both simulation drivers consume job arrivals through this type
//! instead of pre-loading every arrival into their event queues. The
//! contract that keeps results bit-identical to the historical
//! pre-loaded path: arrivals are delivered in id order, and a driver
//! merging this source with its event queue must deliver an arrival
//! *before* any queued event of the same timestamp — exactly the order
//! the old code produced, where arrivals were pushed first and thus held
//! the lowest FIFO sequence numbers at every tied instant.

use hopper_sim::SimTime;

use crate::generator::TraceStream;
use crate::trace::{Trace, TraceJob};

/// A source of job arrivals: either a borrowed, fully materialized
/// [`Trace`] (jobs are cloned out one at a time) or a lazy
/// [`TraceStream`] (jobs are generated on demand — O(1) memory however
/// many jobs the run has).
#[derive(Debug)]
pub enum ArrivalSource<'a> {
    /// Jobs come from a materialized trace, in order.
    Materialized {
        /// The backing trace.
        trace: &'a Trace,
        /// Index of the next job to deliver.
        next: usize,
    },
    /// Jobs are generated lazily from a seeded stream.
    Streaming {
        /// The backing stream (boxed: a stream carries its generator and
        /// RNG state, many times the size of the borrowed variant).
        stream: Box<TraceStream>,
        /// One-job lookahead so arrival times can be peeked.
        peeked: Option<TraceJob>,
    },
}

impl<'a> ArrivalSource<'a> {
    /// Source over a materialized trace.
    pub fn from_trace(trace: &'a Trace) -> Self {
        ArrivalSource::Materialized { trace, next: 0 }
    }

    /// Source over a lazy stream.
    pub fn from_stream(stream: TraceStream) -> ArrivalSource<'static> {
        ArrivalSource::Streaming {
            stream: Box::new(stream),
            peeked: None,
        }
    }

    /// Total jobs this source will deliver over its lifetime (delivered
    /// and undelivered) — what drivers size their per-job id maps by.
    pub fn total_jobs(&self) -> usize {
        match self {
            ArrivalSource::Materialized { trace, .. } => trace.len(),
            ArrivalSource::Streaming { stream, .. } => stream.total_jobs(),
        }
    }

    /// Arrival time of the next undelivered job, if any.
    pub fn peek_arrival(&mut self) -> Option<SimTime> {
        match self {
            ArrivalSource::Materialized { trace, next } => trace.jobs.get(*next).map(|j| j.arrival),
            ArrivalSource::Streaming { stream, peeked } => {
                if peeked.is_none() {
                    *peeked = stream.next();
                }
                peeked.as_ref().map(|j| j.arrival)
            }
        }
    }

    /// Deliver the next job (id order; arrivals nondecreasing).
    pub fn pop(&mut self) -> Option<TraceJob> {
        match self {
            ArrivalSource::Materialized { trace, next } => {
                let job = trace.jobs.get(*next)?.clone();
                *next += 1;
                Some(job)
            }
            ArrivalSource::Streaming { stream, peeked } => peeked.take().or_else(|| stream.next()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceGenerator, WorkloadProfile};

    #[test]
    fn both_sources_deliver_the_same_jobs() {
        let g = TraceGenerator::new(WorkloadProfile::facebook(), 30, 9);
        let trace = g.generate_with_utilization(100, 0.7);
        let mut mat = ArrivalSource::from_trace(&trace);
        let mut str = ArrivalSource::from_stream(g.stream_with_utilization(100, 0.7));
        assert_eq!(mat.total_jobs(), 30);
        assert_eq!(str.total_jobs(), 30);
        loop {
            assert_eq!(mat.peek_arrival(), str.peek_arrival());
            let (a, b) = (mat.pop(), str.pop());
            match (&a, &b) {
                (None, None) => break,
                (Some(x), Some(y)) => {
                    assert_eq!(x.id, y.id);
                    assert_eq!(x.arrival, y.arrival);
                    assert_eq!(x.total_work_ms(), y.total_work_ms());
                }
                _ => panic!("sources disagree on length"),
            }
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let g = TraceGenerator::new(WorkloadProfile::facebook(), 5, 1);
        let mut s = ArrivalSource::from_stream(g.stream_with_utilization(50, 0.6));
        let t0 = s.peek_arrival();
        assert_eq!(s.peek_arrival(), t0);
        assert_eq!(s.pop().map(|j| j.arrival), t0);
        assert_eq!(s.total_jobs(), 5);
    }
}
