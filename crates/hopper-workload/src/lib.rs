//! Workload synthesis for the Hopper reproduction.
//!
//! The paper evaluates on proprietary Facebook-Hadoop and Bing-Dryad traces
//! (Oct–Dec 2012). This crate provides the synthetic equivalent: heavy-tailed
//! distributions ([`dist`]), a trace data model ([`trace`]), published-
//! statistics workload profiles ([`profile`]), and a deterministic generator
//! ([`generator`]) that calibrates Poisson arrivals to a target average
//! cluster utilization (the 60–90% sweep of the paper's Figure 6).

pub mod dist;
pub mod generator;
pub mod profile;
pub mod source;
pub mod trace;

pub use dist::Dist;
pub use generator::{TraceGenerator, TraceStream};
pub use profile::WorkloadProfile;
pub use source::ArrivalSource;
pub use trace::{single_phase_job, CommPattern, JobId, Trace, TraceJob, TracePhase};
