//! Workload synthesis for the Hopper reproduction.
//!
//! The paper evaluates on proprietary Facebook-Hadoop and Bing-Dryad traces
//! (Oct–Dec 2012). This crate provides the synthetic equivalent: heavy-tailed
//! distributions ([`dist`]), a trace data model ([`trace`]), published-
//! statistics workload profiles ([`profile`]), and a deterministic generator
//! ([`generator`]) that calibrates Poisson arrivals to a target average
//! cluster utilization (the 60–90% sweep of the paper's Figure 6).
//! Arrivals can be modulated by a non-stationary [`rate::RateProfile`]
//! (diurnal curves, seeded bursts) whose time-average is pinned to 1 so
//! the calibrated target stays honest, and external traces replay from
//! CSV through [`replay`] into the same [`source::ArrivalSource`] seam
//! both engines consume.

pub mod dist;
pub mod generator;
pub mod profile;
pub mod rate;
pub mod replay;
pub mod source;
pub mod trace;

pub use dist::Dist;
pub use generator::{TraceGenerator, TraceStream};
pub use profile::WorkloadProfile;
pub use rate::{RateClock, RateProfile};
pub use replay::{export_replay_csv, parse_replay_csv, ReplayError, REPLAY_HEADER};
pub use source::ArrivalSource;
pub use trace::{single_phase_job, CommPattern, JobId, Trace, TraceJob, TracePhase};
