//! Slot allocation across jobs — Pseudocode 1 of the paper, extended with
//! ε-fairness (§4.3) and DAG priorities (§4.2).
//!
//! Given the set of active jobs (each with remaining tasks, β, α, and
//! fairness weight) and the cluster capacity `S`, [`allocate`] returns an
//! integral number of slots per job such that:
//!
//! 1. every job first receives its ε-fair floor
//!    `min((1−ε)·S·w_i/Σw, ⌈V_i⌉)` — fairness never forces slots beyond a
//!    job's desired allocation;
//! 2. if `ΣV > S` (capacity constrained — **Guideline 2**), remaining slots
//!    go to jobs in ascending `max(V, V′)` order, each filled up to its
//!    virtual size;
//! 3. otherwise (**Guideline 3**) remaining slots are split proportionally
//!    to virtual sizes, capped at `max_useful_factor × T_rem` per job, with
//!    overflow redistributed.

use crate::vsize::{priority_key, virtual_size};

/// Per-job input to the allocator.
#[derive(Debug, Clone, PartialEq)]
pub struct JobDemand {
    /// Caller-chosen identifier, echoed back in [`Allocation::job`].
    pub job: usize,
    /// Remaining (unfinished) tasks of the job's current phase(s): `T_i(t)`.
    pub remaining_tasks: f64,
    /// Remaining tasks of the downstream phase whose transfers are pending,
    /// `T'_i(t)`; 0 when the job has no downstream phase.
    pub downstream_tasks: f64,
    /// DAG communication weight α (1.0 for single-phase jobs).
    pub alpha: f64,
    /// Pareto tail index of the job's task durations.
    pub beta: f64,
    /// Fairness weight (1.0 = equal share).
    pub weight: f64,
}

impl JobDemand {
    /// Convenience constructor for a single-phase job with weight 1.
    pub fn simple(job: usize, remaining_tasks: f64, beta: f64) -> Self {
        JobDemand {
            job,
            remaining_tasks,
            downstream_tasks: 0.0,
            alpha: 1.0,
            beta,
            weight: 1.0,
        }
    }

    /// This job's virtual size `V_i(t)`.
    pub fn virtual_size(&self) -> f64 {
        virtual_size(self.remaining_tasks, self.beta, self.alpha)
    }

    /// Guideline-2 ordering key `max{V, V'}` (§4.2).
    pub fn priority(&self) -> f64 {
        priority_key(
            self.virtual_size(),
            virtual_size(self.downstream_tasks, self.beta, self.alpha),
        )
    }
}

/// Which regime Pseudocode 1 used for a job (reported for diagnostics; the
/// paper notes e.g. "53% of jobs allocated using Guideline 2" at 80% util).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// Capacity constrained: SRPT-by-virtual-size fill (Guideline 2).
    Constrained,
    /// Capacity rich: proportional sharing (Guideline 3).
    Proportional,
}

/// Allocator knobs.
#[derive(Debug, Clone)]
pub struct AllocConfig {
    /// Fairness allowance ε ∈ \[0, 1\]: every job is guaranteed at least
    /// `(1−ε)` of its fair share (§4.3). `1.0` disables the floor entirely;
    /// `0.0` is perfectly fair scheduling. The paper's default is 0.1.
    pub fairness_eps: f64,
    /// Cap on useful slots per job, as a multiple of remaining tasks.
    /// Beyond ~3× there is nothing left to speculate on (Figure 3's x-axis
    /// tops out at 2.5×); overflow is redistributed.
    pub max_useful_factor: f64,
}

impl Default for AllocConfig {
    fn default() -> Self {
        AllocConfig {
            fairness_eps: 0.1,
            max_useful_factor: 3.0,
        }
    }
}

impl AllocConfig {
    /// Config with fairness disabled (pure Guidelines 2/3).
    pub fn no_fairness() -> Self {
        AllocConfig {
            fairness_eps: 1.0,
            ..Default::default()
        }
    }
}

/// Result row: slots granted to one job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Allocation {
    /// The caller's job identifier.
    pub job: usize,
    /// Integral slots granted.
    pub slots: usize,
    /// Regime the cluster was in when this allocation was computed.
    pub regime: Regime,
}

/// Allocate `capacity` slots among `demands` per Pseudocode 1 + ε-fairness.
///
/// Returns one [`Allocation`] per demand, in the same order as the input.
/// The total never exceeds `capacity`; it can be less only when every job
/// is saturated at its useful cap (lightly loaded cluster).
///
/// The two regimes of Pseudocode 1, on the paper's own numbers (§4.1:
/// β = 1.5 gives every job a virtual size of `2/β = 4/3` slots per
/// remaining task):
///
/// ```
/// use hopper_core::{allocate, AllocConfig, JobDemand, Regime};
///
/// let cfg = AllocConfig::no_fairness();
/// // ΣV = (30 + 60)·4/3 = 120 > 100 slots ⇒ capacity constrained
/// // (Guideline 2): the small job fills to ⌈its V⌉ first, the big job
/// // takes what remains.
/// let demands = [JobDemand::simple(0, 30.0, 1.5), JobDemand::simple(1, 60.0, 1.5)];
/// let a = allocate(&demands, 100, &cfg);
/// assert_eq!(a[0].regime, Regime::Constrained);
/// assert_eq!(a[0].slots, 40); // ⌈30 · 4/3⌉
/// assert_eq!(a[1].slots, 60); // the remainder
///
/// // ΣV = 120 ≤ 200 slots ⇒ capacity rich (Guideline 3): slots divide
/// // proportionally to virtual sizes (1:2 here, quantized to integers).
/// let a = allocate(&demands, 200, &cfg);
/// assert_eq!(a[0].regime, Regime::Proportional);
/// assert_eq!((a[0].slots, a[1].slots), (67, 133));
/// ```
pub fn allocate(demands: &[JobDemand], capacity: usize, cfg: &AllocConfig) -> Vec<Allocation> {
    assert!(
        (0.0..=1.0).contains(&cfg.fairness_eps),
        "fairness_eps must be within [0,1]"
    );
    let n = demands.len();
    if n == 0 {
        return vec![];
    }
    let v: Vec<f64> = demands.iter().map(|d| d.virtual_size()).collect();
    let total_virtual: f64 = v.iter().sum();
    let regime = if total_virtual > capacity as f64 {
        Regime::Constrained
    } else {
        Regime::Proportional
    };

    let cap: Vec<usize> = demands.iter().map(|d| useful_cap(d, cfg)).collect();
    // ε-fair floors. Weighted fair share of job i is S·w_i/Σw; the floor is
    // (1−ε) of that, but never more than the job's own desired allocation
    // ⌈V⌉ (fairness should not force wasted slots) nor its useful cap.
    let total_weight: f64 = demands.iter().map(|d| d.weight.max(0.0)).sum();
    let mut floors = vec![0usize; n];
    if cfg.fairness_eps < 1.0 && total_weight > 0.0 {
        for (i, d) in demands.iter().enumerate() {
            floors[i] = fair_floor(d.weight, v[i], cap[i], capacity, total_weight, cfg);
        }
    }
    // Floors must never oversubscribe (possible only via rounding).
    let floor_sum: usize = floors.iter().sum();
    let floor_sum = apply_floor_trim(&mut floors, floor_sum, capacity);

    let spare = capacity - floor_sum;
    let extra = match regime {
        Regime::Constrained => {
            let mut order: Vec<usize> = (0..n).collect();
            // Total order: NaN-safe key comparison with a deterministic
            // job-id tie-break (see [`cmp_priority`]) — equal-priority jobs
            // can never flip across platforms or refactors.
            let prio: Vec<f64> = demands.iter().map(|d| d.priority()).collect();
            order.sort_by(|&a, &b| {
                cmp_priority((prio[a], demands[a].job), (prio[b], demands[b].job))
            });
            let want: Vec<usize> = (0..n).map(|i| want_slots(v[i], cap[i])).collect();
            fill_srpt_ordered(&order, &want, &floors, spare)
        }
        Regime::Proportional => {
            let headroom: Vec<usize> = (0..n).map(|i| cap[i].saturating_sub(floors[i])).collect();
            fill_proportional(&v, &headroom, spare, total_virtual)
        }
    };

    demands
        .iter()
        .enumerate()
        .map(|(i, d)| Allocation {
            job: d.job,
            slots: floors[i] + extra[i],
            regime,
        })
        .collect()
}

/// Total-order comparator for Guideline-2 fill position: ascending
/// priority key (`f64::total_cmp`, so NaN and signed zeros order
/// deterministically instead of collapsing to `Equal`), then ascending
/// job id. Both the eager [`allocate`] and the incremental allocator
/// ([`crate::IncrementalAlloc`]) order by exactly this function — the
/// single definition is what makes their fills bit-identical.
pub fn cmp_priority(a: (f64, usize), b: (f64, usize)) -> std::cmp::Ordering {
    a.0.total_cmp(&b.0).then(a.1.cmp(&b.1))
}

/// Hard cap on slots a job can use productively.
pub(crate) fn useful_cap(d: &JobDemand, cfg: &AllocConfig) -> usize {
    (d.remaining_tasks * cfg.max_useful_factor).ceil() as usize
}

/// Desired slots under Guideline 2: fill up to ⌈V(t)⌉ — Pseudocode 2's
/// acceptance rule is the strict float comparison `occupied < V`, so a
/// job with V = 1.25 may hold 2 slots; flooring here would deny the last
/// stragglers of a phase their speculative slot exactly when it matters
/// most. The useful cap only binds at extreme β·α values.
pub(crate) fn want_slots(v: f64, cap: usize) -> usize {
    (v.ceil() as usize).min(cap)
}

/// The ε-fair floor of one job: `(1−ε)` of its weighted fair share,
/// never beyond its own desired allocation ⌈V⌉ or its useful cap.
pub(crate) fn fair_floor(
    weight: f64,
    v: f64,
    cap: usize,
    capacity: usize,
    total_weight: f64,
    cfg: &AllocConfig,
) -> usize {
    fair_share_floor(weight, capacity, total_weight, cfg)
        .min(v.ceil() as usize)
        .min(cap)
}

/// The share component of [`fair_floor`]: `⌊(1−ε)·S·w/Σw⌋`, before the
/// `⌈V⌉`/cap clamps. Depends only on the weight set, capacity, and ε —
/// not on β or task counts — so the incremental allocator caches it per
/// entry across β-only refreshes.
pub(crate) fn fair_share_floor(
    weight: f64,
    capacity: usize,
    total_weight: f64,
    cfg: &AllocConfig,
) -> usize {
    let fair = capacity as f64 * weight.max(0.0) / total_weight;
    ((1.0 - cfg.fairness_eps) * fair).floor() as usize
}

/// Trim floors down to `capacity` (largest floor first, input index as
/// the deterministic tie-break); returns the trimmed sum. Floor rounding
/// makes oversubscription impossible in practice, but the guard is kept
/// so the fill below can never underflow.
pub(crate) fn apply_floor_trim(
    floors: &mut [usize],
    mut floor_sum: usize,
    capacity: usize,
) -> usize {
    while floor_sum > capacity {
        let i = (0..floors.len()).max_by_key(|&i| (floors[i], i)).unwrap();
        floors[i] -= 1;
        floor_sum -= 1;
    }
    floor_sum
}

/// Guideline 2: walk `order` (ascending `max(V, V')` positions into the
/// parallel `want`/`floors` arrays), filling each job up to its desired
/// slots on top of its floor until the spare pool runs out.
pub(crate) fn fill_srpt_ordered(
    order: &[usize],
    want: &[usize],
    floors: &[usize],
    mut spare: usize,
) -> Vec<usize> {
    let mut extra = vec![0usize; order.len()];
    for &i in order {
        if spare == 0 {
            break;
        }
        let grant = want[i].saturating_sub(floors[i]).min(spare);
        extra[i] = grant;
        spare -= grant;
    }
    extra
}

/// Guideline 3: split spare slots proportionally to virtual sizes, capped
/// at the useful headroom, redistributing overflow until fixed point.
/// `v` and `headroom` are parallel arrays in the caller's input order.
pub(crate) fn fill_proportional(
    v: &[f64],
    headroom: &[usize],
    spare: usize,
    total_virtual: f64,
) -> Vec<usize> {
    let n = v.len();
    let mut extra = vec![0usize; n];
    if total_virtual <= 0.0 || spare == 0 {
        return extra;
    }
    let mut remaining = spare;
    let mut active: Vec<usize> = (0..n).filter(|&i| headroom[i] > 0).collect();
    // Iteratively hand out proportional shares; jobs hitting their cap drop
    // out and their share is re-split. Terminates: each round either
    // assigns everything or removes ≥1 job.
    while remaining > 0 && !active.is_empty() {
        let v_active: f64 = active.iter().map(|&i| v[i]).sum();
        if v_active <= 0.0 {
            break;
        }
        // Real-valued proportional targets for this round.
        let mut granted_this_round = 0usize;
        let mut fracs: Vec<(f64, usize)> = Vec::with_capacity(active.len());
        let mut round_grant = vec![0usize; n];
        for &i in &active {
            let share = remaining as f64 * v[i] / v_active;
            let whole = share.floor() as usize;
            let capped = whole.min(headroom[i] - extra[i]);
            round_grant[i] = capped;
            granted_this_round += capped;
            if capped == whole {
                fracs.push((share - whole as f64, i));
            }
        }
        // Largest-remainder distribution of the leftover integer slots
        // (descending fraction, ascending input index on exact ties).
        let mut leftover = remaining - granted_this_round;
        fracs.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        for &(_, i) in &fracs {
            if leftover == 0 {
                break;
            }
            if extra[i] + round_grant[i] < headroom[i] {
                round_grant[i] += 1;
                leftover -= 1;
            }
        }
        let assigned: usize = round_grant.iter().sum();
        for i in 0..n {
            extra[i] += round_grant[i];
        }
        remaining -= assigned;
        let before = active.len();
        active.retain(|&i| extra[i] < headroom[i]);
        if assigned == 0 && active.len() == before {
            break; // nothing assignable (all capped)
        }
    }
    extra
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total(allocs: &[Allocation]) -> usize {
        allocs.iter().map(|a| a.slots).sum()
    }

    #[test]
    fn empty_input() {
        assert!(allocate(&[], 100, &AllocConfig::default()).is_empty());
    }

    #[test]
    fn motivating_example_regime_and_split() {
        // §3: jobs A (4 tasks) and B (5 tasks) on 7 slots. With β = 1.6
        // (2/β = 1.25): V_A = 5, V_B = 6.25, ΣV = 11.25 > 7 ⇒ Guideline 2.
        // A (smaller) gets its full virtual size 5, B the remaining 2 —
        // exactly Figure 2's opening allocation.
        let demands = vec![
            JobDemand::simple(0, 4.0, 1.6),
            JobDemand::simple(1, 5.0, 1.6),
        ];
        let allocs = allocate(&demands, 7, &AllocConfig::no_fairness());
        assert_eq!(allocs[0].regime, Regime::Constrained);
        assert_eq!(allocs[0].slots, 5);
        assert_eq!(allocs[1].slots, 2);
    }

    #[test]
    fn capacity_never_exceeded() {
        let demands: Vec<JobDemand> = (0..10)
            .map(|i| JobDemand::simple(i, (i as f64 + 1.0) * 7.0, 1.4))
            .collect();
        for cap in [0, 1, 5, 37, 100, 1000] {
            let allocs = allocate(&demands, cap, &AllocConfig::default());
            assert!(
                total(&allocs) <= cap,
                "cap {cap} exceeded: {}",
                total(&allocs)
            );
        }
    }

    #[test]
    fn constrained_regime_is_srpt_by_virtual_size() {
        // Small job must be fully satisfied before the big one gets extras.
        let demands = vec![
            JobDemand::simple(7, 100.0, 1.5), // V ≈ 133
            JobDemand::simple(3, 10.0, 1.5),  // V ≈ 13.3
        ];
        let allocs = allocate(&demands, 50, &AllocConfig::no_fairness());
        assert_eq!(allocs[0].regime, Regime::Constrained);
        // job 3 (small) gets ⌈13.3⌉ = 14 (the strict `occupied < V` rule
        // of Pseudocode 2), job 7 the rest.
        assert_eq!(allocs[1].slots, 14);
        assert_eq!(allocs[0].slots, 36);
    }

    #[test]
    fn proportional_regime_shares_by_virtual_size() {
        // Two jobs, plenty of capacity: allocation proportional to V.
        let demands = vec![
            JobDemand::simple(0, 10.0, 1.6), // V = 12.5
            JobDemand::simple(1, 30.0, 1.6), // V = 37.5
        ];
        let allocs = allocate(&demands, 100, &AllocConfig::no_fairness());
        assert_eq!(allocs[0].regime, Regime::Proportional);
        // Proportional shares are 25 and 75, but the small job caps at
        // 3× remaining = 30; overflow goes to the big one (cap 90).
        assert_eq!(allocs[0].slots, 25);
        assert!(allocs[1].slots >= 70, "big job got {}", allocs[1].slots);
        assert!(total(&allocs) <= 100);
    }

    #[test]
    fn proportional_caps_at_useful_factor() {
        let demands = vec![JobDemand::simple(0, 4.0, 1.5)];
        let allocs = allocate(&demands, 1000, &AllocConfig::no_fairness());
        assert_eq!(allocs[0].slots, 12, "3× remaining tasks");
    }

    #[test]
    fn fairness_floor_guarantees_share() {
        // 10 jobs, one tiny and nine huge; with ε = 0.1 every job gets at
        // least ⌊0.9 × S/N⌋ slots (unless its own demand is smaller).
        let mut demands: Vec<JobDemand> =
            (0..9).map(|i| JobDemand::simple(i, 500.0, 1.4)).collect();
        demands.push(JobDemand::simple(9, 400.0, 1.4));
        let cap = 200;
        let cfg = AllocConfig {
            fairness_eps: 0.1,
            ..Default::default()
        };
        let allocs = allocate(&demands, cap, &cfg);
        let floor = ((1.0 - 0.1) * cap as f64 / 10.0).floor() as usize;
        for a in &allocs {
            assert!(
                a.slots >= floor,
                "job {} below ε-fair floor: {}",
                a.job,
                a.slots
            );
        }
        assert!(total(&allocs) <= cap);
    }

    #[test]
    fn fairness_never_forces_wasted_slots() {
        // A 1-task job's fair share is 50, but it can use at most 3 slots.
        let demands = vec![
            JobDemand::simple(0, 1.0, 1.5),
            JobDemand::simple(1, 1000.0, 1.5),
        ];
        let cfg = AllocConfig {
            fairness_eps: 0.0,
            ..Default::default()
        };
        let allocs = allocate(&demands, 100, &cfg);
        assert!(allocs[0].slots <= 3);
        // The big job receives what the small one cannot use.
        assert!(allocs[1].slots >= 95);
    }

    #[test]
    fn eps_zero_is_perfectly_fair_between_equal_jobs() {
        let demands = vec![
            JobDemand::simple(0, 100.0, 1.5),
            JobDemand::simple(1, 100.0, 1.5),
        ];
        let cfg = AllocConfig {
            fairness_eps: 0.0,
            ..Default::default()
        };
        let allocs = allocate(&demands, 80, &cfg);
        assert_eq!(allocs[0].slots, 40);
        assert_eq!(allocs[1].slots, 40);
    }

    #[test]
    fn weights_shift_fair_floors() {
        let mut a = JobDemand::simple(0, 1000.0, 1.5);
        let mut b = JobDemand::simple(1, 1000.0, 1.5);
        a.weight = 3.0;
        b.weight = 1.0;
        let cfg = AllocConfig {
            fairness_eps: 0.0,
            ..Default::default()
        };
        let allocs = allocate(&[a, b], 100, &cfg);
        assert_eq!(allocs[0].slots, 75);
        assert_eq!(allocs[1].slots, 25);
    }

    #[test]
    fn dag_priority_uses_downstream_size() {
        // Job 0: few current tasks but a huge downstream phase → its
        // priority key is large, so job 1 (moderate both) wins the SRPT fill.
        let d0 = JobDemand {
            job: 0,
            remaining_tasks: 5.0,
            downstream_tasks: 500.0,
            alpha: 1.0,
            beta: 1.5,
            weight: 1.0,
        };
        let d1 = JobDemand {
            job: 1,
            remaining_tasks: 50.0,
            downstream_tasks: 20.0,
            alpha: 1.0,
            beta: 1.5,
            weight: 1.0,
        };
        // ΣV must exceed capacity for Guideline 2: V0 ≈ 6.7, V1 ≈ 66.7.
        let allocs = allocate(&[d0.clone(), d1.clone()], 40, &AllocConfig::no_fairness());
        assert_eq!(allocs[0].regime, Regime::Constrained);
        // Job 1 has smaller max(V, V') (66.7 vs 666.7) → filled first.
        assert!(allocs[1].slots > allocs[0].slots);
    }

    #[test]
    fn alpha_scales_allocation() {
        // Same remaining tasks; the shuffle-heavy job (α = 4) has twice the
        // virtual size and receives twice the proportional share.
        let mut heavy = JobDemand::simple(0, 20.0, 1.6);
        heavy.alpha = 4.0;
        let light = JobDemand::simple(1, 20.0, 1.6);
        let allocs = allocate(&[heavy, light], 75, &AllocConfig::no_fairness());
        assert_eq!(allocs[0].regime, Regime::Proportional);
        let ratio = allocs[0].slots as f64 / allocs[1].slots as f64;
        assert!((ratio - 2.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn zero_capacity() {
        let demands = vec![JobDemand::simple(0, 10.0, 1.5)];
        let allocs = allocate(&demands, 0, &AllocConfig::default());
        assert_eq!(allocs[0].slots, 0);
    }

    #[test]
    fn single_job_takes_what_it_can_use() {
        let demands = vec![JobDemand::simple(0, 100.0, 1.6)];
        // Constrained: capacity below V = 125.
        let a = allocate(&demands, 80, &AllocConfig::no_fairness());
        assert_eq!(a[0].slots, 80);
        // Rich: gets proportional = all, capped at 300.
        let b = allocate(&demands, 1000, &AllocConfig::no_fairness());
        assert_eq!(b[0].slots, 300);
    }

    #[test]
    fn output_order_matches_input_order() {
        let demands = vec![
            JobDemand::simple(42, 50.0, 1.5),
            JobDemand::simple(7, 10.0, 1.5),
            JobDemand::simple(99, 30.0, 1.5),
        ];
        let allocs = allocate(&demands, 60, &AllocConfig::default());
        assert_eq!(allocs[0].job, 42);
        assert_eq!(allocs[1].job, 7);
        assert_eq!(allocs[2].job, 99);
    }

    #[test]
    fn done_jobs_get_nothing_beyond_floor_zero() {
        let demands = vec![
            JobDemand::simple(0, 0.0, 1.5),
            JobDemand::simple(1, 10.0, 1.5),
        ];
        let allocs = allocate(&demands, 50, &AllocConfig::no_fairness());
        assert_eq!(allocs[0].slots, 0);
        assert!(allocs[1].slots > 0);
    }
}
