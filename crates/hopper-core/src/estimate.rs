//! Online estimation of the workload parameters Hopper depends on.
//!
//! - **β** (Pareto tail index of task durations): learned continuously from
//!   completed task copies (§7.2: "we continually fit the parameter β of
//!   task durations based on the completed tasks (including stragglers);
//!   the error in β's estimate falls to ≤ 5% after just 6% of the jobs").
//!   [`BetaEstimator`] keeps a sliding window of duration *multipliers*
//!   (observed duration over nominal work — the same normalization
//!   production systems get from input-size-based duration predictors
//!   \[16\]) and applies the standard Pareto maximum-likelihood estimator.
//!
//! - **α** (per-job DAG communication weight): predicted from recurring
//!   jobs (§6.3: "we predict intermediate data sizes based on similar jobs
//!   in the past", reporting 92% average accuracy). [`AlphaEstimator`]
//!   learns each template's intermediate output per task and serves
//!   predictions for newly-arrived jobs of the same template.

use std::collections::HashMap;
use std::collections::VecDeque;

/// Online Pareto tail-index (β) estimator over a sliding window.
#[derive(Debug, Clone)]
pub struct BetaEstimator {
    window: VecDeque<f64>,
    capacity: usize,
    min_samples: usize,
    prior: f64,
    total_observed: u64,
    /// Memoized MLE of the current window; invalidated by `observe`. The
    /// estimate is a pure function of the window, so serving the cached
    /// value between observations is exact — and it turns the scheduler's
    /// per-job, per-dispatch β reads from O(window) `ln()` sweeps into
    /// O(1) loads (the single hottest scalar read in both drivers).
    cached: std::cell::Cell<Option<f64>>,
}

impl BetaEstimator {
    /// `prior` is returned until `min_samples` observations accumulate;
    /// `capacity` bounds the sliding window (older samples are dropped so
    /// the estimate tracks time-varying straggler behaviour).
    pub fn new(prior: f64, capacity: usize, min_samples: usize) -> Self {
        assert!(prior > 1.0, "prior β must be > 1");
        assert!(capacity >= min_samples && min_samples >= 2);
        BetaEstimator {
            window: VecDeque::with_capacity(capacity),
            capacity,
            min_samples,
            prior,
            total_observed: 0,
            cached: std::cell::Cell::new(None),
        }
    }

    /// Default configuration: prior β = 1.5 (mid-range of production
    /// traces), window of 2000 samples, estimates after 20.
    pub fn with_prior(prior: f64) -> Self {
        Self::new(prior, 2000, 20)
    }

    /// Record one completed copy's duration multiplier
    /// (`observed duration / nominal work`; > 0).
    pub fn observe(&mut self, multiplier: f64) {
        if !(multiplier.is_finite() && multiplier > 0.0) {
            return; // defensive: ignore garbage observations
        }
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(multiplier);
        self.total_observed += 1;
        self.cached.set(None);
    }

    /// Number of observations ever made.
    pub fn observations(&self) -> u64 {
        self.total_observed
    }

    /// Current β estimate.
    ///
    /// MLE for Pareto: with x_min taken as the window minimum,
    /// `β̂ = n / Σ ln(x_i / x_min)`, clamped into (1, 2] ∪ … — we clamp to
    /// `[1.05, 4.0]` so downstream math (2/β, mean factors) stays sane even
    /// on degenerate windows.
    pub fn beta(&self) -> f64 {
        if let Some(v) = self.cached.get() {
            return v;
        }
        let v = self.compute_beta();
        self.cached.set(Some(v));
        v
    }

    /// The full-window MLE (memoized by [`BetaEstimator::beta`]).
    fn compute_beta(&self) -> f64 {
        if self.window.len() < self.min_samples {
            return self.prior;
        }
        let x_min = self.window.iter().copied().fold(f64::INFINITY, f64::min);
        if !(x_min.is_finite() && x_min > 0.0) {
            return self.prior;
        }
        let log_sum: f64 = self.window.iter().map(|x| (x / x_min).ln()).sum();
        if log_sum <= 0.0 {
            return self.prior; // all samples identical: no tail information
        }
        let n = self.window.len() as f64;
        // The plain MLE is biased by the x_min plug-in; the standard
        // small-sample correction is (n-2)/n · n/Σln = (n-2)/Σln.
        let beta = (n - 2.0) / log_sum;
        beta.clamp(1.05, 4.0)
    }
}

/// Per-template α (intermediate-data) predictor.
///
/// A job's α is the ratio of remaining downstream network-transfer work to
/// remaining upstream compute work (§4.2). The part that is *unknown*
/// upfront is the intermediate output volume; this estimator learns the
/// per-task output (MB) of each recurring template from completed phases
/// and predicts it for new jobs, exactly the §6.3 strategy.
#[derive(Debug, Clone, Default)]
pub struct AlphaEstimator {
    /// Template → (sum of observed per-task output MB, count).
    history: HashMap<u32, (f64, u64)>,
    /// Running global mean as a cold-start fallback.
    global: (f64, u64),
    /// Accuracy tracking: Σ(1 − relative error), count.
    accuracy: (f64, u64),
}

impl AlphaEstimator {
    /// Fresh estimator with no history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an observed per-task intermediate output (MB) for `template`
    /// (or `None` for a one-off job, which still feeds the global mean).
    pub fn observe(&mut self, template: Option<u32>, output_mb_per_task: f64) {
        if !(output_mb_per_task.is_finite() && output_mb_per_task >= 0.0) {
            return;
        }
        if let Some(t) = template {
            let e = self.history.entry(t).or_insert((0.0, 0));
            e.0 += output_mb_per_task;
            e.1 += 1;
        }
        self.global.0 += output_mb_per_task;
        self.global.1 += 1;
    }

    /// Predict per-task output MB for a job of `template`; `None` if there
    /// is no history at all yet.
    pub fn predict(&self, template: Option<u32>) -> Option<f64> {
        if let Some(t) = template {
            if let Some(&(sum, n)) = self.history.get(&t) {
                if n > 0 {
                    return Some(sum / n as f64);
                }
            }
        }
        (self.global.1 > 0).then(|| self.global.0 / self.global.1 as f64)
    }

    /// Score a resolved prediction against the actual value (drives the
    /// "92% accuracy on average" statistic of §6.3 / §7.2).
    pub fn record_outcome(&mut self, predicted: f64, actual: f64) {
        if actual <= 0.0 || !predicted.is_finite() {
            return;
        }
        let rel_err = ((predicted - actual).abs() / actual).min(1.0);
        self.accuracy.0 += 1.0 - rel_err;
        self.accuracy.1 += 1;
    }

    /// Mean prediction accuracy in \[0, 1\] (`None` before any outcome).
    pub fn accuracy(&self) -> Option<f64> {
        (self.accuracy.1 > 0).then(|| self.accuracy.0 / self.accuracy.1 as f64)
    }

    /// Number of templates with history.
    pub fn templates_learned(&self) -> usize {
        self.history.len()
    }
}

/// Compute α from its ingredients (pure helper shared by both drivers).
///
/// `remaining_transfer_ms` is the time to move the job's pending
/// intermediate data at the given per-slot bandwidth; `remaining_compute_ms`
/// is the nominal compute remaining in the current (upstream) phase. The
/// result is clamped to keep `√α` scaling within a sane band.
pub fn alpha_from_work(remaining_transfer_ms: f64, remaining_compute_ms: f64) -> f64 {
    if remaining_compute_ms <= 0.0 {
        return 1.0;
    }
    (remaining_transfer_ms / remaining_compute_ms).clamp(0.05, 20.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopper_sim::rng_from_seed;
    use rand::Rng;

    /// Draw Pareto(β, x_min=1) samples and check the estimator recovers β.
    fn pareto_recovery(beta_true: f64) -> f64 {
        let mut rng = rng_from_seed(99);
        let mut est = BetaEstimator::new(1.5, 4000, 20);
        for _ in 0..4000 {
            let u: f64 = 1.0 - rng.gen::<f64>();
            est.observe(1.0 / u.powf(1.0 / beta_true));
        }
        est.beta()
    }

    #[test]
    fn beta_mle_recovers_shape() {
        for beta in [1.2, 1.5, 1.8] {
            let hat = pareto_recovery(beta);
            assert!((hat - beta).abs() / beta < 0.08, "β={beta} estimated {hat}");
        }
    }

    #[test]
    fn beta_mle_recovery_is_scale_invariant() {
        // The MLE plugs in the window minimum as x_min, so the estimate
        // must not depend on the multiplier scale (nominal-work units).
        for scale in [0.25, 1.0, 7.5] {
            let mut rng = rng_from_seed(42);
            let mut est = BetaEstimator::new(1.5, 4000, 20);
            let beta_true = 1.4;
            for _ in 0..4000 {
                let u: f64 = 1.0 - rng.gen::<f64>();
                est.observe(scale / u.powf(1.0 / beta_true));
            }
            let hat = est.beta();
            assert!(
                (hat - beta_true).abs() / beta_true < 0.08,
                "scale {scale}: β={beta_true} estimated {hat}"
            );
        }
    }

    #[test]
    fn beta_mle_recovery_holds_across_seeds() {
        // Guard against a lucky-seed pass: recovery tolerance must hold
        // for several independent sample streams.
        let beta_true = 1.6;
        for seed in [7, 21, 303, 9999] {
            let mut rng = rng_from_seed(seed);
            let mut est = BetaEstimator::new(1.5, 4000, 20);
            for _ in 0..4000 {
                let u: f64 = 1.0 - rng.gen::<f64>();
                est.observe(1.0 / u.powf(1.0 / beta_true));
            }
            let hat = est.beta();
            assert!(
                (hat - beta_true).abs() / beta_true < 0.10,
                "seed {seed}: β={beta_true} estimated {hat}"
            );
        }
    }

    #[test]
    fn beta_prior_before_min_samples() {
        let mut est = BetaEstimator::with_prior(1.4);
        assert_eq!(est.beta(), 1.4);
        for _ in 0..5 {
            est.observe(1.0);
        }
        assert_eq!(est.beta(), 1.4, "still under min_samples");
    }

    #[test]
    fn beta_identical_samples_fall_back_to_prior() {
        let mut est = BetaEstimator::new(1.6, 100, 2);
        for _ in 0..50 {
            est.observe(2.0);
        }
        assert_eq!(est.beta(), 1.6);
    }

    #[test]
    fn beta_window_slides() {
        let mut est = BetaEstimator::new(1.5, 100, 2);
        // Fill with a light tail, then flood with a heavy tail; the window
        // must forget the old regime.
        let mut rng = rng_from_seed(3);
        for _ in 0..100 {
            let u: f64 = 1.0 - rng.gen::<f64>();
            est.observe(1.0 / u.powf(1.0 / 3.0)); // β = 3
        }
        let light = est.beta();
        for _ in 0..100 {
            let u: f64 = 1.0 - rng.gen::<f64>();
            est.observe(1.0 / u.powf(1.0 / 1.2)); // β = 1.2
        }
        let heavy = est.beta();
        assert!(heavy < light, "window did not adapt: {light} → {heavy}");
        assert!(heavy < 1.6, "heavy-tail estimate {heavy}");
    }

    #[test]
    fn beta_ignores_garbage() {
        let mut est = BetaEstimator::new(1.5, 100, 2);
        est.observe(f64::NAN);
        est.observe(-1.0);
        est.observe(0.0);
        assert_eq!(est.observations(), 0);
    }

    #[test]
    fn beta_clamped_to_sane_band() {
        let mut est = BetaEstimator::new(1.5, 100, 2);
        // Nearly identical samples → enormous raw MLE → clamped to 4.
        for i in 0..100 {
            est.observe(1.0 + (i as f64) * 1e-9);
        }
        assert!(est.beta() <= 4.0);
    }

    #[test]
    fn alpha_predicts_per_template() {
        let mut est = AlphaEstimator::new();
        est.observe(Some(1), 10.0);
        est.observe(Some(1), 12.0);
        est.observe(Some(2), 100.0);
        assert!((est.predict(Some(1)).unwrap() - 11.0).abs() < 1e-9);
        assert!((est.predict(Some(2)).unwrap() - 100.0).abs() < 1e-9);
        assert_eq!(est.templates_learned(), 2);
    }

    #[test]
    fn alpha_falls_back_to_global_mean() {
        let mut est = AlphaEstimator::new();
        assert_eq!(est.predict(Some(5)), None);
        est.observe(Some(1), 10.0);
        est.observe(None, 20.0);
        // Unknown template → global mean of all observations.
        assert!((est.predict(Some(5)).unwrap() - 15.0).abs() < 1e-9);
        assert!((est.predict(None).unwrap() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn alpha_accuracy_tracking() {
        let mut est = AlphaEstimator::new();
        assert_eq!(est.accuracy(), None);
        est.record_outcome(9.0, 10.0); // 10% error → 0.9
        est.record_outcome(10.0, 10.0); // exact → 1.0
        assert!((est.accuracy().unwrap() - 0.95).abs() < 1e-9);
        // Catastrophic mispredictions floor at 0 accuracy, not negative.
        est.record_outcome(1000.0, 1.0);
        assert!(est.accuracy().unwrap() > 0.6);
    }

    #[test]
    fn alpha_from_work_ratio_and_clamps() {
        assert!((alpha_from_work(500.0, 1000.0) - 0.5).abs() < 1e-12);
        assert_eq!(alpha_from_work(1.0, 0.0), 1.0);
        assert_eq!(alpha_from_work(1e9, 1.0), 20.0);
        assert_eq!(alpha_from_work(0.0, 100.0), 0.05);
    }

    #[test]
    fn alpha_from_work_degenerate_inputs_stay_in_band() {
        // Negative compute means "no upstream work left": neutral α = 1.
        assert_eq!(alpha_from_work(100.0, -5.0), 1.0);
        // Negative transfer clamps to the band floor rather than going
        // negative (√α is taken downstream).
        assert_eq!(alpha_from_work(-100.0, 50.0), 0.05);
        let a = alpha_from_work(f64::INFINITY, 1.0);
        assert!((0.05..=20.0).contains(&a));
    }
}
