//! Decentralized Hopper protocol logic — Pseudocodes 2 and 3 of the paper,
//! expressed as pure decision functions over explicit state.
//!
//! In the decentralized architecture (§5, Figure 4) schedulers push
//! *reservation requests* for their tasks to workers; a worker with a free
//! slot chooses which job to serve and asks that job's scheduler for a task
//! ("late binding"). Hopper changes three things relative to Sparrow:
//!
//! 1. the worker orders its queue by **virtual size** (SRPT per
//!    Guideline 2), not FCFS;
//! 2. a **refusal protocol** lets a fully-satisfied job decline the slot;
//!    several consecutive refusals with no unsatisfied job reported tell
//!    the worker the cluster is *not* capacity constrained, at which point
//!    it switches to Guideline 3 (virtual-size-weighted random choice);
//! 3. responses can be **non-refusable** to force placement on the
//!    smallest *unsatisfied* job discovered during the refusal round.
//!
//! Nothing here performs I/O or owns a clock; the simulation driver (or a
//! real RPC layer) supplies queue contents and delivers decisions.

use rand::Rng;

/// A reservation request parked in a worker's queue.
///
/// `virtual_size` and `remaining_tasks` are the values last *piggybacked*
/// by the scheduler (§5.3) — possibly stale, which is part of the protocol
/// being modelled.
#[derive(Debug, Clone, PartialEq)]
pub struct Reservation {
    /// Scheduler that placed the reservation.
    pub scheduler: usize,
    /// Global job identifier.
    pub job: u64,
    /// Last known virtual size of the job (see [`crate::vsize`]).
    pub virtual_size: f64,
    /// Last known remaining task count (used by the Sparrow-SRPT baseline).
    pub remaining_tasks: f64,
}

/// Whether a worker→scheduler response may be refused (Pseudocode 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseKind {
    /// The scheduler may refuse if the job is already at its desired
    /// speculation level.
    Refusable,
    /// The scheduler must take the slot (used for unsatisfied jobs after
    /// the refusal round).
    NonRefusable,
}

/// An unsatisfied job advertised inside a refusal (the refusing scheduler's
/// smallest job that still has unscheduled work).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnsatisfiedJob {
    /// Scheduler owning the job.
    pub scheduler: usize,
    /// The job.
    pub job: u64,
    /// Its virtual size at refusal time.
    pub virtual_size: f64,
}

/// What a worker decides to do with its free slot (one protocol step).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkerAction {
    /// Send a response for `job` to `scheduler`.
    Respond {
        /// Target scheduler.
        scheduler: usize,
        /// Job whose reservation is being served.
        job: u64,
        /// Refusable during the probing round, non-refusable afterwards.
        kind: ResponseKind,
    },
    /// Queue exhausted (or empty): leave the slot idle until new
    /// reservations arrive.
    Idle,
}

/// Per-free-slot episode state of the worker side of Pseudocode 3.
///
/// Create one when a slot frees, feed it refusals as they come back, and
/// ask [`FreeSlotEpisode::next_action`] for the next protocol step.
#[derive(Debug, Clone)]
pub struct FreeSlotEpisode {
    /// Schedulers already probed this episode (the paper: "the worker
    /// avoids probing the same scheduler more than once").
    probed_schedulers: Vec<usize>,
    /// Jobs already refused this episode.
    refused_jobs: Vec<u64>,
    /// Number of refusals received.
    refusal_count: usize,
    /// Threshold after which the worker concludes the system is not
    /// capacity constrained (Figure 5b studies this knob; 2–3 suffice).
    refusal_threshold: usize,
    /// Smallest-virtual-size unsatisfied job reported by any refusal.
    best_unsatisfied: Option<UnsatisfiedJob>,
    /// Responses issued so far this episode.
    responses_sent: usize,
}

impl FreeSlotEpisode {
    /// Start an episode with the given refusal threshold.
    pub fn new(refusal_threshold: usize) -> Self {
        FreeSlotEpisode {
            probed_schedulers: Vec::new(),
            refused_jobs: Vec::new(),
            refusal_count: 0,
            refusal_threshold,
            best_unsatisfied: None,
            responses_sent: 0,
        }
    }

    /// Hard bound on responses per episode: the probing round costs at
    /// most `refusal_threshold` round-trips, plus a couple of Guideline-3
    /// attempts. Without this bound a worker could walk its entire queue
    /// over the network while its free slot idles — with long queues that
    /// serialization collapses cluster throughput.
    fn max_responses(&self) -> usize {
        self.refusal_threshold + 3
    }

    /// Record a refusal from `scheduler` for `job`, with its advertised
    /// smallest unsatisfied job (if any).
    pub fn record_refusal(
        &mut self,
        scheduler: usize,
        job: u64,
        unsatisfied: Option<UnsatisfiedJob>,
    ) {
        let _ = scheduler;
        self.refusal_count += 1;
        self.refused_jobs.push(job);
        if let Some(u) = unsatisfied {
            let better = match self.best_unsatisfied {
                None => true,
                Some(cur) => {
                    u.virtual_size < cur.virtual_size
                        || (u.virtual_size == cur.virtual_size && u.job < cur.job)
                }
            };
            if better {
                self.best_unsatisfied = Some(u);
            }
        }
    }

    /// Note that a response was sent to `scheduler` (so it is not probed
    /// again this episode).
    pub fn mark_probed(&mut self, scheduler: usize) {
        if !self.probed_schedulers.contains(&scheduler) {
            self.probed_schedulers.push(scheduler);
        }
    }

    /// Refusals received so far.
    pub fn refusals(&self) -> usize {
        self.refusal_count
    }

    /// The worker's next protocol step, per Pseudocode 3.
    ///
    /// `queue` is the worker's pending reservations; `rng` drives the
    /// Guideline-3 weighted-random pick. Mutates the episode: each issued
    /// response counts toward the per-episode bound.
    pub fn next_action<R: Rng + ?Sized>(
        &mut self,
        queue: &[Reservation],
        rng: &mut R,
    ) -> WorkerAction {
        if self.responses_sent >= self.max_responses() {
            return WorkerAction::Idle;
        }
        let eligible: Vec<&Reservation> = queue
            .iter()
            .filter(|r| {
                !self.refused_jobs.contains(&r.job)
                    && !self.probed_schedulers.contains(&r.scheduler)
            })
            .collect();

        // An advertised unsatisfied job that has not itself refused is the
        // best possible target once probing is over.
        let unsatisfied = self
            .best_unsatisfied
            .filter(|u| !self.refused_jobs.contains(&u.job));

        let action = if self.refusal_count >= self.refusal_threshold {
            // Enough refusals without resolution: the system is not
            // capacity constrained → Guideline 3.
            if let Some(u) = unsatisfied {
                WorkerAction::Respond {
                    scheduler: u.scheduler,
                    job: u.job,
                    kind: ResponseKind::NonRefusable,
                }
            } else {
                match pick_weighted_by_virtual_size(&eligible, rng) {
                    Some(r) => WorkerAction::Respond {
                        scheduler: r.scheduler,
                        job: r.job,
                        kind: ResponseKind::NonRefusable,
                    },
                    None => WorkerAction::Idle,
                }
            }
        } else {
            // Probing round: smallest virtual size first (Guideline 2).
            match pick_min_virtual_size(&eligible) {
                Some(r) => WorkerAction::Respond {
                    scheduler: r.scheduler,
                    job: r.job,
                    kind: ResponseKind::Refusable,
                },
                None => {
                    // Queue exhausted before the threshold: fall back to
                    // the best unsatisfied job if one was advertised.
                    match unsatisfied {
                        Some(u) => WorkerAction::Respond {
                            scheduler: u.scheduler,
                            job: u.job,
                            kind: ResponseKind::NonRefusable,
                        },
                        None => WorkerAction::Idle,
                    }
                }
            }
        };
        if matches!(action, WorkerAction::Respond { .. }) {
            self.responses_sent += 1;
        }
        action
    }
}

/// Smallest virtual size; ties broken by (job, scheduler) for determinism.
fn pick_min_virtual_size<'a>(eligible: &[&'a Reservation]) -> Option<&'a Reservation> {
    eligible
        .iter()
        .min_by(|a, b| {
            a.virtual_size
                .partial_cmp(&b.virtual_size)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.job.cmp(&b.job))
                .then(a.scheduler.cmp(&b.scheduler))
        })
        .copied()
}

/// Guideline-3 pick: random, weighted by virtual size ("the worker randomly
/// picks a job from the waiting queue based on the distribution of job
/// virtual sizes", §5.2). Dedups by job so a job with many queued
/// reservations is not double-counted.
fn pick_weighted_by_virtual_size<'a, R: Rng + ?Sized>(
    eligible: &[&'a Reservation],
    rng: &mut R,
) -> Option<&'a Reservation> {
    let mut seen: Vec<u64> = Vec::new();
    let mut jobs: Vec<&Reservation> = Vec::new();
    for r in eligible {
        if !seen.contains(&r.job) {
            seen.push(r.job);
            jobs.push(r);
        }
    }
    let total: f64 = jobs.iter().map(|r| r.virtual_size.max(0.0)).sum();
    if jobs.is_empty() {
        return None;
    }
    if total <= 0.0 {
        return Some(jobs[0]);
    }
    let mut x = rng.gen::<f64>() * total;
    for r in &jobs {
        x -= r.virtual_size.max(0.0);
        if x <= 0.0 {
            return Some(r);
        }
    }
    jobs.last().copied()
}

/// FCFS pick (stock Sparrow): the earliest queued reservation.
pub fn pick_fcfs(queue: &[Reservation]) -> Option<&Reservation> {
    queue.first()
}

/// SRPT pick (Sparrow-SRPT baseline of §7.1): the job with the fewest
/// remaining tasks ("when a worker has a slot free, it picks the task of
/// the job that has the least unfinished tasks").
pub fn pick_srpt(queue: &[Reservation]) -> Option<&Reservation> {
    queue.iter().min_by(|a, b| {
        a.remaining_tasks
            .partial_cmp(&b.remaining_tasks)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.job.cmp(&b.job))
    })
}

/// Retry pacing for the hardened RPC layer: capped exponential backoff
/// with a bounded retry budget and graceful degradation.
///
/// The decentralized drivers arm per-job watchdogs with
/// `delay_ms(attempt)`; after each unproductive firing the attempt
/// counter advances through [`BackoffPolicy::next_attempt`]. Exhausting
/// the budget does **not** give up — the counter wraps to zero, modelling
/// the paper-era practice of falling back to a *fresh probe round* at
/// base pacing instead of deadlocking (a lost message must never strand
/// a job; see DESIGN.md "Message-fault plane"). Pure arithmetic, no
/// clock: the caller owns time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Base delay (the RPC timeout), ms.
    pub base_ms: u64,
    /// Cap: delays grow as `base · 2^min(attempt, max_exponent)`.
    pub max_exponent: u32,
    /// Attempts before wrapping back to a fresh round at base pacing.
    pub retry_budget: u32,
}

impl BackoffPolicy {
    /// Policy with the conventional cap of 2⁵ = 32× base.
    pub fn new(base_ms: u64, retry_budget: u32) -> Self {
        BackoffPolicy {
            base_ms: base_ms.max(1),
            max_exponent: 5,
            retry_budget: retry_budget.max(1),
        }
    }

    /// Delay before the retry numbered `attempt` (0-based), ms:
    /// `base · 2^min(attempt, max_exponent)` — saturating, never zero.
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let exp = attempt.min(self.max_exponent);
        self.base_ms.saturating_mul(1u64 << exp.min(63))
    }

    /// The attempt counter after one more unproductive retry: advances
    /// until the budget is spent, then wraps to 0 (graceful degradation —
    /// a fresh round at base pacing, not a deadlock).
    pub fn next_attempt(&self, attempt: u32) -> u32 {
        if attempt + 1 >= self.retry_budget {
            0
        } else {
            attempt + 1
        }
    }
}

/// Scheduler-side acceptance rule — Pseudocode 2.
///
/// A refusable response is accepted only while the job still occupies
/// fewer slots than its virtual size; non-refusable responses are always
/// accepted.
pub fn scheduler_accepts(kind: ResponseKind, occupied: f64, virtual_size: f64) -> bool {
    match kind {
        ResponseKind::NonRefusable => true,
        ResponseKind::Refusable => occupied < virtual_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopper_sim::rng_from_seed;

    fn res(scheduler: usize, job: u64, vsize: f64, rem: f64) -> Reservation {
        Reservation {
            scheduler,
            job,
            virtual_size: vsize,
            remaining_tasks: rem,
        }
    }

    #[test]
    fn first_action_targets_smallest_virtual_size() {
        let q = vec![
            res(0, 1, 50.0, 40.0),
            res(1, 2, 10.0, 8.0),
            res(2, 3, 30.0, 25.0),
        ];
        let mut ep = FreeSlotEpisode::new(2);
        let mut rng = rng_from_seed(1);
        match ep.next_action(&q, &mut rng) {
            WorkerAction::Respond {
                scheduler,
                job,
                kind,
            } => {
                assert_eq!((scheduler, job), (1, 2));
                assert_eq!(kind, ResponseKind::Refusable);
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn refusal_moves_to_second_smallest() {
        let q = vec![
            res(0, 1, 50.0, 40.0),
            res(1, 2, 10.0, 8.0),
            res(2, 3, 30.0, 25.0),
        ];
        let mut ep = FreeSlotEpisode::new(5);
        let mut rng = rng_from_seed(1);
        ep.mark_probed(1);
        ep.record_refusal(1, 2, None);
        match ep.next_action(&q, &mut rng) {
            WorkerAction::Respond { job, kind, .. } => {
                assert_eq!(job, 3, "second smallest virtual size");
                assert_eq!(kind, ResponseKind::Refusable);
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn same_scheduler_not_probed_twice() {
        // Jobs 2 and 3 share scheduler 1; after job 2's refusal, job 3 is
        // skipped even though it is next by virtual size.
        let q = vec![
            res(1, 2, 10.0, 8.0),
            res(1, 3, 20.0, 15.0),
            res(0, 9, 90.0, 80.0),
        ];
        let mut ep = FreeSlotEpisode::new(5);
        let mut rng = rng_from_seed(1);
        ep.mark_probed(1);
        ep.record_refusal(1, 2, None);
        match ep.next_action(&q, &mut rng) {
            WorkerAction::Respond { scheduler, job, .. } => {
                assert_eq!(scheduler, 0);
                assert_eq!(job, 9);
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn threshold_reached_with_unsatisfied_goes_nonrefusable() {
        let q = vec![res(0, 1, 50.0, 40.0), res(1, 2, 10.0, 8.0)];
        let mut ep = FreeSlotEpisode::new(2);
        let mut rng = rng_from_seed(1);
        ep.record_refusal(
            1,
            2,
            Some(UnsatisfiedJob {
                scheduler: 1,
                job: 7,
                virtual_size: 12.0,
            }),
        );
        ep.record_refusal(
            0,
            1,
            Some(UnsatisfiedJob {
                scheduler: 0,
                job: 8,
                virtual_size: 5.0,
            }),
        );
        match ep.next_action(&q, &mut rng) {
            WorkerAction::Respond {
                scheduler,
                job,
                kind,
            } => {
                assert_eq!((scheduler, job), (0, 8), "smallest unsatisfied wins");
                assert_eq!(kind, ResponseKind::NonRefusable);
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn threshold_reached_without_unsatisfied_uses_weighted_random() {
        let q = vec![res(0, 1, 1.0, 1.0), res(1, 2, 1000.0, 900.0)];
        // With virtual sizes 1 vs 1000, the pick should almost always be
        // job 2; verify over many draws the weighting holds. A fresh
        // episode per draw (episodes are bounded in responses).
        let mut hits2 = 0;
        for seed in 0..200 {
            let mut ep = FreeSlotEpisode::new(1);
            ep.record_refusal(2, 99, None);
            let mut rng = rng_from_seed(seed);
            match ep.next_action(&q, &mut rng) {
                WorkerAction::Respond { job, kind, .. } => {
                    assert_eq!(kind, ResponseKind::NonRefusable);
                    if job == 2 {
                        hits2 += 1;
                    }
                }
                other => panic!("unexpected action {other:?}"),
            }
        }
        assert!(hits2 > 190, "weighting broken: {hits2}/200");
    }

    #[test]
    fn exhausted_queue_falls_back_to_unsatisfied_then_idle() {
        let q = vec![res(0, 1, 5.0, 5.0)];
        let mut ep = FreeSlotEpisode::new(10);
        let mut rng = rng_from_seed(1);
        ep.mark_probed(0);
        ep.record_refusal(0, 1, None);
        assert_eq!(ep.next_action(&q, &mut rng), WorkerAction::Idle);
        ep.record_refusal(
            0,
            1,
            Some(UnsatisfiedJob {
                scheduler: 3,
                job: 4,
                virtual_size: 2.0,
            }),
        );
        match ep.next_action(&q, &mut rng) {
            WorkerAction::Respond {
                scheduler,
                job,
                kind,
            } => {
                assert_eq!((scheduler, job), (3, 4));
                assert_eq!(kind, ResponseKind::NonRefusable);
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn empty_queue_is_idle() {
        let mut ep = FreeSlotEpisode::new(2);
        let mut rng = rng_from_seed(1);
        assert_eq!(ep.next_action(&[], &mut rng), WorkerAction::Idle);
    }

    #[test]
    fn refusal_counter_and_accessor() {
        let mut ep = FreeSlotEpisode::new(3);
        assert_eq!(ep.refusals(), 0);
        ep.record_refusal(0, 1, None);
        ep.record_refusal(1, 2, None);
        assert_eq!(ep.refusals(), 2);
    }

    #[test]
    fn fcfs_and_srpt_picks() {
        let q = vec![
            res(0, 5, 50.0, 40.0),
            res(1, 6, 10.0, 3.0),
            res(2, 7, 30.0, 25.0),
        ];
        assert_eq!(pick_fcfs(&q).unwrap().job, 5);
        assert_eq!(pick_srpt(&q).unwrap().job, 6);
        assert!(pick_fcfs(&[]).is_none());
        assert!(pick_srpt(&[]).is_none());
    }

    #[test]
    fn scheduler_acceptance_rule() {
        assert!(scheduler_accepts(ResponseKind::Refusable, 3.0, 5.0));
        assert!(!scheduler_accepts(ResponseKind::Refusable, 5.0, 5.0));
        assert!(!scheduler_accepts(ResponseKind::Refusable, 8.0, 5.0));
        assert!(scheduler_accepts(ResponseKind::NonRefusable, 8.0, 5.0));
    }

    #[test]
    fn weighted_pick_dedups_jobs_with_many_reservations() {
        // Job 1 has 100 reservations of vsize 1 each; job 2 has one of
        // vsize 100. Without dedup job 1 would dominate; with dedup the
        // odds are ~100:1 for job 2.
        let mut q: Vec<Reservation> = (0..100).map(|_| res(0, 1, 1.0, 1.0)).collect();
        q.push(res(1, 2, 100.0, 90.0));
        let refs: Vec<&Reservation> = q.iter().collect();
        let mut hits2 = 0;
        for seed in 0..300 {
            let mut rng = rng_from_seed(seed);
            if pick_weighted_by_virtual_size(&refs, &mut rng).unwrap().job == 2 {
                hits2 += 1;
            }
        }
        assert!(hits2 > 270, "dedup failed: {hits2}/300");
    }

    #[test]
    fn backoff_grows_caps_and_wraps() {
        let p = BackoffPolicy::new(1000, 4);
        // Exponential growth from base.
        assert_eq!(p.delay_ms(0), 1000);
        assert_eq!(p.delay_ms(1), 2000);
        assert_eq!(p.delay_ms(2), 4000);
        // Capped at 2^max_exponent.
        assert_eq!(p.delay_ms(5), 32_000);
        assert_eq!(p.delay_ms(40), 32_000);
        // Budget of 4: attempts walk 0→1→2→3→0 (fresh round, no give-up).
        assert_eq!(p.next_attempt(0), 1);
        assert_eq!(p.next_attempt(2), 3);
        assert_eq!(p.next_attempt(3), 0);
    }

    #[test]
    fn backoff_degenerate_inputs_are_floored() {
        // Zero base / zero budget are floored, never a zero delay or a
        // divide-by-zero wrap.
        let p = BackoffPolicy::new(0, 0);
        assert!(p.delay_ms(0) >= 1);
        assert_eq!(p.next_attempt(0), 0, "budget 1 wraps immediately");
        // Saturation instead of overflow at absurd bases.
        let big = BackoffPolicy::new(u64::MAX / 2, 3);
        assert_eq!(big.delay_ms(5), u64::MAX);
    }

    #[test]
    fn zero_virtual_sizes_still_pick_something() {
        let q = [res(0, 1, 0.0, 0.0), res(1, 2, 0.0, 0.0)];
        let refs: Vec<&Reservation> = q.iter().collect();
        let mut rng = rng_from_seed(4);
        assert!(pick_weighted_by_virtual_size(&refs, &mut rng).is_some());
    }
}
