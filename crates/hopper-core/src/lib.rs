//! # hopper-core — speculation-aware scheduling, sans I/O
//!
//! This crate is the paper's primary contribution ("Hopper: Decentralized
//! Speculation-aware Cluster Scheduling at Scale", Ren et al., SIGCOMM
//! 2015) expressed as pure decision logic:
//!
//! - [`vsize`] — virtual job sizes `V = max(2/β,1)·T·√α` and the
//!   Guideline-2 priority key (paper §4.1–4.2);
//! - [`allocate()`] — the two-regime slot allocator (Pseudocode 1) with
//!   ε-fairness (§4.3);
//! - [`incremental`] — the same allocation maintained incrementally
//!   (sorted Guideline-2 order, suffix-only refills) for per-event use;
//! - [`estimate`] — online β (Pareto MLE) and α (recurring-job history)
//!   estimation (§5.3, §6.3);
//! - [`protocol`] — the decentralized worker/scheduler decision rules
//!   (Pseudocodes 2 and 3, §5).
//!
//! Nothing here knows about simulated time, machines, or messages: the
//! centralized driver (`hopper-central`), the decentralized driver
//! (`hopper-decentral`), or a real RPC embedding all reuse the same logic.
//! This mirrors the event-driven, no-hidden-I/O design of production
//! network stacks.

#![warn(missing_docs)]

pub mod allocate;
pub mod estimate;
pub mod incremental;
pub mod protocol;
pub mod shard;
pub mod vsize;

pub use allocate::{allocate, cmp_priority, AllocConfig, Allocation, JobDemand, Regime};
pub use estimate::{alpha_from_work, AlphaEstimator, BetaEstimator};
pub use incremental::{AllocCounters, IncrementalAlloc};
pub use protocol::{
    pick_fcfs, pick_srpt, scheduler_accepts, FreeSlotEpisode, Reservation, ResponseKind,
    UnsatisfiedJob, WorkerAction,
};
pub use shard::{safe_horizon, EventKey, Mailbox, SyncBarrier};
pub use vsize::{priority_key, speculation_multiplier, virtual_size};
